"""Ablation benches for the design choices DESIGN.md calls out.

1. **Remainder vector on/off** -- the paper's motivation: without the fast
   check every user must trial-decrypt; with it, non-candidates stop after
   m_k hashes + mods.
2. **Strict vs robust enumeration** -- the paper's literal rule (unknown
   iff bucket empty) false-negatives under remainder collisions; the
   robust mode (this repo's default) eliminates them for bounded cost.
3. **p sweep** -- the security/efficiency dial: larger p shrinks candidate
   sets but leaks more remainder bits (Sec. IV-A1).
"""

from __future__ import annotations

import random

from repro.analysis.counters import OpCounter
from repro.analysis.reporting import render_series, render_table
from repro.attacks.eavesdrop import profiling_guesses_log2
from repro.core.attributes import Profile, RequestProfile
from repro.core.matching import build_request, process_request, unseal_secret
from repro.core.profile_vector import ParticipantVector
from repro.core.remainder import is_candidate


def test_ablation_remainder_vector(benchmark, weibo_population):
    """Computation with vs without the remainder-vector fast exclusion."""
    rng = random.Random(41)
    users = rng.sample(weibo_population, 300)
    target = users[0]
    request = RequestProfile.exact([f"tag:{t}" for t in target.tags][:6], normalized=True)
    package, secret = build_request(request, protocol=1, rng=random.Random(2))
    vectors = [ParticipantVector.from_profile(u.profile()) for u in users]

    def with_fast_check():
        counter = OpCounter()
        for vector in vectors:
            process_request(vector, package, counter=counter)
        return counter

    def without_fast_check():
        # The naive basic mechanism: every user trial-decrypts with its own
        # full-profile key (Sec. III-C motivation).
        counter = OpCounter()
        for vector in vectors:
            key = vector.key(counter)
            unseal_secret(key, 1, package.ciphertext, counter)
        return counter

    counter_on = with_fast_check()
    counter_off = without_fast_check()
    benchmark.pedantic(with_fast_check, rounds=1, iterations=1)

    print()
    print(render_table(
        "Ablation -- remainder vector fast check (300 users)",
        ["variant", "AES decryptions", "hashes", "mod ops"],
        [
            ["with remainder vector", counter_on.get("D"), counter_on.get("H"), counter_on.get("M")],
            ["naive (no fast check)", counter_off.get("D"), counter_off.get("H"), counter_off.get("M")],
        ],
    ))
    # The fast check must eliminate nearly all decryptions.
    assert counter_on.get("D") < counter_off.get("D") / 10


def test_ablation_strict_vs_robust(benchmark):
    """False negatives of the paper's literal enumeration rule under collisions.

    A tiny p (7) over many-attribute users makes collisions frequent; every
    user below *truly matches* the request, so any missed match is a false
    negative of the mode.
    """
    rng = random.Random(43)
    p = 7
    request_attrs = [f"tag:r{i}" for i in range(5)]
    request = RequestProfile(
        necessary=(), optional=request_attrs, beta=3, normalized=True
    )

    def run():
        missed = {"strict": 0, "robust": 0}
        total = 0
        for trial in range(60):
            package, secret = build_request(
                request, protocol=1, p=p, rng=random.Random(trial)
            )
            # A profile owning exactly beta request attrs + noise attributes
            # that may collide with the unowned positions.
            owned = rng.sample(request_attrs, 3)
            noise = [f"tag:n{trial}_{j}" for j in range(6)]
            profile = Profile(owned + noise, normalized=True)
            total += 1
            for mode in ("strict", "robust"):
                outcome = process_request(profile, package, mode=mode)
                if outcome.x != secret.x:
                    missed[mode] += 1
        return missed, total

    missed, total = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        f"Ablation -- enumeration mode false negatives (p={p}, {total} true matches)",
        ["mode", "missed matches", "rate"],
        [
            ["strict (paper literal)", missed["strict"], f"{missed['strict']/total:.2%}"],
            ["robust (default)", missed["robust"], f"{missed['robust']/total:.2%}"],
        ],
    ))
    assert missed["robust"] == 0, "robust mode must never miss a true match"
    assert missed["strict"] >= missed["robust"]


def test_ablation_p_sweep(benchmark, six_attribute_cohort):
    """Candidate fraction vs p, against the dictionary-hardness cost."""
    rng = random.Random(47)
    users = rng.sample(six_attribute_cohort, min(300, len(six_attribute_cohort)))
    target = users[0]
    request = RequestProfile(
        necessary=(), optional=[f"tag:{t}" for t in target.tags], beta=3,
        normalized=True,
    )
    vectors = [ParticipantVector.from_profile(u.profile()) for u in users]
    primes = [7, 11, 23, 101]

    def sweep():
        fractions = {}
        for p in primes:
            package, _ = build_request(request, protocol=2, p=p, rng=random.Random(5))
            hits = sum(
                1 for v in vectors
                if is_candidate(
                    package.remainders, package.necessary_mask, package.gamma,
                    v.values, p,
                )
            )
            fractions[p] = hits / len(vectors)
        return fractions

    fractions = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_series(
        "Ablation -- candidate fraction and attack hardness vs p (m=2^20, m_t=6)",
        "p",
        primes,
        {
            "candidate fraction": [round(fractions[p], 4) for p in primes],
            "log2 dictionary guesses": [
                round(profiling_guesses_log2(1 << 20, p, 6), 1) for p in primes
            ],
        },
    ))
    # Candidate fraction decreases with p; attack hardness also decreases.
    assert all(
        fractions[a] >= fractions[b] - 1e-9 for a, b in zip(primes, primes[1:])
    )
