"""Extension experiment: per-protocol reply traffic.

Quantifies two claims stated but not plotted in the paper (Sec. IV-B2):

1. Protocol 1 always answers with a single self-verified element, while a
   Protocol 2 candidate must cover *every* candidate key it holds.
2. "the communication cost of reply [in Protocol 3] is even smaller than
   Protocol 2 because of the personal privacy setting" -- measured by
   sweeping the φ budget.

Multiple candidate keys require remainder collisions (for perfect-match
requests there is no hint system to collapse them), so the workload mines
attribute names that collide mod p with the request positions -- the same
situation a dense real-world attribute space produces naturally.
"""

from __future__ import annotations

import random

from repro.analysis.reporting import render_table
from repro.core.attributes import Profile, RequestProfile
from repro.core.entropy import AttributeDistribution, EntropyPolicy
from repro.core.protocols import Initiator, Participant
from repro.core.wire import encode_reply
from repro.crypto.hashes import hash_attribute

P = 7
REQUEST_ATTRS = ["tag:alpha", "tag:beta"]


def _mine_colliders(target: str, count: int) -> list[str]:
    """Attribute names whose hashes collide with *target* modulo P."""
    wanted = hash_attribute(target) % P
    found = []
    i = 0
    while len(found) < count:
        candidate = f"tag:mined{target[-3:]}{i}"
        if hash_attribute(candidate) % P == wanted:
            found.append(candidate)
        i += 1
    return found


def _participant_profile() -> Profile:
    # Owns both request attributes plus two colliders for each position:
    # every remainder bucket has three entries, so several order-consistent
    # combinations (hence candidate keys) exist.
    attrs = list(REQUEST_ATTRS)
    attrs += _mine_colliders(REQUEST_ATTRS[0], 2)
    attrs += _mine_colliders(REQUEST_ATTRS[1], 2)
    return Profile(attrs, user_id="candidate", normalized=True)


def _reply_stats(protocol: int, phi: float | None) -> tuple[int, int]:
    rng = random.Random(31)
    policy = None
    if phi is not None:
        policy = EntropyPolicy(AttributeDistribution.uniform({"tag": 1 << 10}), phi=phi)
    initiator = Initiator(
        RequestProfile.exact(REQUEST_ATTRS, normalized=True),
        protocol=protocol, p=P, rng=rng, max_reply_elements=64,
    )
    package = initiator.create_request(now_ms=0)
    participant = Participant(_participant_profile(), entropy_policy=policy, rng=rng)
    reply = participant.handle_request(package, now_ms=1)
    if reply is None:
        return 0, 0
    initiator.handle_reply(reply, now_ms=2)
    assert initiator.matches or protocol == 3  # true owner always verifies (P1/P2)
    return len(reply.elements), len(encode_reply(reply))


def test_reply_cost_per_protocol(benchmark):
    def run():
        return {
            "Protocol 1": _reply_stats(1, None),
            "Protocol 2": _reply_stats(2, None),
            "Protocol 3 (phi=60)": _reply_stats(3, 60.0),
            "Protocol 3 (phi=20)": _reply_stats(3, 20.0),
            "Protocol 3 (phi=0)": _reply_stats(3, 0.0),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, elements, size] for name, (elements, size) in results.items()]
    print()
    print(render_table(
        "Reply traffic per protocol (collision-rich candidate, p=7)",
        ["protocol", "elements", "reply bytes"],
        rows,
    ))
    p1_elements, _ = results["Protocol 1"]
    p2_elements, p2_bytes = results["Protocol 2"]
    p3_elements, p3_bytes = results["Protocol 3 (phi=20)"]
    # Protocol 1 self-verifies: exactly one element despite many candidates.
    assert p1_elements == 1
    # Protocol 2 must cover every candidate key: several elements.
    assert p2_elements > 1
    # Protocol 3's privacy budget strictly shrinks the acknowledge set.
    assert p3_elements < p2_elements
    assert p3_bytes < p2_bytes
    # Zero budget: total silence.
    assert results["Protocol 3 (phi=0)"] == (0, 0)


def test_reply_size_scales_with_candidates(benchmark):
    """Reply bytes = header + 48 B per candidate element (accounted)."""
    from repro.core.wire import reply_wire_size

    def run():
        return {n: reply_wire_size(n, "responder") for n in (1, 4, 16)}

    sizes = benchmark(run)
    assert sizes[4] - sizes[1] == 3 * 48
    assert sizes[16] - sizes[4] == 12 * 48
