"""Flood-plane throughput on the 10k-node lossy city spec (PR 5 tentpole).

Measures end-to-end datagram throughput (frames per wall-clock second) of
the city-scale flood the experiment runner drives: the committed
``examples/specs/lossy_city.json`` base population (10k nodes, 8 episodes,
random-waypoint snapshot, retries armed, 2 ms jitter) at the sweep's
``loss_rate = 0.1`` point.  Two assertions:

1. **Fate pinning** -- the run must reproduce the exact frame count and
   match set the PR-4 engine produced for this (seed, spec): the zero-copy
   reframe, batched neighbourhood delivery and calendar queue are pure
   mechanism changes, so every per-link channel fate (and therefore every
   counter) is byte-identical.
2. **Throughput floor** -- frames/wall-sec must beat the recorded PR-4
   baseline on this same spec and machine by ``FLOOD_SPEEDUP_FLOOR``
   (default 2.0, the armed CI floor; relax via the env var on slow
   runners, like ``PARALLEL_SPEEDUP_FLOOR``).

Context for the recorded numbers (docs/performance.md has the full
before/after profile): the fast path tripled the non-protocol flood cost,
but ~40% of the remaining wall is the channel model's per-transmission
Mersenne-Twister fate derivation, whose draw-for-draw values are pinned by
the determinism contract and therefore cannot be batched away -- measured
speedup on this spec lands around 2.4-2.6x, while the perfect-channel
end-to-end scenario (the ~40k frames/wall-sec record that motivated the
fast path) gains ~4x (see ``bench_wire_runtime.py``).

Run with:  PYTHONPATH=src python benchmarks/bench_flood_plane.py
"""

from __future__ import annotations

import gc
import json
import os
from pathlib import Path

from repro.analysis.experiments import ScenarioSpec, load_plan, run_scenario

SPEC_PATH = Path(__file__).resolve().parent.parent / "examples" / "specs" / "lossy_city.json"
LOSS_RATE = 0.1
ROUNDS = int(os.environ.get("FLOOD_BENCH_ROUNDS", "3"))
SPEEDUP_FLOOR = float(os.environ.get("FLOOD_SPEEDUP_FLOOR", "2.0"))

# PR-4 engine on this exact spec, this machine, same harness (gc disabled,
# best of 3): 30586 frames in 1.13 s.  The constant is the comparison
# anchor for the trajectory; re-baseline it when the reference machine
# changes (tools/bench_record.py stamps every record with the commit).
PR4_BASELINE_FPS = 27_000

# Deterministic outcome of (seed=42, loss=0.1) on this spec: any drift
# here means a channel fate or flood-plane semantic changed, which the
# fast path must never do.
EXPECTED_FRAMES = 30_586
EXPECTED_MATCHES = 116


def _city_spec(loss_rate: float = LOSS_RATE) -> ScenarioSpec:
    plan = load_plan(SPEC_PATH)
    for spec in plan.specs:
        if spec.loss_rate == loss_rate:
            return spec
    raise AssertionError(f"lossy_city.json sweep has no loss_rate={loss_rate} point")


def test_flood_plane_city_throughput():
    """10k-node lossy city flood: pinned fates, >= 2x frames/wall-sec."""
    spec = _city_spec()
    assert spec.nodes == 10_000

    best_fps = 0.0
    record_run = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(ROUNDS):
            rec = run_scenario(spec)
            fps = rec["frames_sent"] / rec["wall_seconds"]
            if fps > best_fps:
                best_fps, record_run = fps, rec
    finally:
        if gc_was_enabled:
            gc.enable()

    # Fate pinning: the fast path must not move a single frame.
    assert record_run["frames_sent"] == EXPECTED_FRAMES, (
        f"frame count drifted: {record_run['frames_sent']} != {EXPECTED_FRAMES} "
        "(a channel fate or flood semantic changed)"
    )
    assert record_run["matches"] == EXPECTED_MATCHES, (
        f"match set drifted: {record_run['matches']} != {EXPECTED_MATCHES}"
    )
    assert record_run["match_rate"] > 0

    speedup = best_fps / PR4_BASELINE_FPS
    record = {
        "bench": "flood_plane_city",
        "spec": "lossy_city.json",
        "nodes": spec.nodes,
        "episodes": spec.episodes,
        "loss_rate": spec.loss_rate,
        "jitter_ms": spec.jitter_ms,
        "rounds": ROUNDS,
        "frames_sent": record_run["frames_sent"],
        "matches": record_run["matches"],
        "wall_seconds": record_run["wall_seconds"],
        "frames_per_wall_sec": round(best_fps),
        "pr4_baseline_frames_per_wall_sec": PR4_BASELINE_FPS,
        "speedup_vs_pr4": round(speedup, 2),
        "floor": SPEEDUP_FLOOR,
        "backend": spec.backend,
    }
    print()
    print("PERF_RECORD " + json.dumps(record))
    assert speedup >= SPEEDUP_FLOOR, (
        f"flood-plane speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x floor "
        f"({best_fps:.0f} vs PR-4 {PR4_BASELINE_FPS} frames/wall-sec)"
    )


if __name__ == "__main__":  # pragma: no cover
    test_flood_plane_city_throughput()
