"""Flood-plane throughput on the 10k-node lossy city spec (PR 5 + PR 6).

Measures end-to-end datagram throughput (frames per wall-clock second) of
the city-scale flood the experiment runner drives: the committed
``examples/specs/lossy_city.json`` base population (10k nodes, 8 episodes,
random-waypoint snapshot, retries armed, 2 ms jitter) at the sweep's
``loss_rate = 0.1`` point.  Two arms, each with fate pinning plus an armed
throughput floor against the same PR-4 anchor:

**v1 arm** (``test_flood_plane_city_throughput``)
    The scratch-MT fate plane.  The run must reproduce the exact frame
    count and match set the PR-4 engine produced for this (seed, spec) --
    the PR-5 fast path and everything since are pure mechanism changes --
    and beat PR-4 by ``FLOOD_SPEEDUP_FLOOR`` (default 2.0).

**v2 arm** (``test_flood_plane_city_throughput_v2``)
    The counter-mode fate plane (PR 6 tentpole): same spec with
    ``channel_version = 2``.  Fates are equally valid but deliberately
    different, so the arm pins its *own* frame/match goldens, and the
    floor is ``FLOOD_V2_SPEEDUP_FLOOR`` (default 3.0): dropping the
    per-transmission reseed must clear 3x over PR-4 where v1 plateaus
    around 2.0-2.6x.

Both floors relax via their env vars on slow runners (like
``PARALLEL_SPEEDUP_FLOOR``).  Running the file as a script executes both
arms and, with ``FLOOD_100K=1``, a 100k-node v2 point
(``examples/specs/lossy_city_100k_v2.json``) whose record lands in
``BENCH_crypto.json`` -- too heavy for the tier-1 pytest pass, cheap
enough for an explicit bench run.

Run with:  PYTHONPATH=src python benchmarks/bench_flood_plane.py
"""

from __future__ import annotations

import gc
import json
import os
from pathlib import Path

from repro.analysis.experiments import ScenarioSpec, load_plan, run_scenario

SPECS_DIR = Path(__file__).resolve().parent.parent / "examples" / "specs"
SPEC_PATH = SPECS_DIR / "lossy_city.json"
SPEC_100K_V2_PATH = SPECS_DIR / "lossy_city_100k_v2.json"
LOSS_RATE = 0.1
ROUNDS = int(os.environ.get("FLOOD_BENCH_ROUNDS", "3"))
SPEEDUP_FLOOR = float(os.environ.get("FLOOD_SPEEDUP_FLOOR", "2.0"))
V2_SPEEDUP_FLOOR = float(os.environ.get("FLOOD_V2_SPEEDUP_FLOOR", "3.0"))

# PR-4 engine on this exact spec, this machine, same harness (gc disabled,
# best of 3): 30586 frames in 1.13 s.  The constant is the comparison
# anchor for the trajectory; re-baseline it when the reference machine
# changes (tools/bench_record.py stamps every record with the commit).
PR4_BASELINE_FPS = 27_000

# Deterministic outcome of (seed=42, loss=0.1) on this spec: any drift
# here means a channel fate or flood-plane semantic changed, which the
# fast path must never do.
EXPECTED_FRAMES = 30_586
EXPECTED_MATCHES = 116

# Same (seed, spec) under the v2 counter-mode plane: different (equally
# valid) fates, pinned the day the plane shipped.  Drift means the
# keystream derivation or draw discipline changed, which would break the
# v2 reproducibility contract exactly like MT drift would break v1's.
EXPECTED_FRAMES_V2 = 29_461
EXPECTED_MATCHES_V2 = 104


def _city_spec(loss_rate: float = LOSS_RATE) -> ScenarioSpec:
    plan = load_plan(SPEC_PATH)
    for spec in plan.specs:
        if spec.loss_rate == loss_rate:
            return spec
    raise AssertionError(f"lossy_city.json sweep has no loss_rate={loss_rate} point")


def _city_spec_v2(loss_rate: float = LOSS_RATE) -> ScenarioSpec:
    base = _city_spec(loss_rate)
    return ScenarioSpec.from_dict({**base.as_dict(), "channel_version": 2})


def _measure(spec: ScenarioSpec, rounds: int = ROUNDS):
    """Best-of-*rounds* run of *spec* with gc parked: (best_fps, record)."""
    best_fps = 0.0
    record_run = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            rec = run_scenario(spec)
            fps = rec["frames_sent"] / rec["wall_seconds"]
            if fps > best_fps:
                best_fps, record_run = fps, rec
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_fps, record_run


def _emit(
    name: str,
    spec: ScenarioSpec,
    best_fps: float,
    record_run,
    floor: float,
    rounds: int = ROUNDS,
):
    speedup = best_fps / PR4_BASELINE_FPS
    record = {
        "bench": name,
        "spec": "lossy_city.json" if spec.nodes == 10_000 else "lossy_city_100k_v2.json",
        "nodes": spec.nodes,
        "episodes": spec.episodes,
        "loss_rate": spec.loss_rate,
        "jitter_ms": spec.jitter_ms,
        "channel_version": spec.channel_version,
        "channel_backend": record_run.get("channel_backend"),
        "rounds": rounds,
        "frames_sent": record_run["frames_sent"],
        "matches": record_run["matches"],
        "wall_seconds": record_run["wall_seconds"],
        "frames_per_wall_sec": round(best_fps),
        "pr4_baseline_frames_per_wall_sec": PR4_BASELINE_FPS,
        "speedup_vs_pr4": round(speedup, 2),
        "floor": floor,
        "backend": spec.backend,
    }
    print()
    print("PERF_RECORD " + json.dumps(record))
    return speedup


def test_flood_plane_city_throughput():
    """10k-node lossy city flood, v1 plane: pinned fates, >= 2x floor."""
    spec = _city_spec()
    assert spec.nodes == 10_000
    assert spec.channel_version == 1

    best_fps, record_run = _measure(spec)

    # Fate pinning: the fast path must not move a single frame.
    assert record_run["frames_sent"] == EXPECTED_FRAMES, (
        f"frame count drifted: {record_run['frames_sent']} != {EXPECTED_FRAMES} "
        "(a channel fate or flood semantic changed)"
    )
    assert record_run["matches"] == EXPECTED_MATCHES, (
        f"match set drifted: {record_run['matches']} != {EXPECTED_MATCHES}"
    )
    assert record_run["match_rate"] > 0

    speedup = _emit("flood_plane_city", spec, best_fps, record_run, SPEEDUP_FLOOR)
    assert speedup >= SPEEDUP_FLOOR, (
        f"flood-plane speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x floor "
        f"({best_fps:.0f} vs PR-4 {PR4_BASELINE_FPS} frames/wall-sec)"
    )


def test_flood_plane_city_throughput_v2():
    """Same city flood on the counter-mode plane: pinned fates, >= 3x floor."""
    spec = _city_spec_v2()
    assert spec.nodes == 10_000
    assert spec.channel_version == 2

    best_fps, record_run = _measure(spec)

    assert record_run["frames_sent"] == EXPECTED_FRAMES_V2, (
        f"v2 frame count drifted: {record_run['frames_sent']} != "
        f"{EXPECTED_FRAMES_V2} (the keystream derivation changed)"
    )
    assert record_run["matches"] == EXPECTED_MATCHES_V2, (
        f"v2 match set drifted: {record_run['matches']} != {EXPECTED_MATCHES_V2}"
    )
    assert record_run["match_rate"] > 0

    speedup = _emit("flood_plane_city_v2", spec, best_fps, record_run, V2_SPEEDUP_FLOOR)
    assert speedup >= V2_SPEEDUP_FLOOR, (
        f"v2 flood-plane speedup {speedup:.2f}x < {V2_SPEEDUP_FLOOR}x floor "
        f"({best_fps:.0f} vs PR-4 {PR4_BASELINE_FPS} frames/wall-sec)"
    )


def run_city_100k_v2():  # pragma: no cover -- explicit bench runs only
    """100k-node v2 point: one round, record only (no floor -- it is a
    scale datapoint, not a regression gate)."""
    plan = load_plan(SPEC_100K_V2_PATH)
    spec = plan.specs[0]
    assert spec.nodes == 100_000
    assert spec.channel_version == 2
    best_fps, record_run = _measure(spec, rounds=1)
    _emit("flood_plane_city_100k_v2", spec, best_fps, record_run, 0.0, rounds=1)


if __name__ == "__main__":  # pragma: no cover
    test_flood_plane_city_throughput()
    test_flood_plane_city_throughput_v2()
    if os.environ.get("FLOOD_100K") == "1":
        run_city_100k_v2()
