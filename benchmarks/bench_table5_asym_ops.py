"""Table V: mean computation time of asymmetric-cryptosystem operations.

Paper (laptop, ms): 1024-exp 17, 2048-exp 120, 1024-mul 2.3e-2,
2048-mul 1e-1.  CPython's bignum pow() is faster than the paper's 2012
testbed, but the asserted shape survives: exponentiation costs thousands of
times more than any Table IV symmetric primitive -- the entire argument for
a symmetric-only matching protocol.
"""

from __future__ import annotations

import random

from repro.analysis.reporting import render_table

PAPER_LAPTOP_MS = {
    "1024-exp": 17.0,
    "2048-exp": 120.0,
    "1024-mul": 2.3e-2,
    "2048-mul": 1.0e-1,
}

_RESULTS: dict[str, float] = {}
_RNG = random.Random(42)

_BASE_1024 = _RNG.getrandbits(1024) | 1
_EXP_1024 = _RNG.getrandbits(1024)
_MOD_1024 = _RNG.getrandbits(1024) | (1 << 1023) | 1
_BASE_2048 = _RNG.getrandbits(2048) | 1
_EXP_2048 = _RNG.getrandbits(2048)
_MOD_2048 = _RNG.getrandbits(2048) | (1 << 2047) | 1


def _record(name: str, benchmark) -> None:
    _RESULTS[name] = benchmark.stats.stats.mean * 1000.0


def test_modexp_1024(benchmark):
    benchmark(pow, _BASE_1024, _EXP_1024, _MOD_1024)
    _record("1024-exp", benchmark)


def test_modexp_2048(benchmark):
    benchmark(pow, _BASE_2048, _EXP_2048, _MOD_2048)
    _record("2048-exp", benchmark)


def test_modmul_1024(benchmark):
    a, b = _BASE_1024, _EXP_1024
    benchmark(lambda: a * b % _MOD_1024)
    _record("1024-mul", benchmark)


def test_modmul_2048(benchmark):
    a, b = _BASE_2048, _EXP_2048
    benchmark(lambda: a * b % _MOD_2048)
    _record("2048-mul", benchmark)


def test_zz_report(benchmark):
    """Print Table V and assert the symmetric/asymmetric cost gap."""
    from repro.crypto.hashes import hash_attribute
    import time

    benchmark(lambda: None)
    rows = [
        [name, f"{_RESULTS.get(name, float('nan')):.3g}", f"{paper:.3g}"]
        for name, paper in PAPER_LAPTOP_MS.items()
    ]
    print()
    print(render_table(
        "Table V -- asymmetric operations (ms)",
        ["operation", "measured (this machine)", "paper laptop"],
        rows,
    ))
    # Shape: a 2048-bit exponentiation must cost >= 100x one SHA-256.
    start = time.perf_counter()
    for _ in range(200):
        hash_attribute("probe")
    sha_ms = (time.perf_counter() - start) / 200 * 1000
    assert _RESULTS["2048-exp"] > 100 * sha_ms
    assert _RESULTS["2048-exp"] > _RESULTS["1024-exp"]
    assert _RESULTS["2048-mul"] > _RESULTS["1024-mul"]
