"""Region-sharded flood throughput: the 10k city, and a 1M-node metro.

The spatial-sharding counterpart of ``bench_flood_plane.py``: the same
committed ``examples/specs/lossy_city.json`` flood (10k nodes, loss 0.1,
v2 counter-mode plane) run once sequentially (``regions = 1``) and once
through the region-sharded runtime (``regions = 4``, one forked worker
per contiguous x-stripe).  Sharding is a pure mechanism change — the
genealogy-key merge in ``network/regions.py`` makes the region count
invisible in every recorded byte — so the arm pins the exact v2 flood
goldens on *both* runs and reports sharded frames/wall-sec next to the
sequential number.

The scaling floor is **disarmed by default** (like
``PARALLEL_SPEEDUP_FLOOR``): spatial sharding cannot beat one queue on a
single-core host, and byte-identity is the property that must hold
everywhere.  Set ``SHARDED_SPEEDUP_FLOOR`` (sharded fps / sequential
fps) on hosts where cores are guaranteed.

With ``METRO_1M=1`` the script also runs the committed 1M-node metro
spec (``examples/specs/metro_1m.json``: static placement, mean degree
~8, TTL-bounded local floods) through its regions ∈ {1, 4} sweep and
emits one record per point — scale datapoints for the trajectory, not
regression gates.

Run with:  PYTHONPATH=src python benchmarks/bench_flood_sharded.py
"""

from __future__ import annotations

import gc
import json
import os
from pathlib import Path

from repro.analysis.experiments import ScenarioSpec, load_plan, run_scenario

SPECS_DIR = Path(__file__).resolve().parent.parent / "examples" / "specs"
SPEC_PATH = SPECS_DIR / "lossy_city.json"
METRO_SPEC_PATH = SPECS_DIR / "metro_1m.json"
LOSS_RATE = 0.1
ROUNDS = int(os.environ.get("FLOOD_BENCH_ROUNDS", "3"))
SHARDED_REGIONS = int(os.environ.get("SHARDED_REGIONS", "4"))
# Disarmed by default: a 1-core container cannot scale a spatial shard.
SHARDED_SPEEDUP_FLOOR = float(os.environ.get("SHARDED_SPEEDUP_FLOOR", "0"))

# The v2-plane goldens of (seed=42, loss=0.1) on lossy_city.json — the
# same constants bench_flood_plane.py pins sequentially.  The sharded
# run must reproduce them exactly at every region count.
EXPECTED_FRAMES_V2 = 29_461
EXPECTED_MATCHES_V2 = 104


def _city_spec(regions: int) -> ScenarioSpec:
    plan = load_plan(SPEC_PATH)
    for spec in plan.specs:
        if spec.loss_rate == LOSS_RATE:
            return ScenarioSpec.from_dict(
                {**spec.as_dict(), "channel_version": 2, "regions": regions}
            )
    raise AssertionError(f"lossy_city.json sweep has no loss_rate={LOSS_RATE} point")


def _measure(spec: ScenarioSpec, rounds: int = ROUNDS):
    """Best-of-*rounds* run of *spec* with gc parked: (best_fps, record)."""
    best_fps = 0.0
    record_run = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            rec = run_scenario(spec)
            fps = rec["frames_sent"] / rec["wall_seconds"]
            if fps > best_fps:
                best_fps, record_run = fps, rec
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_fps, record_run


def test_flood_plane_sharded_city():
    """10k lossy city, v2 plane, regions 1 vs 4: identical bytes, one record."""
    seq_fps, seq_run = _measure(_city_spec(regions=1))
    sharded_fps, sharded_run = _measure(_city_spec(regions=SHARDED_REGIONS))

    # Byte-identity first: the region count must not move a single frame.
    for label, run in (("sequential", seq_run), ("sharded", sharded_run)):
        assert run["frames_sent"] == EXPECTED_FRAMES_V2, (
            f"{label} frame count drifted: {run['frames_sent']} != "
            f"{EXPECTED_FRAMES_V2} (a fate or merge-order semantic changed)"
        )
        assert run["matches"] == EXPECTED_MATCHES_V2, (
            f"{label} match set drifted: {run['matches']} != {EXPECTED_MATCHES_V2}"
        )

    speedup = sharded_fps / seq_fps
    record = {
        "bench": "flood_plane_sharded",
        "spec": "lossy_city.json",
        "nodes": seq_run["nodes"],
        "episodes": seq_run["episodes"],
        "loss_rate": LOSS_RATE,
        "channel_version": 2,
        "regions": SHARDED_REGIONS,
        "rounds": ROUNDS,
        "frames_sent": sharded_run["frames_sent"],
        "matches": sharded_run["matches"],
        "sequential_frames_per_wall_sec": round(seq_fps),
        "frames_per_wall_sec": round(sharded_fps),
        "speedup_vs_sequential": round(speedup, 2),
        "floor": SHARDED_SPEEDUP_FLOOR or None,
        "cpus": os.cpu_count(),
    }
    print()
    print("PERF_RECORD " + json.dumps(record))
    if SHARDED_SPEEDUP_FLOOR:
        assert speedup >= SHARDED_SPEEDUP_FLOOR, (
            f"sharded speedup {speedup:.2f}x < {SHARDED_SPEEDUP_FLOOR}x floor "
            f"({sharded_fps:.0f} vs sequential {seq_fps:.0f} frames/wall-sec "
            f"on {os.cpu_count()} cores)"
        )


def run_metro_1m():  # pragma: no cover -- explicit bench runs only
    """1M-node metro sweep (regions 1 and 4): one round per point,
    records only — completion at scale is the claim, not a wall floor."""
    plan = load_plan(METRO_SPEC_PATH)
    fps_by_regions: dict[int, float] = {}
    for spec in plan.specs:
        assert spec.nodes == 1_000_000
        best_fps, run = _measure(spec, rounds=1)
        assert run["warnings"] == [], run["warnings"]
        assert run["matches"] > 0
        fps_by_regions[spec.regions] = best_fps
        record = {
            "bench": "metro_1m",
            "spec": "metro_1m.json",
            "nodes": spec.nodes,
            "episodes": run["episodes"],
            "loss_rate": spec.loss_rate,
            "channel_version": spec.channel_version,
            "regions": spec.regions,
            "mean_degree": run["mean_degree"],
            "largest_component_fraction": run["largest_component_fraction"],
            "frames_sent": run["frames_sent"],
            "matches": run["matches"],
            "topology_seconds": run["topology_seconds"],
            "wall_seconds": run["wall_seconds"],
            "frames_per_wall_sec": round(best_fps),
            "cpus": os.cpu_count(),
        }
        if 1 in fps_by_regions and spec.regions > 1:
            record["speedup_vs_sequential"] = round(
                best_fps / fps_by_regions[1], 2
            )
        print()
        print("PERF_RECORD " + json.dumps(record))


if __name__ == "__main__":  # pragma: no cover
    test_flood_plane_sharded_city()
    if os.environ.get("METRO_1M") == "1":
        run_metro_1m()
