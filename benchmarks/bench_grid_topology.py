"""Spatial-grid topology index vs the naive all-pairs scan, at city scale.

Two measurements guarding the city-scale substrate:

1. ``test_grid_beats_naive_at_5k`` measures one full topology build over a
   5 000-node random-waypoint placement, brute force vs
   :class:`~repro.network.topology.SpatialGrid`, asserts the grid is
   >= 5x faster *and* returns the identical adjacency, then measures an
   incremental refresh (``topology_delta`` after a mobility step).  Emits
   a ``PERF_RECORD {...}`` JSON line.
2. ``test_city_topology_scales`` builds a 10 000-node connected city
   topology through the grid path and emits its build time — the number
   future scaling PRs regress against.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_grid_topology.py -s
"""

from __future__ import annotations

import json
import os
import time

from repro.network.mobility import RandomWaypoint
from repro.network.topology import city_topology, naive_adjacency

N_NODES = 5_000
RADIUS = 0.02  # expected degree = n * pi * r^2 ~ 6.3
# Local/perf runs assert the real 5x floor (~30x in practice); CI runs on
# shared runners where wall-clock ratios are noise-gated and lowers it.
SPEEDUP_FLOOR = float(os.environ.get("GRID_SPEEDUP_FLOOR", "5"))


def test_grid_beats_naive_at_5k():
    """Full build >= 5x over brute force; incremental refresh far cheaper."""
    model = RandomWaypoint([f"n{i}" for i in range(N_NODES)], seed=3)
    positions = model.positions()

    start = time.perf_counter()
    naive = naive_adjacency(positions, RADIUS)
    naive_s = time.perf_counter() - start

    start = time.perf_counter()
    grid = model.snapshot_topology(RADIUS)
    grid_s = time.perf_counter() - start

    assert grid == naive, "grid adjacency diverged from the all-pairs reference"

    # One mobility step, then the incremental path: only moved
    # neighbourhoods are re-examined and only changed rows returned.
    model.step(0.5)
    start = time.perf_counter()
    delta = model.topology_delta(RADIUS)
    incremental_s = time.perf_counter() - start
    assert model.snapshot_topology(RADIUS) == naive_adjacency(model.positions(), RADIUS)

    speedup = naive_s / grid_s
    record = {
        "bench": "grid_topology_refresh",
        "nodes": N_NODES,
        "radius": RADIUS,
        "edges": sum(len(v) for v in grid.values()) // 2,
        "naive_seconds": round(naive_s, 4),
        "grid_seconds": round(grid_s, 4),
        "incremental_seconds": round(incremental_s, 4),
        "delta_rows": len(delta),
        "speedup": round(speedup, 2),
    }
    print()
    print("PERF_RECORD " + json.dumps(record))
    assert speedup >= SPEEDUP_FLOOR, (
        f"grid topology build {speedup:.1f}x < required {SPEEDUP_FLOOR}x over naive"
    )


def test_city_topology_scales():
    """A connected 10k-node city builds through the grid in interactive time."""
    start = time.perf_counter()
    adjacency, positions = city_topology(10_000, 0.018, seed=1)
    build_s = time.perf_counter() - start

    assert len(adjacency) == 10_000
    mean_degree = sum(len(v) for v in adjacency.values()) / len(adjacency)
    assert mean_degree >= 2, "city too sparse to be a plausible MANET"

    record = {
        "bench": "city_topology_build",
        "nodes": 10_000,
        "radius": 0.018,
        "mean_degree": round(mean_degree, 2),
        "build_seconds": round(build_s, 4),
    }
    print()
    print("PERF_RECORD " + json.dumps(record))


if __name__ == "__main__":
    test_grid_beats_naive_at_5k()
    test_city_topology_scales()
