"""Table VII: the typical MSN scenario, end to end.

Scenario: m_t = m_k = 6, γ = β = 3 (θ = 0.5), p = 11, n = 100 users.
Protocol 1 is *actually executed* against 100 simulated users; the
comparator rows are obtained by measuring this machine's asymmetric
primitive times and multiplying by the paper's Table III operation counts
(exactly the paper's own methodology).  Each baseline additionally runs
once at pair level to prove the implementations are real.

Shape contract: ours wins computation by >= 10^3 and communication by
>= 10^2, as in the paper (where the gaps are 10^6 and ~700x).
"""

from __future__ import annotations

import random
import time

from repro.analysis.reporting import render_table
from repro.baselines.costs import Scenario, advanced_cost, fc10_cost, fnp_cost, protocol1_cost
from repro.baselines.dh_psi import dh_psi_cardinality
from repro.baselines.fc10 import fc10_psi
from repro.baselines.fnp04 import fnp_psi
from repro.baselines.paillier import PaillierKeyPair
from repro.baselines.rsa import RsaKeyPair
from repro.core.attributes import RequestProfile
from repro.core.protocols import Initiator, Participant
from repro.crypto.numbers import generate_safe_prime
from repro.dataset.weibo import WeiboGenerator

SCENARIO = Scenario(m_t=6, m_k=6, n=100, t=4, q=256, p=11, alpha=0, beta=3)


def _measured_asym_op_times() -> dict[str, float]:
    """Milliseconds per asymmetric op on this machine (paper methodology)."""
    rng = random.Random(77)
    results = {}
    for name, bits in (("E2", 1024), ("E3", 2048), ("M2", 1024), ("M3", 2048)):
        base = rng.getrandbits(bits) | 1
        exp = rng.getrandbits(bits)
        mod = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        reps = 20 if name.startswith("E") else 2000
        start = time.perf_counter()
        if name.startswith("E"):
            for _ in range(reps):
                pow(base, exp, mod)
        else:
            for _ in range(reps):
                base * exp % mod
        results[name] = (time.perf_counter() - start) / reps * 1000
    return results


def _scenario_population():
    users = WeiboGenerator(n_users=100, tag_vocabulary=2_000, seed=31).generate()
    return [u for u in users]


def test_protocol1_full_scenario(benchmark):
    """Run Protocol 1 against 100 users; measure wall time and bytes."""
    users = _scenario_population()
    target_tags = [f"tag:{t}" for t in users[50].tags][:6]
    request = RequestProfile.with_threshold(
        necessary=(), optional=target_tags, theta=0.5, normalized=True
    )
    participants = [
        Participant(u.profile(), rng=random.Random(100 + i))
        for i, u in enumerate(users)
    ]

    # Each episode needs a fresh request id: participants answer a given
    # request exactly once (duplicate suppression), and pytest-benchmark
    # re-runs the episode many times.
    episode_seed = iter(range(9, 10_000))

    def episode():
        initiator = Initiator(request, protocol=1, p=11, rng=random.Random(next(episode_seed)))
        package = initiator.create_request(now_ms=0)
        replies = 0
        for participant in participants:
            reply = participant.handle_request(package, now_ms=1)
            if reply is not None:
                replies += 1
                initiator.handle_reply(reply, now_ms=2)
        return initiator, package, replies

    initiator, package, replies = benchmark(episode)
    assert initiator.matches  # the target user's own profile matches
    assert package.wire_size_bytes() < 1024

    comm_kb = (package.wire_size_bytes() + replies * 48) / 1024
    our_cost = protocol1_cost(SCENARIO)
    print()
    print(render_table(
        "Table VII (ours, measured end-to-end)",
        ["quantity", "measured", "paper"],
        [
            ["request size", f"{package.wire_size_bytes()} B", "~190 B avg"],
            ["total comm", f"{comm_kb:.2f} KB", f"{our_cost.communication_kb():.2f} KB"],
            ["replies", replies, f"~{SCENARIO.n * 0.01:.0f} (candidate fraction)"],
            ["matches", len(initiator.matches), ">=1"],
        ],
    ))


def test_table7_comparison(benchmark):
    """The full Table VII rows with this machine's measured op times."""
    op_times = benchmark.pedantic(_measured_asym_op_times, rounds=1, iterations=1)

    # Measure our side for real: request generation + per-user processing.
    users = _scenario_population()
    request = RequestProfile.with_threshold(
        necessary=(), optional=[f"tag:{t}" for t in users[50].tags][:6],
        theta=0.5, normalized=True,
    )
    start = time.perf_counter()
    initiator = Initiator(request, protocol=1, p=11, rng=random.Random(9))
    package = initiator.create_request(now_ms=0)
    request_ms = (time.perf_counter() - start) * 1000

    noncandidate_ms = []
    candidate_ms = []
    for i, user in enumerate(users):
        participant = Participant(user.profile(), rng=random.Random(200 + i))
        start = time.perf_counter()
        participant.handle_request(package, now_ms=1)
        elapsed_ms = (time.perf_counter() - start) * 1000
        outcome = participant.last_outcome
        (candidate_ms if outcome and outcome.candidate else noncandidate_ms).append(elapsed_ms)

    rows = []
    for cost in (fnp_cost(SCENARIO), fc10_cost(SCENARIO), advanced_cost(SCENARIO)):
        rows.append([
            cost.name,
            f"{cost.initiator_ms(op_times):.1f}",
            f"{cost.participant_ms(op_times):.2f}",
            f"{cost.communication_kb():.1f}",
        ])
    ours_part = (
        f"{sum(noncandidate_ms)/len(noncandidate_ms):.4f} (noncand)"
        + (f" / {sum(candidate_ms)/len(candidate_ms):.4f} (cand)" if candidate_ms else "")
    )
    comm_kb = protocol1_cost(SCENARIO).communication_kb()
    rows.append(["Protocol 1 (measured)", f"{request_ms:.4f}", ours_part, f"{comm_kb:.2f}"])
    print()
    print(render_table(
        "Table VII -- typical scenario: m_t=m_k=6, γ=β=3, p=11, n=100",
        ["scheme", "initiator ms", "participant ms", "comm KB"],
        rows,
    ))

    fnp_ms = fnp_cost(SCENARIO).initiator_ms(op_times)
    assert fnp_ms / max(request_ms, 1e-6) > 1e3, "computation gap must be >= 10^3"
    assert fnp_cost(SCENARIO).communication_kb() / comm_kb > 1e2
    mean_noncand = sum(noncandidate_ms) / len(noncandidate_ms)
    assert mean_noncand < 10.0  # phone-scale bound; paper laptop: 3.9e-2 ms


def test_baselines_actually_run(benchmark):
    """One real pairwise execution of each comparator (1024-bit keys)."""
    rng = random.Random(3)
    client = [f"tag:c{i}" for i in range(6)]
    server = [f"tag:c{i}" for i in range(3)] + [f"tag:s{i}" for i in range(3)]

    paillier = PaillierKeyPair.generate(1024, rng=rng)
    rsa = RsaKeyPair.generate(1024, rng=rng)
    group = generate_safe_prime(512, rng=rng)

    def run_all():
        fnp, _ = fnp_psi(client, server, keypair=paillier, rng=rng)
        fc, _ = fc10_psi(client, server, keypair=rsa, rng=rng)
        ca = dh_psi_cardinality(client, server, p=group, rng=rng)
        return fnp, fc, ca

    fnp, fc, ca = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert fnp == fc == set(client[:3])
    assert ca == 3
