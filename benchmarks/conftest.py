"""Shared fixtures for the benchmark harness.

Each bench module regenerates one table or figure from the paper's
evaluation (Sec. IV-V).  Populations are scaled down from the paper's
2.32 M users to keep a full `pytest benchmarks/ --benchmark-only` run in
minutes; every module prints the regenerated table so EXPERIMENTS.md can
quote the output verbatim.
"""

from __future__ import annotations

import random

import pytest

from repro.dataset.weibo import WeiboGenerator


@pytest.fixture(scope="session")
def weibo_population():
    """Weibo-calibrated population (scaled: 4000 users, 40k tag vocab)."""
    return WeiboGenerator(
        n_users=4000, tag_vocabulary=40_000, keyword_vocabulary=50_000, seed=2013
    ).generate()


@pytest.fixture(scope="session")
def six_attribute_cohort(weibo_population):
    """Users with exactly 6 tags -- the paper's Fig. 6(a)/7(a) cohort."""
    return [u for u in weibo_population if len(u.tags) == 6]


@pytest.fixture(scope="session")
def diverse_sample(weibo_population):
    """Random 1000-user sample with diverse attribute counts (Fig. 6b/7b)."""
    rng = random.Random(7)
    return rng.sample(weibo_population, 1000)


@pytest.fixture(scope="session")
def bench_rng():
    return random.Random(0xBEEF)
