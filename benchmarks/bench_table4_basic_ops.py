"""Table IV: mean computation time of our basic operations.

Paper (laptop, ms): SHA-256 1.2e-3, mod-p 3.1e-4, AES-enc 8.7e-4,
AES-dec 9.6e-4, 256-bit multiply 1.4e-4, 256-bit compare 1.0e-5.

Absolute numbers differ on this machine (hashlib's C SHA-256 is faster,
pure-Python AES is slower than OpenSSL); the *shape* contract asserted here
is that every symmetric operation stays microseconds-scale, orders of
magnitude below the Table V asymmetric operations.
"""

from __future__ import annotations

import os

from repro.analysis.reporting import render_table
from repro.core.profile_vector import profile_key
from repro.crypto.aes import AES
from repro.crypto.hashes import hash_attribute

PAPER_LAPTOP_MS = {
    "SHA-256": 1.2e-3,
    "Mod p": 3.1e-4,
    "AES Enc": 8.7e-4,
    "AES Dec": 9.6e-4,
    "Multiply-256": 1.4e-4,
    "Compare-256": 1.0e-5,
}

_RESULTS: dict[str, float] = {}


def _record(name: str, benchmark) -> None:
    _RESULTS[name] = benchmark.stats.stats.mean * 1000.0


def test_sha256_attribute_hash(benchmark):
    benchmark(hash_attribute, "interest:basketball")
    _record("SHA-256", benchmark)


def test_mod_p(benchmark):
    h = hash_attribute("interest:basketball")
    benchmark(lambda: h % 11)
    _record("Mod p", benchmark)


def test_aes_encrypt_block(benchmark):
    cipher = AES(b"k" * 32)
    block = os.urandom(16)
    benchmark(cipher.encrypt_block, block)
    _record("AES Enc", benchmark)


def test_aes_decrypt_block(benchmark):
    cipher = AES(b"k" * 32)
    block = os.urandom(16)
    benchmark(cipher.decrypt_block, block)
    _record("AES Dec", benchmark)


def test_multiply_256(benchmark):
    a = hash_attribute("a")
    b = hash_attribute("b")
    benchmark(lambda: a * b)
    _record("Multiply-256", benchmark)


def test_compare_256(benchmark):
    a = hash_attribute("a")
    b = hash_attribute("b")
    benchmark(lambda: a == b)
    _record("Compare-256", benchmark)


def test_profile_key_generation(benchmark):
    values = [hash_attribute(f"tag:{i}") for i in range(6)]
    benchmark(profile_key, values)
    _record("KeyGen (6 attrs)", benchmark)


def test_zz_report(benchmark):
    """Print the regenerated Table IV next to the paper's laptop column."""
    benchmark(lambda: None)
    rows = []
    for name, paper_ms in PAPER_LAPTOP_MS.items():
        measured = _RESULTS.get(name)
        rows.append([
            name,
            f"{measured:.2e}" if measured is not None else "n/a",
            f"{paper_ms:.2e}",
        ])
    print()
    print(render_table(
        "Table IV -- basic symmetric operations (ms)",
        ["operation", "measured (this machine)", "paper laptop"],
        rows,
    ))
    # Shape: every symmetric primitive under a millisecond.
    for name, measured in _RESULTS.items():
        assert measured < 1.0, f"{name} unexpectedly slow: {measured} ms"
