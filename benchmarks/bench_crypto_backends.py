"""Crypto backend bench: batched ``tables`` vs per-block ``pure`` hot path.

Three measurements, each emitting a JSON perf record (``PERF_RECORD {...}``
on stdout) that ``tools/bench_record.py`` can append to the
``BENCH_crypto.json`` trajectory:

1. ``test_aes_buffer_throughput`` -- ECB encrypt + decrypt of one
   multi-block buffer.  Asserts bit-identical ciphertext across backends
   and a >= 5x ``tables`` speedup (``AES_SPEEDUP_FLOOR`` relaxes the floor
   on noisy shared runners).
2. ``test_open_many_throughput`` -- the reply-element shape: one 48-byte
   sealed message trial-decrypted under many candidate keys in a single
   batched call.  Same equality + floor.
3. ``test_sha256_fastpath`` -- hashlib-backed SHA-256 vs the from-scratch
   pure implementation, cross-checked digest-for-digest.

Run with:  PYTHONPATH=src python benchmarks/bench_crypto_backends.py
      or:  PYTHONPATH=src python -m pytest benchmarks/bench_crypto_backends.py -s
"""

from __future__ import annotations

import json
import os
import random
import timeit

from repro.crypto import aes
from repro.crypto.backend import get_backend

AES_SPEEDUP_FLOOR = float(os.environ.get("AES_SPEEDUP_FLOOR", "5.0"))
SHA256_SPEEDUP_FLOOR = float(os.environ.get("SHA256_SPEEDUP_FLOOR", "5.0"))
BUFFER_BLOCKS = 1024
N_KEYS = 64
REPLY_ELEMENT_LEN = 48  # ack(15) + similarity(1) + y(32), the protocol unit

_RNG = random.Random(20130708)  # ICDCS'13 -- deterministic bench inputs


def _best_of(fn, repeat: int = 5) -> float:
    """Best wall-clock of *repeat* single runs (noise floor, not mean)."""
    return min(timeit.repeat(fn, number=1, repeat=repeat))


def _emit(record: dict) -> None:
    print()
    print("PERF_RECORD " + json.dumps(record))


def test_aes_buffer_throughput():
    """Whole-buffer ECB must be >= 5x the per-block reference, bit-identical."""
    aes.configure_schedule_cache(1024)
    pure, tables = get_backend("pure"), get_backend("tables")
    key = _RNG.randbytes(32)
    plaintext = _RNG.randbytes(16 * BUFFER_BLOCKS)

    ciphertext = tables.encrypt_ecb(key, plaintext)
    assert ciphertext == pure.encrypt_ecb(key, plaintext), "backends disagree on ciphertext"
    assert tables.decrypt_ecb(key, ciphertext) == plaintext
    assert pure.decrypt_ecb(key, ciphertext) == plaintext

    enc_tables = _best_of(lambda: tables.encrypt_ecb(key, plaintext))
    enc_pure = _best_of(lambda: pure.encrypt_ecb(key, plaintext), repeat=3)
    dec_tables = _best_of(lambda: tables.decrypt_ecb(key, ciphertext))
    dec_pure = _best_of(lambda: pure.decrypt_ecb(key, ciphertext), repeat=3)

    enc_speedup = enc_pure / enc_tables
    dec_speedup = dec_pure / dec_tables
    _emit({
        "bench": "crypto_aes_buffer",
        "blocks": BUFFER_BLOCKS,
        "key_bits": 256,
        "encrypt_pure_seconds": round(enc_pure, 5),
        "encrypt_tables_seconds": round(enc_tables, 5),
        "encrypt_speedup": round(enc_speedup, 2),
        "decrypt_pure_seconds": round(dec_pure, 5),
        "decrypt_tables_seconds": round(dec_tables, 5),
        "decrypt_speedup": round(dec_speedup, 2),
        "tables_blocks_per_sec": round(BUFFER_BLOCKS / enc_tables),
        "floor": AES_SPEEDUP_FLOOR,
    })
    assert enc_speedup >= AES_SPEEDUP_FLOOR, (
        f"tables encrypt speedup {enc_speedup:.2f}x < {AES_SPEEDUP_FLOOR}x"
    )
    assert dec_speedup >= AES_SPEEDUP_FLOOR, (
        f"tables decrypt speedup {dec_speedup:.2f}x < {AES_SPEEDUP_FLOOR}x"
    )


def test_open_many_throughput():
    """Batched multi-key trial decryption must beat the per-key loop >= 5x."""
    aes.configure_schedule_cache(1024)
    pure, tables = get_backend("pure"), get_backend("tables")
    keys = [_RNG.randbytes(32) for _ in range(N_KEYS)]
    sealed = _RNG.randbytes(REPLY_ELEMENT_LEN)

    batched = tables.open_many(keys, sealed)
    assert batched == pure.open_many(keys, sealed), "backends disagree on trial decryption"
    assert tables.seal_many(keys, sealed) == pure.seal_many(keys, sealed)

    t_tables = _best_of(lambda: tables.open_many(keys, sealed))
    t_pure = _best_of(lambda: pure.open_many(keys, sealed), repeat=3)
    speedup = t_pure / t_tables
    _emit({
        "bench": "crypto_open_many",
        "keys": N_KEYS,
        "ciphertext_bytes": REPLY_ELEMENT_LEN,
        "pure_seconds": round(t_pure, 5),
        "tables_seconds": round(t_tables, 5),
        "speedup": round(speedup, 2),
        "tables_trials_per_sec": round(N_KEYS / t_tables),
        "floor": AES_SPEEDUP_FLOOR,
    })
    assert speedup >= AES_SPEEDUP_FLOOR, (
        f"open_many speedup {speedup:.2f}x < {AES_SPEEDUP_FLOOR}x"
    )


def test_sha256_fastpath():
    """hashlib-backed SHA-256 vs the from-scratch reference, cross-checked."""
    pure, tables = get_backend("pure"), get_backend("tables")
    buffers = [_RNG.randbytes(n) for n in (0, 1, 63, 64, 65, 1000, 4096)]
    for buf in buffers:
        assert pure.sha256(buf) == tables.sha256(buf), "SHA-256 implementations disagree"

    payload = _RNG.randbytes(16384)
    t_tables = _best_of(lambda: tables.sha256(payload))
    t_pure = _best_of(lambda: pure.sha256(payload), repeat=3)
    speedup = t_pure / t_tables
    _emit({
        "bench": "crypto_sha256_fastpath",
        "payload_bytes": len(payload),
        "pure_seconds": round(t_pure, 5),
        "tables_seconds": round(t_tables, 6),
        "speedup": round(speedup, 1),
        "floor": SHA256_SPEEDUP_FLOOR,
    })
    assert speedup >= SHA256_SPEEDUP_FLOOR, (
        f"sha256 fast path speedup {speedup:.1f}x < {SHA256_SPEEDUP_FLOOR}x"
    )


if __name__ == "__main__":
    test_aes_buffer_throughput()
    test_open_many_throughput()
    test_sha256_fastpath()
