"""Figure 7: size of the candidate profile key set vs similarity and p.

Paper result: even at low similarity thresholds the candidate key set of a
real (Weibo-like) user stays single-digit on average, and larger p shrinks
it -- the worry that fuzzy search explodes the key set is unfounded on real
attribute distributions.
"""

from __future__ import annotations

import random

from repro.analysis.reporting import render_series
from repro.core.attributes import RequestProfile
from repro.core.matching import build_request, process_request
from repro.core.profile_vector import ParticipantVector

SAMPLE = 250


def _sweep(cohort, population, max_similarity):
    rng = random.Random(23)
    initiator = rng.sample(cohort, 1)[0]
    request_attrs = [f"tag:{t}" for t in initiator.tags][:max_similarity]
    users = rng.sample(population, min(SAMPLE, len(population)))
    vectors = [ParticipantVector.from_profile(u.profile()) for u in users]
    stats = {}
    for s in range(1, max_similarity + 1):
        request = RequestProfile(
            necessary=(), optional=request_attrs, beta=s, normalized=True
        )
        for p in (11, 23):
            package, _ = build_request(request, protocol=2, p=p, rng=random.Random(4))
            sizes = []
            for vector in vectors:
                outcome = process_request(vector, package)
                if outcome.candidate:
                    sizes.append(len(outcome.keys))
            if sizes:
                stats[(s, p)] = (sum(sizes) / len(sizes), max(sizes))
            else:
                stats[(s, p)] = (0.0, 0)
    return stats


def _report(title, stats, max_similarity):
    xs = list(range(1, max_similarity + 1))
    print()
    print(render_series(
        title,
        "shared attrs (similarity)",
        xs,
        {
            "mean p=11": [round(stats[(s, 11)][0], 3) for s in xs],
            "mean p=23": [round(stats[(s, 23)][0], 3) for s in xs],
            "max p=11": [stats[(s, 11)][1] for s in xs],
            "max p=23": [stats[(s, 23)][1] for s in xs],
        },
    ))


def _assert_shape(stats, max_similarity):
    for s in range(1, max_similarity + 1):
        mean11, max11 = stats[(s, 11)]
        mean23, max23 = stats[(s, 23)]
        # Paper Fig. 7: means stay single-digit, maxima stay low double-digit.
        assert mean11 <= 8.0
        assert mean23 <= 8.0
        assert max11 <= 32
        # Larger p cannot inflate the average key set (fewer collisions).
        assert mean23 <= mean11 + 0.5


def test_fig7a_six_attribute_users(benchmark, six_attribute_cohort):
    stats = benchmark.pedantic(
        _sweep, args=(six_attribute_cohort, six_attribute_cohort, 6),
        rounds=1, iterations=1,
    )
    _report("Figure 7(a) -- candidate key set size, 6-attribute users", stats, 6)
    _assert_shape(stats, 6)


def test_fig7b_diverse_users(benchmark, six_attribute_cohort, diverse_sample):
    stats = benchmark.pedantic(
        _sweep, args=(six_attribute_cohort, diverse_sample, 6),
        rounds=1, iterations=1,
    )
    _report("Figure 7(b) -- candidate key set size, diverse users", stats, 6)
    _assert_shape(stats, 6)
