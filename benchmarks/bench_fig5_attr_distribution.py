"""Figure 5: users' attribute-number distribution.

Paper: tag counts range 2..20 with a mode near the mean of 6 and user
counts falling off over orders of magnitude (the y axis is log scale).
"""

from __future__ import annotations

from repro.analysis.reporting import render_series
from repro.dataset.stats import attribute_count_distribution


def test_fig5_attribute_distribution(benchmark, weibo_population):
    histogram = benchmark(attribute_count_distribution, weibo_population)

    xs = sorted(histogram)
    print()
    print(render_series(
        "Figure 5 -- users' attribute (tag) count distribution",
        "tag count",
        xs,
        {"users": [histogram[x] for x in xs]},
    ))

    total = sum(histogram.values())
    mean = sum(k * v for k, v in histogram.items()) / total
    assert 5.0 <= mean <= 7.0, "mean tag count must stay near the paper's 6"
    assert max(histogram) <= 20, "max tag count bounded at 20"
    # Log-scale falloff: the mode dominates the tail by >= 2 orders.
    mode_count = max(histogram.values())
    tail_count = histogram[max(histogram)]
    assert mode_count / max(tail_count, 1) >= 10
