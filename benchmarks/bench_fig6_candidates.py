"""Figure 6: candidate-user proportion vs similarity threshold and prime p.

Paper result: the remainder-vector fast check admits a candidate set that
(i) always contains every truly similar user, (ii) shrinks towards the true
similar-user proportion as p grows (p = 23 tighter than p = 11), and
(iii) is already small for p = 11.  Regenerated for (a) the 6-attribute
cohort and (b) a diverse sample, like the paper's two subplots.
"""

from __future__ import annotations

import random

from repro.analysis.reporting import render_series
from repro.core.attributes import RequestProfile
from repro.core.matching import build_request
from repro.core.profile_vector import ParticipantVector
from repro.core.remainder import is_candidate

N_INITIATORS = 5


def _sweep(cohort, population, max_similarity):
    """For each similarity s and prime p: mean candidate/truth proportions."""
    rng = random.Random(17)
    initiators = rng.sample(cohort, N_INITIATORS)
    vectors = [
        (set(u.tags), ParticipantVector.from_profile(u.profile()))
        for u in population
    ]
    truth = {s: 0.0 for s in range(1, max_similarity + 1)}
    candidates = {(s, p): 0.0 for s in range(1, max_similarity + 1) for p in (11, 23)}
    for initiator in initiators:
        tags = list(initiator.tags)[:max_similarity]
        request_attrs = [f"tag:{t}" for t in tags]
        tag_set = set(tags)
        shared = [len(tag_set & user_tags) for user_tags, _ in vectors]
        for s in range(1, max_similarity + 1):
            request = RequestProfile(
                necessary=(), optional=request_attrs, beta=s, normalized=True
            )
            truth[s] += sum(1 for c in shared if c >= s) / len(vectors)
            for p in (11, 23):
                package, _ = build_request(request, protocol=2, p=p, rng=random.Random(3))
                hits = sum(
                    1
                    for _, vector in vectors
                    if is_candidate(
                        package.remainders, package.necessary_mask, package.gamma,
                        vector.values, p,
                    )
                )
                candidates[(s, p)] += hits / len(vectors)
    truth = {s: v / N_INITIATORS for s, v in truth.items()}
    candidates = {k: v / N_INITIATORS for k, v in candidates.items()}
    return truth, candidates


def _report(title, truth, candidates, max_similarity):
    xs = list(range(1, max_similarity + 1))
    print()
    print(render_series(
        title,
        "shared attrs (similarity)",
        xs,
        {
            "truth": [round(truth[s], 5) for s in xs],
            "candidates p=11": [round(candidates[(s, 11)], 5) for s in xs],
            "candidates p=23": [round(candidates[(s, 23)], 5) for s in xs],
        },
    ))


def _assert_shape(truth, candidates, max_similarity):
    for s in range(1, max_similarity + 1):
        # Completeness: candidates are a superset of truly similar users.
        assert candidates[(s, 11)] >= truth[s] - 1e-9
        assert candidates[(s, 23)] >= truth[s] - 1e-9
        # Larger p tightens the candidate set towards the truth.
        assert candidates[(s, 23)] <= candidates[(s, 11)] + 1e-9
    # Proportions decrease with the similarity requirement.
    for p in (11, 23):
        series = [candidates[(s, p)] for s in range(1, max_similarity + 1)]
        assert all(a >= b - 1e-9 for a, b in zip(series, series[1:]))


def test_fig6a_six_attribute_users(benchmark, six_attribute_cohort):
    population = six_attribute_cohort
    truth, candidates = benchmark.pedantic(
        _sweep, args=(population, population, 6), rounds=1, iterations=1
    )
    _report("Figure 6(a) -- candidate proportion, 6-attribute users", truth, candidates, 6)
    _assert_shape(truth, candidates, 6)


def test_fig6b_diverse_users(benchmark, six_attribute_cohort, diverse_sample):
    truth, candidates = benchmark.pedantic(
        _sweep, args=(six_attribute_cohort, diverse_sample, 6), rounds=1, iterations=1
    )
    _report("Figure 6(b) -- candidate proportion, diverse users", truth, candidates, 6)
    _assert_shape(truth, candidates, 6)
