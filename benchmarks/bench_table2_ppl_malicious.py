"""Table II: PPL in the malicious model with a small attribute dictionary.

The worst-case adversary (full dictionary) is executed against every
protocol: request recovery by a malicious participant, attribute probing by
a malicious initiator, and observation of unmatching users.
"""

from __future__ import annotations

from repro.analysis.ppl import evaluate_malicious_table
from repro.analysis.reporting import render_table

PAIRS = ["A_I vs v'_P", "A_M vs v'_I", "A_U vs v'_P"]

PAPER_TABLE2 = {
    ("Protocol 1", "A_I vs v'_P"): "0",
    ("Protocol 1", "A_M vs v'_I"): "2",
    ("Protocol 1", "A_U vs v'_P"): "3",
    ("Protocol 2", "A_I vs v'_P"): "3",
    ("Protocol 2", "A_M vs v'_I"): "2",
    ("Protocol 2", "A_U vs v'_P"): "3",
    ("Protocol 3", "A_I vs v'_P"): "3",
    ("Protocol 3", "A_M vs v'_I"): "phi",
    ("Protocol 3", "A_U vs v'_P"): "3",
}


def test_table2_regeneration(benchmark):
    cells = benchmark.pedantic(evaluate_malicious_table, rounds=1, iterations=1)
    measured = {(c.protocol, c.pair): c.level for c in cells}

    rows = []
    for protocol in ("Protocol 1", "Protocol 2", "Protocol 3"):
        rows.append([protocol] + [measured[(protocol, pair)] for pair in PAIRS])
    print()
    print(render_table(
        "Table II -- PPL, malicious model with small dictionary (measured)",
        ["scheme"] + PAIRS,
        rows,
    ))
    assert measured == PAPER_TABLE2


def test_dictionary_cost_scaling(benchmark):
    """The (m/p)^m_t dictionary-profiling cost curve (Sec. IV-A1)."""
    from repro.attacks.eavesdrop import profiling_guesses_log2

    def sweep():
        return {
            (m, p): profiling_guesses_log2(m, p, 6)
            for m in (2**14, 2**17, 2**20)
            for p in (11, 23)
        }

    table = benchmark(sweep)
    rows = [[f"2^{m.bit_length()-1}", p, f"2^{bits:.1f}"] for (m, p), bits in table.items()]
    print()
    print(render_table(
        "Dictionary profiling cost (guesses) for m_t = 6",
        ["dictionary size", "p", "guesses"],
        rows,
    ))
    # Paper's headline: Tencent Weibo (m ~ 2^20, p = 11) costs ~2^100.
    assert 99 <= table[(2**20, 11)] <= 101
    # Larger p weakens the bound (the paper's p-vs-efficiency trade-off).
    assert table[(2**20, 23)] < table[(2**20, 11)]
