"""Table III: symbolic computation/communication comparison, q = 256.

Evaluates the paper's published cost formulas for FNP [10], FC10 [7],
Advanced [14] and Protocol 1, and cross-checks the Protocol 1 column
against *measured* operation counts from an instrumented protocol run.
"""

from __future__ import annotations

import random

from repro.analysis.counters import OpCounter
from repro.analysis.reporting import render_table
from repro.baselines.costs import Scenario, all_schemes
from repro.core.attributes import Profile, RequestProfile
from repro.core.matching import build_request, process_request

SCENARIO = Scenario(m_t=6, m_k=6, n=100, t=4, q=256, p=11, alpha=0, beta=3)


def test_table3_formulas(benchmark):
    schemes = benchmark(all_schemes, SCENARIO)
    rows = []
    for scheme in schemes:
        init_ops = ", ".join(f"{v:g} {k}" for k, v in sorted(scheme.initiator_ops.items()))
        part_ops = ", ".join(f"{v:g} {k}" for k, v in sorted(scheme.participant_ops.items()))
        rows.append([
            scheme.name, init_ops, part_ops,
            f"{scheme.communication_kb():.2f} KB", scheme.transmissions,
        ])
    print()
    print(render_table(
        "Table III -- cost comparison (q=256, Table VII scenario)",
        ["scheme", "initiator ops", "participant ops", "comm", "transmissions"],
        rows,
    ))
    ours = schemes[-1]
    for other in schemes[:-1]:
        assert ours.communication_bits < other.communication_bits


def test_protocol1_counts_match_formula(benchmark):
    """Measured op counts of a real run equal the Table III formula."""

    def run():
        counter = OpCounter()
        request = RequestProfile.exact(
            [f"tag:q{i}" for i in range(6)], normalized=True
        )
        build_request(request, protocol=1, rng=random.Random(1), counter=counter)
        return counter

    counter = benchmark(run)
    # Formula: (m_t + 1) H + m_t M + E  (the seal is 3 AES blocks under P1).
    assert counter.get("H") == 7
    assert counter.get("M") == 6
    assert counter.get("E") == 3


def test_noncandidate_counts_match_formula(benchmark):
    """Non-candidate participants pay exactly m_k H + m_k M."""
    request = RequestProfile.exact([f"tag:q{i}" for i in range(6)], normalized=True)
    package, _ = build_request(request, protocol=1, rng=random.Random(1))
    stranger = Profile([f"tag:zzz{i}" for i in range(6)], normalized=True)

    def run():
        counter = OpCounter()
        outcome = process_request(stranger, package, counter=counter)
        return counter, outcome

    counter, outcome = benchmark(run)
    assert not outcome.candidate
    assert counter.get("H") == 6  # m_k hashes
    assert counter.get("M") == 6  # m_k remainder reductions
    assert counter.get("D") == 0
    assert counter.get("E") == 0
