"""Extension experiment: end-to-end quality of private vicinity search.

Not a numbered figure in the paper, but the direct consequence of its
Sec. III-D design: how faithfully does lattice-overlap matching track true
physical proximity as users move, and how does the threshold Θ trade
precision against recall?  (The paper asserts the mechanism works; this
bench quantifies it.)
"""

from __future__ import annotations

from repro.analysis.reporting import render_series
from repro.network.scenario import MobileScenario


def test_vicinity_quality_over_time(benchmark):
    """Precision/recall of a 15-phone, 3-minute walking scenario."""

    def run():
        scenario = MobileScenario(
            n_nodes=15, area_m=250.0, cell_m=10.0, search_range_m=50.0,
            theta=0.45, seed=11,
        )
        return scenario.run(duration_s=180.0, search_interval_s=30.0)

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_series(
        "Vicinity search quality over a mobile scenario",
        "search #",
        list(range(1, summary.searches + 1)),
        {
            "precision": [round(r.precision, 3) for r in summary.reports],
            "recall": [round(r.recall, 3) for r in summary.reports],
            "nearby": [len(r.truly_nearby) for r in summary.reports],
            "matched": [len(r.matched) for r in summary.reports],
        },
    ))
    assert summary.searches >= 6
    assert summary.mean_precision >= 0.6
    assert summary.mean_recall >= 0.5


def test_theta_precision_recall_tradeoff(benchmark):
    """Sweeping Θ: stricter overlap raises precision, costs recall."""

    def sweep():
        results = {}
        for theta in (0.25, 0.45, 0.65, 0.85):
            scenario = MobileScenario(
                n_nodes=15, area_m=250.0, cell_m=10.0, search_range_m=50.0,
                theta=theta, seed=13,
            )
            summary = scenario.run(duration_s=120.0, search_interval_s=30.0)
            results[theta] = (summary.mean_precision, summary.mean_recall)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    thetas = sorted(results)
    print()
    print(render_series(
        "Θ sweep -- precision/recall trade-off",
        "theta",
        thetas,
        {
            "precision": [round(results[t][0], 3) for t in thetas],
            "recall": [round(results[t][1], 3) for t in thetas],
        },
    ))
    # Shape: precision does not *decrease* as Θ tightens; recall does not
    # *increase*.
    precisions = [results[t][0] for t in thetas]
    recalls = [results[t][1] for t in thetas]
    assert precisions[-1] >= precisions[0] - 0.05
    assert recalls[-1] <= recalls[0] + 0.05
