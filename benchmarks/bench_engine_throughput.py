"""Engine throughput baseline: episodes/sec and match-latency percentiles.

Four measurements future PRs can regress against:

1. ``test_engine_throughput`` floods 20 overlapping episodes through a
   100-node MANET in one event queue and emits a JSON perf record
   (``PERF_RECORD {...}`` on stdout) with wall-clock and simulated
   throughput plus reply-latency p50/p95.
2. ``test_single_episode_cache_speedup`` runs a candidate-heavy scenario
   (popular profiles -> repeated candidate keys, many reply elements) with
   the AES key-schedule LRU disabled vs enabled and asserts the cached hot
   path is >= 1.3x faster.  (The single-pass bucketing and the per-vector
   remainder index are structural and benefit both arms equally; the LRU
   is the only toggleable layer.)  Pinned to the ``pure`` backend: the
   ``tables`` backend keeps its own round-key cache and bypasses per-call
   schedule lookup entirely.
3. ``test_backend_end_to_end_speedup`` runs a candidate-heavy *engine*
   scenario (the paper's Table VII regime: large profiles, collision-rich
   buckets, dozens of candidate keys per participant) under the ``pure``
   and ``tables`` crypto backends and asserts backend=tables is >= 2x
   faster end to end with byte-identical protocol outputs
   (``ENGINE_BACKEND_SPEEDUP_FLOOR`` relaxes the floor on shared runners).
4. ``test_run_parallel_identity`` asserts ``run_parallel(workers=4)``
   reproduces ``run`` episode-for-episode -- same matches (bytes and
   all), same metrics -- and reports the sharded wall clock.  The
   wall-clock scaling assertion only engages when
   ``PARALLEL_SPEEDUP_FLOOR`` is set: sharding cannot beat one queue on
   a single-core host, and equality is the property that must hold
   everywhere.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py -s
"""

from __future__ import annotations

import gc
import json
import os
import random
import time

from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant
from repro.core.remainder import EnumerationBudget
from repro.crypto import aes
from repro.crypto.backend import current_backend, use_backend
from repro.network.engine import EngineResult, FriendingEngine
from repro.network.simulator import AdHocNetwork
from repro.network.topology import random_geometric_topology

N_NODES = 100
N_EPISODES = 20
# The schedule-LRU margin shrank when reply opening became one batched
# decrypt per acknowledge set (one AES construction per reply instead of
# one per element): the cold arm now pays far fewer re-expansions.  The
# cache still has to win on the remaining per-key work.
SPEEDUP_FLOOR = 1.15
BACKEND_SPEEDUP_FLOOR = float(os.environ.get("ENGINE_BACKEND_SPEEDUP_FLOOR", "2.0"))
PARALLEL_SPEEDUP_FLOOR = float(os.environ.get("PARALLEL_SPEEDUP_FLOOR", "0"))


def _build_network(rng: random.Random) -> tuple[AdHocNetwork, list[str]]:
    adjacency, _ = random_geometric_topology(N_NODES, 0.18, seed=11)
    nodes = list(adjacency)
    participants = {}
    for i, node in enumerate(nodes):
        community = i % N_EPISODES
        attrs = [f"c{community}:tag{j}" for j in range(3)] + [f"noise:{node}"]
        participants[node] = Participant(
            Profile(attrs, user_id=node, normalized=True), rng=rng
        )
    return AdHocNetwork(adjacency, participants), nodes


def _launches(nodes: list[str]) -> list[tuple[str, Initiator]]:
    launches = []
    for episode in range(N_EPISODES):
        request = RequestProfile(
            necessary=[f"c{episode}:tag0"],
            optional=[f"c{episode}:tag1", f"c{episode}:tag2"],
            beta=1,
            normalized=True,
        )
        launches.append((
            nodes[episode * (len(nodes) // N_EPISODES)],
            Initiator(request, protocol=2, rng=random.Random(500 + episode)),
        ))
    return launches


def test_engine_throughput():
    """20 overlapping episodes, one queue; emit the JSON perf record."""
    aes.configure_schedule_cache(1024)
    network, nodes = _build_network(random.Random(23))
    engine = FriendingEngine(network)

    start = time.perf_counter()
    result = engine.run_staggered(_launches(nodes), arrival_ms=25)
    wall_s = time.perf_counter() - start

    agg = result.aggregate
    assert agg.episodes == N_EPISODES
    assert agg.matches >= N_EPISODES  # every community has members in range
    assert agg.latency_p50_ms <= agg.latency_p95_ms

    record = {
        "bench": "engine_throughput",
        "nodes": N_NODES,
        "episodes": N_EPISODES,
        "wall_seconds": round(wall_s, 4),
        "episodes_per_wall_sec": round(N_EPISODES / wall_s, 2),
        "episodes_per_sim_sec": round(agg.episodes_per_sim_sec, 2),
        "sim_duration_ms": agg.sim_duration_ms,
        "matches": agg.matches,
        "latency_p50_ms": agg.latency_p50_ms,
        "latency_p95_ms": agg.latency_p95_ms,
        "total_bytes": agg.total.total_bytes,
        "backend": current_backend().name,
        "aes_schedule_cache": aes.schedule_cache_stats(),
    }
    print()
    print("PERF_RECORD " + json.dumps(record))


def _candidate_heavy_episode(
    request: RequestProfile, profile_attrs: list[str], n_participants: int, seed: int
) -> int:
    """One episode against *n_participants* clones of a popular profile.

    Returns the number of candidate keys exercised (sanity: the scenario
    must actually be candidate-heavy, or the timing proves nothing).
    """
    initiator = Initiator(
        request, protocol=2, p=7, max_reply_elements=64, rng=random.Random(seed)
    )
    package = initiator.create_request(now_ms=0)
    keys = 0
    for i in range(n_participants):
        participant = Participant(
            Profile(profile_attrs, user_id=f"u{i}", normalized=True),
            budget=EnumerationBudget(max_candidates=48, max_visits=4000),
            rng=random.Random(seed + 1 + i),
        )
        reply = participant.handle_request(package, now_ms=1)
        keys += len(participant.last_outcome.keys)
        if reply is not None:
            initiator.handle_reply(reply, now_ms=2)
    return keys


def test_single_episode_cache_speedup():
    """The AES key-schedule cache must win >= 1.3x when keys repeat.

    Runs on the ``pure`` backend, whose per-call ``AES(key)`` construction
    is what the schedule LRU accelerates; the ``tables`` backend holds its
    own round-key cache and never re-expands per call.
    """
    # Popular-profile scenario: every participant owns the same large
    # attribute set, so candidate keys repeat across users; p=7 with many
    # attributes forces collision-rich buckets and a large candidate set.
    # The request is exact (gamma=0) so every candidate is complete and the
    # per-key AES work (trial decryption + reply sealing) dominates --
    # that is the layer the caches accelerate.
    tags = [f"pop:tag{i}" for i in range(6)]
    extra = [f"pop:extra{i}" for i in range(24)]
    request = RequestProfile.with_threshold(
        necessary=(), optional=tags, theta=1.0, normalized=True
    )
    profile_attrs = tags + extra
    n_participants = 16

    def run_arm() -> tuple[float, int]:
        keys = 0
        gc.disable()
        try:
            start = time.perf_counter()
            for episode in range(2):
                keys += _candidate_heavy_episode(
                    request, profile_attrs, n_participants, seed=900 + episode
                )
            return time.perf_counter() - start, keys
        finally:
            gc.enable()

    # Warm-up outside either timed arm (import/alloc noise), then
    # interleaved best-of-3 per arm to keep scheduler noise out of the ratio.
    with use_backend("pure"):
        aes.configure_schedule_cache(0)
        _candidate_heavy_episode(request, profile_attrs, 2, seed=1)

        cold_times, warm_times = [], []
        for _ in range(3):
            aes.configure_schedule_cache(0)  # seed behaviour: expand every key, every time
            cold_s, cold_keys = run_arm()
            cold_times.append(cold_s)

            aes.configure_schedule_cache(1024)
            warm_s, warm_keys = run_arm()
            warm_times.append(warm_s)
            stats = aes.schedule_cache_stats()
    cold_s, warm_s = min(cold_times), min(warm_times)

    assert cold_keys == warm_keys  # identical work, only the caches differ
    assert cold_keys >= 20 * n_participants, "scenario is not candidate-heavy"
    assert stats["hits"] > stats["misses"], "cache never repaid itself"

    speedup = cold_s / warm_s
    record = {
        "bench": "single_episode_cache_speedup",
        "participants": n_participants,
        "candidate_keys": warm_keys,
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "speedup": round(speedup, 3),
        "aes_schedule_cache": stats,
    }
    print()
    print("PERF_RECORD " + json.dumps(record))
    assert speedup >= SPEEDUP_FLOOR, f"cache speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x"


CH_NODES = 48
CH_EPISODES = 8


def _candidate_heavy_network() -> tuple[AdHocNetwork, list[tuple[str, Initiator]]]:
    """The Table VII regime as an engine scenario: every participant owns a
    popular tag set plus many extras, every request is exact over the
    popular tags with a small prime, so collision-rich buckets mint dozens
    of candidate keys per participant and the symmetric hot path (batched
    trial decryption, reply sealing, reply opening) dominates episode time.
    """
    adjacency, _ = random_geometric_topology(CH_NODES, 0.25, seed=11)
    nodes = list(adjacency)
    tags = [f"pop:tag{i}" for i in range(6)]
    participants = {
        node: Participant(
            Profile(tags + [f"pop:extra{i}_{j}" for j in range(24)],
                    user_id=node, normalized=True),
            budget=EnumerationBudget(max_candidates=48, max_visits=4000),
            rng=random.Random(3000 + i),
        )
        for i, node in enumerate(nodes)
    }
    request = RequestProfile.with_threshold(
        necessary=(), optional=tags, theta=1.0, normalized=True
    )
    launches = [
        (nodes[e * (CH_NODES // CH_EPISODES)],
         Initiator(request, protocol=2, p=7, max_reply_elements=64,
                   rng=random.Random(7000 + e)))
        for e in range(CH_EPISODES)
    ]
    return AdHocNetwork(adjacency, participants), launches


def _episode_fingerprints(result: EngineResult) -> list[tuple]:
    """Everything an episode produced, down to the bytes on the air."""
    return [
        (
            ep.episode,
            ep.matched_ids,
            [(m.responder_id, m.similarity, m.y, m.session_key) for m in ep.matches],
            [r.elements for r in ep.replies],
            tuple(sorted(ep.metrics.as_dict().items())),
        )
        for ep in result.episodes
    ]


def test_backend_end_to_end_speedup():
    """backend=tables must be >= 2x end to end, with identical outputs."""
    aes.configure_schedule_cache(1024)

    def run_with(backend: str) -> tuple[float, EngineResult]:
        with use_backend(backend):
            network, launches = _candidate_heavy_network()
            engine = FriendingEngine(network)
            gc.disable()
            try:
                start = time.perf_counter()
                result = engine.run_staggered(launches, arrival_ms=25)
                return time.perf_counter() - start, result
            finally:
                gc.enable()

    # Interleaved best-of-2 keeps scheduler noise out of the ratio.
    pure_times, tables_times = [], []
    for _ in range(2):
        t_pure, result_pure = run_with("pure")
        pure_times.append(t_pure)
        t_tables, result_tables = run_with("tables")
        tables_times.append(t_tables)

    assert _episode_fingerprints(result_pure) == _episode_fingerprints(result_tables), (
        "backends diverged: protocol outputs must be byte-identical"
    )
    assert result_pure.aggregate.as_dict() == result_tables.aggregate.as_dict()
    assert result_tables.aggregate.matches >= CH_EPISODES

    t_pure, t_tables = min(pure_times), min(tables_times)
    speedup = t_pure / t_tables
    record = {
        "bench": "engine_backend_speedup",
        "nodes": CH_NODES,
        "episodes": CH_EPISODES,
        "matches": result_tables.aggregate.matches,
        "replies": result_tables.aggregate.total.replies,
        "pure_seconds": round(t_pure, 4),
        "tables_seconds": round(t_tables, 4),
        "speedup": round(speedup, 2),
        "episodes_per_wall_sec_tables": round(CH_EPISODES / t_tables, 2),
        "floor": BACKEND_SPEEDUP_FLOOR,
    }
    print()
    print("PERF_RECORD " + json.dumps(record))
    assert speedup >= BACKEND_SPEEDUP_FLOOR, (
        f"backend=tables end-to-end speedup {speedup:.2f}x < {BACKEND_SPEEDUP_FLOOR}x"
    )


def test_run_parallel_identity():
    """Sharded runs must reproduce the one-queue run byte for byte."""
    aes.configure_schedule_cache(1024)
    workers = 4

    network, launches = _candidate_heavy_network()
    start = time.perf_counter()
    sequential = FriendingEngine(network).run_staggered(launches, arrival_ms=25)
    t_seq = time.perf_counter() - start

    network, launches = _candidate_heavy_network()
    start = time.perf_counter()
    parallel = FriendingEngine(network).run_staggered(
        launches, arrival_ms=25, workers=workers
    )
    t_par = time.perf_counter() - start

    assert _episode_fingerprints(sequential) == _episode_fingerprints(parallel), (
        "run_parallel diverged from run"
    )
    assert sequential.aggregate.as_dict() == parallel.aggregate.as_dict()
    assert sequential.completed_at_ms == parallel.completed_at_ms

    speedup = t_seq / t_par
    record = {
        "bench": "engine_run_parallel",
        "nodes": CH_NODES,
        "episodes": CH_EPISODES,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "sequential_seconds": round(t_seq, 4),
        "parallel_seconds": round(t_par, 4),
        "speedup": round(speedup, 2),
        "backend": current_backend().name,
        "floor": PARALLEL_SPEEDUP_FLOOR or None,
    }
    print()
    print("PERF_RECORD " + json.dumps(record))
    if PARALLEL_SPEEDUP_FLOOR:
        assert speedup >= PARALLEL_SPEEDUP_FLOOR, (
            f"run_parallel speedup {speedup:.2f}x < {PARALLEL_SPEEDUP_FLOOR}x "
            f"on {os.cpu_count()} cores"
        )


if __name__ == "__main__":
    test_engine_throughput()
    test_single_episode_cache_speedup()
    test_backend_end_to_end_speedup()
    test_run_parallel_identity()
