"""Table I: privacy protection levels in the HBC model -- measured, not asserted.

Each cell is produced by actually running the protocol with an
honest-but-curious observer in the corresponding role and classifying what
that observer could learn.  The bench regenerates the paper's table and
fails if any measured level deviates.
"""

from __future__ import annotations

from repro.analysis.ppl import PAPER_TABLE1, evaluate_hbc_table
from repro.analysis.reporting import render_table

PAIRS = ["A_I vs v_M", "A_I vs v_U", "A_M vs v_I", "A_U vs v_I"]


def test_table1_regeneration(benchmark):
    cells = benchmark(evaluate_hbc_table)
    measured = {(c.protocol, c.pair): c.level for c in cells}

    rows = []
    for protocol in ("Protocol 1", "Protocol 2", "Protocol 3"):
        rows.append([protocol] + [measured[(protocol, pair)] for pair in PAIRS])
    rows.append(["PSI (reference)", "3", "3", "1", "1"])
    rows.append(["PCSI (reference)", "3", "3", "|A_I ∩ A_U|", "|A_I ∩ A_U|"])
    print()
    print(render_table("Table I -- PPL in the HBC model (measured)", ["scheme"] + PAIRS, rows))

    assert measured == PAPER_TABLE1


def test_psi_reference_row(benchmark, paillier_key=None):
    """The PSI reference row: the client really does learn the intersection.

    Justifies the table's PSI row (PPL 1 for the server profile) by running
    the executable FNP baseline.
    """
    import random

    from repro.baselines.fnp04 import fnp_psi
    from repro.baselines.paillier import PaillierKeyPair

    keypair = PaillierKeyPair.generate(256, rng=random.Random(3))

    def run():
        intersection, _ = fnp_psi(
            ["tag:a", "tag:b", "tag:c"], ["tag:b", "tag:c", "tag:d"],
            keypair=keypair, rng=random.Random(4),
        )
        return intersection

    intersection = benchmark.pedantic(run, rounds=1, iterations=1)
    # The initiator learns the exact intersection -> PPL 1 for A_server.
    assert intersection == {"tag:b", "tag:c"}
