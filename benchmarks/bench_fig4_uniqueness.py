"""Figure 4: profile uniqueness and collisions.

Paper: in both Tencent Weibo and Facebook more than 90% of users have
unique profiles; the CDF over "profile collisions" (x = 1..10) starts above
0.9 and saturates quickly.  Regenerated over the calibrated Weibo-like
population (with and without keywords) and the Facebook-like population.
"""

from __future__ import annotations

from repro.analysis.reporting import render_series
from repro.dataset.facebook import FacebookGenerator
from repro.dataset.stats import profile_collision_cdf


def test_fig4_collision_cdf(benchmark, weibo_population):
    def compute():
        with_kw = profile_collision_cdf(weibo_population, include_keywords=True)
        without_kw = profile_collision_cdf(weibo_population, include_keywords=False)
        fb = profile_collision_cdf(
            FacebookGenerator(n_users=len(weibo_population), seed=8).generate(),
            include_keywords=False,
        )
        return with_kw, without_kw, fb

    with_kw, without_kw, fb = benchmark.pedantic(compute, rounds=1, iterations=1)

    print()
    print(render_series(
        "Figure 4 -- profile uniqueness/collision CDF",
        "collisions <=",
        list(range(1, 11)),
        {
            "weibo profile+keywords": [round(v, 4) for v in with_kw],
            "weibo profile only": [round(v, 4) for v in without_kw],
            "facebook-like": [round(v, 4) for v in fb],
        },
    ))

    # Paper claims: >90% unique in both datasets.
    assert without_kw[0] > 0.9
    assert fb[0] > 0.9
    # Keywords only sharpen uniqueness.
    assert with_kw[0] >= without_kw[0]
    # CDFs are monotone and saturate near 1 by 10 collisions.
    for cdf in (with_kw, without_kw, fb):
        assert all(a <= b for a, b in zip(cdf, cdf[1:]))
        assert cdf[-1] > 0.97
