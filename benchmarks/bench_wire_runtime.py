"""Datagram-runtime cost: codec overhead per hop and end-to-end impact.

Three measurements future PRs can regress against:

1. ``test_codec_microbench`` prices the per-hop codec work in isolation:
   request-frame decode (envelope + payload), reply-frame encode/decode,
   and the relay fast path (``reframe``: patch two routing bytes, refresh
   the CRC).  Asserts throughput floors so a regression that makes frames
   an order of magnitude slower fails loudly.
2. ``test_wire_vs_object_baseline`` runs the same 20-episode scenario
   through the bytes-on-the-wire engine and the ``wire=False``
   object-passing baseline (the pre-datagram hot path, kept exactly for
   this comparison), asserts the protocol outputs are byte-identical, and
   asserts the codec's end-to-end overhead stays under
   ``WIRE_OVERHEAD_CEILING`` (wall-clock ratio wire/objects).
3. Both emit ``PERF_RECORD`` JSON lines for ``BENCH_crypto.json`` via
   ``tools/bench_record.py`` (the CI perf-smoke job appends them).

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_wire_runtime.py -s
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant, Reply
from repro.core.wire import (
    decode_frame,
    decode_payload,
    encode_reply_frame,
    encode_request_frame,
    reframe,
)
from repro.crypto.backend import current_backend
from repro.network.engine import FriendingEngine
from repro.network.simulator import AdHocNetwork
from repro.network.topology import random_geometric_topology

N_NODES = 100
N_EPISODES = 20
# Wall-clock ratio (bytes-on-the-wire engine) / (object-passing baseline).
# Locally the codec costs a few percent of an episode (crypto dominates);
# the ceiling is generous so shared-runner noise cannot flake it, while a
# codec catastrophe (accidental per-hop re-encode of the payload, say)
# still trips it.
WIRE_OVERHEAD_CEILING = float(os.environ.get("WIRE_OVERHEAD_CEILING", "1.6"))
# Floors in frames/second; measured values are ~100x higher locally.
DECODE_FLOOR = float(os.environ.get("WIRE_DECODE_FLOOR", "2000"))
REFRAME_FLOOR = float(os.environ.get("WIRE_REFRAME_FLOOR", "20000"))


def _sample_frames():
    request = RequestProfile(
        necessary=["tag:n"], optional=["tag:o1", "tag:o2", "tag:o3"], beta=1,
        normalized=True,
    )
    initiator = Initiator(request, protocol=2, rng=random.Random(7))
    package = initiator.create_request(now_ms=0)
    reply = Reply(
        request_id=package.request_id,
        responder_id="responder-17",
        elements=tuple(bytes([i]) * 48 for i in range(8)),
        sent_at_ms=3,
    )
    return package, encode_request_frame(package), reply


def _rate(fn, n: int) -> tuple[float, float]:
    """(ops/sec, µs/op) for *n* calls of *fn*."""
    start = time.perf_counter()
    for _ in range(n):
        fn()
    elapsed = time.perf_counter() - start
    return n / elapsed, elapsed / n * 1e6


def test_codec_microbench():
    """Per-hop codec costs in isolation; assert throughput floors."""
    package, request_frame, reply = _sample_frames()
    reply_frame = encode_reply_frame(reply, ttl=4)

    decode_request_rate, decode_request_us = _rate(
        lambda: decode_payload(decode_frame(request_frame)), 3000
    )
    encode_reply_rate, encode_reply_us = _rate(
        lambda: encode_reply_frame(reply, ttl=4), 3000
    )
    decode_reply_rate, decode_reply_us = _rate(
        lambda: decode_payload(decode_frame(reply_frame)), 3000
    )
    reframe_rate, reframe_us = _rate(
        lambda: reframe(request_frame, ttl=3), 10000
    )

    record = {
        "bench": "wire_codec",
        "request_frame_bytes": len(request_frame),
        "reply_frame_bytes": len(reply_frame),
        "decode_request_per_sec": round(decode_request_rate),
        "decode_request_us": round(decode_request_us, 2),
        "encode_reply_per_sec": round(encode_reply_rate),
        "encode_reply_us": round(encode_reply_us, 2),
        "decode_reply_per_sec": round(decode_reply_rate),
        "decode_reply_us": round(decode_reply_us, 2),
        "reframe_per_sec": round(reframe_rate),
        "reframe_us": round(reframe_us, 2),
    }
    print("PERF_RECORD " + json.dumps(record))

    assert decode_request_rate >= DECODE_FLOOR
    assert decode_reply_rate >= DECODE_FLOOR
    assert reframe_rate >= REFRAME_FLOOR


def _build_network(rng: random.Random):
    adjacency, _ = random_geometric_topology(N_NODES, 0.18, seed=11)
    nodes = list(adjacency)
    participants = {}
    for i, node in enumerate(nodes):
        community = i % N_EPISODES
        attrs = [f"c{community}:tag{j}" for j in range(3)] + [f"noise:{node}"]
        participants[node] = Participant(
            Profile(attrs, user_id=node, normalized=True), rng=rng
        )
    return AdHocNetwork(adjacency, participants), nodes


def _launches(nodes):
    launches = []
    for episode in range(N_EPISODES):
        request = RequestProfile(
            necessary=[f"c{episode}:tag0"],
            optional=[f"c{episode}:tag1", f"c{episode}:tag2"],
            beta=1,
            normalized=True,
        )
        launches.append((
            nodes[episode * (len(nodes) // N_EPISODES)],
            Initiator(request, protocol=2, rng=random.Random(500 + episode)),
        ))
    return launches


def _fingerprints(result):
    return [
        (
            ep.episode,
            ep.completed_at_ms,
            ep.matched_ids,
            [(m.responder_id, m.y, m.session_key) for m in ep.matches],
            [r.elements for r in ep.replies],
            tuple(sorted(ep.metrics.as_dict().items())),
        )
        for ep in result.episodes
    ]


def test_wire_vs_object_baseline():
    """End-to-end: frames vs object passing -- identical results, bounded cost."""
    def run(wire: bool):
        network, nodes = _build_network(random.Random(23))
        engine = FriendingEngine(network, wire=wire)
        start = time.perf_counter()
        result = engine.run_staggered(_launches(nodes), arrival_ms=25)
        return result, time.perf_counter() - start

    # Warm-up interleaved with measurement: best-of-3 per arm smooths the
    # shared-runner noise without hiding a systematic regression.
    wire_walls, object_walls = [], []
    for _ in range(3):
        wire_result, wall = run(wire=True)
        wire_walls.append(wall)
        object_result, wall = run(wire=False)
        object_walls.append(wall)

    assert _fingerprints(wire_result) == _fingerprints(object_result), (
        "bytes-on-the-wire engine and object baseline diverged"
    )

    wire_wall = min(wire_walls)
    object_wall = min(object_walls)
    overhead = wire_wall / object_wall
    total = wire_result.aggregate.total
    record = {
        "bench": "wire_runtime_end_to_end",
        "nodes": N_NODES,
        "episodes": N_EPISODES,
        "frames_sent": total.frames_sent,
        "frame_bytes": total.frame_bytes,
        "wire_wall_seconds": round(wire_wall, 4),
        "object_wall_seconds": round(object_wall, 4),
        "codec_overhead_ratio": round(overhead, 3),
        "frames_per_wall_sec": round(total.frames_sent / wire_wall),
        "backend": current_backend().name,
    }
    print("PERF_RECORD " + json.dumps(record))

    assert total.frames_sent > 0 and total.frame_bytes > 0
    assert overhead <= WIRE_OVERHEAD_CEILING, (
        f"codec overhead {overhead:.2f}x exceeds ceiling {WIRE_OVERHEAD_CEILING}x"
    )


if __name__ == "__main__":  # pragma: no cover
    test_codec_microbench()
    test_wire_vs_object_baseline()
