"""Table VI: decomposed computation time of our protocol on Weibo-like data.

Paper laptop means (ms): MatrixGen 7.2e-3, KeyGen 8.1e-3, RemainderGen
1.9e-3, HintGen 4.7e-3, HintSolve 3e-2.  The bench measures the same five
phases over users drawn from the calibrated population and prints
mean/min/max exactly like the paper's table.
"""

from __future__ import annotations

import random
import time

from repro.analysis.reporting import render_table
from repro.core.hint import build_hint_matrix, solve_candidate
from repro.core.profile_vector import ParticipantVector, profile_key
from repro.core.remainder import remainder_vector

PAPER_LAPTOP_MEAN_MS = {
    "MatrixGen": 7.2e-3,
    "KeyGen": 8.1e-3,
    "RemainderGen": 1.9e-3,
    "HintGen": 4.7e-3,
    "HintSolve": 3.0e-2,
}

_RESULTS: dict[str, tuple[float, float, float]] = {}


def _measure(name, func, inputs, repeat=3):
    times = []
    for item in inputs:
        best = min(
            _time_once(func, item) for _ in range(repeat)
        )
        times.append(best * 1000.0)
    _RESULTS[name] = (sum(times) / len(times), min(times), max(times))
    return _RESULTS[name]


def _time_once(func, item):
    start = time.perf_counter()
    func(item)
    return time.perf_counter() - start


def _profiles(population, k=150):
    rng = random.Random(5)
    return [u.profile() for u in rng.sample(population, k)]


def test_matrix_gen(benchmark, weibo_population):
    """MatrixGen: normalize-sort-hash a profile into its vector."""
    profiles = _profiles(weibo_population)
    benchmark(ParticipantVector.from_profile, profiles[0])
    mean, mn, mx = _measure("MatrixGen", ParticipantVector.from_profile, profiles)
    assert mean < 1.0


def test_key_gen(benchmark, weibo_population):
    """KeyGen: hash the sorted vector into the AES key."""
    vectors = [
        ParticipantVector.from_profile(p).values for p in _profiles(weibo_population)
    ]
    benchmark(profile_key, vectors[0])
    mean, _, _ = _measure("KeyGen", profile_key, vectors)
    assert mean < 1.0


def test_remainder_gen(benchmark, weibo_population):
    vectors = [
        ParticipantVector.from_profile(p).values for p in _profiles(weibo_population)
    ]
    benchmark(remainder_vector, vectors[0], 11)
    mean, _, _ = _measure("RemainderGen", lambda v: remainder_vector(v, 11), vectors)
    assert mean < 1.0


def test_hint_gen(benchmark, weibo_population):
    rng = random.Random(9)
    vectors = [
        ParticipantVector.from_profile(p).values
        for p in _profiles(weibo_population)
        if len(p) >= 4
    ]
    cases = [v[:4] for v in vectors]
    benchmark(lambda v: build_hint_matrix(v, gamma=2, rng=rng), cases[0])
    mean, _, _ = _measure("HintGen", lambda v: build_hint_matrix(v, gamma=2, rng=rng), cases)
    assert mean < 5.0


def test_hint_solve(benchmark, weibo_population):
    rng = random.Random(11)
    cases = []
    for p in _profiles(weibo_population):
        values = ParticipantVector.from_profile(p).values
        if len(values) < 4:
            continue
        optional = list(values[:4])
        hint = build_hint_matrix(optional, gamma=2, rng=rng)
        candidate = list(optional)
        candidate[rng.randrange(4)] = None
        cases.append((hint, candidate))
    benchmark(lambda case: solve_candidate(case[0], case[1]), cases[0])
    mean, _, _ = _measure("HintSolve", lambda c: solve_candidate(c[0], c[1]), cases)
    assert mean < 20.0


def test_zz_report(benchmark):
    benchmark(lambda: None)
    rows = []
    for name, paper_mean in PAPER_LAPTOP_MEAN_MS.items():
        if name in _RESULTS:
            mean, mn, mx = _RESULTS[name]
            rows.append([name, f"{mean:.2e}", f"{mn:.2e}", f"{mx:.2e}", f"{paper_mean:.2e}"])
        else:
            rows.append([name, "n/a", "n/a", "n/a", f"{paper_mean:.2e}"])
    print()
    print(render_table(
        "Table VI -- decomposed protocol times on Weibo-like data (ms)",
        ["phase", "mean", "min", "max", "paper laptop mean"],
        rows,
    ))
    # Shape: every phase stays far below one asymmetric exponentiation (~5ms+).
    for name, (mean, _, _) in _RESULTS.items():
        assert mean < 5.0, f"{name} mean {mean} ms is asymmetric-scale"
