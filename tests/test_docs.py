"""Documentation health: the docs tree exists and intra-repo links resolve.

CI's docs job runs ``tools/check_links.py`` directly; this mirror keeps
the check in the tier-1 suite so a broken link fails locally too.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_docs_tree_exists():
    for page in ("architecture.md", "protocols.md", "experiments.md"):
        assert (REPO_ROOT / "docs" / page).is_file(), f"docs/{page} missing"


def test_intra_repo_links_resolve():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_links.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr
