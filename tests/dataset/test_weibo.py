"""Weibo-calibrated generator tests: marginals match the paper's claims."""

from __future__ import annotations

import pytest

from repro.dataset.weibo import WEIBO_CALIBRATION, WeiboGenerator


@pytest.fixture(scope="module")
def population():
    return WeiboGenerator(
        n_users=2000, tag_vocabulary=20_000, keyword_vocabulary=25_000, seed=42
    ).generate()


class TestCalibration:
    def test_paper_constants_recorded(self):
        assert WEIBO_CALIBRATION["tag_vocabulary"] == 560_419
        assert WEIBO_CALIBRATION["keyword_vocabulary"] == 713_747
        assert WEIBO_CALIBRATION["users"] == 2_320_000

    def test_mean_tags_about_six(self, population):
        mean = sum(len(u.tags) for u in population) / len(population)
        assert 5.0 <= mean <= 7.0

    def test_max_tags_bounded(self, population):
        assert max(len(u.tags) for u in population) <= 20
        assert min(len(u.tags) for u in population) >= 1

    def test_mean_keywords_about_seven(self, population):
        mean = sum(len(u.keywords) for u in population) / len(population)
        assert 5.5 <= mean <= 8.5

    def test_max_keywords_bounded(self, population):
        assert max(len(u.keywords) for u in population) <= 129

    def test_keyword_tail_is_heavy(self, population):
        # Lognormal tail: some users should far exceed the mean.
        assert max(len(u.keywords) for u in population) >= 20


class TestDeterminism:
    def test_same_seed_same_population(self):
        a = WeiboGenerator(n_users=50, tag_vocabulary=500, seed=7).generate()
        b = WeiboGenerator(n_users=50, tag_vocabulary=500, seed=7).generate()
        assert a == b

    def test_different_seed_differs(self):
        a = WeiboGenerator(n_users=50, tag_vocabulary=500, seed=7).generate()
        b = WeiboGenerator(n_users=50, tag_vocabulary=500, seed=8).generate()
        assert a != b


class TestStructure:
    def test_unique_user_ids(self, population):
        assert len({u.user_id for u in population}) == len(population)

    def test_tags_distinct_per_user(self, population):
        for user in population[:200]:
            assert len(set(user.tags)) == len(user.tags)

    def test_zipf_head_is_popular(self, population):
        from collections import Counter

        counts = Counter(t for u in population for t in u.tags)
        top = counts.most_common(1)[0][1]
        assert top > len(population) * 0.05  # the head tag is common

    def test_cohort_filter(self, population):
        generator = WeiboGenerator()
        six = generator.users_with_tag_count(population, 6)
        assert six
        assert all(len(u.tags) == 6 for u in six)

    def test_profile_conversion(self, population):
        user = population[0]
        profile = user.profile()
        assert len(profile) == len(user.tags)
        with_kw = user.profile(include_keywords=True)
        assert len(with_kw) == len(user.tags) + len(user.keywords)

    def test_demographics_attributes(self, population):
        profile = population[0].profile(include_demographics=True)
        assert any(a.startswith("birth:") for a in profile.attributes)
        assert any(a.startswith("gender:") for a in profile.attributes)
