"""Population statistics tests (Figures 4-5 machinery)."""

from __future__ import annotations


from repro.dataset.facebook import FacebookGenerator
from repro.dataset.schema import UserRecord
from repro.dataset.stats import (
    attribute_count_distribution,
    profile_collision_cdf,
    shared_attribute_counts,
    unique_profile_fraction,
)
from repro.dataset.weibo import WeiboGenerator


def _user(uid, tags, keywords=()):
    return UserRecord(
        user_id=uid, year_of_birth=1990, gender="female",
        tags=tuple(tags), keywords=tuple(keywords),
    )


class TestCollisionCdf:
    def test_all_unique(self):
        users = [_user(f"u{i}", [f"t{i}"]) for i in range(10)]
        cdf = profile_collision_cdf(users, include_keywords=False)
        assert cdf[0] == 1.0

    def test_all_identical(self):
        users = [_user(f"u{i}", ["same"]) for i in range(5)]
        cdf = profile_collision_cdf(users, include_keywords=False, max_collisions=10)
        assert cdf[0] == 0.0
        assert cdf[4] == 1.0  # all users live in a 5-collision profile

    def test_monotone_nondecreasing(self):
        users = [_user(f"u{i}", [f"t{i % 3}"]) for i in range(9)]
        cdf = profile_collision_cdf(users, include_keywords=False)
        assert all(a <= b for a, b in zip(cdf, cdf[1:]))

    def test_keywords_split_collisions(self):
        users = [
            _user("a", ["t"], ["k1"]),
            _user("b", ["t"], ["k2"]),
        ]
        without = profile_collision_cdf(users, include_keywords=False)
        with_kw = profile_collision_cdf(users, include_keywords=True)
        assert without[0] == 0.0
        assert with_kw[0] == 1.0

    def test_empty_population(self):
        assert profile_collision_cdf([], include_keywords=False) == [0.0] * 10


class TestPaperFigure4Claim:
    """Both populations must reproduce the >90% uniqueness claim."""

    def test_weibo_like_over_90_percent_unique(self):
        users = WeiboGenerator(n_users=3000, tag_vocabulary=30_000, seed=4).generate()
        assert unique_profile_fraction(users, include_keywords=False) > 0.9

    def test_weibo_with_keywords_even_more_unique(self):
        users = WeiboGenerator(n_users=3000, tag_vocabulary=30_000, seed=4).generate()
        without = unique_profile_fraction(users, include_keywords=False)
        with_kw = unique_profile_fraction(users, include_keywords=True)
        assert with_kw >= without

    def test_facebook_like_over_90_percent_unique(self):
        users = FacebookGenerator(n_users=3000, seed=4).generate()
        assert unique_profile_fraction(users, include_keywords=False) > 0.9


class TestAttributeDistribution:
    def test_histogram(self):
        users = [_user("a", ["x"]), _user("b", ["x", "y"]), _user("c", ["z"])]
        assert attribute_count_distribution(users) == {1: 2, 2: 1}

    def test_sorted_keys(self):
        users = WeiboGenerator(n_users=300, tag_vocabulary=3000, seed=1).generate()
        histogram = attribute_count_distribution(users)
        assert list(histogram) == sorted(histogram)


class TestSharedCounts:
    def test_ground_truth(self):
        users = [
            _user("a", ["t1", "t2"]),
            _user("b", ["t2", "t3"]),
            _user("c", ["t9"]),
        ]
        assert shared_attribute_counts(["t1", "t2"], users) == [2, 1, 0]
