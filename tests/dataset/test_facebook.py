"""Facebook-like structured population generator tests."""

from __future__ import annotations

import pytest

from repro.dataset.facebook import FacebookGenerator


@pytest.fixture(scope="module")
def population():
    return FacebookGenerator(n_users=1000, seed=12).generate()


class TestStructure:
    def test_every_user_has_all_categories(self, population):
        for user in population[:100]:
            prefixes = {tag.split("v")[0] for tag in user.tags if "v" in tag}
            assert {"school", "city", "employer", "hometown"} <= prefixes

    def test_interest_count(self, population):
        for user in population[:100]:
            interests = [t for t in user.tags if t.startswith("int")]
            assert len(interests) == 3

    def test_no_keywords(self, population):
        assert all(u.keywords == () for u in population)

    def test_deterministic(self):
        a = FacebookGenerator(n_users=30, seed=5).generate()
        b = FacebookGenerator(n_users=30, seed=5).generate()
        assert a == b

    def test_custom_categories(self):
        gen = FacebookGenerator(
            n_users=20, category_sizes={"team": 10}, interests_per_user=1, seed=1
        )
        users = gen.generate()
        for user in users:
            assert any(t.startswith("team") for t in user.tags)

    def test_category_values_follow_zipf_head(self, population):
        from collections import Counter

        cities = Counter(t for u in population for t in u.tags if t.startswith("cityv"))
        most_common = cities.most_common(1)[0][1]
        assert most_common > len(population) * 0.05

    def test_profile_integration(self, population):
        profile = population[0].profile()
        assert len(profile) == len(population[0].tags)
