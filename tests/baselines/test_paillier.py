"""Paillier cryptosystem tests: correctness + homomorphic laws."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.counters import OpCounter

small_ints = st.integers(min_value=0, max_value=10**12)


class TestCorrectness:
    def test_encrypt_decrypt_roundtrip(self, paillier_key, rng):
        for m in (0, 1, 42, 10**9):
            ct = paillier_key.public.encrypt(m, rng=rng)
            assert paillier_key.decrypt(ct) == m

    def test_encryption_randomized(self, paillier_key, rng):
        c1 = paillier_key.public.encrypt(5, rng=rng)
        c2 = paillier_key.public.encrypt(5, rng=rng)
        assert c1 != c2
        assert paillier_key.decrypt(c1) == paillier_key.decrypt(c2) == 5

    def test_message_reduced_mod_n(self, paillier_key, rng):
        n = paillier_key.public.n
        ct = paillier_key.public.encrypt(n + 3, rng=rng)
        assert paillier_key.decrypt(ct) == 3


class TestHomomorphism:
    @given(a=small_ints, b=small_ints, seed=st.integers(0, 1 << 30))
    @settings(max_examples=15, deadline=None)
    def test_additive(self, paillier_key, a, b, seed):
        rng = random.Random(seed)
        public = paillier_key.public
        ct = public.add(public.encrypt(a, rng=rng), public.encrypt(b, rng=rng))
        assert paillier_key.decrypt(ct) == (a + b) % public.n

    @given(a=small_ints, k=st.integers(min_value=0, max_value=1000), seed=st.integers(0, 1 << 30))
    @settings(max_examples=15, deadline=None)
    def test_scalar_multiplication(self, paillier_key, a, k, seed):
        rng = random.Random(seed)
        public = paillier_key.public
        ct = public.scalar_mul(public.encrypt(a, rng=rng), k)
        assert paillier_key.decrypt(ct) == (a * k) % public.n


class TestCostAccounting:
    def test_encrypt_counts_expensive_ops(self, paillier_key, rng):
        counter = OpCounter()
        paillier_key.public.encrypt(7, rng=rng, counter=counter)
        assert counter.get("E3") == 1  # r^n mod n^2
        assert counter.get("M3") == 2

    def test_decrypt_counts(self, paillier_key, rng):
        counter = OpCounter()
        ct = paillier_key.public.encrypt(7, rng=rng)
        paillier_key.decrypt(ct, counter=counter)
        assert counter.get("E3") == 1
