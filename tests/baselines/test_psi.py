"""PSI baselines: FNP04, FC10, DH-PSI(-CA) correctness and accounting."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.counters import OpCounter
from repro.baselines.dh_psi import dh_psi, dh_psi_cardinality
from repro.baselines.fc10 import fc10_psi
from repro.baselines.fnp04 import fnp_psi

UNIVERSE = [f"item{i}" for i in range(20)]

sets_strategy = st.tuples(
    st.lists(st.sampled_from(UNIVERSE), min_size=1, max_size=6, unique=True),
    st.lists(st.sampled_from(UNIVERSE), min_size=1, max_size=6, unique=True),
    st.integers(min_value=0, max_value=1 << 30),
)


class TestFnp:
    @given(sets_strategy)
    @settings(max_examples=8, deadline=None)
    def test_intersection_correct(self, paillier_key, case):
        client, server, seed = case
        result, _ = fnp_psi(client, server, keypair=paillier_key, rng=random.Random(seed))
        assert result == set(client) & set(server)

    def test_disjoint_sets(self, paillier_key, rng):
        result, _ = fnp_psi(["a", "b"], ["c", "d"], keypair=paillier_key, rng=rng)
        assert result == set()

    def test_transcript_sizes(self, paillier_key, rng):
        _, transcript = fnp_psi(["a", "b"], ["c", "d", "e"], keypair=paillier_key, rng=rng)
        assert len(transcript.encrypted_coefficients) == 3  # degree-2 polynomial
        assert len(transcript.response_ciphertexts) == 3  # one per server item
        assert transcript.communication_bits(256) == 6 * 2 * 256

    def test_op_accounting(self, paillier_key, rng):
        client_counter, server_counter = OpCounter(), OpCounter()
        fnp_psi(
            ["a"], ["b", "c"], keypair=paillier_key, rng=rng,
            client_counter=client_counter, server_counter=server_counter,
        )
        assert client_counter.get("E3") > 0
        assert server_counter.get("E3") > 0


class TestFc10:
    @given(sets_strategy)
    @settings(max_examples=8, deadline=None)
    def test_intersection_correct(self, rsa_key, case):
        client, server, seed = case
        result, _ = fc10_psi(client, server, keypair=rsa_key, rng=random.Random(seed))
        assert result == set(client) & set(server)

    def test_empty_intersection(self, rsa_key, rng):
        result, _ = fc10_psi(["x"], ["y"], keypair=rsa_key, rng=rng)
        assert result == set()

    def test_linear_transcript(self, rsa_key, rng):
        _, transcript = fc10_psi(["a", "b", "c"], ["d", "e"], keypair=rsa_key, rng=rng)
        assert len(transcript.blinded_values) == 3
        assert len(transcript.blind_signatures) == 3
        assert len(transcript.server_tags) == 2

    def test_server_pays_exponentiations(self, rsa_key, rng):
        server_counter = OpCounter()
        fc10_psi(["a", "b"], ["c"], keypair=rsa_key, rng=rng, server_counter=server_counter)
        # one sign per server element + one per blinded client element
        assert server_counter.get("E2") == 3


class TestDhPsi:
    @given(sets_strategy)
    @settings(max_examples=8, deadline=None)
    def test_psi_correct(self, dh_group, case):
        client, server, seed = case
        result = dh_psi(client, server, p=dh_group, rng=random.Random(seed))
        assert result == set(client) & set(server)

    @given(sets_strategy)
    @settings(max_examples=8, deadline=None)
    def test_cardinality_correct(self, dh_group, case):
        client, server, seed = case
        count = dh_psi_cardinality(client, server, p=dh_group, rng=random.Random(seed))
        assert count == len(set(client) & set(server))

    def test_cardinality_counts_ops(self, dh_group, rng):
        client_counter, server_counter = OpCounter(), OpCounter()
        dh_psi_cardinality(
            ["a", "b"], ["b", "c"], p=dh_group, rng=rng,
            client_counter=client_counter, server_counter=server_counter,
        )
        # client: 2 first-pass + 2 completing server values; server: 2+2.
        assert client_counter.get("E2") == 4
        assert server_counter.get("E2") == 4


class TestCrossBaselineAgreement:
    @given(sets_strategy)
    @settings(max_examples=5, deadline=None)
    def test_all_baselines_agree(self, paillier_key, rsa_key, dh_group, case):
        client, server, seed = case
        expected = set(client) & set(server)
        fnp_result, _ = fnp_psi(client, server, keypair=paillier_key, rng=random.Random(seed))
        fc_result, _ = fc10_psi(client, server, keypair=rsa_key, rng=random.Random(seed))
        dh_result = dh_psi(client, server, p=dh_group, rng=random.Random(seed))
        assert fnp_result == fc_result == dh_result == expected
