"""Private dot-product baseline tests."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dot_product import private_dot_product, profiles_to_vectors


class TestVectors:
    def test_indicator_encoding(self):
        space = ["a", "b", "c", "d"]
        u, v = profiles_to_vectors(space, {"a", "c"}, {"c", "d"})
        assert u == [1, 0, 1, 0]
        assert v == [0, 0, 1, 1]


class TestDotProduct:
    @given(
        vectors=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=8
        ),
        seed=st.integers(0, 1 << 30),
    )
    @settings(max_examples=10, deadline=None)
    def test_matches_plain_dot_product(self, paillier_key, vectors, seed):
        u = [a for a, _ in vectors]
        v = [b for _, b in vectors]
        result = private_dot_product(u, v, keypair=paillier_key, rng=random.Random(seed))
        assert result == sum(a * b for a, b in zip(u, v))

    def test_intersection_cardinality_via_indicators(self, paillier_key, rng):
        space = [f"t{i}" for i in range(10)]
        u, v = profiles_to_vectors(space, {"t1", "t2", "t3"}, {"t2", "t3", "t4"})
        assert private_dot_product(u, v, keypair=paillier_key, rng=rng) == 2

    def test_rejects_length_mismatch(self, paillier_key):
        with pytest.raises(ValueError):
            private_dot_product([1], [1, 0], keypair=paillier_key)
