"""Cost model tests: Table III formulas and the Table VII scenario."""

from __future__ import annotations

import pytest

from repro.baselines.costs import (
    OP_TIMES_PAPER_LAPTOP_MS,
    OP_TIMES_PAPER_PHONE_MS,
    Scenario,
    advanced_cost,
    all_schemes,
    cost_ms,
    expected_candidate_fraction,
    expected_kappa,
    fc10_cost,
    fnp_cost,
    protocol1_cost,
)

TABLE7 = Scenario()  # m_t = m_k = 6, n = 100, t = 4, p = 11, alpha=0, beta=3


class TestScenario:
    def test_table7_defaults(self):
        assert TABLE7.gamma == 3
        assert TABLE7.theta == pytest.approx(0.5)

    def test_expected_kappa_paper_example(self):
        # Paper Sec. IV-B1: m_k = 20, alpha+beta = 6, p = 11 -> 0.02.
        s = Scenario(m_k=20, alpha=0, beta=6)
        assert expected_kappa(s) == pytest.approx(
            38760 * (1 / 11) ** 6, rel=1e-9
        )
        assert expected_kappa(s) == pytest.approx(0.0219, abs=0.002)

    def test_kappa_zero_when_infeasible(self):
        assert expected_kappa(Scenario(m_k=2, alpha=0, beta=6)) == 0.0

    def test_candidate_fraction_paper_example(self):
        # Paper Sec. IV-B2: p=11, m_t=6, theta=0.6 -> about 1/5610 of users.
        s = Scenario(alpha=0, beta=4, m_t=6)  # theta = 4/6
        fraction = expected_candidate_fraction(s)
        assert 0 < fraction < 1e-3


class TestTable7Numbers:
    """The numeric column of Table VII with the paper's laptop op times."""

    def test_fnp_initiator_73440_ms(self):
        cost = fnp_cost(TABLE7)
        assert cost.initiator_ops["E3"] == 612  # 2*6 + 6*100
        assert cost.initiator_ms(OP_TIMES_PAPER_LAPTOP_MS) == pytest.approx(73440.0)

    def test_fc10_34_5_ms(self):
        cost = fc10_cost(TABLE7)
        assert cost.initiator_ops["M2"] == 1500
        assert cost.initiator_ms(OP_TIMES_PAPER_LAPTOP_MS) == pytest.approx(34.5)

    def test_fc10_participant_204_ms(self):
        cost = fc10_cost(TABLE7)
        assert cost.participant_ops["E2"] == 12
        assert cost.participant_ms(OP_TIMES_PAPER_LAPTOP_MS) == pytest.approx(204.0)

    def test_advanced_216000_ms(self):
        cost = advanced_cost(TABLE7)
        assert cost.initiator_ops["E3"] == 1800
        assert cost.initiator_ms(OP_TIMES_PAPER_LAPTOP_MS) == pytest.approx(216000.0)

    def test_advanced_participant_1440_ms(self):
        assert advanced_cost(TABLE7).participant_ms(OP_TIMES_PAPER_LAPTOP_MS) == (
            pytest.approx(1440.0)
        )

    def test_protocol1_initiator_about_001_ms(self):
        cost = protocol1_cost(TABLE7)
        ms = cost.initiator_ms(OP_TIMES_PAPER_LAPTOP_MS)
        assert ms == pytest.approx(1.1e-2, rel=0.1)  # paper: 1.1e-2 ms

    def test_protocol1_noncandidate_ms(self):
        cost = protocol1_cost(TABLE7)
        assert cost.extra["noncandidate_ms_paper_laptop"] == pytest.approx(
            3.1e-3 + 6 * 1.2e-3, rel=0.5
        )  # paper: ~3.1e-3 -- same order

    def test_communication_sizes_match_table7(self):
        assert fnp_cost(TABLE7).communication_kb() == pytest.approx(151.5, rel=0.01)
        assert fc10_cost(TABLE7).communication_kb() == pytest.approx(300.0, rel=0.01)
        assert advanced_cost(TABLE7).communication_kb() == pytest.approx(704, rel=0.03)
        assert protocol1_cost(TABLE7).communication_kb() == pytest.approx(0.22, rel=0.05)

    def test_speedup_headline(self):
        """Our initiator is >=10^6 x cheaper than FNP/Advanced on paper times."""
        ours = protocol1_cost(TABLE7).initiator_ms(OP_TIMES_PAPER_LAPTOP_MS)
        fnp = fnp_cost(TABLE7).initiator_ms(OP_TIMES_PAPER_LAPTOP_MS)
        assert fnp / ours > 1e6


class TestShapeInvariance:
    def test_phone_times_preserve_ordering(self):
        """Hardware changes, the ranking does not (the repro contract)."""
        for times in (OP_TIMES_PAPER_LAPTOP_MS, OP_TIMES_PAPER_PHONE_MS):
            schemes = all_schemes(TABLE7)
            ours = schemes[-1]
            for other in schemes[:-1]:
                assert ours.initiator_ms(times) < other.initiator_ms(times)
                assert ours.communication_bits < other.communication_bits

    def test_costs_scale_with_population(self):
        small = fnp_cost(Scenario(n=10))
        large = fnp_cost(Scenario(n=1000))
        assert large.initiator_ops["E3"] > small.initiator_ops["E3"]

    def test_protocol1_initiator_independent_of_population(self):
        a = protocol1_cost(Scenario(n=10)).initiator_ops
        b = protocol1_cost(Scenario(n=100000)).initiator_ops
        assert a == b

    def test_cost_ms_ignores_unknown_ops(self):
        assert cost_ms({"NOPE": 5}, OP_TIMES_PAPER_LAPTOP_MS) == 0.0
