"""ElGamal encryption tests."""

from __future__ import annotations


class TestElGamal:
    def test_roundtrip_subgroup_element(self, elgamal_key, rng):
        message = pow(elgamal_key.g, 12345, elgamal_key.p)
        ct = elgamal_key.encrypt(message, rng=rng)
        assert elgamal_key.decrypt(ct) == message

    def test_randomized(self, elgamal_key, rng):
        message = pow(elgamal_key.g, 7, elgamal_key.p)
        assert elgamal_key.encrypt(message, rng=rng) != elgamal_key.encrypt(message, rng=rng)

    def test_public_key_consistent(self, elgamal_key):
        assert elgamal_key.h == pow(elgamal_key.g, elgamal_key.x, elgamal_key.p)

    def test_generator_in_subgroup(self, elgamal_key):
        # g generates the order-q subgroup: g^q == 1.
        assert pow(elgamal_key.g, elgamal_key.q, elgamal_key.p) == 1

    def test_multiplicative_homomorphism(self, elgamal_key, rng):
        m1 = pow(elgamal_key.g, 3, elgamal_key.p)
        m2 = pow(elgamal_key.g, 5, elgamal_key.p)
        c1 = elgamal_key.encrypt(m1, rng=rng)
        c2 = elgamal_key.encrypt(m2, rng=rng)
        product = (c1[0] * c2[0] % elgamal_key.p, c1[1] * c2[1] % elgamal_key.p)
        assert elgamal_key.decrypt(product) == m1 * m2 % elgamal_key.p
