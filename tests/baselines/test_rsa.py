"""RSA keygen/sign/blind-sign tests."""

from __future__ import annotations


class TestSigning:
    def test_sign_verify(self, rsa_key):
        message = 0x1234567890ABCDEF
        assert rsa_key.verify(message, rsa_key.sign(message))

    def test_wrong_signature_rejected(self, rsa_key):
        sig = rsa_key.sign(1111)
        assert not rsa_key.verify(2222, sig)

    def test_message_reduced(self, rsa_key):
        m = rsa_key.n + 5
        assert rsa_key.verify(5, rsa_key.sign(m))


class TestBlinding:
    def test_blind_sign_unblind_equals_direct_sign(self, rsa_key, rng):
        message = 0xDEADBEEF
        blinded, factor = rsa_key.blind(message, rng=rng)
        blind_sig = rsa_key.sign(blinded)
        assert rsa_key.unblind(blind_sig, factor) == rsa_key.sign(message)

    def test_blinding_hides_message(self, rsa_key, rng):
        message = 0xDEADBEEF
        blinded, _ = rsa_key.blind(message, rng=rng)
        assert blinded != message % rsa_key.n

    def test_blinding_randomized(self, rsa_key, rng):
        b1, _ = rsa_key.blind(7, rng=rng)
        b2, _ = rsa_key.blind(7, rng=rng)
        assert b1 != b2


class TestKeyGeneration:
    def test_key_structure(self, rsa_key):
        # e*d == 1 mod phi is implied by sign/verify correctness; check sizes.
        assert rsa_key.n.bit_length() >= 250
        assert rsa_key.e == 65537
