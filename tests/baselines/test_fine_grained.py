"""Fine-grained weighted matching baseline tests."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fine_grained import (
    fine_grained_distance,
    fine_grained_dot_product,
    levels_to_vector,
)

levels = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=8
)


class TestVectors:
    def test_levels_to_vector(self):
        space = ["a", "b", "c"]
        assert levels_to_vector(space, {"a": 3, "c": 1}) == [3, 0, 1]

    def test_unknown_levels_ignored(self):
        assert levels_to_vector(["a"], {"zz": 5}) == [0]


class TestDotProduct:
    @given(levels, st.integers(0, 1 << 30))
    @settings(max_examples=8, deadline=None)
    def test_matches_plaintext(self, paillier_key, pairs, seed):
        u = [a for a, _ in pairs]
        v = [b for _, b in pairs]
        result = fine_grained_dot_product(u, v, keypair=paillier_key, rng=random.Random(seed))
        assert result == sum(a * b for a, b in zip(u, v))

    def test_interest_levels_weight_the_score(self, paillier_key, rng):
        space = ["music", "sports", "food"]
        alice = levels_to_vector(space, {"music": 5, "sports": 1})
        enthusiast = levels_to_vector(space, {"music": 5})
        casual = levels_to_vector(space, {"music": 1, "food": 9})
        score_enthusiast = fine_grained_dot_product(alice, enthusiast, keypair=paillier_key, rng=rng)
        score_casual = fine_grained_dot_product(alice, casual, keypair=paillier_key, rng=rng)
        assert score_enthusiast > score_casual


class TestDistance:
    @given(levels, st.integers(0, 1 << 30))
    @settings(max_examples=8, deadline=None)
    def test_matches_plaintext(self, paillier_key, pairs, seed):
        u = [a for a, _ in pairs]
        v = [b for _, b in pairs]
        result = fine_grained_distance(u, v, keypair=paillier_key, rng=random.Random(seed))
        assert result == sum((a - b) ** 2 for a, b in zip(u, v))

    def test_identical_vectors_zero_distance(self, paillier_key, rng):
        assert fine_grained_distance([1, 2, 3], [1, 2, 3], keypair=paillier_key, rng=rng) == 0

    def test_length_mismatch(self, paillier_key):
        import pytest

        with pytest.raises(ValueError):
            fine_grained_distance([1], [1, 2], keypair=paillier_key)
