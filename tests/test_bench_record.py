"""tools/bench_record.py: PERF_RECORD extraction and trajectory appends."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import bench_record  # noqa: E402


class TestExtract:
    def test_extracts_only_perf_record_lines(self):
        lines = [
            "collecting ...\n",
            'PERF_RECORD {"bench": "a", "speedup": 5.0}\n',
            "1 passed\n",
            '  PERF_RECORD {"bench": "b"}\n',  # leading whitespace tolerated
        ]
        records = bench_record.extract_records(lines)
        assert [r["bench"] for r in records] == ["a", "b"]

    def test_malformed_json_is_an_error(self):
        with pytest.raises(SystemExit, match="malformed"):
            bench_record.extract_records(["PERF_RECORD {not json}\n"])

    def test_non_object_payload_is_an_error(self):
        with pytest.raises(SystemExit, match="JSON object"):
            bench_record.extract_records(["PERF_RECORD [1, 2]\n"])


class TestAppend:
    def test_creates_and_appends(self, tmp_path):
        target = tmp_path / "BENCH_test.json"
        assert bench_record.append_records(target, [{"bench": "x", "v": 1}]) == 1
        assert bench_record.append_records(target, [{"bench": "y", "v": 2}]) == 1

        data = json.loads(target.read_text())
        assert data["schema"] == 1
        assert [r["bench"] for r in data["records"]] == ["x", "y"]
        for record in data["records"]:
            assert "recorded_at" in record
            assert "git_commit" in record  # may be None outside a checkout

    def test_append_nothing_leaves_file_untouched(self, tmp_path):
        target = tmp_path / "BENCH_test.json"
        assert bench_record.append_records(target, []) == 0
        assert not target.exists()

    def test_corrupt_trajectory_is_an_error(self, tmp_path):
        target = tmp_path / "BENCH_test.json"
        target.write_text("[]")
        with pytest.raises(SystemExit, match="trajectory"):
            bench_record.append_records(target, [{"bench": "x"}])

    def test_repo_trajectory_file_is_well_formed(self):
        """The committed BENCH_crypto.json must parse under the stable schema."""
        path = Path(__file__).resolve().parent.parent / "BENCH_crypto.json"
        data = json.loads(path.read_text())
        assert data["schema"] == 1
        assert data["records"], "trajectory must hold at least one record"
        benches = {r["bench"] for r in data["records"]}
        assert {"crypto_aes_buffer", "crypto_open_many", "crypto_sha256_fastpath"} <= benches
        for record in data["records"]:
            assert "recorded_at" in record
