"""CLI smoke tests for every subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize("protocol", ["1", "2", "3"])
    def test_demo_protocols(self, protocol):
        args = build_parser().parse_args(["demo", "--protocol", protocol])
        assert args.protocol == int(protocol)

    def test_bad_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--protocol", "9"])


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "match: replied -> verified" in out
        assert "stranger: relays silently" in out

    def test_demo_protocol2(self, capsys):
        assert main(["demo", "--protocol", "2"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_population(self, capsys):
        assert main(["population", "--users", "300", "--vocabulary", "3000"]) == 0
        out = capsys.readouterr().out
        assert "population summary" in out
        assert "unique profiles" in out
        assert "collision CDF" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--nodes", "25", "--theta", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "friending episode" in out
        assert "matches" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out


class TestConcurrentSimulate:
    def test_simulate_multiple_episodes(self, capsys):
        assert main([
            "simulate", "--nodes", "24", "--episodes", "4", "--arrival-ms", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "concurrent friending" in out
        assert "per-episode outcomes" in out
        assert "episodes_per_sim_sec" in out

    def test_too_many_episodes_rejected(self, capsys):
        assert main(["simulate", "--nodes", "5", "--episodes", "50"]) == 2

    def test_backend_flag_parsed(self):
        args = build_parser().parse_args(["simulate", "--backend", "pure"])
        assert args.backend == "pure"
        assert build_parser().parse_args(["simulate"]).backend == "tables"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--backend", "openssl"])

    def test_bad_workers_rejected(self, capsys):
        assert main(["simulate", "--nodes", "10", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_simulate_with_backend_and_workers(self, capsys):
        assert main([
            "simulate", "--nodes", "24", "--episodes", "4", "--arrival-ms", "20",
            "--backend", "pure", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "backend=pure" in out
        assert "workers=2" in out
        assert "per-episode outcomes" in out

    def test_backend_choice_leaves_outcomes_unchanged(self, capsys):
        outputs = {}
        for backend in ("pure", "tables"):
            assert main([
                "simulate", "--nodes", "24", "--episodes", "3",
                "--backend", backend,
            ]) == 0
            out = capsys.readouterr().out
            # Strip the title line (it names the backend); the measured
            # tables must be identical.
            outputs[backend] = [
                line for line in out.splitlines() if "backend=" not in line
            ]
        assert outputs["pure"] == outputs["tables"]

    def test_workers_choice_leaves_outcomes_unchanged(self, capsys):
        """Sharding identity holds on the CLI path, lossy channel included.

        Requires per-episode seeded initiator RNGs in `_run_simulate`: an
        episode's request bytes must not depend on how many episodes ran
        before it in the same process.
        """
        outputs = {}
        for workers in ("1", "3"):
            assert main([
                "simulate", "--nodes", "30", "--episodes", "4", "--seed", "9",
                "--loss", "0.1", "--retries", "1", "--workers", workers,
            ]) == 0
            out = capsys.readouterr().out
            outputs[workers] = [
                line for line in out.splitlines() if "workers=" not in line
            ]
        assert outputs["1"] == outputs["3"]


class TestLossyChannelFlags:
    def test_lossy_flags_flow_into_metrics(self, capsys):
        assert main([
            "simulate", "--nodes", "24", "--episodes", "3", "--seed", "5",
            "--loss", "0.2", "--dup", "0.1", "--corrupt", "0.05",
            "--jitter-ms", "2", "--retries", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "frames_sent" in out
        assert "frames_dropped" in out

    def test_lossy_run_is_seed_deterministic(self, capsys):
        runs = []
        for _ in range(2):
            assert main([
                "simulate", "--nodes", "24", "--episodes", "3", "--seed", "5",
                "--loss", "0.15", "--retries", "1",
            ]) == 0
            runs.append(capsys.readouterr().out)
        assert runs[0] == runs[1]

    @pytest.mark.parametrize("flag,value", [
        ("--loss", "1.5"), ("--dup", "-0.1"), ("--corrupt", "2"),
        ("--jitter-ms", "-3"), ("--retries", "-1"), ("--retries", "256"),
    ])
    def test_bad_channel_values_exit_cleanly(self, flag, value, capsys):
        assert main(["simulate", "--nodes", "10", flag, value]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_channel_version_flag_parsed(self):
        parser = build_parser()
        assert parser.parse_args(["simulate"]).channel_version == 1
        args = parser.parse_args(["simulate", "--channel-version", "2"])
        assert args.channel_version == 2

    def test_unknown_channel_version_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--channel-version", "3"])

    def test_channel_version_changes_a_lossy_run(self, capsys):
        outputs = {}
        for version in ("1", "2"):
            assert main([
                "simulate", "--nodes", "24", "--episodes", "3", "--seed", "5",
                "--loss", "0.2", "--jitter-ms", "2", "--retries", "1",
                "--channel-version", version,
            ]) == 0
            outputs[version] = capsys.readouterr().out
        # Both planes run end to end; they draw different fates by design.
        assert "frames_sent" in outputs["1"]
        assert "frames_sent" in outputs["2"]
        assert outputs["1"] != outputs["2"]

    def test_v2_run_is_seed_deterministic(self, capsys):
        runs = []
        for _ in range(2):
            assert main([
                "simulate", "--nodes", "24", "--episodes", "3", "--seed", "5",
                "--loss", "0.15", "--retries", "1", "--channel-version", "2",
            ]) == 0
            runs.append(capsys.readouterr().out)
        assert runs[0] == runs[1]


class TestReliabilityFlags:
    def test_reliability_flag_parsed(self):
        parser = build_parser()
        assert parser.parse_args(["simulate"]).reliability == "simple"
        args = parser.parse_args(["simulate", "--reliability", "window_fec"])
        assert args.reliability == "window_fec"

    def test_unknown_reliability_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--reliability", "carrier-pigeon"])

    def test_retransmit_timeout_flag_parsed(self):
        parser = build_parser()
        assert parser.parse_args(["simulate"]).retransmit_timeout_ms == 1000
        args = parser.parse_args(["simulate", "--retransmit-timeout-ms", "250"])
        assert args.retransmit_timeout_ms == 250

    def test_window_fec_runs_end_to_end(self, capsys):
        assert main([
            "simulate", "--nodes", "24", "--episodes", "3", "--seed", "5",
            "--loss", "0.15", "--reliability", "window_fec",
            "--channel-version", "2",
        ]) == 0
        assert "frames_sent" in capsys.readouterr().out

    def test_reliability_flows_into_single_episode_path(self, capsys):
        assert main([
            "simulate", "--nodes", "20", "--seed", "5", "--loss", "0.15",
            "--reliability", "window", "--retries", "2",
            "--retransmit-timeout-ms", "200",
        ]) == 0
        assert "friending episode" in capsys.readouterr().out


class TestProfiles:
    def test_profiles_list(self, capsys):
        assert main(["profiles", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("city", "campus", "vehicular", "stadium-burst"):
            assert name in out
        assert "window_fec" in out

    def test_profiles_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profiles"])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--profile", "atlantis"])

    def test_simulate_profile_run(self, capsys):
        assert main([
            "simulate", "--profile", "campus", "--nodes", "40", "--episodes", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "profile run: campus" in out
        assert "reliability" in out

    def test_simulate_profile_overrides_reliability(self, capsys):
        assert main([
            "simulate", "--profile", "campus", "--nodes", "40", "--episodes", "2",
            "--reliability", "stage", "--retries", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "stage" in out

    def test_profile_rejects_profile_top(self, capsys):
        assert main(["simulate", "--profile", "campus", "--profile-top", "5"]) == 2
        assert "--profile-top" in capsys.readouterr().err


class TestExperiments:
    SPEC = {
        "name": "cli-tiny",
        "nodes": 30,
        "episodes": 2,
        "radio_radius": 0.3,
        "communities": 2,
        "seed": 3,
    }

    def test_run_writes_artifacts(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        out_dir = tmp_path / "results"
        assert main(["experiments", "run", str(spec_path), "--out-dir", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "experiment sweep" in out
        assert (out_dir / "cli-tiny.json").exists()
        assert (out_dir / "cli-tiny.md").exists()

    def test_bad_spec_is_a_clean_error(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({**self.SPEC, "protocol": 9}))
        assert main(["experiments", "run", str(spec_path)]) == 2
        assert "protocol" in capsys.readouterr().err

    def test_missing_spec_file(self, capsys):
        assert main(["experiments", "run", "/no/such/spec.json"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_run_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments"])
