"""CLI smoke tests for every subcommand."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize("protocol", ["1", "2", "3"])
    def test_demo_protocols(self, protocol):
        args = build_parser().parse_args(["demo", "--protocol", protocol])
        assert args.protocol == int(protocol)

    def test_bad_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--protocol", "9"])


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "match: replied -> verified" in out
        assert "stranger: relays silently" in out

    def test_demo_protocol2(self, capsys):
        assert main(["demo", "--protocol", "2"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_population(self, capsys):
        assert main(["population", "--users", "300", "--vocabulary", "3000"]) == 0
        out = capsys.readouterr().out
        assert "population summary" in out
        assert "unique profiles" in out
        assert "collision CDF" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--nodes", "25", "--theta", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "friending episode" in out
        assert "matches" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out


class TestConcurrentSimulate:
    def test_simulate_multiple_episodes(self, capsys):
        assert main([
            "simulate", "--nodes", "24", "--episodes", "4", "--arrival-ms", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "concurrent friending" in out
        assert "per-episode outcomes" in out
        assert "episodes_per_sim_sec" in out

    def test_too_many_episodes_rejected(self, capsys):
        assert main(["simulate", "--nodes", "5", "--episodes", "50"]) == 2
