"""Session semantics on the wire: policy and expiry as observable facts.

The table-level parity lives in the ``sessions`` conformance suite; these
tests pin the *behavioral* consequences inside full engine runs with the
independent mini endpoint behind the participant seam:

* ``drop_new`` vs ``evict_oldest`` produce different friendships under
  session pressure, not just different counters,
* request expiry is strictly ``now > expiry_ms`` — a request arriving at
  the exact expiry instant is still answered, one millisecond later it
  is dropped — and the standalone mini node mirrors the same boundary.
"""

from __future__ import annotations

import random

import pytest

from repro.conformance.adapter import MiniParticipantAdapter
from repro.conformance.minipeer import MiniPeer
from repro.core import wire as rwire
from repro.core.attributes import RequestProfile
from repro.core.protocols import Initiator
from repro.network.engine import EpisodeSpec, FriendingEngine
from repro.network.simulator import AdHocNetwork
from repro.network.topology import line_topology

pytestmark = pytest.mark.conformance

_REQUEST = RequestProfile(
    necessary=("hiking", "jazz"),
    optional=("chess", "tennis", "poetry", "sailing"),
    beta=2,
)
_MATCH_ATTRS = ("hiking", "jazz", "chess", "tennis", "cooking")


def _crossing_floods(overflow: str):
    """Two episodes from opposite ends of a 4-node line, session_limit=1.

    The middle nodes (the only participants) see both floods and can hold
    exactly one session, so the overflow policy decides who friends whom.
    """
    adjacency, _ = line_topology(4)
    nodes = list(adjacency)
    participants = {
        node_id: MiniParticipantAdapter(
            _MATCH_ATTRS, f"user-{node_id}", y_seed=bytes([i + 1]) * 32
        )
        for i, node_id in enumerate(nodes)
    }
    participants[nodes[0]] = None
    participants[nodes[3]] = None
    network = AdHocNetwork(
        adjacency, participants, session_limit=1, session_overflow=overflow
    )
    left = Initiator(_REQUEST, protocol=2, p=31, rng=random.Random(1))
    right = Initiator(_REQUEST, protocol=2, p=31, rng=random.Random(2))
    result = FriendingEngine(network).run(
        [EpisodeSpec(nodes[0], left), EpisodeSpec(nodes[3], right)]
    )
    return left, right, result


def test_drop_new_starves_the_far_participant():
    """drop_new: each flood only friends its near neighbour; the far
    relay's table is already pinned by the crossing episode."""
    left, right, result = _crossing_floods("drop_new")
    assert sorted(r.responder_id for r in left.matches) == ["user-n1"]
    assert sorted(r.responder_id for r in right.matches) == ["user-n2"]
    for episode in result.episodes:
        assert episode.metrics.sessions_overflow == 1


def test_evict_oldest_reaches_both_participants():
    """evict_oldest: the newcomer displaces the crossing episode's session
    and both floods traverse the whole line."""
    left, right, result = _crossing_floods("evict_oldest")
    assert sorted(r.responder_id for r in left.matches) == ["user-n1", "user-n2"]
    assert sorted(r.responder_id for r in right.matches) == ["user-n1", "user-n2"]
    for episode in result.episodes:
        assert episode.metrics.sessions_overflow == 0
    # Same request streams, opposite outcome: the policy is wire-observable.
    drop_left, _, _ = _crossing_floods("drop_new")
    assert len(left.matches) > len(drop_left.matches)


class _RecordingAdapter(MiniParticipantAdapter):
    """Captures the engine-time each request copy is delivered at."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.delivery_times: list[int] = []

    def handle_request(self, package, now_ms: int = 0):
        self.delivery_times.append(now_ms)
        return super().handle_request(package, now_ms=now_ms)


def _expiry_run(validity_ms: int):
    """One flood down a 4-node line; only the far node participates."""
    adjacency, _ = line_topology(4)
    nodes = list(adjacency)
    far = _RecordingAdapter(_MATCH_ATTRS, "user-far", y_seed=b"f" * 32)
    participants = {node_id: None for node_id in nodes}
    participants[nodes[3]] = far
    network = AdHocNetwork(adjacency, participants)
    initiator = Initiator(
        _REQUEST, protocol=2, p=31, rng=random.Random(5), validity_ms=validity_ms
    )
    result = FriendingEngine(network).run([EpisodeSpec(nodes[0], initiator)])
    return initiator, far, result.episodes[0]


def test_request_expiry_boundary_is_strict_on_the_wire():
    """Expiry == arrival instant still friends; arrival-1 drops the request."""
    # Probe: learn the deterministic delivery time at the far node.
    probe_initiator, probe_far, _ = _expiry_run(60_000)
    assert probe_initiator.matches and probe_far.delivery_times
    arrival_ms = probe_far.delivery_times[0]
    assert arrival_ms > 0

    # The episode starts at t=0, so expiry_ms == validity_ms exactly.
    at_boundary, far_at, episode_at = _expiry_run(arrival_ms)
    assert [r.responder_id for r in at_boundary.matches] == ["user-far"], (
        "a request expiring at the delivery instant must still be answered"
    )
    assert episode_at.metrics.dropped_expired == 0

    past_boundary, far_past, episode_past = _expiry_run(arrival_ms - 1)
    assert not past_boundary.matches, "an expired request was answered"
    assert episode_past.metrics.dropped_expired >= 1
    assert not far_past.delivery_times, (
        "the engine delivered an expired request to the participant"
    )


def test_mini_node_mirrors_the_expiry_boundary():
    """The standalone mini node pins the same strict boundary on raw bytes."""
    peer = MiniPeer()
    initiator = Initiator(_REQUEST, protocol=2, p=31, rng=random.Random(9), validity_ms=1_000)
    package = initiator.create_request(now_ms=0)
    data = rwire.encode_request_frame(package)

    live = peer.node("at-expiry", peer.participant(_MATCH_ATTRS, "mini-bob", y_seed=b"y" * 32))
    delivery = live.handle_datagram(data, parent="origin", now_ms=package.expiry_ms)
    assert delivery.status == "processed"
    assert delivery.reply_frame is not None

    late = peer.node("past-expiry", peer.participant(_MATCH_ATTRS, "mini-bob", y_seed=b"y" * 32))
    delivery = late.handle_datagram(data, parent="origin", now_ms=package.expiry_ms + 1)
    assert delivery.status == "expired"
    assert delivery.reply_frame is None and delivery.forward_frame is None
