"""Property-based differential fuzzing: repro codec vs the mini endpoint.

Two independently written codecs (``repro.core.wire`` /
``repro.core.request`` vs ``repro.conformance.minipeer.MiniWire``) are
driven with generated inputs and must agree **bit for bit**:

* encoders produce identical bytes for identical logical messages,
* decoders accept exactly the same byte strings, recovering identical
  fields, and reject exactly the same byte strings,
* under mutation (truncation, bit flips, appended garbage) acceptance
  stays synchronized — a frame one stack drops must not be parsed by
  the other, because that asymmetry is where protocol confusion attacks
  live.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import wire as rwire
from repro.core.exceptions import SerializationError
from repro.core.hint import HintMatrix
from repro.core.protocols import Reply
from repro.core.request import RequestPackage
from repro.conformance.minipeer import (
    MiniHint,
    MiniRejection,
    MiniReply,
    MiniRequest,
    MiniWire,
)

pytestmark = pytest.mark.conformance

_WIRE = MiniWire()


def _repro_frame(data: bytes):
    """(ok, fields) for the repro frame decoder."""
    try:
        frame = rwire.decode_frame(data)
    except SerializationError:
        return False, None
    return True, (frame.ftype, frame.payload, frame.ttl, frame.seq)


def _mini_frame(data: bytes):
    try:
        frame = _WIRE.decode_frame(data)
    except MiniRejection:
        return False, None
    return True, (frame.ftype, frame.payload, frame.ttl, frame.seq)


def _assert_frame_parity(data: bytes) -> None:
    repro_ok, repro_fields = _repro_frame(data)
    mini_ok, mini_fields = _mini_frame(data)
    assert repro_ok == mini_ok, (
        f"decoders disagree on acceptance (repro={repro_ok}, mini={mini_ok}) "
        f"for {data[:32].hex()}..."
    )
    if repro_ok:
        assert repro_fields == mini_fields


# -- strategies -----------------------------------------------------------

frame_parts = st.tuples(
    st.sampled_from([rwire.FT_REQUEST, rwire.FT_REPLY, rwire.FT_SESSION]),
    st.binary(min_size=0, max_size=96),
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
)


@st.composite
def valid_frames(draw) -> bytes:
    ftype, payload, ttl, seq = draw(frame_parts)
    return rwire.encode_frame(ftype, payload, ttl=ttl, seq=seq)


@st.composite
def mutated_frames(draw) -> bytes:
    data = draw(valid_frames())
    mutation = draw(st.sampled_from(["truncate", "flip", "append", "stomp"]))
    if mutation == "truncate":
        cut = draw(st.integers(min_value=0, max_value=len(data) - 1))
        return data[:cut]
    if mutation == "flip":
        bit = draw(st.integers(min_value=0, max_value=8 * len(data) - 1))
        return rwire.flip_bit(data, bit)
    if mutation == "append":
        tail = draw(st.binary(min_size=1, max_size=8))
        return data + tail
    index = draw(st.integers(min_value=0, max_value=len(data) - 1))
    value = draw(st.integers(min_value=0, max_value=255))
    return data[:index] + bytes([value]) + data[index + 1 :]


@st.composite
def reply_parts(draw):
    rid = draw(st.binary(min_size=8, max_size=8))
    responder = draw(st.text(max_size=24))
    # the id length field is one byte of UTF-8, not characters
    while len(responder.encode("utf-8")) > 255:
        responder = responder[:-1]
    elements = draw(st.lists(st.binary(min_size=48, max_size=48), max_size=5))
    sent_at = draw(st.integers(min_value=0, max_value=2**64 - 1))
    return rid, responder, tuple(elements), sent_at


@st.composite
def request_parts(draw):
    protocol = draw(st.integers(min_value=1, max_value=3))
    p = draw(st.sampled_from([11, 31, 97, 251]))
    m_t = draw(st.integers(min_value=0, max_value=9))
    remainders = tuple(
        draw(st.integers(min_value=0, max_value=p - 1)) for _ in range(m_t)
    )
    mask = tuple(draw(st.booleans()) for _ in range(m_t))
    beta = draw(st.integers(min_value=0, max_value=max(0, m_t - sum(mask))))
    hint = None
    if draw(st.booleans()) and protocol != 1:
        gamma = draw(st.integers(min_value=1, max_value=3))
        h_beta = draw(st.integers(min_value=1, max_value=3))
        r_block = tuple(
            tuple(
                draw(st.integers(min_value=1, max_value=2**32 - 1))
                for _ in range(h_beta)
            )
            for _ in range(gamma)
        )
        b_vector = tuple(
            draw(st.integers(min_value=0, max_value=2**80)) for _ in range(gamma)
        )
        hint = (gamma, h_beta, r_block, b_vector)
    blocks = draw(st.integers(min_value=1, max_value=4))
    ciphertext = draw(st.binary(min_size=16 * blocks, max_size=16 * blocks))
    rid = draw(st.binary(min_size=8, max_size=8))
    ttl = draw(st.integers(min_value=0, max_value=255))
    expiry = draw(st.integers(min_value=0, max_value=2**64 - 1))
    return protocol, p, remainders, mask, beta, hint, ciphertext, rid, ttl, expiry


# -- frame envelope -------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(data=st.binary(max_size=64))
def test_frame_decode_parity_on_arbitrary_bytes(data):
    _assert_frame_parity(data)


@settings(max_examples=100, deadline=None)
@given(parts=frame_parts)
def test_frame_encode_byte_identity(parts):
    ftype, payload, ttl, seq = parts
    repro_bytes = rwire.encode_frame(ftype, payload, ttl=ttl, seq=seq)
    mini_bytes = _WIRE.encode_frame(ftype, payload, ttl=ttl, seq=seq)
    assert repro_bytes == mini_bytes
    _assert_frame_parity(repro_bytes)


@settings(max_examples=200, deadline=None)
@given(data=mutated_frames())
def test_frame_decode_parity_under_mutation(data):
    _assert_frame_parity(data)


@settings(max_examples=60, deadline=None)
@given(
    frame=valid_frames(),
    ttl=st.integers(min_value=0, max_value=255),
    seq=st.integers(min_value=0, max_value=255),
)
def test_relay_hop_byte_identity(frame, ttl, seq):
    """The zero-copy repro reframe and the decode/re-encode mini hop agree."""
    assert rwire.reframe(frame, ttl=ttl, seq=seq) == _WIRE.hop(frame, ttl=ttl, seq=seq)


# -- reply payload --------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(parts=reply_parts())
def test_reply_encode_byte_identity_and_decode_parity(parts):
    rid, responder, elements, sent_at = parts
    reply = Reply(
        request_id=rid, responder_id=responder, elements=elements, sent_at_ms=sent_at
    )
    mini = MiniReply(
        request_id=rid, responder_id=responder, elements=elements, sent_at_ms=sent_at
    )
    repro_bytes = rwire.encode_reply(reply)
    mini_bytes = _WIRE.encode_reply(mini)
    assert repro_bytes == mini_bytes

    decoded_r = rwire.decode_reply(repro_bytes)
    decoded_m = _WIRE.decode_reply(repro_bytes)
    assert (
        decoded_r.request_id,
        decoded_r.responder_id,
        tuple(decoded_r.elements),
        decoded_r.sent_at_ms,
    ) == (
        decoded_m.request_id,
        decoded_m.responder_id,
        tuple(decoded_m.elements),
        decoded_m.sent_at_ms,
    ) == (rid, responder, elements, sent_at)


@settings(max_examples=150, deadline=None)
@given(parts=reply_parts(), data=st.data())
def test_reply_decode_parity_under_mutation(parts, data):
    rid, responder, elements, sent_at = parts
    payload = rwire.encode_reply(
        Reply(request_id=rid, responder_id=responder, elements=elements, sent_at_ms=sent_at)
    )
    mutation = data.draw(st.sampled_from(["truncate", "stomp", "append"]))
    if mutation == "truncate":
        cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        mutated = payload[:cut]
    elif mutation == "append":
        mutated = payload + data.draw(st.binary(min_size=1, max_size=8))
    else:
        index = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        value = data.draw(st.integers(min_value=0, max_value=255))
        mutated = payload[:index] + bytes([value]) + payload[index + 1 :]

    try:
        decoded_r = rwire.decode_reply(mutated)
        repro_ok = True
    except SerializationError:
        repro_ok = False
    try:
        decoded_m = _WIRE.decode_reply(mutated)
        mini_ok = True
    except MiniRejection:
        mini_ok = False
    assert repro_ok == mini_ok, f"reply decoders disagree after {mutation}"
    if repro_ok:
        assert (
            decoded_r.request_id,
            decoded_r.responder_id,
            tuple(decoded_r.elements),
            decoded_r.sent_at_ms,
        ) == (
            decoded_m.request_id,
            decoded_m.responder_id,
            tuple(decoded_m.elements),
            decoded_m.sent_at_ms,
        )


# -- request payload ------------------------------------------------------


def _request_fields(pkg) -> tuple:
    hint = pkg.hint
    hint_fields = None
    if hint is not None:
        hint_fields = (hint.gamma, hint.beta, tuple(hint.r_block), tuple(hint.b_vector))
    return (
        pkg.protocol,
        pkg.p,
        tuple(pkg.remainders),
        tuple(pkg.necessary_mask),
        pkg.beta,
        hint_fields,
        pkg.ciphertext,
        pkg.request_id,
        pkg.ttl,
        pkg.expiry_ms,
    )


@settings(max_examples=100, deadline=None)
@given(parts=request_parts())
def test_request_encode_byte_identity_and_decode_parity(parts):
    protocol, p, remainders, mask, beta, hint, ciphertext, rid, ttl, expiry = parts
    repro_pkg = RequestPackage(
        protocol=protocol,
        p=p,
        remainders=remainders,
        necessary_mask=mask,
        beta=beta,
        hint=HintMatrix(*hint) if hint else None,
        ciphertext=ciphertext,
        request_id=rid,
        ttl=ttl,
        expiry_ms=expiry,
    )
    mini_req = MiniRequest(
        protocol=protocol,
        p=p,
        remainders=remainders,
        necessary_mask=mask,
        beta=beta,
        hint=MiniHint(*hint) if hint else None,
        ciphertext=ciphertext,
        request_id=rid,
        ttl=ttl,
        expiry_ms=expiry,
    )
    repro_bytes = repro_pkg.encode()
    mini_bytes = _WIRE.encode_request(mini_req)
    assert repro_bytes == mini_bytes

    assert _request_fields(RequestPackage.decode(repro_bytes)) == _request_fields(
        _WIRE.decode_request(repro_bytes)
    )


@settings(max_examples=150, deadline=None)
@given(parts=request_parts(), data=st.data())
def test_request_decode_parity_under_mutation(parts, data):
    protocol, p, remainders, mask, beta, hint, ciphertext, rid, ttl, expiry = parts
    payload = RequestPackage(
        protocol=protocol,
        p=p,
        remainders=remainders,
        necessary_mask=mask,
        beta=beta,
        hint=HintMatrix(*hint) if hint else None,
        ciphertext=ciphertext,
        request_id=rid,
        ttl=ttl,
        expiry_ms=expiry,
    ).encode()
    mutation = data.draw(st.sampled_from(["truncate", "stomp"]))
    if mutation == "truncate":
        cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        mutated = payload[:cut]
    else:
        index = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        value = data.draw(st.integers(min_value=0, max_value=255))
        mutated = payload[:index] + bytes([value]) + payload[index + 1 :]

    try:
        decoded_r = RequestPackage.decode(mutated)
        repro_ok = True
    except SerializationError:
        repro_ok = False
    try:
        decoded_m = _WIRE.decode_request(mutated)
        mini_ok = True
    except MiniRejection:
        mini_ok = False
    assert repro_ok == mini_ok, f"request decoders disagree after {mutation}"
    if repro_ok:
        assert _request_fields(decoded_r) == _request_fields(decoded_m)
