"""The conformance harness itself: registry, verdicts, mutants.

Three layers of pinning:

* the registry/verdict plumbing behaves (schema-valid records, stable
  error messages for unknown names),
* the honest mini endpoint passes every registered check in both the
  smoke subset and the full suite,
* each deliberately-broken mutant peer fails at least one check — the
  proof the suite can actually detect spec violations, not merely bless
  the happy path.
"""

from __future__ import annotations

import functools
import json

import pytest

from repro.conformance.harness import (
    VERDICT_SCHEMA,
    TrustContext,
    available_checks,
    available_suites,
    check,
    load_check,
    render_markdown,
    run_and_report,
    run_suite,
    validate_verdict,
)
from repro.conformance.mutants import (
    available_mutants,
    describe_mutant,
    mutant_peer,
)

pytestmark = pytest.mark.conformance


class TestRegistry:
    def test_suites_present(self):
        assert available_suites() == ("episodes", "frames", "sessions")

    def test_every_check_loads_with_metadata(self):
        names = available_checks()
        assert len(names) >= 20
        for name in names:
            entry = load_check(name)
            assert entry.name == name
            assert entry.suite in available_suites()
            assert entry.trust.names(), name
            assert entry.doc, name

    def test_suite_filter_and_smoke_filter(self):
        frames = available_checks("frames")
        assert frames and all(load_check(n).suite == "frames" for n in frames)
        smoke = available_checks(smoke_only=True)
        assert smoke and all(load_check(n).smoke for n in smoke)
        assert set(smoke) < set(available_checks())

    def test_unknown_names_raise(self):
        with pytest.raises(ValueError, match="unknown conformance suite"):
            available_checks("nonesuch")
        with pytest.raises(ValueError, match="unknown conformance check"):
            load_check("nonesuch")
        with pytest.raises(ValueError, match="unknown mutant"):
            mutant_peer("nonesuch")
        with pytest.raises(ValueError, match="unknown mutant"):
            describe_mutant("nonesuch")

    def test_duplicate_registration_rejected(self):
        existing = available_checks()[0]
        with pytest.raises(ValueError, match="duplicate conformance check"):

            @check(existing, suite="frames", trust=TrustContext.INTEGRITY)
            def clash(peer):  # pragma: no cover - never runs
                return None


class TestVerdicts:
    GOOD = {
        "check": "frame-roundtrip",
        "suite": "frames",
        "trust": ["INTEGRITY"],
        "smoke": True,
        "status": "pass",
        "detail": "ok",
    }

    def test_good_record_validates(self):
        validate_verdict(self.GOOD)

    @pytest.mark.parametrize("missing", sorted(VERDICT_SCHEMA["required"]))
    def test_missing_key_rejected(self, missing):
        record = {k: v for k, v in self.GOOD.items() if k != missing}
        with pytest.raises(ValueError):
            validate_verdict(record)

    def test_extra_key_rejected(self):
        with pytest.raises(ValueError):
            validate_verdict({**self.GOOD, "extra": 1})

    def test_bad_status_rejected(self):
        with pytest.raises(ValueError):
            validate_verdict({**self.GOOD, "status": "maybe"})

    def test_bad_trust_entry_rejected(self):
        with pytest.raises(ValueError):
            validate_verdict({**self.GOOD, "trust": ["INTEGRITY", "vibes"]})


@pytest.mark.conformance_smoke
def test_smoke_subset_green():
    """The tier-1 smoke slice: every smoke-tagged check passes."""
    records = run_suite(smoke_only=True)
    assert records
    failed = [r["check"] for r in records if r["status"] != "pass"]
    assert not failed, f"smoke conformance failures: {failed}"


def test_full_suite_green_and_artifacts(tmp_path):
    json_path, md_path, records = run_and_report(out_dir=tmp_path)
    failed = [r["check"] for r in records if r["status"] != "pass"]
    assert not failed, f"conformance failures: {failed}"
    assert {r["suite"] for r in records} == set(available_suites())
    for record in records:
        validate_verdict(record)

    payload = json.loads(json_path.read_text())
    assert payload["plan"] == "conformance"
    assert payload["schema"] == VERDICT_SCHEMA
    assert payload["records"] == records

    report = md_path.read_text()
    assert report == render_markdown(records, title="conformance")
    for record in records:
        assert record["check"] in report


def test_check_crash_becomes_fail_verdict():
    """A crashing check must yield a schema-valid fail record, not abort."""

    @check("harness-test-crash", suite="frames", trust=TrustContext.INTEGRITY)
    def crash(peer):
        raise RuntimeError("boom")

    try:
        records = [r for r in run_suite("frames") if r["check"] == "harness-test-crash"]
        assert len(records) == 1
        assert records[0]["status"] == "fail"
        assert "RuntimeError: boom" in records[0]["detail"]
        validate_verdict(records[0])
    finally:
        from repro.conformance import harness as _h

        _h._REGISTRY.pop("harness-test-crash", None)


@functools.lru_cache(maxsize=None)
def _failing_checks(mutant_name: str) -> frozenset[str]:
    records = run_suite(peer=mutant_peer(mutant_name))
    return frozenset(r["check"] for r in records if r["status"] == "fail")


def test_mutant_registry_shape():
    names = available_mutants()
    assert len(names) >= 3
    for name in names:
        assert describe_mutant(name)


@pytest.mark.parametrize("name", available_mutants())
def test_each_mutant_is_caught(name):
    """Every registered spec violation trips at least one check."""
    failed = _failing_checks(name)
    assert failed, f"mutant {name!r} ({describe_mutant(name)}) passed the whole suite"


def test_mutants_cover_three_distinct_violations():
    """The acceptance bar: >= 3 distinct injected violations detected."""
    caught = {name: _failing_checks(name) for name in available_mutants()}
    detected = [name for name, fails in caught.items() if fails]
    assert len(detected) >= 3, f"only {detected} were caught"
    distinct_checks = set().union(*caught.values())
    assert len(distinct_checks) >= 3, (
        f"mutants only exercised {sorted(distinct_checks)}"
    )


def test_honest_peer_shared_across_checks_still_green():
    """A single shared honest peer (the mutant code path) stays green."""
    from repro.conformance.minipeer import MiniPeer

    records = run_suite(peer=MiniPeer())
    failed = [r["check"] for r in records if r["status"] != "pass"]
    assert not failed, f"shared-peer failures: {failed}"
