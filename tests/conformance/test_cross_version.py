"""Cross-version conformance: the channel plane version is not a wire fact.

``ChannelModel(version=1)`` (scratch-MT fates) and ``version=2``
(counter-mode fates) may perturb *different* transmissions, but the
bytes the endpoints put on the wire are version-free: the same seeded
initiator emits byte-identical request frames under both planes, every
tapped datagram parses identically under the repro codec and the
independent mini codec (or is rejected by both), and the protocol
outcome — who friends whom, with which pairwise session key — is the
same in both worlds.
"""

from __future__ import annotations

import random

import pytest

from repro.conformance.adapter import MiniParticipantAdapter
from repro.conformance.minipeer import MiniRejection, MiniWire
from repro.core import wire as rwire
from repro.core.attributes import RequestProfile
from repro.core.exceptions import SerializationError
from repro.core.protocols import Initiator
from repro.network.channel_model import ChannelModel
from repro.network.engine import EpisodeSpec, FriendingEngine
from repro.network.simulator import AdHocNetwork
from repro.network.topology import line_topology

pytestmark = pytest.mark.conformance

_REQUEST = RequestProfile(
    necessary=("hiking", "jazz"),
    optional=("chess", "tennis", "poetry", "sailing"),
    beta=2,
)
_MATCH_ATTRS = ("hiking", "jazz", "chess", "tennis", "cooking")
_WIRE = MiniWire()


def _run_episode(version: int, *, corrupt_rate: float = 0.0, drop_rate: float = 0.0):
    """One engine run over a 4-node line with mini brains and a frame tap."""
    adjacency, _ = line_topology(4)
    nodes = list(adjacency)
    participants = {
        node_id: MiniParticipantAdapter(
            _MATCH_ATTRS, f"user-{node_id}", y_seed=bytes([i + 1]) * 32
        )
        for i, node_id in enumerate(nodes)
    }
    participants[nodes[0]] = None
    channel = ChannelModel(
        drop_rate=drop_rate,
        dup_rate=0.1,
        corrupt_rate=corrupt_rate,
        jitter_ms=2,
        seed=99,
        version=version,
    )
    network = AdHocNetwork(adjacency, participants, channel=channel)
    initiator = Initiator(_REQUEST, protocol=2, p=31, rng=random.Random(7))
    taps: list[tuple[str, str, bytes]] = []
    engine = FriendingEngine(
        network,
        retries=1,
        frame_tap=lambda src, dst, data: taps.append((src, dst, bytes(data))),
    )
    engine.run([EpisodeSpec(nodes[0], initiator)])
    return taps, initiator, participants


def _codec_parity(data: bytes):
    """Decode under both stacks; assert synchronized accept/reject."""
    try:
        repro_frame = rwire.decode_frame(data)
        repro_ok = True
    except SerializationError:
        repro_ok = False
    try:
        mini_frame = _WIRE.decode_frame(data)
        mini_ok = True
    except MiniRejection:
        mini_ok = False
    assert repro_ok == mini_ok, (
        f"codecs disagree on a tapped frame: repro={repro_ok} mini={mini_ok}"
    )
    if not repro_ok:
        return None
    assert (repro_frame.ftype, repro_frame.payload, repro_frame.ttl, repro_frame.seq) == (
        mini_frame.ftype,
        mini_frame.payload,
        mini_frame.ttl,
        mini_frame.seq,
    )
    return repro_frame


def _timeless(ftype: int, payload: bytes) -> bytes:
    """Zero the reply ``sent_at_ms`` field: a timestamp is a time fact, and
    the two planes jitter deliveries differently on purpose.  Everything
    else in the payload must be byte-identical across versions."""
    if ftype == rwire.FT_REPLY:
        return payload[:12] + b"\x00" * 8 + payload[20:]
    return payload


def test_version_never_leaks_into_wire_bytes():
    """v1 and v2 runs exchange exactly the same payload bytes.

    With no drops or corruption the two planes may dup/jitter different
    copies, but the *set* of payloads per frame type must be identical
    (modulo the reply timestamp): the channel version is simulation
    policy, not a serialized field.
    """
    payloads: dict[int, dict[int, set[bytes]]] = {}
    request_frames: dict[int, bytes] = {}
    for version in (1, 2):
        taps, initiator, _ = _run_episode(version)
        assert taps, f"v{version}: the tap saw no frames"
        by_type: dict[int, set[bytes]] = {}
        for _, _, data in taps:
            frame = _codec_parity(data)
            assert frame is not None, f"v{version}: lossless run delivered a bad frame"
            by_type.setdefault(frame.ftype, set()).add(_timeless(frame.ftype, frame.payload))
        payloads[version] = by_type
        assert initiator.matches, f"v{version}: no verified match"
        # The first flood copy leaving the origin carries the request.
        request_frames[version] = next(
            data for _, _, data in taps
            if rwire.decode_frame(data).ftype == rwire.FT_REQUEST
        )
    assert payloads[1] == payloads[2], "channel version changed the payload bytes"
    assert request_frames[1] == request_frames[2], (
        "same-seed request frames differ across channel versions"
    )


def test_protocol_outcome_invariant_across_versions():
    """Matches and pairwise session keys agree between the two planes."""
    outcomes = {}
    for version in (1, 2):
        _, initiator, participants = _run_episode(version)
        records = {
            record.responder_id: record.session_key for record in initiator.matches
        }
        assert records, f"v{version}: no verified matches"
        for responder_id, session_key in records.items():
            adapter = participants[responder_id.removeprefix("user-")]
            assert session_key in adapter.channel_keys(initiator.secret.request_id), (
                f"v{version}: engine-run session key not mirrored at {responder_id}"
            )
        outcomes[version] = records
    assert outcomes[1] == outcomes[2], (
        "the set of (responder, session key) outcomes depends on channel version"
    )


@pytest.mark.parametrize("version", [1, 2])
def test_corrupted_frames_rejected_by_both_codecs(version):
    """Under corruption both stacks drop exactly the same tapped frames."""
    taps, initiator, _ = _run_episode(version, corrupt_rate=0.2)
    assert taps
    rejected = 0
    for _, _, data in taps:
        if _codec_parity(data) is None:
            rejected += 1
    assert rejected > 0, "corrupt_rate=0.2 never produced a mangled frame"
    # The flood still friends someone: corruption is loss, not protocol failure.
    assert initiator.matches, f"v{version}: corruption starved every reply"
