"""Repository hygiene: no compiled-Python artifacts may ever be tracked.

The CI guard step runs the same check shell-side; this test keeps it in
tier-1 so a stray ``git add -A`` fails locally before it reaches CI.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_no_tracked_pycache_or_bytecode():
    try:
        out = subprocess.run(
            ["git", "ls-files"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        pytest.skip("git unavailable or not a repository checkout")
    offenders = [
        path
        for path in out.stdout.splitlines()
        if "__pycache__" in path or path.endswith((".pyc", ".pyo"))
    ]
    assert offenders == [], f"compiled-python artifacts are tracked: {offenders}"
