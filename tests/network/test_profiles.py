"""Scenario profiles: registry lookup, spec construction, override precedence."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ScenarioSpec, SpecError
from repro.network.profiles import (
    BUILTIN_PROFILES,
    available_profiles,
    load_profile,
)
from repro.network.reliability import RELIABILITY_MODES


class TestProfileRegistry:
    def test_builtin_profiles_present(self):
        required = {"city", "campus", "vehicular", "stadium-burst"}
        assert required.issubset(set(BUILTIN_PROFILES))

    def test_load_profile_returns_profile(self):
        profile = load_profile("city")
        assert profile.name == "city"
        assert profile.settings["nodes"] == 2000
        assert profile.settings["reliability"] == "window_fec"

    def test_load_profile_unknown_raises(self):
        with pytest.raises(ValueError):
            load_profile("not-a-profile")

    def test_unknown_profile_error_lists_the_choices(self):
        with pytest.raises(ValueError, match="unknown scenario profile.*city"):
            load_profile("metropolis")

    def test_available_profiles_matches_registry(self):
        assert available_profiles() == tuple(BUILTIN_PROFILES)

    def test_settings_are_read_only(self):
        profile = load_profile("campus")
        with pytest.raises(TypeError):
            profile.settings["nodes"] = 5  # type: ignore[index]

    def test_every_profile_names_a_real_reliability_mode(self):
        for profile in BUILTIN_PROFILES.values():
            assert profile.settings["reliability"] in RELIABILITY_MODES


class TestProfileSpecs:
    def test_every_builtin_constructs_a_valid_spec(self):
        for name in available_profiles():
            spec = ScenarioSpec.from_profile(name, name=f"p-{name}")
            assert spec.nodes == BUILTIN_PROFILES[name].settings["nodes"]
            assert spec.reliability == BUILTIN_PROFILES[name].settings["reliability"]

    def test_explicit_overrides_beat_profile_settings(self):
        spec = ScenarioSpec.from_profile(
            "city", name="tiny-city", nodes=40, episodes=2, reliability="simple"
        )
        assert spec.nodes == 40
        assert spec.episodes == 2
        assert spec.reliability == "simple"
        # Untouched settings still come from the profile.
        assert spec.loss_rate == BUILTIN_PROFILES["city"].settings["loss_rate"]

    def test_from_dict_profile_key(self):
        spec = ScenarioSpec.from_dict(
            {"name": "v", "profile": "vehicular", "nodes": 30}
        )
        assert spec.profile == "vehicular"
        assert spec.nodes == 30
        assert spec.reliability == "stage"
        assert spec.retransmit_timeout_ms == 400

    def test_from_dict_unknown_profile_is_a_spec_error(self):
        with pytest.raises(SpecError, match="unknown scenario profile"):
            ScenarioSpec.from_dict({"name": "x", "profile": "atlantis"})

    def test_spec_validates_reliability_name(self):
        with pytest.raises(SpecError, match="unknown reliability mode"):
            ScenarioSpec(name="x", nodes=10, reliability="nope")

    def test_spec_validates_retransmit_timeout(self):
        with pytest.raises(SpecError, match="retransmit_timeout_ms"):
            ScenarioSpec(name="x", nodes=10, retransmit_timeout_ms=0)
