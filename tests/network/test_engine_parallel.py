"""Multi-core episode sharding: run_parallel == run, episode for episode."""

from __future__ import annotations

import random

import pytest

from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant
from repro.crypto.backend import use_backend
from repro.network.engine import EpisodeSpec, FriendingEngine
from repro.network.simulator import AdHocNetwork
from repro.network.topology import line_topology, random_geometric_topology

N_NODES = 60
N_EPISODES = 12


def _build() -> tuple[AdHocNetwork, list[tuple[str, Initiator]]]:
    """Community scenario with per-entity seeded RNGs (the determinism
    precondition run_parallel inherits from the engine's episode-isolation
    property)."""
    adjacency, _ = random_geometric_topology(N_NODES, 0.22, seed=42)
    nodes = list(adjacency)
    participants = {
        node: Participant(
            Profile(
                [f"c{i % N_EPISODES}:t{j}" for j in range(3)] + [f"noise:{node}"],
                user_id=node, normalized=True,
            ),
            rng=random.Random(3000 + i),
        )
        for i, node in enumerate(nodes)
    }
    launches = [
        (
            nodes[episode * (N_NODES // N_EPISODES)],
            Initiator(
                RequestProfile(
                    necessary=[f"c{episode}:t0"],
                    optional=[f"c{episode}:t1", f"c{episode}:t2"],
                    beta=1, normalized=True,
                ),
                protocol=2, rng=random.Random(7000 + episode),
            ),
        )
        for episode in range(N_EPISODES)
    ]
    return AdHocNetwork(adjacency, participants), launches


def _fingerprints(result) -> list[tuple]:
    return [
        (
            ep.episode,
            ep.initiator_node,
            ep.started_at_ms,
            ep.completed_at_ms,
            ep.matched_ids,
            [(m.responder_id, m.similarity, m.y, m.session_key) for m in ep.matches],
            [r.elements for r in ep.replies],
            tuple(sorted(ep.metrics.as_dict().items())),
        )
        for ep in result.episodes
    ]


class TestParallelDeterminism:
    def test_workers4_equals_sequential(self):
        network, launches = _build()
        sequential = FriendingEngine(network).run_staggered(launches, arrival_ms=7)

        network, launches = _build()
        parallel = FriendingEngine(network).run_staggered(
            launches, arrival_ms=7, workers=4
        )

        assert sequential.aggregate.matches >= N_EPISODES  # scenario is non-trivial
        assert _fingerprints(sequential) == _fingerprints(parallel)
        assert sequential.aggregate.as_dict() == parallel.aggregate.as_dict()
        assert sequential.completed_at_ms == parallel.completed_at_ms
        assert parallel.topology_refreshes == 0

    def test_result_order_is_spec_order(self):
        network, launches = _build()
        result = FriendingEngine(network).run_parallel(
            [
                EpisodeSpec(initiator_node=node, initiator=initiator, start_ms=7 * i)
                for i, (node, initiator) in enumerate(launches)
            ],
            workers=5,
        )
        assert [ep.episode for ep in result.episodes] == list(range(N_EPISODES))
        assert [ep.started_at_ms for ep in result.episodes] == [
            7 * i for i in range(N_EPISODES)
        ]

    def test_parallel_is_backend_agnostic(self):
        """Sharded workers inherit the caller's backend selection."""
        results = {}
        for backend in ("pure", "tables"):
            with use_backend(backend):
                network, launches = _build()
                results[backend] = FriendingEngine(network).run_staggered(
                    launches[:4], arrival_ms=7, workers=2
                )
        assert _fingerprints(results["pure"]) == _fingerprints(results["tables"])

    def test_workers_one_delegates_to_run(self):
        network, launches = _build()
        specs = [
            EpisodeSpec(initiator_node=node, initiator=initiator, start_ms=i)
            for i, (node, initiator) in enumerate(launches[:2])
        ]
        result = FriendingEngine(network).run_parallel(specs, workers=1)
        # The sequential path mutates the caller's initiators in place.
        assert result.episodes[0].initiator is specs[0].initiator
        assert specs[0].initiator.secret is not None

    def test_worker_copies_leave_caller_state_untouched(self):
        network, launches = _build()
        specs = [
            EpisodeSpec(initiator_node=node, initiator=initiator, start_ms=i)
            for i, (node, initiator) in enumerate(launches[:4])
        ]
        result = FriendingEngine(network).run_parallel(specs, workers=2)
        # Episode state lives on worker-side copies; results come from the
        # returned EpisodeResult objects, not the submitted initiators.
        assert all(spec.initiator.secret is None for spec in specs)
        assert all(ep.initiator.secret is not None for ep in result.episodes)


class TestParallelValidation:
    def _engine(self) -> FriendingEngine:
        adjacency, _ = line_topology(3)
        network = AdHocNetwork(adjacency, {n: None for n in adjacency})
        return FriendingEngine(network)

    def _spec(self, node: str = "n0") -> EpisodeSpec:
        return EpisodeSpec(
            initiator_node=node,
            initiator=Initiator(RequestProfile.exact(["tag:a"], normalized=True)),
        )

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            self._engine().run_parallel([self._spec()], workers=0)

    def test_rejects_empty_specs(self):
        with pytest.raises(ValueError, match="at least one episode"):
            self._engine().run_parallel([], workers=2)

    def test_rejects_unknown_node(self):
        with pytest.raises(ValueError, match="unknown initiator node"):
            self._engine().run_parallel([self._spec("n99")], workers=2)

    def test_rejects_mobility_refresh(self):
        class _Mobility:
            def step(self, dt_s):
                pass

            def snapshot_topology(self, radius):
                return {"n0": [], "n1": [], "n2": []}

        adjacency, _ = line_topology(3)
        network = AdHocNetwork(adjacency, {n: None for n in adjacency})
        engine = FriendingEngine(
            network, mobility=_Mobility(), radio_radius=0.5, refresh_interval_ms=50
        )
        with pytest.raises(ValueError, match="topology refresh"):
            engine.run_parallel([self._spec()], workers=2)
