"""Random-waypoint mobility tests."""

from __future__ import annotations

import math

import pytest

from repro.network.mobility import RandomWaypoint, StaticPlacement
from repro.network.topology import naive_adjacency

NODES = [f"n{i}" for i in range(10)]


class TestMovement:
    def test_positions_stay_in_unit_square(self):
        model = RandomWaypoint(NODES, seed=1)
        for _ in range(50):
            model.step(1.0)
            for x, y in model.positions().values():
                assert 0.0 <= x <= 1.0
                assert 0.0 <= y <= 1.0

    def test_nodes_actually_move(self):
        model = RandomWaypoint(NODES, seed=2, pause_s=0.0)
        before = model.positions()
        model.step(5.0)
        after = model.positions()
        moved = sum(1 for n in NODES if before[n] != after[n])
        assert moved >= len(NODES) // 2

    def test_speed_bounded(self):
        model = RandomWaypoint(NODES, seed=3, min_speed=0.01, max_speed=0.05, pause_s=0.0)
        dt = 0.5
        before = model.positions()
        model.step(dt)
        after = model.positions()
        for node in NODES:
            dist = math.dist(before[node], after[node])
            assert dist <= 0.05 * dt + 1e-9

    def test_deterministic_with_seed(self):
        a = RandomWaypoint(NODES, seed=7)
        b = RandomWaypoint(NODES, seed=7)
        a.step(10.0)
        b.step(10.0)
        assert a.positions() == b.positions()

    def test_pause_halts_motion(self):
        model = RandomWaypoint(["x"], seed=4, pause_s=1000.0)
        # Walk the node to its first waypoint so it enters the pause state.
        model.step(200.0)
        at_waypoint = model.positions()["x"]
        model.step(1.0)
        assert model.positions()["x"] == at_waypoint

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RandomWaypoint(NODES, min_speed=0.0)
        with pytest.raises(ValueError):
            RandomWaypoint(NODES, min_speed=0.5, max_speed=0.1)
        model = RandomWaypoint(NODES, seed=1)
        with pytest.raises(ValueError):
            model.step(-1.0)


class TestTopologySnapshots:
    def test_adjacency_symmetric(self):
        model = RandomWaypoint(NODES, seed=5)
        adjacency = model.snapshot_topology(0.3)
        for node, neighbours in adjacency.items():
            for other in neighbours:
                assert node in adjacency[other]

    def test_radius_zero_isolates(self):
        model = RandomWaypoint(NODES, seed=6)
        adjacency = model.snapshot_topology(0.0)
        assert all(not neighbours for neighbours in adjacency.values())

    def test_radius_sqrt2_connects_all(self):
        model = RandomWaypoint(NODES, seed=6)
        adjacency = model.snapshot_topology(1.5)
        assert all(len(n) == len(NODES) - 1 for n in adjacency.values())

    def test_topology_changes_over_time(self):
        model = RandomWaypoint(NODES, seed=8, pause_s=0.0, max_speed=0.2)
        first = model.snapshot_topology(0.25)
        model.step(20.0)
        second = model.snapshot_topology(0.25)
        assert first != second


class TestGridSnapshots:
    """The grid-backed snapshot must be indistinguishable from brute force."""

    def test_first_snapshot_equals_naive(self):
        model = RandomWaypoint(NODES, seed=21)
        assert model.snapshot_topology(0.3) == naive_adjacency(model.positions(), 0.3)

    def test_incremental_snapshots_track_motion(self):
        model = RandomWaypoint(NODES, seed=22, pause_s=0.0, max_speed=0.2)
        model.snapshot_topology(0.25)  # prime the grid
        for _ in range(12):
            model.step(1.5)
            assert model.snapshot_topology(0.25) == naive_adjacency(
                model.positions(), 0.25
            ), "incremental refresh diverged from the all-pairs reference"

    def test_radius_change_rebuilds(self):
        model = RandomWaypoint(NODES, seed=23)
        model.snapshot_topology(0.2)
        assert model.snapshot_topology(0.4) == naive_adjacency(model.positions(), 0.4)

    def test_snapshot_is_a_private_copy(self):
        model = RandomWaypoint(NODES, seed=24)
        first = model.snapshot_topology(0.3)
        first[NODES[0]].append("poison")
        assert "poison" not in model.snapshot_topology(0.3)[NODES[0]]


class TestTopologyDelta:
    def test_first_delta_is_full(self):
        model = RandomWaypoint(NODES, seed=30)
        delta = model.topology_delta(0.3)
        assert set(delta) == set(NODES)

    def test_no_motion_no_delta(self):
        model = RandomWaypoint(NODES, seed=31)
        model.topology_delta(0.3)
        assert model.topology_delta(0.3) == {}

    def test_delta_patches_to_full_snapshot(self):
        """Applying successive deltas reproduces every full snapshot."""
        model = RandomWaypoint(NODES, seed=32, pause_s=0.0, max_speed=0.2)
        shadow = RandomWaypoint(NODES, seed=32, pause_s=0.0, max_speed=0.2)
        view = model.topology_delta(0.25)
        for _ in range(8):
            model.step(1.0)
            shadow.step(1.0)
            view.update(model.topology_delta(0.25))
            assert view == shadow.snapshot_topology(0.25)

    def test_delta_rows_changed_only(self):
        model = RandomWaypoint(NODES, seed=33, pause_s=0.0)
        before = model.snapshot_topology(0.25)
        model.step(0.05)  # tiny step: most neighbour lists survive
        delta = model.topology_delta(0.25)
        for node, row in delta.items():
            assert row != before[node], f"{node} reported unchanged row in delta"


class TestStaticPlacement:
    def test_positions_fixed_and_in_unit_square(self):
        model = StaticPlacement(NODES, seed=40)
        before = model.positions()
        model.step(100.0)
        assert model.positions() == before
        for x, y in before.values():
            assert 0.0 <= x <= 1.0
            assert 0.0 <= y <= 1.0

    def test_deterministic_with_seed(self):
        assert StaticPlacement(NODES, seed=41).positions() == StaticPlacement(
            NODES, seed=41
        ).positions()

    def test_snapshot_matches_naive_and_delta_empties(self):
        model = StaticPlacement(NODES, seed=42)
        # Cold cache: the first delta is the full adjacency.
        assert set(model.topology_delta(0.3)) == set(NODES)
        assert model.snapshot_topology(0.3) == naive_adjacency(model.positions(), 0.3)
        model.step(50.0)  # static: time passes, nothing moves
        assert model.topology_delta(0.3) == {}

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            StaticPlacement(NODES, seed=43).step(-1.0)
