"""Mobile scenario engine tests."""

from __future__ import annotations

import pytest

from repro.network.scenario import MobileScenario, ScenarioSummary, SearchReport


class TestSearchReport:
    def test_precision_recall(self):
        report = SearchReport(
            time_s=0, searcher="a",
            truly_nearby={"b", "c"}, matched={"b", "d"},
        )
        assert report.precision == 0.5
        assert report.recall == 0.5

    def test_empty_matched_is_full_precision(self):
        report = SearchReport(time_s=0, searcher="a", truly_nearby={"b"}, matched=set())
        assert report.precision == 1.0
        assert report.recall == 0.0

    def test_nobody_nearby_is_full_recall(self):
        report = SearchReport(time_s=0, searcher="a", truly_nearby=set(), matched=set())
        assert report.recall == 1.0


class TestScenario:
    @pytest.fixture(scope="class")
    def summary(self):
        scenario = MobileScenario(
            n_nodes=12, area_m=200.0, cell_m=10.0, search_range_m=50.0,
            theta=0.45, seed=5,
        )
        return scenario.run(duration_s=90.0, search_interval_s=30.0, dt_s=5.0)

    def test_searches_happen(self, summary: ScenarioSummary):
        assert summary.searches == 3

    def test_private_matching_tracks_proximity(self, summary: ScenarioSummary):
        # The lattice quantization loses some boundary cases; the bulk of
        # matches must still be genuinely nearby users.
        assert summary.mean_precision >= 0.6
        assert summary.mean_recall >= 0.5

    def test_time_advances(self):
        scenario = MobileScenario(n_nodes=3, seed=1)
        scenario.step(10.0)
        assert scenario.time_s == 10.0

    def test_positions_scaled_to_area(self):
        scenario = MobileScenario(n_nodes=5, area_m=300.0, seed=2)
        for x, y in scenario.positions_m().values():
            assert 0.0 <= x <= 300.0
            assert 0.0 <= y <= 300.0

    def test_matches_move_with_the_users(self):
        """A search after lots of motion sees a different nearby set."""
        scenario = MobileScenario(
            n_nodes=10, area_m=150.0, search_range_m=60.0, theta=0.4,
            speed_mps=(2.0, 5.0), seed=9,
        )
        first = scenario.run_search("phone0")
        scenario.step(120.0)
        second = scenario.run_search("phone0")
        assert first.truly_nearby != second.truly_nearby or first.matched != second.matched

    def test_deterministic(self):
        a = MobileScenario(n_nodes=8, seed=4).run(duration_s=60.0)
        b = MobileScenario(n_nodes=8, seed=4).run(duration_s=60.0)
        assert [(r.searcher, r.matched) for r in a.reports] == [
            (r.searcher, r.matched) for r in b.reports
        ]


class TestConcurrentSearches:
    def test_reports_for_every_searcher(self):
        scenario = MobileScenario(
            n_nodes=8, area_m=150.0, search_range_m=30.0, theta=0.5, seed=6
        )
        searchers = ["phone0", "phone3", "phone7"]
        reports = scenario.run_concurrent_searches(searchers, radio_range_m=120.0)
        assert [r.searcher for r in reports] == searchers
        for report in reports:
            assert report.searcher not in report.matched
            assert 0.0 <= report.precision <= 1.0
            assert 0.0 <= report.recall <= 1.0

    def test_deterministic(self):
        def run():
            scenario = MobileScenario(
                n_nodes=8, area_m=120.0, search_range_m=30.0, theta=0.5, seed=11
            )
            return [
                (r.searcher, frozenset(r.matched))
                for r in scenario.run_concurrent_searches(
                    ["phone1", "phone4"], radio_range_m=100.0
                )
            ]

        assert run() == run()
