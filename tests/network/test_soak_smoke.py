"""SOAK-gated smoke arm of the long-running soak harness.

Runs :mod:`tools.soak` in-process for a small stretch of sim-time (a
couple of sim-minutes instead of hours) and asserts the survival
invariants the full soak enforces: every injected episode retires, no
wedges, bounded caches, and tracemalloc growth after warm-up stays tiny.
The full-length run stays an operator/CI concern (``tools/soak.py
--sim-hours 1``); this arm exists so CI can exercise the harness end to
end without paying for an hour of sim-time.  Opt-in via ``SOAK=1`` —
the same idiom as ``METRO_1M``/``FLOOD_100K``.

    SOAK=1 PYTHONPATH=src python -m pytest -q tests/network/test_soak_smoke.py
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent.parent / "tools"))

import soak  # noqa: E402


@pytest.mark.skipif(os.environ.get("SOAK") != "1", reason="set SOAK=1 to run")
def test_soak_smoke_holds_invariants():
    args = soak.build_parser().parse_args([
        "--sim-hours", "0.03",
        "--nodes", "150",
        "--inject-every-ms", "4000",
        "--leak-limit-mb", "16",
        "--rss-limit-mb", "512",
    ])
    record = soak.run_soak(args)
    assert record["bench"] == "soak"
    assert record["episodes_injected"] > 0
    assert record["episodes_retired"] == record["episodes_injected"]
    assert record["nodes_joined"] > 0 and record["nodes_left"] > 0
    assert record["traced_growth_mb"] <= 16
