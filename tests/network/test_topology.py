"""Topology generator and spatial-index tests."""

from __future__ import annotations

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import (
    SpatialGrid,
    city_topology,
    complete_topology,
    grid_topology,
    line_topology,
    naive_adjacency,
    proximity_adjacency,
    random_geometric_topology,
)


def _is_connected(adjacency):
    graph = nx.Graph()
    graph.add_nodes_from(adjacency)
    for node, neighbours in adjacency.items():
        for other in neighbours:
            graph.add_edge(node, other)
    return nx.is_connected(graph)


class TestRandomGeometric:
    def test_connected_by_default(self):
        adjacency, _ = random_geometric_topology(40, radius=0.15, seed=3)
        assert _is_connected(adjacency)

    def test_symmetric_edges(self):
        adjacency, _ = random_geometric_topology(30, radius=0.3, seed=1)
        for node, neighbours in adjacency.items():
            for other in neighbours:
                assert node in adjacency[other]

    def test_positions_in_unit_square(self):
        _, positions = random_geometric_topology(20, seed=2)
        for x, y in positions.values():
            assert 0.0 <= x <= 1.0
            assert 0.0 <= y <= 1.0

    def test_deterministic_with_seed(self):
        a, _ = random_geometric_topology(25, seed=9)
        b, _ = random_geometric_topology(25, seed=9)
        assert a == b


class TestGrid:
    def test_shape(self):
        adjacency, _ = grid_topology(4, 3)
        assert len(adjacency) == 12

    def test_corner_has_two_neighbours(self):
        adjacency, _ = grid_topology(4, 3)
        assert len(adjacency["n0"]) == 2

    def test_interior_has_four_neighbours(self):
        adjacency, _ = grid_topology(3, 3)
        assert len(adjacency["n4"]) == 4

    def test_connected(self):
        adjacency, _ = grid_topology(5, 5)
        assert _is_connected(adjacency)


class TestLine:
    def test_endpoints(self):
        adjacency, _ = line_topology(5)
        assert adjacency["n0"] == ["n1"]
        assert adjacency["n4"] == ["n3"]

    def test_middle(self):
        adjacency, _ = line_topology(5)
        assert adjacency["n2"] == ["n1", "n3"]


class TestComplete:
    def test_everyone_connected(self):
        adjacency, _ = complete_topology(6)
        for node, neighbours in adjacency.items():
            assert len(neighbours) == 5
            assert node not in neighbours


class TestSpatialGrid:
    def test_insert_query_within_radius(self):
        grid = SpatialGrid(0.25)
        grid.insert("a", 0.5, 0.5)
        grid.insert("b", 0.6, 0.5)
        grid.insert("c", 0.9, 0.9)
        assert grid.neighbors_within("a") == ["b"]
        assert set(grid.query(0.55, 0.5)) == {"a", "b"}

    def test_duplicate_insert_rejected(self):
        grid = SpatialGrid(0.1)
        grid.insert("a", 0.5, 0.5)
        with pytest.raises(ValueError):
            grid.insert("a", 0.1, 0.1)

    def test_move_rebuckets_and_reports_cells(self):
        grid = SpatialGrid(0.1)
        grid.insert("a", 0.05, 0.05)
        old, new = grid.move("a", 0.95, 0.95)
        assert old != new
        assert grid.position("a") == (0.95, 0.95)
        assert grid.cell_of("a") == new

    def test_move_within_cell_keeps_bucket(self):
        grid = SpatialGrid(0.5)
        grid.insert("a", 0.1, 0.1)
        old, new = grid.move("a", 0.2, 0.2)
        assert old == new

    def test_nearest_is_exact(self):
        # "b" sits in a farther ring than "c" but is closer in distance --
        # the ring search must not stop at the first occupied ring.
        grid = SpatialGrid(0.1)
        grid.insert("far", 0.95, 0.95)
        grid.insert("b", 0.31, 0.005)
        grid.insert("c", 0.15, 0.25)
        node, dist = grid.nearest(0.05, 0.0)
        assert node == "b"
        assert dist == pytest.approx(math.hypot(0.31 - 0.05, 0.005))

    def test_nearest_empty_grid(self):
        assert SpatialGrid(0.1).nearest(0.5, 0.5) is None

    def test_zero_radius_connects_only_colocated(self):
        grid = SpatialGrid(0.0)
        grid.insert("a", 0.5, 0.5)
        grid.insert("b", 0.5, 0.5)
        grid.insert("c", 0.500001, 0.5)
        assert grid.neighbors_within("a") == ["b"]


class TestGridVsNaiveEquivalence:
    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            min_size=2,
            max_size=40,
        ),
        radius=st.floats(min_value=0.0, max_value=1.5, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_grid_equals_naive(self, points, radius):
        """Property: grid adjacency is list-for-list the all-pairs result."""
        positions = {f"n{i}": p for i, p in enumerate(points)}
        assert proximity_adjacency(positions, radius) == naive_adjacency(positions, radius)

    def test_equivalence_at_scale(self):
        _, positions = city_topology(800, 0.05, seed=3, connect=False)
        assert proximity_adjacency(positions, 0.05) == naive_adjacency(positions, 0.05)


class TestCityTopology:
    def test_connected_by_default(self):
        adjacency, _ = city_topology(300, 0.05, seed=4)
        assert _is_connected(adjacency)

    def test_symmetric_edges(self):
        adjacency, _ = city_topology(150, 0.08, seed=5)
        for node, neighbours in adjacency.items():
            for other in neighbours:
                assert node in adjacency[other]

    def test_positions_in_unit_square(self):
        _, positions = city_topology(50, 0.1, seed=6)
        for x, y in positions.values():
            assert 0.0 <= x <= 1.0
            assert 0.0 <= y <= 1.0

    def test_deterministic_with_seed(self):
        assert city_topology(120, 0.07, seed=9) == city_topology(120, 0.07, seed=9)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            city_topology(-1, 0.1)
        with pytest.raises(ValueError):
            city_topology(10, -0.1)
