"""Topology generator tests."""

from __future__ import annotations

import networkx as nx

from repro.network.topology import (
    complete_topology,
    grid_topology,
    line_topology,
    random_geometric_topology,
)


def _is_connected(adjacency):
    graph = nx.Graph()
    graph.add_nodes_from(adjacency)
    for node, neighbours in adjacency.items():
        for other in neighbours:
            graph.add_edge(node, other)
    return nx.is_connected(graph)


class TestRandomGeometric:
    def test_connected_by_default(self):
        adjacency, _ = random_geometric_topology(40, radius=0.15, seed=3)
        assert _is_connected(adjacency)

    def test_symmetric_edges(self):
        adjacency, _ = random_geometric_topology(30, radius=0.3, seed=1)
        for node, neighbours in adjacency.items():
            for other in neighbours:
                assert node in adjacency[other]

    def test_positions_in_unit_square(self):
        _, positions = random_geometric_topology(20, seed=2)
        for x, y in positions.values():
            assert 0.0 <= x <= 1.0
            assert 0.0 <= y <= 1.0

    def test_deterministic_with_seed(self):
        a, _ = random_geometric_topology(25, seed=9)
        b, _ = random_geometric_topology(25, seed=9)
        assert a == b


class TestGrid:
    def test_shape(self):
        adjacency, _ = grid_topology(4, 3)
        assert len(adjacency) == 12

    def test_corner_has_two_neighbours(self):
        adjacency, _ = grid_topology(4, 3)
        assert len(adjacency["n0"]) == 2

    def test_interior_has_four_neighbours(self):
        adjacency, _ = grid_topology(3, 3)
        assert len(adjacency["n4"]) == 4

    def test_connected(self):
        adjacency, _ = grid_topology(5, 5)
        assert _is_connected(adjacency)


class TestLine:
    def test_endpoints(self):
        adjacency, _ = line_topology(5)
        assert adjacency["n0"] == ["n1"]
        assert adjacency["n4"] == ["n3"]

    def test_middle(self):
        adjacency, _ = line_topology(5)
        assert adjacency["n2"] == ["n1", "n3"]


class TestComplete:
    def test_everyone_connected(self):
        adjacency, _ = complete_topology(6)
        for node, neighbours in adjacency.items():
            assert len(neighbours) == 5
            assert node not in neighbours
