"""Open-world engine plane: begin/step/finish, injection, bounded caches.

The incremental API must be invisible when nothing open-world happens:
``begin()`` + ``step()`` chunks + ``finish()`` reproduces ``run()`` byte
for byte across both channel fate planes, all four reliability modes and
region sharding.  On top of that sit the genuinely open-world behaviours:
mid-run episode injection (identical under sharding), node departure
degrading -- never wedging -- episodes, per-episode state retirement, and
the LRU bounds on the decode caches.
"""

from __future__ import annotations

import random

import pytest

from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant
from repro.network.channel_model import ChannelModel
from repro.network.engine import (
    DEFAULT_DECODE_CACHE_CAP,
    DEFAULT_REJECT_CACHE_CAP,
    EpisodeSpec,
    FriendingEngine,
    _BoundedCache,
)
from repro.network.regions import RegionShardedEngine
from repro.network.simulator import AdHocNetwork
from repro.network.topology import city_topology

N_NODES = 200
N_EPISODES = 4

LOSSY = dict(drop_rate=0.1, dup_rate=0.05, reorder_rate=0.1,
             corrupt_rate=0.05, jitter_ms=3, seed=5)


def _build(version: int = 1):
    adjacency, positions = city_topology(N_NODES, radius=0.11, seed=42)
    nodes = list(adjacency)
    participants = {
        node: Participant(
            Profile(
                [f"c{i % N_EPISODES}:t{j}" for j in range(3)] + [f"noise:{node}"],
                user_id=node, normalized=True,
            ),
            rng=random.Random(3000 + i),
        )
        for i, node in enumerate(nodes)
    }
    channel = ChannelModel(**LOSSY, version=version)
    return AdHocNetwork(adjacency, participants, channel=channel), positions, nodes


def _initiator(episode: int) -> Initiator:
    return Initiator(
        RequestProfile(
            necessary=[f"c{episode % N_EPISODES}:t0"],
            optional=[f"c{episode % N_EPISODES}:t1"],
            beta=1, normalized=True,
        ),
        protocol=2, rng=random.Random(7000 + episode),
    )


def _specs(nodes, arrival_ms: int = 7):
    return [
        EpisodeSpec(
            initiator_node=nodes[episode * (N_NODES // N_EPISODES)],
            initiator=_initiator(episode),
            start_ms=episode * arrival_ms,
        )
        for episode in range(N_EPISODES)
    ]


def _engine(network, positions, *, regions: int, reliability: str):
    kwargs = dict(retries=2, retransmit_timeout_ms=200, reliability=reliability)
    if regions == 1:
        return FriendingEngine(network, **kwargs)
    return RegionShardedEngine(
        network, positions=positions, regions=regions, **kwargs
    )


def _fingerprints(result) -> list[tuple]:
    return [
        (
            ep.episode, ep.initiator_node, ep.started_at_ms, ep.completed_at_ms,
            ep.matched_ids,
            [(m.responder_id, m.similarity, m.y, m.session_key) for m in ep.matches],
            [r.elements for r in ep.replies],
            tuple(sorted(ep.metrics.as_dict().items())),
        )
        for ep in result.episodes
    ]


class TestStepEqualsRun:
    """begin/step/finish with zero churn is byte-identical to run()."""

    @pytest.mark.parametrize("version", [1, 2])
    @pytest.mark.parametrize(
        "reliability", ["simple", "stage", "window", "window_fec"]
    )
    @pytest.mark.parametrize("regions", [1, 2])
    def test_matrix(self, version, reliability, regions):
        network, positions, nodes = _build(version)
        closed = _engine(network, positions, regions=regions,
                         reliability=reliability).run(_specs(nodes))

        network, positions, nodes = _build(version)
        engine = _engine(network, positions, regions=regions,
                         reliability=reliability)
        engine.begin(_specs(nodes))
        for until in range(50, 2_000, 50):  # arbitrary chunk boundaries
            engine.step(until)
        stepped = engine.finish()

        assert closed.aggregate.matches > 0
        assert _fingerprints(closed) == _fingerprints(stepped)
        assert closed.aggregate.as_dict() == stepped.aggregate.as_dict()
        assert closed.completed_at_ms == stepped.completed_at_ms

    def test_step_returns_executed_count(self):
        network, positions, nodes = _build()
        engine = FriendingEngine(network)
        engine.begin(_specs(nodes))
        total = 0
        while engine.live_episode_count():
            executed = engine.step(engine._queue.now_ms + 100)
            assert executed >= 0
            total += executed
        assert total > 0


class TestInjection:
    """Episodes injected at arbitrary sim times, sequential == sharded."""

    def _run_with_inject(self, regions: int):
        network, positions, nodes = _build()
        engine = _engine(network, positions, regions=regions, reliability="simple")
        engine.begin(_specs(nodes)[:2])
        engine.step(40)
        idx = engine.inject(EpisodeSpec(
            initiator_node=nodes[N_NODES // 2], initiator=_initiator(2),
            start_ms=60,
        ))
        assert idx == 2
        engine.step(90)
        engine.inject(EpisodeSpec(
            initiator_node=nodes[N_NODES // 3], initiator=_initiator(3),
            start_ms=engine._queue.now_ms + 5,
        ))
        return engine.finish()

    def test_sequential_equals_sharded(self):
        sequential = self._run_with_inject(regions=1)
        sharded = self._run_with_inject(regions=2)
        assert len(sequential.episodes) == 4
        assert sequential.episodes[2].matches  # injected episode really ran
        assert _fingerprints(sequential) == _fingerprints(sharded)
        assert sequential.aggregate.as_dict() == sharded.aggregate.as_dict()

    def test_inject_into_the_past_is_rejected(self):
        network, positions, nodes = _build()
        engine = FriendingEngine(network)
        engine.begin(_specs(nodes)[:1])
        engine.step(500)
        with pytest.raises(ValueError, match="clock is already"):
            engine.inject(EpisodeSpec(
                initiator_node=nodes[5], initiator=_initiator(1), start_ms=10,
            ))

    def test_inject_requires_begin(self):
        network, positions, nodes = _build()
        engine = FriendingEngine(network)
        with pytest.raises(RuntimeError):
            engine.inject(EpisodeSpec(
                initiator_node=nodes[0], initiator=_initiator(0), start_ms=0,
            ))

    def test_inject_on_departed_node_is_rejected(self):
        network, positions, nodes = _build()
        engine = FriendingEngine(network)
        engine.begin(_specs(nodes)[:1])
        engine.leave_node(nodes[5])
        with pytest.raises(ValueError, match="departed"):
            engine.inject(EpisodeSpec(
                initiator_node=nodes[5], initiator=_initiator(1), start_ms=100,
            ))


class TestDegradation:
    """Departed initiators degrade their episodes; the drain always ends."""

    def test_initiator_departure_degrades_but_completes(self):
        network, positions, nodes = _build()
        engine = FriendingEngine(network, retries=2, retransmit_timeout_ms=200)
        specs = _specs(nodes)[:2]
        engine.begin(specs)
        engine.step(10)  # mid-flood
        engine.leave_node(specs[0].initiator_node)
        result = engine.finish()
        total = result.aggregate.total
        assert total.nodes_left == 1
        assert total.degraded_episodes == 1
        assert engine.live_episode_count() == 0
        assert not engine.wedged_episodes()
        # the untouched episode is unharmed
        assert result.episodes[1].matches

    def test_crash_resets_volatile_state(self):
        network, positions, nodes = _build()
        engine = FriendingEngine(network)
        engine.begin(_specs(nodes)[:1])
        engine.step(30)
        victim = nodes[10]
        engine.crash_node(victim)
        node = network.nodes[victim]
        assert len(node.sessions) == 0
        assert engine.churn_metrics.nodes_crashed == 1
        engine.finish()

    def test_join_wires_node_into_the_mesh(self):
        network, positions, nodes = _build()
        engine = FriendingEngine(network)
        engine.begin(_specs(nodes)[:1])
        engine.join_node("fresh", None, [nodes[0], nodes[1]])
        assert "fresh" in network.nodes
        assert "fresh" in network.nodes[nodes[0]].neighbours
        assert engine.churn_metrics.nodes_joined == 1
        engine.leave_node("fresh")
        assert "fresh" not in network.nodes[nodes[0]].neighbours
        engine.finish()


class TestRetirement:
    """Settled episodes free their state without waiting for finish()."""

    def test_episodes_retire_as_they_settle(self):
        network, positions, nodes = _build()
        engine = FriendingEngine(network)
        engine.begin(_specs(nodes))
        assert engine.live_episode_count() == N_EPISODES
        engine.step(None)  # drain fully but do not finish
        assert engine.live_episode_count() == 0
        assert engine.retired_count() == N_EPISODES
        result = engine.finish()
        assert len(result.episodes) == N_EPISODES
        assert all(ep.matches is not None for ep in result.episodes)

    def test_retired_initiator_lookup_returns_none(self):
        network, positions, nodes = _build()
        engine = FriendingEngine(network)
        engine.begin(_specs(nodes)[:1])
        assert engine.episode_initiator_node(0) == nodes[0]
        engine.step(None)
        assert engine.episode_initiator_node(0) is None
        engine.finish()


class TestBoundedCaches:
    def test_bounded_cache_evicts_oldest_quarter(self):
        cache = _BoundedCache(8)
        for i in range(8):
            cache.put(i, i)
        assert len(cache) == 8
        cache.put(8, 8)  # evicts keys 0 and 1 (8 // 4 = 2 oldest)
        assert len(cache) == 7
        assert 0 not in cache and 1 not in cache
        assert cache[8] == 8 and cache[7] == 7

    def test_cache_cap_validation(self):
        with pytest.raises(ValueError):
            _BoundedCache(3)
        with pytest.raises(ValueError):
            FriendingEngine(_build()[0], decode_cache_cap=2)

    def test_engine_caches_stay_bounded_under_load(self):
        network, positions, nodes = _build(version=2)
        engine = FriendingEngine(
            network, decode_cache_cap=16, reject_cache_cap=4,
        )
        engine.run(_specs(nodes))
        assert len(engine._frame_cache) <= 16
        assert len(engine._package_cache) <= 16
        assert len(engine._reject_cache) <= 4

    def test_default_caps_never_evict_in_closed_world(self):
        """The golden-pinned runs fit far inside the default caps, so the
        bound cannot perturb closed-world byte-identity."""
        network, positions, nodes = _build(version=2)
        engine = FriendingEngine(network)
        engine.run(_specs(nodes))
        assert len(engine._frame_cache) < DEFAULT_DECODE_CACHE_CAP // 4
        assert len(engine._reject_cache) < DEFAULT_REJECT_CACHE_CAP
