"""Channel backend layer: registry, pure == numpy equivalence, fallback."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import channel_backend
from repro.network.channel_backend import (
    PREFIX_LEN,
    FateParams,
    PureChannelBackend,
    _link_fate,
    available_channel_backends,
    current_channel_backend,
    fate_threshold,
    get_channel_backend,
    numpy_unavailable_reason,
    select_channel_backend,
    set_channel_backend,
    use_channel_backend,
)

PURE = get_channel_backend("pure")

HAVE_NUMPY = "numpy" in available_channel_backends()


def _params(
    drop=0.0, dup=0.0, reorder=0.0, corrupt=0.0, jitter_ms=0, reorder_delay_ms=8
) -> FateParams:
    """Build FateParams the way ChannelModel.__post_init__ does."""
    return FateParams(
        drop_t=fate_threshold(drop),
        dup_t=fate_threshold(dup),
        reorder_t=fate_threshold(reorder),
        corrupt_t=fate_threshold(corrupt),
        jitter_n=jitter_ms + 1,
        jitter_mask=(1 << jitter_ms.bit_length()) - 1,
        reorder_delay_ms=reorder_delay_ms,
    )


def _prefix(seed: int = 0) -> bytes:
    """A structurally valid 76-byte broadcast prefix."""
    import struct

    return (
        struct.pack(">qI", seed, 0)
        + hashlib.sha256(b"flow").digest()
        + hashlib.sha256(b"src").digest()
    )


def _dsts(n: int) -> list[bytes]:
    return [hashlib.sha256(f"n{i}".encode()).digest() for i in range(n)]


rates = st.sampled_from([0.0, 0.03, 0.25, 0.5, 0.85, 1.0])
jitters = st.integers(min_value=0, max_value=9)
prefixes = st.binary(min_size=PREFIX_LEN, max_size=PREFIX_LEN)
digest_lists = st.lists(st.binary(min_size=32, max_size=32), min_size=0, max_size=24)


class TestFateThreshold:
    def test_endpoints(self):
        assert fate_threshold(0.0) == 0
        assert fate_threshold(1.0) == 1 << 32
        assert fate_threshold(0.5) == 1 << 31

    def test_monotone(self):
        points = [fate_threshold(r / 20) for r in range(21)]
        assert points == sorted(points)
        assert all(0 <= t <= 1 << 32 for t in points)


class TestRegistry:
    def test_pure_always_available(self):
        names = available_channel_backends()
        assert "pure" in names
        assert names == tuple(sorted(names))
        assert isinstance(get_channel_backend("pure"), PureChannelBackend)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown channel backend"):
            get_channel_backend("cuda")
        with pytest.raises(ValueError, match="unknown channel backend"):
            set_channel_backend("cuda")
        with pytest.raises(ValueError, match="unknown channel backend"):
            select_channel_backend("cuda")

    def test_default_is_pure(self):
        assert current_channel_backend().name == "pure"

    def test_numpy_reason_consistent_with_registry(self):
        # Exactly one of (registered, reason) holds, whatever the env has.
        if HAVE_NUMPY:
            assert numpy_unavailable_reason() is None
        else:
            assert numpy_unavailable_reason()

    def test_use_backend_restores(self):
        before = current_channel_backend()
        with use_channel_backend("pure") as active:
            assert active.name == "pure"
            assert current_channel_backend() is active
        assert current_channel_backend() is before

    def test_use_backend_restores_on_error(self):
        before = current_channel_backend()
        with pytest.raises(RuntimeError):
            with use_channel_backend("pure"):
                raise RuntimeError("boom")
        assert current_channel_backend() is before

    def test_use_backend_accepts_instance(self):
        with use_channel_backend(PURE) as active:
            assert active is PURE


class TestFallback:
    """select_channel_backend degrades numpy -> pure with a recorded reason.

    The fallback is exercised by force (monkeypatching numpy out of the
    registry) so it is covered even on hosts that *do* have numpy --
    tier-1 must never depend on the import succeeding.
    """

    def test_exact_hit_has_no_reason(self):
        backend, reason = select_channel_backend("pure")
        assert backend is PURE
        assert reason is None

    def test_missing_numpy_falls_back_to_pure(self, monkeypatch):
        monkeypatch.delitem(channel_backend._BACKENDS, "numpy", raising=False)
        monkeypatch.setattr(
            channel_backend, "_NUMPY_ERROR", "ImportError: No module named 'numpy'"
        )
        backend, reason = select_channel_backend("numpy")
        assert backend is PURE
        assert "numpy channel backend unavailable" in reason
        assert "No module named 'numpy'" in reason
        assert "using pure" in reason

    def test_missing_numpy_get_raises_with_hint(self, monkeypatch):
        monkeypatch.delitem(channel_backend._BACKENDS, "numpy", raising=False)
        monkeypatch.setattr(channel_backend, "_NUMPY_ERROR", "ImportError: nope")
        with pytest.raises(ValueError, match="numpy backend unavailable"):
            get_channel_backend("numpy")
        assert numpy_unavailable_reason() == "ImportError: nope"

    def test_available_numpy_selected_exactly(self):
        if not HAVE_NUMPY:
            pytest.skip("numpy not installed")
        backend, reason = select_channel_backend("numpy")
        assert backend.name == "numpy"
        assert reason is None


class TestPureAgainstReference:
    """The unrolled pure loop must equal _link_fate word for word."""

    @settings(max_examples=60, deadline=None)
    @given(
        prefix=prefixes,
        dsts=digest_lists,
        drop=rates,
        dup=rates,
        reorder=rates,
        corrupt=rates,
        jitter_ms=jitters,
        frame_len=st.integers(min_value=0, max_value=80),
    )
    def test_broadcast_equals_per_link_reference(
        self, prefix, dsts, drop, dup, reorder, corrupt, jitter_ms, frame_len
    ):
        params = _params(drop, dup, reorder, corrupt, jitter_ms)
        frame_bits = max(1, frame_len * 8)
        bit_mask = (1 << (frame_bits - 1).bit_length()) - 1
        assert PURE.broadcast_fates(prefix, dsts, params, frame_bits) == [
            _link_fate(prefix, dst, params, frame_bits, bit_mask) for dst in dsts
        ]

    def test_heavy_config_spills_past_first_block(self):
        # jitter mask 15 with n=10 rejects ~37% of draws; corrupt=1.0 adds
        # a bit draw per copy; dup=1.0 doubles it all.  Many links need a
        # second keystream block, which must match the rolling reference.
        params = _params(dup=1.0, corrupt=1.0, reorder=1.0, jitter_ms=9)
        frame_bits = 8 * 61
        bit_mask = (1 << (frame_bits - 1).bit_length()) - 1
        prefix, dsts = _prefix(7), _dsts(64)
        fates = PURE.broadcast_fates(prefix, dsts, params, frame_bits)
        assert fates == [
            _link_fate(prefix, dst, params, frame_bits, bit_mask) for dst in dsts
        ]
        assert all(len(f) == 2 for f in fates)  # dup=1.0: two copies each


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
class TestNumpyEquivalence:
    """pure == numpy, bit for bit, for every rate/jitter/fan-out shape."""

    @settings(max_examples=60, deadline=None)
    @given(
        prefix=prefixes,
        dsts=digest_lists,
        drop=rates,
        dup=rates,
        reorder=rates,
        corrupt=rates,
        jitter_ms=jitters,
        frame_len=st.integers(min_value=0, max_value=80),
    )
    def test_broadcast_fates_identical(
        self, prefix, dsts, drop, dup, reorder, corrupt, jitter_ms, frame_len
    ):
        numpy_backend = get_channel_backend("numpy")
        params = _params(drop, dup, reorder, corrupt, jitter_ms)
        frame_bits = max(1, frame_len * 8)
        assert numpy_backend.broadcast_fates(
            prefix, dsts, params, frame_bits
        ) == PURE.broadcast_fates(prefix, dsts, params, frame_bits)

    def test_large_fanout_identical(self):
        numpy_backend = get_channel_backend("numpy")
        params = _params(drop=0.1, dup=0.2, reorder=0.15, corrupt=0.2, jitter_ms=5)
        prefix, dsts = _prefix(42), _dsts(500)
        assert numpy_backend.broadcast_fates(
            prefix, dsts, params, 8 * 90
        ) == PURE.broadcast_fates(prefix, dsts, params, 8 * 90)

    def test_prefix_length_validated(self):
        numpy_backend = get_channel_backend("numpy")
        with pytest.raises(ValueError, match="76 bytes"):
            numpy_backend.broadcast_fates(b"short", _dsts(2), _params(), 8)

    def test_vectorised_sha256_matches_hashlib(self):
        # The keystream block IS sha256(prefix || dst32 || counter): check
        # the from-scratch uint32 compression against hashlib directly.
        import struct

        import numpy as np

        from repro.network.channel_backend import _H0_8, _sha_compress

        numpy_backend = get_channel_backend("numpy")
        prefix, dsts = _prefix(3), _dsts(9)
        mid = _sha_compress(
            _H0_8,
            np.frombuffer(prefix[:64], dtype=">u4").astype(np.uint32).reshape(1, 16),
        )[0]
        tail = np.frombuffer(prefix[64:], dtype=">u4").astype(np.uint32)
        dst_rows = (
            np.frombuffer(b"".join(dsts), dtype=">u4").astype(np.uint32).reshape(9, 8)
        )
        for counter in (0, 1, 2, 1000):
            blocks = numpy_backend._keystream_blocks(
                mid, tail, dst_rows, np.full(9, counter, np.uint32)
            )
            for lane, dst in enumerate(dsts):
                expected = hashlib.sha256(
                    prefix + dst + counter.to_bytes(4, "big")
                ).digest()
                assert struct.pack(">8I", *blocks[lane].tolist()) == expected


class TestEdgeCases:
    def test_empty_destination_list(self):
        for name in available_channel_backends():
            assert get_channel_backend(name).broadcast_fates(
                _prefix(), [], _params(drop=0.5), 8
            ) == []

    def test_all_zero_params_deliver_everything_clean(self):
        for name in available_channel_backends():
            fates = get_channel_backend(name).broadcast_fates(
                _prefix(), _dsts(10), _params(), 8
            )
            assert fates == [((0, -1),)] * 10

    def test_certain_drop_beats_certain_dup(self):
        # drop decides before dup: drop=1.0 drops even with dup=1.0.
        for name in available_channel_backends():
            fates = get_channel_backend(name).broadcast_fates(
                _prefix(), _dsts(10), _params(drop=1.0, dup=1.0), 8
            )
            assert fates == [()] * 10

    def test_one_bit_frame_corrupt_bit_is_zero(self):
        # frame_bits=1 forces the bit rejection loop to converge on 0.
        for name in available_channel_backends():
            fates = get_channel_backend(name).broadcast_fates(
                _prefix(), _dsts(6), _params(corrupt=1.0), 1
            )
            assert fates == [((0, 0),)] * 6
