"""Region partitioner properties, validation and mid-flood node re-homing."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant
from repro.network.engine import FriendingEngine
from repro.network.mobility import _GridTopologyMixin
from repro.network.regions import RegionPartition, RegionShardedEngine
from repro.network.simulator import AdHocNetwork


def _positions(n: int, seed: int) -> dict[str, tuple[float, float]]:
    rng = random.Random(seed)
    return {f"n{i}": (rng.random(), rng.random()) for i in range(n)}


positions_strategy = st.dictionaries(
    st.text(st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=6),
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


class TestPartitionProperties:
    @given(positions=positions_strategy, regions=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_exact_cover(self, positions, regions):
        """Every node lands in exactly one region, every region id in range."""
        partition = RegionPartition.from_positions(positions, regions)
        assignment = partition.assign(positions)
        assert set(assignment) == set(positions)
        assert all(0 <= r < regions for r in assignment.values())
        counts = partition.counts(positions)
        assert len(counts) == regions
        assert sum(counts) == len(positions)

    @given(positions=positions_strategy, regions=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_regions_are_contiguous_stripes(self, positions, regions):
        """region_of is monotone in x: each region is one x-interval."""
        partition = RegionPartition.from_positions(positions, regions)
        xs = sorted(x for x, _ in positions.values())
        owners = [partition.region_of(x) for x in xs]
        assert owners == sorted(owners)

    @given(
        positions=positions_strategy,
        regions=st.integers(min_value=1, max_value=8),
        x=st.floats(min_value=-1.0, max_value=2.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_coordinate_has_exactly_one_owner(self, positions, regions, x):
        """Even coordinates outside the sampled population map to one region."""
        partition = RegionPartition.from_positions(positions, regions)
        assert 0 <= partition.region_of(x) < regions

    def test_even_density_balances_population(self):
        positions = _positions(1000, seed=7)
        partition = RegionPartition.from_positions(positions, 4)
        counts = partition.counts(positions)
        assert all(200 <= c <= 300 for c in counts)


class TestPartitionValidation:
    def test_rejects_zero_regions(self):
        with pytest.raises(ValueError, match="regions"):
            RegionPartition(0, ())

    def test_rejects_wrong_cut_count(self):
        with pytest.raises(ValueError, match="cuts"):
            RegionPartition(3, (0.5,))

    def test_rejects_unsorted_cuts(self):
        with pytest.raises(ValueError, match="sorted"):
            RegionPartition(3, (0.7, 0.3))

    def test_rejects_empty_city_multi_region(self):
        with pytest.raises(ValueError, match="empty"):
            RegionPartition.from_positions({}, 2)

    def test_single_region_owns_everything(self):
        partition = RegionPartition.from_positions(_positions(10, seed=1), 1)
        assert partition.cuts == ()
        assert partition.region_of(-5.0) == 0
        assert partition.region_of(5.0) == 0


class _MarchingNode(_GridTopologyMixin):
    """Scripted mobility: one node marches +x a fixed stride per step.

    Everything else stays put, so a refresh re-homes exactly that node
    once its x coordinate crosses a stripe boundary.
    """

    def __init__(self, positions: dict[str, tuple[float, float]], marcher: str,
                 stride: float):
        self._positions = dict(positions)
        self._marcher = marcher
        self._stride = stride
        self._init_topology_cache()

    def positions(self) -> dict[str, tuple[float, float]]:
        return dict(self._positions)

    def step(self, dt_s: float) -> None:
        x, y = self._positions[self._marcher]
        self._positions[self._marcher] = (x + self._stride, y)
        self._moved.add(self._marcher)


def _boundary_city():
    """A dense 2-D strip of nodes spanning the regions=2 stripe boundary."""
    rng = random.Random(11)
    positions = {}
    i = 0
    for col in range(10):
        for row in range(6):
            positions[f"n{i}"] = (
                0.05 + col * 0.1 + rng.uniform(-0.02, 0.02),
                0.2 + row * 0.12 + rng.uniform(-0.02, 0.02),
            )
            i += 1
    return positions


def _build_boundary_run(positions, marcher: str, stride: float):
    mobility = _MarchingNode(positions, marcher, stride)
    adjacency = mobility.snapshot_topology(0.2)
    participants = {
        node: Participant(
            Profile(["tag:a", f"noise:{node}"], user_id=node, normalized=True),
            rng=random.Random(500 + i),
        )
        for i, node in enumerate(adjacency)
    }
    network = AdHocNetwork(adjacency, participants)
    launches = [
        ("n0", Initiator(
            RequestProfile.exact(["tag:a"], normalized=True),
            protocol=2, rng=random.Random(77),
        )),
    ]
    return mobility, network, launches


def _fingerprints(result) -> list[tuple]:
    return [
        (
            ep.episode, ep.initiator_node, ep.started_at_ms, ep.completed_at_ms,
            ep.matched_ids,
            [(m.responder_id, m.similarity, m.y, m.session_key) for m in ep.matches],
            [r.elements for r in ep.replies],
            tuple(sorted(ep.metrics.as_dict().items())),
        )
        for ep in result.episodes
    ]


class TestReHoming:
    def test_marching_node_crosses_boundary_mid_flood(self):
        """One node walks across the stripe cut mid-flood; results match
        the sequential engine byte for byte and the node really moves."""
        positions = _boundary_city()
        partition = RegionPartition.from_positions(positions, 2)
        # Pick a marcher just left of the cut, striding far enough to
        # cross it on the first mobility step.
        # A node exactly on the cut already belongs to the stripe above,
        # so pick the rightmost node strictly below it.
        marcher = max(
            (n for n, (x, _) in positions.items() if x < partition.cuts[0]),
            key=lambda n: positions[n][0],
        )
        stride = 0.3

        mobility, network, launches = _build_boundary_run(positions, marcher, stride)
        sequential = FriendingEngine(
            network, mobility=mobility, radio_radius=0.2, refresh_interval_ms=5,
            retries=1, retransmit_timeout_ms=40,
        ).run_staggered(launches, arrival_ms=10)

        mobility, network, launches = _build_boundary_run(positions, marcher, stride)
        engine = RegionShardedEngine(
            network, positions=positions, regions=2, partition=partition,
            mobility=mobility, radio_radius=0.2, refresh_interval_ms=5,
            retries=1, retransmit_timeout_ms=40,
        )
        sharded = engine.run_staggered(launches, arrival_ms=10)

        # The flood did something and the marcher really changed owner.
        assert sequential.aggregate.matches > 0
        assert sequential.topology_refreshes > 0
        before = partition.region_of(positions[marcher][0])
        after = partition.region_of(mobility.positions()[marcher][0])
        assert (before, after) == (0, 1)

        assert _fingerprints(sequential) == _fingerprints(sharded)
        assert sequential.aggregate.as_dict() == sharded.aggregate.as_dict()
        assert sequential.topology_refreshes == sharded.topology_refreshes

    def test_rehomed_initiator_keeps_episode_ownership(self):
        """March the *initiator* across the cut: episode-homed events
        (retransmit timers, reply hand-offs) must follow it."""
        positions = _boundary_city()
        partition = RegionPartition.from_positions(positions, 2)
        # A node exactly on the cut already belongs to the stripe above,
        # so pick the rightmost node strictly below it.
        marcher = max(
            (n for n, (x, _) in positions.items() if x < partition.cuts[0]),
            key=lambda n: positions[n][0],
        )
        positions = dict(positions)
        # Make the marcher the initiator by swapping ids.
        positions["n0"], positions[marcher] = positions[marcher], positions["n0"]

        mobility, network, launches = _build_boundary_run(positions, "n0", 0.3)
        sequential = FriendingEngine(
            network, mobility=mobility, radio_radius=0.2, refresh_interval_ms=5,
            retries=2, retransmit_timeout_ms=30,
        ).run_staggered(launches, arrival_ms=10)

        mobility, network, launches = _build_boundary_run(positions, "n0", 0.3)
        sharded = RegionShardedEngine(
            network, positions=positions, regions=2, partition=partition,
            mobility=mobility, radio_radius=0.2, refresh_interval_ms=5,
            retries=2, retransmit_timeout_ms=30,
        ).run_staggered(launches, arrival_ms=10)

        assert sequential.topology_refreshes > 0
        assert _fingerprints(sequential) == _fingerprints(sharded)
        assert sequential.aggregate.as_dict() == sharded.aggregate.as_dict()


class TestEngineValidation:
    def _network(self):
        positions = _positions(6, seed=3)
        mobility_adjacency = {n: [m for m in positions if m != n] for n in positions}
        return AdHocNetwork(
            mobility_adjacency, {n: None for n in positions}
        ), positions

    def test_rejects_zero_regions(self):
        network, positions = self._network()
        with pytest.raises(ValueError, match="regions"):
            RegionShardedEngine(network, positions=positions, regions=0)

    def test_rejects_uncovered_nodes(self):
        network, positions = self._network()
        partial = dict(list(positions.items())[:-1])
        with pytest.raises(ValueError, match="position"):
            RegionShardedEngine(network, positions=partial, regions=2)

    def test_rejects_unknown_transport(self):
        network, positions = self._network()
        with pytest.raises(ValueError, match="transport"):
            RegionShardedEngine(
                network, positions=positions, regions=2, transport="tcp"
            )

    def test_rejects_process_transport_with_mobility(self):
        positions = _positions(6, seed=3)
        mobility = _MarchingNode(positions, "n0", 0.1)
        adjacency = mobility.snapshot_topology(0.5)
        network = AdHocNetwork(adjacency, {n: None for n in adjacency})
        engine = RegionShardedEngine(
            network, positions=positions, regions=2, transport="process",
            mobility=mobility, radio_radius=0.5, refresh_interval_ms=10,
        )
        with pytest.raises(ValueError, match="mobility|refresh"):
            engine.run_staggered(
                [("n0", Initiator(RequestProfile.exact(["tag:a"], normalized=True)))],
                arrival_ms=5,
            )
