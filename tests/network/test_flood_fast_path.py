"""Unit coverage for the flood-plane fast path's engine-side machinery.

The golden and lossy suites pin end-to-end byte identity; these tests pin
the individual mechanisms -- the value-keyed frame decode cache (positive
and negative), and the single-copy ``FrameEvent`` compatibility path that
expands to a batch of one.
"""

from __future__ import annotations

import random

import pytest

from repro.core.attributes import Profile, RequestProfile
from repro.core.exceptions import SerializationError
from repro.core.protocols import Initiator, Participant
from repro.core.wire import flip_bit
from repro.network.engine import FriendingEngine
from repro.network.events import (
    BroadcastEvent,
    DeliveryEvent,
    FrameEvent,
    ReplyHopEvent,
    RetransmitEvent,
    SegmentFlushEvent,
    TopologyRefreshEvent,
)
from repro.network.simulator import AdHocNetwork
from repro.network.topology import line_topology


def _line_engine():
    adjacency, _ = line_topology(3)
    participants = {
        "n0": None,
        "n1": Participant(Profile(["tag:a"], user_id="n1", normalized=True),
                          rng=random.Random(1)),
        "n2": Participant(Profile(["tag:a", "tag:b"], user_id="n2", normalized=True),
                          rng=random.Random(2)),
    }
    network = AdHocNetwork(adjacency, participants)
    initiator = Initiator(
        RequestProfile.exact(["tag:a", "tag:b"], normalized=True),
        protocol=2, rng=random.Random(3),
    )
    return FriendingEngine(network), [("n0", initiator)]


class TestFrameDecodeCache:
    def test_equal_bytes_decode_to_one_frame_object(self):
        engine, launches = _line_engine()
        engine.run_staggered(launches)
        frame_bytes = engine._episodes[0].frame
        first = engine._decode(frame_bytes)
        second = engine._decode(bytes(frame_bytes))  # equal, distinct object
        assert second is first

    def test_corrupt_bytes_reject_and_are_not_retained(self):
        """Each corruption is a unique bit flip delivered once: caching it
        would pin dead datagram bytes for the whole run with no hits."""
        engine, launches = _line_engine()
        engine.run_staggered(launches)
        corrupt = flip_bit(engine._episodes[0].frame, 130)
        with pytest.raises(SerializationError):
            engine._decode(corrupt)
        with pytest.raises(SerializationError):  # still rejected, stateless
            engine._decode(corrupt)
        assert corrupt not in engine._frame_cache

    def test_cache_resets_per_run(self):
        engine, launches = _line_engine()
        engine.run_staggered(launches)
        assert engine._frame_cache  # the run populated it
        engine2, launches2 = _line_engine()
        engine2.run_staggered(launches2)
        assert engine2._frame_cache


class TestSingleCopyCompat:
    def test_frame_event_is_a_batch_of_one(self):
        """A manually dispatched FrameEvent follows the delivery path: a
        copy of an already-served request is a duplicate drop."""
        engine, launches = _line_engine()
        engine.run_staggered(launches)
        episode = engine._episodes[0]
        before = episode.metrics.dropped_duplicate
        engine._on_frame(FrameEvent(0, "n1", "n0", episode.frame))
        assert episode.metrics.dropped_duplicate == before + 1

    def test_handler_table_covers_every_event_type(self):
        engine, _ = _line_engine()
        assert set(engine._handlers) == {
            BroadcastEvent, DeliveryEvent, FrameEvent, ReplyHopEvent,
            RetransmitEvent, SegmentFlushEvent, TopologyRefreshEvent,
        }
