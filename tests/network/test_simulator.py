"""Ad-hoc network simulator tests: flooding, replies, defences."""

from __future__ import annotations

import random

import pytest

from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant
from repro.network.simulator import AdHocNetwork, RateLimiter
from repro.network.topology import complete_topology, grid_topology, line_topology


def _network(adjacency, match_nodes=(), initiator_node="n0", attrs=("tag:a", "tag:b")):
    participants = {}
    for i, node in enumerate(adjacency):
        if node == initiator_node:
            participants[node] = None
        elif node in match_nodes:
            participants[node] = Participant(
                Profile(list(attrs), user_id=node, normalized=True)
            )
        else:
            participants[node] = Participant(
                Profile([f"tag:z{i}"], user_id=node, normalized=True)
            )
    return AdHocNetwork(adjacency, participants, rng=random.Random(1))


def _initiator(attrs=("tag:a", "tag:b"), **kwargs):
    return Initiator(
        RequestProfile.exact(list(attrs), normalized=True),
        protocol=kwargs.pop("protocol", 2),
        rng=random.Random(2),
        **kwargs,
    )


class TestFlooding:
    def test_reaches_all_nodes_on_grid(self):
        adjacency, _ = grid_topology(5, 4)
        network = _network(adjacency)
        result = network.run_friending("n0", _initiator(ttl=20))
        assert result.metrics.nodes_reached == len(adjacency) - 1

    def test_ttl_limits_depth_on_line(self):
        adjacency, _ = line_topology(10)
        network = _network(adjacency)
        result = network.run_friending("n0", _initiator(ttl=3))
        assert result.metrics.nodes_reached == 3  # exactly ttl hops down the line

    def test_duplicates_suppressed(self):
        adjacency, _ = complete_topology(8)
        network = _network(adjacency)
        result = network.run_friending("n0", _initiator(ttl=5))
        assert result.metrics.nodes_reached == 7
        assert result.metrics.dropped_duplicate > 0

    def test_byte_accounting(self):
        adjacency, _ = line_topology(3)
        network = _network(adjacency)
        initiator = _initiator(ttl=5)
        result = network.run_friending("n0", initiator)
        assert result.metrics.bytes_broadcast > 0
        assert result.metrics.broadcasts >= 2


class TestMatching:
    def test_multi_hop_match_found(self):
        adjacency, _ = line_topology(6)
        network = _network(adjacency, match_nodes={"n5"})
        result = network.run_friending("n0", _initiator(ttl=10))
        assert result.matched_ids == ["n5"]
        assert result.metrics.replies == 1
        assert result.metrics.unicasts == 5  # reply travels 5 hops back

    def test_multiple_matches(self):
        adjacency, _ = grid_topology(4, 4)
        network = _network(adjacency, match_nodes={"n5", "n15"})
        result = network.run_friending("n0", _initiator(ttl=20))
        assert sorted(result.matched_ids) == ["n15", "n5"]

    def test_no_match_no_replies(self):
        adjacency, _ = grid_topology(3, 3)
        network = _network(adjacency)
        result = network.run_friending("n0", _initiator(ttl=20))
        assert result.matches == []
        assert result.metrics.replies == 0

    def test_reply_latency_recorded(self):
        adjacency, _ = line_topology(4)
        network = _network(adjacency, match_nodes={"n3"})
        result = network.run_friending("n0", _initiator(ttl=10))
        assert len(result.metrics.reply_latency_ms) == 1
        assert result.metrics.reply_latency_ms[0] > 0

    def test_expired_request_dropped(self):
        adjacency, _ = line_topology(20)
        network = AdHocNetwork(
            adjacency,
            {n: None if n == "n0" else Participant(Profile(["tag:q"], user_id=n, normalized=True))
             for n in adjacency},
            hop_latency_ms=100,
        )
        initiator = _initiator(ttl=30, validity_ms=250)
        result = network.run_friending("n0", initiator)
        assert result.metrics.dropped_expired > 0
        assert result.metrics.nodes_reached < 19


class TestRateLimiter:
    def test_allows_within_budget(self):
        limiter = RateLimiter(max_events=3, window_ms=1000)
        assert all(limiter.allow("peer", t) for t in (0, 10, 20))

    def test_blocks_over_budget(self):
        limiter = RateLimiter(max_events=2, window_ms=1000)
        limiter.allow("peer", 0)
        limiter.allow("peer", 1)
        assert not limiter.allow("peer", 2)

    def test_window_slides(self):
        limiter = RateLimiter(max_events=1, window_ms=100)
        assert limiter.allow("peer", 0)
        assert not limiter.allow("peer", 50)
        assert limiter.allow("peer", 200)

    def test_per_peer_isolation(self):
        limiter = RateLimiter(max_events=1, window_ms=1000)
        assert limiter.allow("a", 0)
        assert limiter.allow("b", 0)


class TestValidation:
    def test_unknown_initiator_node(self):
        adjacency, _ = line_topology(3)
        network = _network(adjacency)
        with pytest.raises(ValueError):
            network.run_friending("n99", _initiator())

    def test_unknown_participant_node(self):
        adjacency, _ = line_topology(3)
        with pytest.raises(ValueError):
            AdHocNetwork(adjacency, {"ghost": None})
