"""Lossy-channel engine runs: determinism, retransmission, endpoint hygiene."""

from __future__ import annotations

import random

import pytest

from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant
from repro.network.channel_model import ChannelModel
from repro.network.engine import EpisodeSpec, FriendingEngine
from repro.network.simulator import AdHocNetwork
from repro.network.topology import line_topology, random_geometric_topology

N_NODES = 60
N_EPISODES = 12


def _build(channel=None, **network_kwargs):
    adjacency, _ = random_geometric_topology(N_NODES, 0.22, seed=42)
    nodes = list(adjacency)
    participants = {
        node: Participant(
            Profile(
                [f"c{i % N_EPISODES}:t{j}" for j in range(3)] + [f"noise:{node}"],
                user_id=node, normalized=True,
            ),
            rng=random.Random(3000 + i),
        )
        for i, node in enumerate(nodes)
    }
    launches = [
        (
            nodes[episode * (N_NODES // N_EPISODES)],
            Initiator(
                RequestProfile(
                    necessary=[f"c{episode}:t0"],
                    optional=[f"c{episode}:t1", f"c{episode}:t2"],
                    beta=1, normalized=True,
                ),
                protocol=2, rng=random.Random(7000 + episode),
            ),
        )
        for episode in range(N_EPISODES)
    ]
    return AdHocNetwork(adjacency, participants, channel=channel, **network_kwargs), launches


def _fingerprints(result) -> list[tuple]:
    return [
        (
            ep.episode,
            ep.completed_at_ms,
            ep.matched_ids,
            [(m.responder_id, m.similarity, m.y, m.session_key) for m in ep.matches],
            [r.elements for r in ep.replies],
            tuple(sorted(ep.metrics.as_dict().items())),
        )
        for ep in result.episodes
    ]


LOSSY = dict(drop_rate=0.1, dup_rate=0.05, reorder_rate=0.1,
             corrupt_rate=0.05, jitter_ms=3, seed=5)


class TestLossyDeterminism:
    def test_reproducible_from_seed_and_spec(self):
        results = []
        for _ in range(2):
            network, launches = _build(ChannelModel(**LOSSY))
            results.append(
                FriendingEngine(network, retries=2).run_staggered(launches, arrival_ms=7)
            )
        assert _fingerprints(results[0]) == _fingerprints(results[1])
        total = results[0].aggregate.total
        # The channel actually did things in this scenario.
        assert total.frames_dropped > 0
        assert total.frames_duplicated > 0
        assert total.frames_corrupted > 0
        assert total.frames_rejected > 0

    def test_run_parallel_equals_sequential_under_loss(self):
        """Frame fates hash from (seed, flow, link, seq): sharding is invisible."""
        network, launches = _build(ChannelModel(**LOSSY))
        sequential = FriendingEngine(network, retries=2).run_staggered(launches, arrival_ms=7)

        network, launches = _build(ChannelModel(**LOSSY))
        parallel = FriendingEngine(network, retries=2).run_staggered(
            launches, arrival_ms=7, workers=4
        )
        assert _fingerprints(sequential) == _fingerprints(parallel)
        assert sequential.aggregate.as_dict() == parallel.aggregate.as_dict()

    def test_run_parallel_equals_sequential_under_loss_v2(self):
        """The counter-mode plane honours the same sharding identity: v2
        fates are a pure function of (seed, flow, link, seq) too, so
        worker interleaving cannot perturb a single frame."""
        network, launches = _build(ChannelModel(**LOSSY, version=2))
        sequential = FriendingEngine(network, retries=2).run_staggered(launches, arrival_ms=7)

        network, launches = _build(ChannelModel(**LOSSY, version=2))
        parallel = FriendingEngine(network, retries=2).run_staggered(
            launches, arrival_ms=7, workers=4
        )
        assert _fingerprints(sequential) == _fingerprints(parallel)
        assert sequential.aggregate.as_dict() == parallel.aggregate.as_dict()
        # The channel exercised every perturbation in this scenario.
        total = sequential.aggregate.total
        assert total.frames_dropped > 0
        assert total.frames_duplicated > 0
        assert total.frames_corrupted > 0

    def test_v2_run_is_backend_agnostic(self):
        """Channel backend choice is bit-transparent at engine level."""
        from repro.network.channel_backend import (
            available_channel_backends,
            use_channel_backend,
        )

        if "numpy" not in available_channel_backends():
            pytest.skip("numpy channel backend not installed")
        results = {}
        for backend in ("pure", "numpy"):
            with use_channel_backend(backend):
                network, launches = _build(ChannelModel(**LOSSY, version=2))
                results[backend] = FriendingEngine(network, retries=2).run_staggered(
                    launches[:6], arrival_ms=7
                )
        assert _fingerprints(results["pure"]) == _fingerprints(results["numpy"])

    def test_channel_seed_changes_the_run(self):
        network, launches = _build(ChannelModel(drop_rate=0.2, seed=1))
        a = FriendingEngine(network).run_staggered(launches, arrival_ms=7)
        network, launches = _build(ChannelModel(drop_rate=0.2, seed=2))
        b = FriendingEngine(network).run_staggered(launches, arrival_ms=7)
        assert _fingerprints(a) != _fingerprints(b)


class TestRetransmission:
    def _line(self, channel, retries):
        adjacency, _ = line_topology(3)
        matcher = Participant(
            Profile(["tag:a", "tag:b"], user_id="n2", normalized=True),
            rng=random.Random(9),
        )
        participants = {
            "n0": None,
            "n1": Participant(Profile(["tag:x"], user_id="n1", normalized=True)),
            "n2": matcher,
        }
        network = AdHocNetwork(adjacency, participants, channel=channel)
        initiator = Initiator(
            RequestProfile.exact(["tag:a", "tag:b"], normalized=True),
            protocol=2, rng=random.Random(1),
        )
        engine = FriendingEngine(network, retries=retries, retransmit_timeout_ms=100)
        result = engine.run([EpisodeSpec(initiator_node="n0", initiator=initiator)])
        return result, initiator

    def test_waves_heal_a_lossy_line(self):
        """With heavy loss, single-shot fails but retransmission gets through.

        The channel is deterministic, so this is a fixed scenario, not a
        statistical claim: seed 3 drops a first-wave critical hop.
        """
        channel = ChannelModel(drop_rate=0.4, seed=3)
        single, initiator = self._line(channel, retries=0)
        assert initiator.matches == []

        retried, initiator = self._line(channel, retries=8)
        assert [m.responder_id for m in initiator.matches] == ["n2"]
        metrics = retried.episodes[0].metrics
        assert metrics.retransmissions > 0
        assert metrics.frames_dropped > 0

    def test_answered_episode_stops_retransmitting(self):
        from repro.network.channel_model import PerfectChannel

        result, initiator = self._line(PerfectChannel(), retries=5)
        assert initiator.matches  # perfect channel: first wave answers
        assert result.episodes[0].metrics.retransmissions == 0

    def test_wave_forwarding_never_reprocesses(self):
        """Retries re-flood but participants answer each request once."""
        channel = ChannelModel(drop_rate=0.3, seed=4)
        result, initiator = self._line(channel, retries=6)
        metrics = result.episodes[0].metrics
        # However many waves ran, n2 produced at most one reply and the
        # initiator verified at most one match for it.
        assert metrics.replies <= 1
        assert len(initiator.matches) <= 1
        assert len(result.episodes[0].replies) <= 1


class TestEndpointHygiene:
    def test_total_corruption_kills_the_flood_cleanly(self):
        network, launches = _build(ChannelModel(corrupt_rate=1.0, seed=3))
        result = FriendingEngine(network).run_staggered(launches[:4], arrival_ms=7)
        total = result.aggregate.total
        assert result.aggregate.matches == 0
        assert total.nodes_reached == 0
        assert total.frames_corrupted > 0
        assert total.frames_rejected == total.frames_corrupted  # every copy rejected

    def test_duplicated_replies_are_idempotent(self):
        network, launches = _build(ChannelModel(dup_rate=1.0, seed=3))
        result = FriendingEngine(network).run_staggered(launches, arrival_ms=7)
        total = result.aggregate.total
        assert total.frames_duplicated > 0
        assert total.duplicate_replies > 0
        # Dedupe keeps matches one-per-responder per episode.
        for ep in result.episodes:
            assert len(ep.matched_ids) == len(set(ep.matched_ids))
        # And identical to a perfect-channel run, match for match: pure
        # duplication changes delivery counts, never outcomes.
        network, launches = _build()
        perfect = FriendingEngine(network).run_staggered(launches, arrival_ms=7)
        assert [ep.matched_ids for ep in result.episodes] == [
            ep.matched_ids for ep in perfect.episodes
        ]


class TestSessionOverflow:
    def test_drop_new_refuses_relay_state(self):
        adjacency, _ = line_topology(4)
        ends = {
            "n0": Participant(Profile(["tag:a", "tag:b"], user_id="n0", normalized=True),
                              rng=random.Random(1)),
            "n3": Participant(Profile(["tag:a", "tag:b"], user_id="n3", normalized=True),
                              rng=random.Random(2)),
        }
        participants = {
            "n0": ends["n0"],
            "n1": Participant(Profile(["tag:x1"], user_id="n1", normalized=True)),
            "n2": Participant(Profile(["tag:x2"], user_id="n2", normalized=True)),
            "n3": ends["n3"],
        }
        network = AdHocNetwork(
            adjacency, participants, session_limit=1, session_overflow="drop_new"
        )
        launches = [
            ("n0", Initiator(RequestProfile.exact(["tag:a", "tag:b"], normalized=True),
                             protocol=2, rng=random.Random(21))),
            ("n3", Initiator(RequestProfile.exact(["tag:a", "tag:b"], normalized=True),
                             protocol=2, rng=random.Random(22))),
        ]
        result = FriendingEngine(network).run_staggered(launches, arrival_ms=1)
        total = result.aggregate.total
        # Each relay admitted one episode's session and shed the other's.
        assert total.sessions_overflow > 0
        assert result.aggregate.matches < 2

    def test_evict_oldest_default_never_rejects(self):
        network, launches = _build(session_limit=2048)
        result = FriendingEngine(network).run_staggered(launches, arrival_ms=7)
        assert result.aggregate.total.sessions_overflow == 0


class TestBaselineGuards:
    def test_object_baseline_rejects_lossy_channel(self):
        network, _ = _build(ChannelModel(drop_rate=0.1, seed=1))
        with pytest.raises(ValueError, match="baseline"):
            FriendingEngine(network, wire=False)

    def test_object_baseline_rejects_frame_tap(self):
        network, _ = _build()
        with pytest.raises(ValueError, match="frame_tap"):
            FriendingEngine(network, wire=False, frame_tap=lambda *a: None)

    def test_retries_bounded_to_one_envelope_byte(self):
        network, _ = _build()
        with pytest.raises(ValueError, match="255"):
            FriendingEngine(network, retries=256)
        FriendingEngine(network, retries=255)  # the boundary itself is fine
