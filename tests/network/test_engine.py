"""Concurrent multi-episode engine: determinism, isolation, aggregation."""

from __future__ import annotations

import random

import pytest

from repro.core.attributes import Profile, RequestProfile
from repro.core.entropy import AttributeDistribution, EntropyPolicy
from repro.core.protocols import Initiator, Participant
from repro.network.engine import EpisodeSpec, FriendingEngine
from repro.network.simulator import AdHocNetwork, RateLimiter
from repro.network.topology import (
    complete_topology,
    line_topology,
    random_geometric_topology,
)

N_NODES = 100
N_EPISODES = 20


def _community_attrs(i: int, node: str) -> list[str]:
    community = i % N_EPISODES
    return [f"c{community}:t{j}" for j in range(3)] + [f"noise:{node}"]


def _community_participants(nodes: list[str]) -> dict[str, Participant]:
    """Fresh participants; node i belongs to interest community i % 20."""
    return {
        node: Participant(
            Profile(_community_attrs(i, node), user_id=node, normalized=True),
            rng=random.Random(3000 + i),
        )
        for i, node in enumerate(nodes)
    }


def _episode_request(episode: int) -> RequestProfile:
    return RequestProfile(
        necessary=[f"c{episode}:t0"],
        optional=[f"c{episode}:t1", f"c{episode}:t2"],
        beta=1,
        normalized=True,
    )


def _episode_initiator(episode: int) -> Initiator:
    # Seeded per episode so the concurrent and sequential runs broadcast
    # byte-identical request packages.
    return Initiator(
        _episode_request(episode), protocol=2, rng=random.Random(7000 + episode)
    )


class TestDeterminism:
    def test_concurrent_matches_equal_sequential(self):
        """20 overlapping episodes == the same episodes run in isolation."""
        adjacency, _ = random_geometric_topology(N_NODES, 0.18, seed=42)
        nodes = list(adjacency)
        stagger_ms = 7

        # Concurrent: one shared network, one event queue.
        network = AdHocNetwork(adjacency, _community_participants(nodes))
        launches = [
            (nodes[episode * (N_NODES // N_EPISODES)], _episode_initiator(episode))
            for episode in range(N_EPISODES)
        ]
        result = FriendingEngine(network).run_staggered(launches, arrival_ms=stagger_ms)
        assert result.aggregate.episodes == N_EPISODES

        overlapping = sum(
            1 for ep in result.episodes[:-1]
            if ep.completed_at_ms > ep.started_at_ms + stagger_ms
        )
        assert overlapping > 0, "episodes never actually overlapped"

        # Sequential: each episode alone on a fresh network with fresh
        # (identically seeded) participants and the same start time.
        for episode, engine_episode in enumerate(result.episodes):
            fresh = AdHocNetwork(adjacency, _community_participants(nodes))
            solo = fresh.run_friending(
                launches[episode][0],
                _episode_initiator(episode),
                start_ms=episode * stagger_ms,
            )
            assert sorted(engine_episode.matched_ids) == sorted(solo.matched_ids), (
                f"episode {episode} diverged between concurrent and solo runs"
            )
            assert engine_episode.metrics.nodes_reached == solo.metrics.nodes_reached
            assert engine_episode.metrics.replies == solo.metrics.replies

    def test_every_community_found(self):
        """Sanity: the determinism scenario finds matches, not empty sets."""
        adjacency, _ = random_geometric_topology(N_NODES, 0.18, seed=42)
        nodes = list(adjacency)
        network = AdHocNetwork(adjacency, _community_participants(nodes))
        launches = [
            (nodes[episode * (N_NODES // N_EPISODES)], _episode_initiator(episode))
            for episode in range(N_EPISODES)
        ]
        result = FriendingEngine(network).run_staggered(launches, arrival_ms=7)
        assert result.aggregate.matches >= N_EPISODES


class TestCrossEpisodeIsolation:
    def _overlapping_line_run(self, participants_by_node):
        adjacency, _ = line_topology(4)
        network = AdHocNetwork(adjacency, participants_by_node)
        launches = [
            ("n0", Initiator(
                RequestProfile.exact(["tag:a", "tag:b"], normalized=True),
                protocol=2, rng=random.Random(1),
            )),
            ("n0", Initiator(
                RequestProfile.exact(["tag:a", "tag:b"], normalized=True),
                protocol=2, rng=random.Random(2),
            )),
        ]
        # 1 ms apart: the floods genuinely interleave hop by hop.
        return network, FriendingEngine(network).run_staggered(launches, arrival_ms=1)

    def test_seen_requests_and_parent_maps_keyed_by_request(self):
        matcher = Participant(
            Profile(["tag:a", "tag:b"], user_id="n3", normalized=True),
            rng=random.Random(9),
        )
        participants = {
            "n0": None,
            "n1": Participant(Profile(["tag:x1"], user_id="n1", normalized=True)),
            "n2": Participant(Profile(["tag:x2"], user_id="n2", normalized=True)),
            "n3": matcher,
        }
        network, result = self._overlapping_line_run(participants)
        rids = [ep.initiator.secret.request_id for ep in result.episodes]
        assert rids[0] != rids[1]

        # Both episodes matched the same far-end participant.
        assert [ep.matched_ids for ep in result.episodes] == [["n3"], ["n3"]]
        # The participant answered each request exactly once.
        assert matcher._seen_requests == set(rids)
        assert set(matcher._pending_secrets) == set(rids)

        # Per-request reverse paths coexist in every relay node's sessions.
        for node_id, expected_parent, expected_hops in (
            ("n1", "n0", 1), ("n2", "n1", 2), ("n3", "n2", 3),
        ):
            node = network.nodes[node_id]
            for rid in rids:
                session = node.sessions.get(rid)
                assert session is not None
                assert session.parent == expected_parent
                assert session.hops == expected_hops

    def test_entropy_ledger_accumulates_across_episodes(self):
        """The φ budget spans episodes (cumulative union), never resets."""
        distribution = AttributeDistribution.uniform({"tag": 4})  # 2 bits each
        policy = EntropyPolicy(distribution, phi=4.0)  # room for 2 attributes
        guarded = Participant(
            Profile(["tag:a", "tag:b", "tag:c"], user_id="n3", normalized=True),
            entropy_policy=policy,
            rng=random.Random(9),
        )
        participants = {
            "n0": None,
            "n1": Participant(Profile(["tag:x1"], user_id="n1", normalized=True)),
            "n2": Participant(Profile(["tag:x2"], user_id="n2", normalized=True)),
            "n3": guarded,
        }
        adjacency, _ = line_topology(4)
        network = AdHocNetwork(adjacency, participants)
        launches = [
            ("n0", Initiator(
                RequestProfile.exact(["tag:a", "tag:b"], normalized=True),
                protocol=3, rng=random.Random(1),
            )),
            ("n0", Initiator(
                RequestProfile.exact(["tag:b", "tag:c"], normalized=True),
                protocol=3, rng=random.Random(2),
            )),
        ]
        result = FriendingEngine(network).run_staggered(launches, arrival_ms=1)

        # Episode 1 disclosed {a, b} (4 bits, at budget).  Episode 2 would
        # push the union to {a, b, c} = 6 bits, so the ledger must block it.
        assert result.episodes[0].matched_ids == ["n3"]
        assert result.episodes[1].matched_ids == []
        assert guarded._disclosed == {"tag:a", "tag:b"}


class TestDroppedTtl:
    """dropped_ttl counts suppressed re-broadcasts, one per suppression."""

    def _network(self, adjacency):
        participants = {
            node: None if node == "n0"
            else Participant(Profile([f"tag:{node}"], user_id=node, normalized=True))
            for node in adjacency
        }
        return AdHocNetwork(adjacency, participants)

    def test_line_suppresses_only_at_frontier(self):
        adjacency, _ = line_topology(6)
        network = self._network(adjacency)
        initiator = Initiator(
            RequestProfile.exact(["tag:q"], normalized=True), rng=random.Random(1), ttl=3
        )
        result = network.run_friending("n0", initiator)
        # n1 and n2 re-broadcast; only n3 (ttl exhausted) suppresses.
        assert result.metrics.nodes_reached == 3
        assert result.metrics.dropped_ttl == 1

    def test_complete_graph_every_receiver_suppresses_at_ttl_one(self):
        adjacency, _ = complete_topology(8)
        network = self._network(adjacency)
        initiator = Initiator(
            RequestProfile.exact(["tag:q"], normalized=True), rng=random.Random(1), ttl=1
        )
        result = network.run_friending("n0", initiator)
        assert result.metrics.nodes_reached == 7
        assert result.metrics.dropped_ttl == 7

    def test_duplicates_never_counted_as_ttl_drops(self):
        adjacency, _ = complete_topology(8)
        network = self._network(adjacency)
        initiator = Initiator(
            RequestProfile.exact(["tag:q"], normalized=True), rng=random.Random(1), ttl=2
        )
        result = network.run_friending("n0", initiator)
        # Every node is reached on the first wave; second-wave copies are
        # duplicates at already-seen nodes, not TTL suppressions.
        assert result.metrics.dropped_ttl == 0
        assert result.metrics.dropped_duplicate > 0


class TestRateLimiterWindow:
    def test_budget_restored_after_window_expires(self):
        limiter = RateLimiter(max_events=3, window_ms=100)
        for t in (0, 10, 20):
            assert limiter.allow("peer", t)
        assert not limiter.allow("peer", 30)
        # 0/10/20 have all left the window; a full budget is available.
        for t in (150, 160, 170):
            assert limiter.allow("peer", t)
        assert not limiter.allow("peer", 180)

    def test_partial_expiry_evicts_only_old_events(self):
        limiter = RateLimiter(max_events=2, window_ms=100)
        assert limiter.allow("peer", 0)
        assert limiter.allow("peer", 90)
        assert not limiter.allow("peer", 95)
        # t=0 expired, t=90 still counts: exactly one slot free.
        assert limiter.allow("peer", 120)
        assert not limiter.allow("peer", 130)


class TestAggregation:
    def test_staggered_starts_and_percentiles(self):
        adjacency, _ = random_geometric_topology(30, 0.3, seed=5)
        nodes = list(adjacency)
        participants = {
            node: Participant(
                Profile(["tag:a", "tag:b"] if i % 3 == 0 else [f"tag:z{i}"],
                        user_id=node, normalized=True),
                rng=random.Random(i),
            )
            for i, node in enumerate(nodes)
        }
        network = AdHocNetwork(adjacency, participants)
        launches = [
            (nodes[i], Initiator(
                RequestProfile.exact(["tag:a", "tag:b"], normalized=True),
                protocol=2, rng=random.Random(40 + i),
            ))
            for i in (1, 2, 4)
        ]
        result = FriendingEngine(network).run_staggered(launches, arrival_ms=100)

        assert [ep.started_at_ms for ep in result.episodes] == [0, 100, 200]
        for episode in result.episodes:
            assert episode.completed_at_ms >= episode.started_at_ms
        agg = result.aggregate
        assert agg.episodes == 3
        assert agg.matches > 0
        assert 0 < agg.latency_p50_ms <= agg.latency_p95_ms
        assert agg.episodes_per_sim_sec > 0
        assert agg.total.replies == sum(ep.metrics.replies for ep in result.episodes)

    def test_run_requires_episodes_and_known_nodes(self):
        adjacency, _ = line_topology(3)
        network = AdHocNetwork(adjacency, {n: None for n in adjacency})
        engine = FriendingEngine(network)
        with pytest.raises(ValueError):
            engine.run([])
        with pytest.raises(ValueError):
            engine.run([EpisodeSpec(
                initiator_node="n99",
                initiator=Initiator(RequestProfile.exact(["tag:a"], normalized=True)),
            )])


class _RewiringMobility:
    """Duck-typed mobility stub: the *bridge_on*-th refresh links n1 to n2.

    Bridging on a later refresh regression-tests that refresh ticks keep
    re-arming while episode events are still in flight.
    """

    def __init__(self, bridge_on: int = 1):
        self.steps = 0
        self.bridge_on = bridge_on

    def step(self, dt_s: float) -> None:
        self.steps += 1

    def snapshot_topology(self, radius: float) -> dict[str, list[str]]:
        if self.steps >= self.bridge_on:
            return {"n0": ["n1"], "n1": ["n0", "n2"], "n2": ["n1"]}
        return {"n0": ["n1"], "n1": ["n0"], "n2": []}


class TestTopologyRefresh:
    @pytest.mark.parametrize("bridge_on", [1, 2])
    def test_mid_run_refresh_extends_the_flood(self, bridge_on):
        # n2 starts unreachable; the refresh at t=50ms (or the second one at
        # t=100ms) bridges n1-n2 while the first hop (60 ms) and n1's
        # re-broadcast are still in flight, so the flood arrives.
        adjacency = {"n0": ["n1"], "n1": ["n0"], "n2": []}
        matcher = Participant(
            Profile(["tag:a"], user_id="n2", normalized=True), rng=random.Random(3)
        )
        network = AdHocNetwork(
            adjacency,
            {"n0": None, "n1": Participant(Profile(["tag:z"], user_id="n1", normalized=True)),
             "n2": matcher},
            hop_latency_ms=60,
            processing_latency_ms=50,  # n1 re-broadcasts at t=110, after either bridge
        )
        mobility = _RewiringMobility(bridge_on=bridge_on)
        engine = FriendingEngine(
            network, mobility=mobility, radio_radius=0.5, refresh_interval_ms=50
        )
        initiator = Initiator(
            RequestProfile.exact(["tag:a"], normalized=True),
            protocol=2, rng=random.Random(4), ttl=4,
        )
        result = engine.run(
            [EpisodeSpec(initiator_node="n0", initiator=initiator)], until_ms=600
        )
        assert result.topology_refreshes >= 1
        assert mobility.steps == result.topology_refreshes
        assert result.episodes[0].matched_ids == ["n2"]

    def test_refresh_configuration_validated(self):
        adjacency, _ = line_topology(2)
        network = AdHocNetwork(adjacency, {n: None for n in adjacency})
        with pytest.raises(ValueError):
            FriendingEngine(network, mobility=_RewiringMobility())
        with pytest.raises(ValueError):
            FriendingEngine(network, refresh_interval_ms=100)
        with pytest.raises(ValueError):
            FriendingEngine(
                network, mobility=_RewiringMobility(), refresh_interval_ms=100
            )
