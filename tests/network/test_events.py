"""Event queue tests: calendar-queue behaviour and heap-order equivalence."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.events import EventQueue, _HeapQueue


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        order = []
        queue.schedule(30, lambda: order.append("c"))
        queue.schedule(10, lambda: order.append("a"))
        queue.schedule(20, lambda: order.append("b"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_stable_tie_break(self):
        queue = EventQueue()
        order = []
        for tag in ("first", "second", "third"):
            queue.schedule(5, lambda t=tag: order.append(t))
        queue.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances(self):
        queue = EventQueue(start_ms=100)
        seen = []
        queue.schedule(50, lambda: seen.append(queue.now_ms))
        queue.run()
        assert seen == [150]

    def test_nested_scheduling(self):
        queue = EventQueue()
        hits = []

        def outer():
            hits.append(("outer", queue.now_ms))
            queue.schedule(5, lambda: hits.append(("inner", queue.now_ms)))

        queue.schedule(10, outer)
        queue.run()
        assert hits == [("outer", 10), ("inner", 15)]

    def test_until_bound(self):
        queue = EventQueue()
        hits = []
        queue.schedule(10, lambda: hits.append(1))
        queue.schedule(100, lambda: hits.append(2))
        executed = queue.run(until_ms=50)
        assert executed == 1
        assert hits == [1]
        assert len(queue) == 1

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, lambda: None)

    def test_callback_arg_passing(self):
        """schedule(delay, cb, arg) calls cb(arg); without arg, cb()."""
        queue = EventQueue()
        seen = []
        queue.schedule(1, lambda: seen.append("bare"))
        queue.schedule(2, seen.append, "arg")
        queue.schedule(3, seen.append, None)  # None is a real argument
        queue.run()
        assert seen == ["bare", "arg", None]


class TestCalendarQueue:
    """Calendar-specific paths: overflow tier, cursor jumps, pull-back."""

    def test_overflow_spill_preserves_order(self):
        queue = EventQueue(ring_ms=8)  # tiny ring forces the overflow tier
        order = []
        queue.schedule(3, order.append, "ring")
        queue.schedule(100, order.append, "far-1")  # overflow
        queue.schedule(100, order.append, "far-2")  # overflow, same instant
        queue.schedule(23, order.append, "mid")  # overflow, earlier
        assert len(queue) == 4
        queue.run()
        assert order == ["ring", "mid", "far-1", "far-2"]
        assert queue.now_ms == 100

    def test_cursor_jump_over_long_idle_gap(self):
        queue = EventQueue(ring_ms=16)
        hits = []
        queue.schedule(5, hits.append, "near")
        queue.schedule(1_000_000, hits.append, "far")
        queue.run()
        assert hits == ["near", "far"]
        assert queue.now_ms == 1_000_000

    def test_schedule_after_until_cutoff(self):
        """A post-cutoff schedule into the gap must still run in order."""
        queue = EventQueue()
        hits = []
        queue.schedule(10, hits.append, "a")
        queue.schedule(200, hits.append, "b")
        queue.run(until_ms=50)
        assert hits == ["a"] and queue.now_ms == 10
        # now_ms is 10; the cursor sits at 200's bucket -- this pulls it back
        queue.schedule(0, hits.append, "late")
        queue.run()
        assert hits == ["a", "late", "b"]

    def test_pull_back_demotes_colliding_ring_entries(self):
        """Rewinding the cursor must not mix two fire times in one bucket."""
        ring = 8
        queue = EventQueue(ring_ms=ring)
        hits = []
        queue.schedule(1, hits.append, "first")
        queue.schedule(6, hits.append, "mid")
        queue.run(until_ms=2)  # leaves the cursor scanning ahead of now (1)
        # This entry's bucket can collide with an entry ring_ms later.
        queue.schedule(0, hits.append, "pulled")
        queue.schedule(1 + ring, hits.append, "collider")
        queue.run()
        assert hits == ["first", "pulled", "mid", "collider"]

    def test_ring_wraps_across_many_cycles(self):
        queue = EventQueue(ring_ms=4)
        hits = []

        def reschedule(round_no):
            hits.append((queue.now_ms, round_no))
            if round_no < 30:
                queue.schedule(3, reschedule, round_no + 1)

        queue.schedule(0, reschedule, 0)
        queue.run()
        assert [t for t, _ in hits] == [3 * i for i in range(31)]


@st.composite
def _queue_workload(draw):
    n = draw(st.integers(min_value=1, max_value=18))
    delays = draw(
        st.lists(st.integers(0, 1500), min_size=n, max_size=n)
    )
    untils = draw(
        st.lists(st.one_of(st.none(), st.integers(0, 1600)), min_size=1, max_size=3)
    )
    child_seed = draw(st.integers(0, 2**32 - 1))
    return delays, untils, child_seed


class TestHeapEquivalence:
    """The calendar queue must drain in _HeapQueue's exact (time, seq) order."""

    @settings(max_examples=80, deadline=None)
    @given(_queue_workload())
    def test_any_interleaving_matches_heap_reference(self, workload):
        """Schedules, nested schedules, overflow spills and until_ms
        cutoffs (plus post-cutoff schedules, the cursor pull-back path)
        drain identically on both implementations."""
        delays, untils, child_seed = workload

        def drive(queue_cls, **kwargs):
            queue = queue_cls(start_ms=3, **kwargs)
            rng = random.Random(child_seed)
            log = []

            def cb(arg):
                tag, depth = arg
                log.append((queue.now_ms, tag))
                if depth and rng.random() < 0.5:
                    queue.schedule(rng.randrange(0, 1200), cb,
                                   (tag + ".c", depth - 1))

            for i, delay in enumerate(delays):
                queue.schedule(delay, cb, (f"e{i}", 2))
            for until in untils:
                queue.run(
                    until_ms=None if until is None else queue.now_ms + until
                )
                queue.schedule(rng.randrange(0, 40), cb, ("late", 1))
            queue.run()
            assert len(queue) == 0
            return log, queue.now_ms

        # A small ring exercises overflow migration and cursor jumps hard.
        assert drive(EventQueue, ring_ms=32) == drive(_HeapQueue)
        assert drive(EventQueue) == drive(_HeapQueue)
