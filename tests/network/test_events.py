"""Event queue tests."""

from __future__ import annotations

import pytest

from repro.network.events import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        order = []
        queue.schedule(30, lambda: order.append("c"))
        queue.schedule(10, lambda: order.append("a"))
        queue.schedule(20, lambda: order.append("b"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_stable_tie_break(self):
        queue = EventQueue()
        order = []
        for tag in ("first", "second", "third"):
            queue.schedule(5, lambda t=tag: order.append(t))
        queue.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances(self):
        queue = EventQueue(start_ms=100)
        seen = []
        queue.schedule(50, lambda: seen.append(queue.now_ms))
        queue.run()
        assert seen == [150]

    def test_nested_scheduling(self):
        queue = EventQueue()
        hits = []

        def outer():
            hits.append(("outer", queue.now_ms))
            queue.schedule(5, lambda: hits.append(("inner", queue.now_ms)))

        queue.schedule(10, outer)
        queue.run()
        assert hits == [("outer", 10), ("inner", 15)]

    def test_until_bound(self):
        queue = EventQueue()
        hits = []
        queue.schedule(10, lambda: hits.append(1))
        queue.schedule(100, lambda: hits.append(2))
        executed = queue.run(until_ms=50)
        assert executed == 1
        assert hits == [1]
        assert len(queue) == 1

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, lambda: None)
