"""ChannelModel: determinism, fate distribution, PerfectChannel passthrough."""

from __future__ import annotations

import hashlib
import pickle
import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import SerializationError
from repro.core.wire import FT_SESSION, decode_frame, encode_frame, flip_bit
from repro.network.channel_backend import _keystream_words
from repro.network.channel_model import (
    ChannelModel,
    PerfectChannel,
    _flow32,
    _node32,
)

FRAME = encode_frame(FT_SESSION, b"payload-bytes" * 3, ttl=4)


class TestPerfectChannel:
    def test_passthrough_is_byte_identical(self):
        channel = PerfectChannel()
        assert channel.is_perfect
        deliveries = channel.transmit(
            FRAME, flow=b"f", link=("a", "b"), seq=0, latency_ms=2
        )
        assert len(deliveries) == 1
        assert deliveries[0].delay_ms == 2
        assert deliveries[0].data is FRAME  # not even copied
        assert not deliveries[0].corrupted

    def test_all_zero_channel_model_is_perfect(self):
        assert ChannelModel().is_perfect
        assert not ChannelModel(drop_rate=0.1).is_perfect
        assert not ChannelModel(jitter_ms=1).is_perfect


class TestValidation:
    @pytest.mark.parametrize("field", ["drop_rate", "dup_rate", "reorder_rate", "corrupt_rate"])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ValueError, match=field):
            ChannelModel(**{field: 1.5})
        with pytest.raises(ValueError, match=field):
            ChannelModel(**{field: -0.1})

    def test_jitter_must_be_non_negative_int(self):
        with pytest.raises(ValueError):
            ChannelModel(jitter_ms=-1)
        with pytest.raises(ValueError):
            ChannelModel(jitter_ms=1.5)

    @pytest.mark.parametrize("version", [0, 3, "2"])
    def test_unknown_channel_version_rejected(self, version):
        with pytest.raises(ValueError, match="version"):
            ChannelModel(drop_rate=0.1, version=version)

    def test_known_versions_accepted(self):
        assert ChannelModel(drop_rate=0.1, version=1).version == 1
        assert ChannelModel(drop_rate=0.1, version=2).version == 2


class TestDeterminism:
    def test_same_key_same_fate(self):
        """A transmission's fate is a pure function of (seed, flow, link, seq)."""
        a = ChannelModel(drop_rate=0.3, dup_rate=0.2, corrupt_rate=0.2, jitter_ms=5, seed=7)
        b = ChannelModel(drop_rate=0.3, dup_rate=0.2, corrupt_rate=0.2, jitter_ms=5, seed=7)
        for seq in range(50):
            assert a.transmit(FRAME, flow=b"f1", link=("x", "y"), seq=seq, latency_ms=2) == (
                b.transmit(FRAME, flow=b"f1", link=("x", "y"), seq=seq, latency_ms=2)
            )

    def test_fate_independent_of_call_order(self):
        """Interleaving (episode scheduling) cannot change any frame's fate."""
        channel = ChannelModel(drop_rate=0.4, jitter_ms=3, seed=1)
        keys = [(bytes([i]), ("a", f"n{j}"), k) for i in range(4) for j in range(4) for k in range(4)]
        forward = [channel.transmit(FRAME, flow=f, link=link, seq=s, latency_ms=2)
                   for f, link, s in keys]
        backward = [channel.transmit(FRAME, flow=f, link=link, seq=s, latency_ms=2)
                    for f, link, s in reversed(keys)]
        assert forward == list(reversed(backward))

    def test_different_seeds_perturb_different_frames(self):
        a = ChannelModel(drop_rate=0.5, seed=1)
        b = ChannelModel(drop_rate=0.5, seed=2)
        fates_a = [bool(a.transmit(FRAME, flow=bytes([i]), link=("x", "y"), seq=0, latency_ms=1))
                   for i in range(64)]
        fates_b = [bool(b.transmit(FRAME, flow=bytes([i]), link=("x", "y"), seq=0, latency_ms=1))
                   for i in range(64)]
        assert fates_a != fates_b


class TestFates:
    def _fates(self, channel, n=2000):
        return [
            channel.transmit(FRAME, flow=i.to_bytes(4, "big"), link=("a", "b"),
                             seq=0, latency_ms=2)
            for i in range(n)
        ]

    def test_drop_rate_is_roughly_honoured(self):
        deliveries = self._fates(ChannelModel(drop_rate=0.2, seed=3))
        dropped = sum(1 for d in deliveries if not d) / len(deliveries)
        assert 0.15 < dropped < 0.25

    def test_duplicates_are_two_copies(self):
        deliveries = self._fates(ChannelModel(dup_rate=0.3, seed=3))
        dup = sum(1 for d in deliveries if len(d) == 2) / len(deliveries)
        assert 0.25 < dup < 0.35
        assert all(len(d) in (1, 2) for d in deliveries)

    def test_corruption_flips_and_crc_catches_it(self):
        deliveries = self._fates(ChannelModel(corrupt_rate=1.0, seed=3), n=50)
        for (delivery,) in deliveries:
            assert delivery.corrupted
            assert delivery.data != FRAME
            assert len(delivery.data) == len(FRAME)
            with pytest.raises(SerializationError):
                decode_frame(delivery.data)

    def test_jitter_bounds_delay(self):
        deliveries = self._fates(ChannelModel(jitter_ms=5, seed=3))
        delays = {d[0].delay_ms for d in deliveries}
        assert delays <= set(range(2, 8))
        assert len(delays) > 1

    def test_reorder_adds_holdback(self):
        channel = ChannelModel(reorder_rate=1.0, reorder_delay_ms=9, seed=3)
        (delivery,) = channel.transmit(FRAME, flow=b"f", link=("a", "b"), seq=0, latency_ms=2)
        assert delivery.delay_ms == 11


class TestTransmitMany:
    """The batched broadcast pass must reproduce transmit() bit for bit.

    This is the contract that keeps lossy runs byte-identical across the
    flood-plane fast path: every link's fate still hashes from
    (seed, flow, (src, dst), seq), and the batched draws (shared SHA-256
    prefix, scratch-RNG reseeding, the inlined jitter rejection loop) must
    produce exactly the values the one-at-a-time path produces.
    """

    DSTS = [f"n{i}" for i in range(17)]

    @pytest.mark.parametrize("channel", [
        ChannelModel(drop_rate=0.3, seed=7),
        ChannelModel(dup_rate=0.5, seed=7),
        ChannelModel(jitter_ms=5, seed=1),
        ChannelModel(jitter_ms=1, seed=1),
        ChannelModel(reorder_rate=0.4, jitter_ms=3, seed=2),
        ChannelModel(corrupt_rate=0.5, seed=3),
        ChannelModel(drop_rate=0.2, dup_rate=0.3, reorder_rate=0.25,
                     corrupt_rate=0.2, jitter_ms=4, seed=11),
    ])
    def test_matches_per_link_transmit(self, channel):
        for seq in (0, 1, 77):
            batched = channel.transmit_many(
                FRAME, flow=b"flowQ", src="src-1", dsts=self.DSTS,
                seq=seq, latency_ms=2,
            )
            single = [
                channel.transmit(FRAME, flow=b"flowQ", link=("src-1", dst),
                                 seq=seq, latency_ms=2)
                for dst in self.DSTS
            ]
            assert batched == single

    def test_perfect_channel_shares_one_delivery(self):
        channel = PerfectChannel()
        batched = channel.transmit_many(
            FRAME, flow=b"f", src="a", dsts=self.DSTS, seq=0, latency_ms=3
        )
        assert len(batched) == len(self.DSTS)
        for deliveries in batched:
            assert len(deliveries) == 1
            assert deliveries[0].delay_ms == 3
            assert deliveries[0].data is FRAME
            assert not deliveries[0].corrupted

    def test_empty_destination_list(self):
        assert ChannelModel(drop_rate=0.5).transmit_many(
            FRAME, flow=b"f", src="a", dsts=[], seq=0, latency_ms=1
        ) == []
        assert PerfectChannel().transmit_many(
            FRAME, flow=b"f", src="a", dsts=[], seq=0, latency_ms=1
        ) == []

    def test_flow_and_src_shift_fates(self):
        channel = ChannelModel(drop_rate=0.5, seed=9)
        base = channel.transmit_many(
            FRAME, flow=b"f1", src="a", dsts=self.DSTS, seq=0, latency_ms=1
        )
        other_flow = channel.transmit_many(
            FRAME, flow=b"f2", src="a", dsts=self.DSTS, seq=0, latency_ms=1
        )
        other_src = channel.transmit_many(
            FRAME, flow=b"f1", src="b", dsts=self.DSTS, seq=0, latency_ms=1
        )
        assert base != other_flow
        assert base != other_src


# -- version 2: the counter-mode fate plane ----------------------------------


def _v1_rng(seed, flow, link, seq):
    """White-box replica of ChannelModel._rng for draw-order assertions."""
    digest = hashlib.sha256(
        struct.pack(">qI", seed, seq & 0xFFFF_FFFF)
        + flow
        + b"\x00"
        + link[0].encode("utf-8")
        + b"\x00"
        + link[1].encode("utf-8")
    ).digest()
    rng = random.Random()
    rng.seed(int.from_bytes(digest[:8], "big"))
    return rng


def _v2_words(seed, flow, link, seq):
    """White-box replica of the v2 keystream for draw-order assertions."""
    prefix = (
        struct.pack(">qI", seed, seq & 0xFFFF_FFFF) + _flow32(flow) + _node32(link[0])
    )
    return _keystream_words(prefix, _node32(link[1]))


class TestV2Determinism:
    """The v2 plane honours the same purity contract as v1."""

    def test_same_key_same_fate(self):
        a = ChannelModel(drop_rate=0.3, dup_rate=0.2, corrupt_rate=0.2,
                         jitter_ms=5, seed=7, version=2)
        b = ChannelModel(drop_rate=0.3, dup_rate=0.2, corrupt_rate=0.2,
                         jitter_ms=5, seed=7, version=2)
        for seq in range(50):
            assert a.transmit(FRAME, flow=b"f1", link=("x", "y"), seq=seq, latency_ms=2) == (
                b.transmit(FRAME, flow=b"f1", link=("x", "y"), seq=seq, latency_ms=2)
            )

    def test_fate_independent_of_call_order(self):
        channel = ChannelModel(drop_rate=0.4, jitter_ms=3, seed=1, version=2)
        keys = [(bytes([i]), ("a", f"n{j}"), k) for i in range(4) for j in range(4) for k in range(4)]
        forward = [channel.transmit(FRAME, flow=f, link=link, seq=s, latency_ms=2)
                   for f, link, s in keys]
        backward = [channel.transmit(FRAME, flow=f, link=link, seq=s, latency_ms=2)
                    for f, link, s in reversed(keys)]
        assert forward == list(reversed(backward))

    def test_different_seeds_perturb_different_frames(self):
        a = ChannelModel(drop_rate=0.5, seed=1, version=2)
        b = ChannelModel(drop_rate=0.5, seed=2, version=2)
        fates_a = [bool(a.transmit(FRAME, flow=bytes([i]), link=("x", "y"), seq=0, latency_ms=1))
                   for i in range(64)]
        fates_b = [bool(b.transmit(FRAME, flow=bytes([i]), link=("x", "y"), seq=0, latency_ms=1))
                   for i in range(64)]
        assert fates_a != fates_b

    def test_planes_draw_different_fates_for_the_same_key(self):
        # Same (seed, flow, link, seq), different version: the planes are
        # both valid but deliberately incompatible -- recorded runs only
        # reproduce under the version that produced them.
        v1 = ChannelModel(drop_rate=0.5, seed=9, version=1)
        v2 = ChannelModel(drop_rate=0.5, seed=9, version=2)
        fates = lambda ch: [  # noqa: E731
            bool(ch.transmit(FRAME, flow=bytes([i]), link=("x", "y"), seq=0, latency_ms=1))
            for i in range(64)
        ]
        assert fates(v1) != fates(v2)

    def test_v2_channel_pickles_with_fate_params(self):
        # run_parallel ships the channel to workers via pickle; the derived
        # draw parameters must survive the round trip.
        channel = ChannelModel(drop_rate=0.3, dup_rate=0.2, corrupt_rate=0.2,
                               jitter_ms=4, seed=11, version=2)
        clone = pickle.loads(pickle.dumps(channel))
        assert clone == channel
        assert clone._fate_params == channel._fate_params
        for seq in range(20):
            assert clone.transmit(FRAME, flow=b"f", link=("a", "b"), seq=seq, latency_ms=2) == (
                channel.transmit(FRAME, flow=b"f", link=("a", "b"), seq=seq, latency_ms=2)
            )


class TestTransmitManyV2:
    """v2 batched broadcasts must reproduce per-link transmit() bit for bit."""

    DSTS = [f"n{i}" for i in range(17)]

    @pytest.mark.parametrize("channel", [
        ChannelModel(drop_rate=0.3, seed=7, version=2),
        ChannelModel(dup_rate=0.5, seed=7, version=2),
        ChannelModel(jitter_ms=5, seed=1, version=2),
        ChannelModel(jitter_ms=1, seed=1, version=2),
        ChannelModel(reorder_rate=0.4, jitter_ms=3, seed=2, version=2),
        ChannelModel(corrupt_rate=0.5, seed=3, version=2),
        ChannelModel(drop_rate=0.2, dup_rate=0.3, reorder_rate=0.25,
                     corrupt_rate=0.2, jitter_ms=4, seed=11, version=2),
    ])
    def test_matches_per_link_transmit(self, channel):
        for seq in (0, 1, 77):
            batched = channel.transmit_many(
                FRAME, flow=b"flowQ", src="src-1", dsts=self.DSTS,
                seq=seq, latency_ms=2,
            )
            single = [
                channel.transmit(FRAME, flow=b"flowQ", link=("src-1", dst),
                                 seq=seq, latency_ms=2)
                for dst in self.DSTS
            ]
            assert batched == single

    def test_empty_destination_list(self):
        assert ChannelModel(drop_rate=0.5, version=2).transmit_many(
            FRAME, flow=b"f", src="a", dsts=[], seq=0, latency_ms=1
        ) == []

    def test_corruption_flips_and_crc_catches_it(self):
        channel = ChannelModel(corrupt_rate=1.0, seed=3, version=2)
        for i in range(50):
            (delivery,) = channel.transmit(
                FRAME, flow=i.to_bytes(4, "big"), link=("a", "b"), seq=0, latency_ms=2
            )
            assert delivery.corrupted
            assert delivery.data != FRAME
            assert len(delivery.data) == len(FRAME)
            with pytest.raises(SerializationError):
                decode_frame(delivery.data)


class TestJitterEdgeCases:
    """Satellite: jitter_ms=0 draw accounting, rejection boundary, drop+dup.

    Each case runs against both fate planes -- the v1 assertions are
    regression pins (the plane is frozen), the v2 ones define the new
    stream's draw discipline.
    """

    def test_v1_jitter_zero_consumes_no_draw(self):
        # White-box: with jitter_ms=0 the corrupt decision must be the
        # *third* MT draw (drop, dup, corrupt) -- nothing consumed between
        # dup and corrupt.  A stray jitter draw would shift the bit index.
        channel = ChannelModel(corrupt_rate=1.0, seed=5)
        for i in range(20):
            flow = i.to_bytes(2, "big")
            rng = _v1_rng(5, flow, ("a", "b"), 0)
            rng.random()  # drop
            rng.random()  # dup
            assert rng.random() < 1.0  # corrupt decision
            bit = rng.randrange(len(FRAME) * 8)
            (delivery,) = channel.transmit(
                FRAME, flow=flow, link=("a", "b"), seq=0, latency_ms=3
            )
            assert delivery.delay_ms == 3  # no jitter added
            assert delivery.data == flip_bit(FRAME, bit)

    def test_v2_jitter_zero_consumes_no_word(self):
        # White-box: with jitter_ms=0 the corrupt decision must be stream
        # word 2 (after drop word 0 and dup word 1), and the bit draw
        # starts at word 3.
        channel = ChannelModel(corrupt_rate=1.0, seed=5, version=2)
        frame_bits = len(FRAME) * 8
        bit_mask = (1 << (frame_bits - 1).bit_length()) - 1
        for i in range(20):
            flow = i.to_bytes(2, "big")
            take = _v2_words(5, flow, ("a", "b"), 0).__next__
            take()  # drop word
            take()  # dup word
            assert take() < 1 << 32  # corrupt decision: threshold 2**32
            bit = take() & bit_mask
            while bit >= frame_bits:
                bit = take() & bit_mask
            (delivery,) = channel.transmit(
                FRAME, flow=flow, link=("a", "b"), seq=0, latency_ms=3
            )
            assert delivery.delay_ms == 3
            assert delivery.data == flip_bit(FRAME, bit)

    @pytest.mark.parametrize("version", [1, 2])
    @pytest.mark.parametrize("jitter_ms", [1, 2, 5])
    def test_max_jitter_rejection_boundary(self, version, jitter_ms):
        # The draw is uniform on [0, jitter_ms] inclusive: every value in
        # range must be reachable and jitter_ms+1 must never appear, even
        # when the rejection mask admits it (jitter_ms=2 -> mask 3, so the
        # raw draw *can* be 3 and the loop must redraw).
        channel = ChannelModel(jitter_ms=jitter_ms, seed=3, version=version)
        delays = {
            channel.transmit(
                FRAME, flow=i.to_bytes(4, "big"), link=("a", "b"), seq=0, latency_ms=10
            )[0].delay_ms - 10
            for i in range(400)
        }
        assert delays == set(range(jitter_ms + 1))

    @pytest.mark.parametrize("version", [1, 2])
    def test_certain_drop_beats_certain_dup(self, version):
        channel = ChannelModel(drop_rate=1.0, dup_rate=1.0, seed=1, version=version)
        for i in range(30):
            assert channel.transmit(
                FRAME, flow=i.to_bytes(4, "big"), link=("a", "b"), seq=0, latency_ms=1
            ) == []

    @pytest.mark.parametrize("version", [1, 2])
    def test_certain_dup_without_drop_always_two_copies(self, version):
        channel = ChannelModel(dup_rate=1.0, jitter_ms=5, seed=1, version=version)
        saw_distinct_delays = False
        for i in range(30):
            deliveries = channel.transmit(
                FRAME, flow=i.to_bytes(4, "big"), link=("a", "b"), seq=0, latency_ms=1
            )
            assert len(deliveries) == 2
            if deliveries[0].delay_ms != deliveries[1].delay_ms:
                saw_distinct_delays = True
        # The two copies draw jitter independently from the same stream.
        assert saw_distinct_delays

    @pytest.mark.parametrize("version", [1, 2])
    def test_drop_dup_interaction_on_same_link_is_per_seq(self, version):
        # drop and dup at 0.5 each on ONE link across seqs: all three
        # outcomes (lost, single, duplicated) must occur, decided per
        # transmission, not per link.
        channel = ChannelModel(drop_rate=0.5, dup_rate=0.5, seed=2, version=version)
        sizes = {
            len(channel.transmit(FRAME, flow=b"f", link=("a", "b"), seq=seq, latency_ms=1))
            for seq in range(200)
        }
        assert sizes == {0, 1, 2}


class TestV2Statistics:
    """Satellite: the keystream's decisions are unbiased within tolerance."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_rates_are_honoured_across_links_and_seqs(self, seed):
        channel = ChannelModel(drop_rate=0.2, dup_rate=0.25, corrupt_rate=0.3,
                               seed=seed, version=2)
        n = 1500
        deliveries = [
            channel.transmit(
                FRAME,
                flow=(i % 50).to_bytes(4, "big"),
                link=("a", f"n{i % 30}"),
                seq=i // 30,
                latency_ms=2,
            )
            for i in range(n)
        ]
        dropped = sum(1 for d in deliveries if not d) / n
        survivors = [d for d in deliveries if d]
        duplicated = sum(1 for d in survivors if len(d) == 2) / len(survivors)
        corrupted = sum(1 for d in survivors if d[0].corrupted) / len(survivors)
        # ~5.5 sigma bands for n=1500 binomials: loose enough to never
        # flake, tight enough to catch a biased word or threshold.
        assert 0.2 - 0.06 < dropped < 0.2 + 0.06
        assert 0.25 - 0.065 < duplicated < 0.25 + 0.065
        assert 0.3 - 0.07 < corrupted < 0.3 + 0.07

    def test_jitter_values_roughly_uniform(self):
        channel = ChannelModel(jitter_ms=3, seed=8, version=2)
        counts = [0] * 4
        n = 2000
        for i in range(n):
            delay = channel.transmit(
                FRAME, flow=i.to_bytes(4, "big"), link=("a", "b"), seq=0, latency_ms=0
            )[0].delay_ms
            counts[delay] += 1
        for count in counts:
            assert 0.25 - 0.05 < count / n < 0.25 + 0.05
