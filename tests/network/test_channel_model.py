"""ChannelModel: determinism, fate distribution, PerfectChannel passthrough."""

from __future__ import annotations

import pytest

from repro.core.exceptions import SerializationError
from repro.core.wire import FT_SESSION, decode_frame, encode_frame
from repro.network.channel_model import ChannelModel, PerfectChannel

FRAME = encode_frame(FT_SESSION, b"payload-bytes" * 3, ttl=4)


class TestPerfectChannel:
    def test_passthrough_is_byte_identical(self):
        channel = PerfectChannel()
        assert channel.is_perfect
        deliveries = channel.transmit(
            FRAME, flow=b"f", link=("a", "b"), seq=0, latency_ms=2
        )
        assert len(deliveries) == 1
        assert deliveries[0].delay_ms == 2
        assert deliveries[0].data is FRAME  # not even copied
        assert not deliveries[0].corrupted

    def test_all_zero_channel_model_is_perfect(self):
        assert ChannelModel().is_perfect
        assert not ChannelModel(drop_rate=0.1).is_perfect
        assert not ChannelModel(jitter_ms=1).is_perfect


class TestValidation:
    @pytest.mark.parametrize("field", ["drop_rate", "dup_rate", "reorder_rate", "corrupt_rate"])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ValueError, match=field):
            ChannelModel(**{field: 1.5})
        with pytest.raises(ValueError, match=field):
            ChannelModel(**{field: -0.1})

    def test_jitter_must_be_non_negative_int(self):
        with pytest.raises(ValueError):
            ChannelModel(jitter_ms=-1)
        with pytest.raises(ValueError):
            ChannelModel(jitter_ms=1.5)


class TestDeterminism:
    def test_same_key_same_fate(self):
        """A transmission's fate is a pure function of (seed, flow, link, seq)."""
        a = ChannelModel(drop_rate=0.3, dup_rate=0.2, corrupt_rate=0.2, jitter_ms=5, seed=7)
        b = ChannelModel(drop_rate=0.3, dup_rate=0.2, corrupt_rate=0.2, jitter_ms=5, seed=7)
        for seq in range(50):
            assert a.transmit(FRAME, flow=b"f1", link=("x", "y"), seq=seq, latency_ms=2) == (
                b.transmit(FRAME, flow=b"f1", link=("x", "y"), seq=seq, latency_ms=2)
            )

    def test_fate_independent_of_call_order(self):
        """Interleaving (episode scheduling) cannot change any frame's fate."""
        channel = ChannelModel(drop_rate=0.4, jitter_ms=3, seed=1)
        keys = [(bytes([i]), ("a", f"n{j}"), k) for i in range(4) for j in range(4) for k in range(4)]
        forward = [channel.transmit(FRAME, flow=f, link=link, seq=s, latency_ms=2)
                   for f, link, s in keys]
        backward = [channel.transmit(FRAME, flow=f, link=link, seq=s, latency_ms=2)
                    for f, link, s in reversed(keys)]
        assert forward == list(reversed(backward))

    def test_different_seeds_perturb_different_frames(self):
        a = ChannelModel(drop_rate=0.5, seed=1)
        b = ChannelModel(drop_rate=0.5, seed=2)
        fates_a = [bool(a.transmit(FRAME, flow=bytes([i]), link=("x", "y"), seq=0, latency_ms=1))
                   for i in range(64)]
        fates_b = [bool(b.transmit(FRAME, flow=bytes([i]), link=("x", "y"), seq=0, latency_ms=1))
                   for i in range(64)]
        assert fates_a != fates_b


class TestFates:
    def _fates(self, channel, n=2000):
        return [
            channel.transmit(FRAME, flow=i.to_bytes(4, "big"), link=("a", "b"),
                             seq=0, latency_ms=2)
            for i in range(n)
        ]

    def test_drop_rate_is_roughly_honoured(self):
        deliveries = self._fates(ChannelModel(drop_rate=0.2, seed=3))
        dropped = sum(1 for d in deliveries if not d) / len(deliveries)
        assert 0.15 < dropped < 0.25

    def test_duplicates_are_two_copies(self):
        deliveries = self._fates(ChannelModel(dup_rate=0.3, seed=3))
        dup = sum(1 for d in deliveries if len(d) == 2) / len(deliveries)
        assert 0.25 < dup < 0.35
        assert all(len(d) in (1, 2) for d in deliveries)

    def test_corruption_flips_and_crc_catches_it(self):
        deliveries = self._fates(ChannelModel(corrupt_rate=1.0, seed=3), n=50)
        for (delivery,) in deliveries:
            assert delivery.corrupted
            assert delivery.data != FRAME
            assert len(delivery.data) == len(FRAME)
            with pytest.raises(SerializationError):
                decode_frame(delivery.data)

    def test_jitter_bounds_delay(self):
        deliveries = self._fates(ChannelModel(jitter_ms=5, seed=3))
        delays = {d[0].delay_ms for d in deliveries}
        assert delays <= set(range(2, 8))
        assert len(delays) > 1

    def test_reorder_adds_holdback(self):
        channel = ChannelModel(reorder_rate=1.0, reorder_delay_ms=9, seed=3)
        (delivery,) = channel.transmit(FRAME, flow=b"f", link=("a", "b"), seq=0, latency_ms=2)
        assert delivery.delay_ms == 11


class TestTransmitMany:
    """The batched broadcast pass must reproduce transmit() bit for bit.

    This is the contract that keeps lossy runs byte-identical across the
    flood-plane fast path: every link's fate still hashes from
    (seed, flow, (src, dst), seq), and the batched draws (shared SHA-256
    prefix, scratch-RNG reseeding, the inlined jitter rejection loop) must
    produce exactly the values the one-at-a-time path produces.
    """

    DSTS = [f"n{i}" for i in range(17)]

    @pytest.mark.parametrize("channel", [
        ChannelModel(drop_rate=0.3, seed=7),
        ChannelModel(dup_rate=0.5, seed=7),
        ChannelModel(jitter_ms=5, seed=1),
        ChannelModel(jitter_ms=1, seed=1),
        ChannelModel(reorder_rate=0.4, jitter_ms=3, seed=2),
        ChannelModel(corrupt_rate=0.5, seed=3),
        ChannelModel(drop_rate=0.2, dup_rate=0.3, reorder_rate=0.25,
                     corrupt_rate=0.2, jitter_ms=4, seed=11),
    ])
    def test_matches_per_link_transmit(self, channel):
        for seq in (0, 1, 77):
            batched = channel.transmit_many(
                FRAME, flow=b"flowQ", src="src-1", dsts=self.DSTS,
                seq=seq, latency_ms=2,
            )
            single = [
                channel.transmit(FRAME, flow=b"flowQ", link=("src-1", dst),
                                 seq=seq, latency_ms=2)
                for dst in self.DSTS
            ]
            assert batched == single

    def test_perfect_channel_shares_one_delivery(self):
        channel = PerfectChannel()
        batched = channel.transmit_many(
            FRAME, flow=b"f", src="a", dsts=self.DSTS, seq=0, latency_ms=3
        )
        assert len(batched) == len(self.DSTS)
        for deliveries in batched:
            assert len(deliveries) == 1
            assert deliveries[0].delay_ms == 3
            assert deliveries[0].data is FRAME
            assert not deliveries[0].corrupted

    def test_empty_destination_list(self):
        assert ChannelModel(drop_rate=0.5).transmit_many(
            FRAME, flow=b"f", src="a", dsts=[], seq=0, latency_ms=1
        ) == []
        assert PerfectChannel().transmit_many(
            FRAME, flow=b"f", src="a", dsts=[], seq=0, latency_ms=1
        ) == []

    def test_flow_and_src_shift_fates(self):
        channel = ChannelModel(drop_rate=0.5, seed=9)
        base = channel.transmit_many(
            FRAME, flow=b"f1", src="a", dsts=self.DSTS, seq=0, latency_ms=1
        )
        other_flow = channel.transmit_many(
            FRAME, flow=b"f2", src="a", dsts=self.DSTS, seq=0, latency_ms=1
        )
        other_src = channel.transmit_many(
            FRAME, flow=b"f1", src="b", dsts=self.DSTS, seq=0, latency_ms=1
        )
        assert base != other_flow
        assert base != other_src
