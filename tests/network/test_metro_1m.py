"""1M-node metro run: the region-sharded runtime at the roadmap's scale.

Runs the committed ``examples/specs/metro_1m.json`` sharded sweep point
(``regions = 4``) end to end — 1M static nodes at mean degree ~8,
TTL-bounded local floods, v2 counter-mode fates — and asserts it
finishes inside a generous wall-clock budget with a healthy, connected
outcome.  Locally the point takes a few minutes (topology build
dominates; the floods themselves are local), so on top of the ``slow``
marker the test only runs with ``METRO_1M=1`` — the same opt-in idiom
as the 100k flood bench arm (``FLOOD_100K=1``).

    METRO_1M=1 PYTHONPATH=src python -m pytest -q -m slow tests/network/test_metro_1m.py
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.analysis.experiments import load_plan, run_scenario

SPEC = Path(__file__).resolve().parent.parent.parent / "examples" / "specs" / "metro_1m.json"
WALL_BUDGET_S = 1800.0


@pytest.mark.slow
@pytest.mark.skipif(os.environ.get("METRO_1M") != "1", reason="set METRO_1M=1 to run")
def test_metro_1m_sharded_completes_within_budget():
    plan = load_plan(SPEC)
    (spec,) = [s for s in plan.specs if s.regions == 4]
    assert spec.nodes == 1_000_000

    start = time.perf_counter()
    record = run_scenario(spec)
    elapsed = time.perf_counter() - start

    assert elapsed < WALL_BUDGET_S, (
        f"1M-node metro run took {elapsed:.1f}s > {WALL_BUDGET_S}s budget"
    )
    # Healthy outcome: mean degree ~8 keeps a giant component holding
    # nearly the whole metro, and the TTL-bounded floods find matches.
    assert record["regions"] == 4
    assert record["largest_component_fraction"] > 0.9
    assert record["warnings"] == []
    assert record["frames_sent"] > 1_000
    assert record["matches"] > 0
