"""100k-node city run: the flood plane must hold at another order of magnitude.

Runs the committed ``examples/specs/lossy_city_100k.json`` variant end to
end (topology build, population, engine, record) and asserts it finishes
inside a generous wall-clock budget with a healthy outcome.  Locally the
whole thing takes ~10 s after the PR-5 flood-plane fast path; the budget
leaves an order of magnitude of headroom for slow shared runners, so a
failure here means a real scaling regression (e.g. something quadratic
crept into the flood plane), not noise.

Marked ``slow``: deselect with ``-m "not slow"`` for a quick loop.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.analysis.experiments import load_plan, run_scenario

SPEC = Path(__file__).resolve().parent.parent.parent / "examples" / "specs" / "lossy_city_100k.json"
WALL_BUDGET_S = 120.0


@pytest.mark.slow
def test_100k_city_completes_within_budget():
    plan = load_plan(SPEC)
    (spec,) = plan.specs
    assert spec.nodes == 100_000

    start = time.perf_counter()
    record = run_scenario(spec)
    elapsed = time.perf_counter() - start

    assert elapsed < WALL_BUDGET_S, (
        f"100k-node city run took {elapsed:.1f}s > {WALL_BUDGET_S}s budget"
    )
    # Healthy outcome, not a degenerate graph: the radio radius is sized
    # for mean degree ~13, which keeps the city one connected component.
    assert record["largest_component_fraction"] > 0.9
    assert record["warnings"] == []
    assert record["frames_sent"] > 10_000
    assert record["match_rate"] > 0
    assert record["matches"] > 0
