"""Open-world churn: counter-mode schedules, determinism, degradation.

The churn plane inherits the channel planes' determinism contract: every
schedule decision is a pure function of ``(seed, spec)``, so churn-enabled
runs reproduce byte for byte, extending the horizon never rewrites
history, and the region count stays invisible.  The hypothesis property
at the bottom is the tentpole's graceful-degradation guarantee: joins,
leaves, crashes and injections at *arbitrary* times never deadlock the
drain or wedge a region barrier.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import (
    ScenarioSpec,
    _prepare_scenario,
    churn_horizon,
    churn_runner_for,
    run_scenario,
)
from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant
from repro.network.channel_model import ChannelModel
from repro.network.churn import ChurnEvent, ChurnModel, ChurnRunner, ChurnSpec
from repro.network.engine import EpisodeSpec, FriendingEngine
from repro.network.regions import RegionShardedEngine
from repro.network.simulator import AdHocNetwork
from repro.network.topology import city_topology

SPEC_10K = (
    Path(__file__).resolve().parent.parent.parent
    / "examples" / "specs" / "lossy_city.json"
)


class TestChurnSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            ChurnSpec(join_rate_per_s=-1)
        with pytest.raises(ValueError, match="tick_ms"):
            ChurnSpec(tick_ms=0)
        with pytest.raises(ValueError, match="sleep_ms"):
            ChurnSpec(sleep_ms=-5)
        with pytest.raises(ValueError, match="one event per tick"):
            ChurnSpec(join_rate_per_s=100.0, tick_ms=100)

    def test_active(self):
        assert not ChurnSpec().active
        assert ChurnSpec(crash_rate_per_s=0.1).active


class TestChurnModel:
    SPEC = ChurnSpec(join_rate_per_s=2.0, leave_rate_per_s=1.0,
                     crash_rate_per_s=0.5)

    def test_schedule_is_pure_function_of_seed_and_spec(self):
        a = ChurnModel(self.SPEC, seed=42).events(0, 60_000)
        b = ChurnModel(self.SPEC, seed=42).events(0, 60_000)
        assert a == b
        assert a != ChurnModel(self.SPEC, seed=43).events(0, 60_000)
        assert a != ChurnModel(
            ChurnSpec(join_rate_per_s=2.0, leave_rate_per_s=1.0,
                      crash_rate_per_s=0.5, sleep_ms=1), seed=42
        ).events(0, 60_000)

    def test_prefix_stability(self):
        """Windowed reads concatenate to the full schedule: extending the
        horizon or re-reading in chunks never rewrites earlier events."""
        model = ChurnModel(self.SPEC, seed=7)
        whole = model.events(0, 30_000)
        chunks = []
        for lo in range(0, 30_000, 1_300):
            chunks.extend(model.events(lo, min(lo + 1_300, 30_000)))
        assert whole == chunks

    def test_rates_are_respected(self):
        events = ChurnModel(self.SPEC, seed=3).events(0, 200_000)
        joins = sum(1 for e in e_kinds(events) if e == "join")
        leaves = sum(1 for e in e_kinds(events) if e == "leave")
        crashes = sum(1 for e in e_kinds(events) if e == "crash")
        # 200 sim-seconds at 2/1/0.5 per second: expect ~400/200/100
        assert 300 < joins < 500
        assert 140 < leaves < 260
        assert 60 < crashes < 140

    def test_inactive_spec_yields_nothing(self):
        assert ChurnModel(ChurnSpec(), seed=1).events(0, 10**9) == []

    def test_events_are_slotted_and_ordered(self):
        events = ChurnModel(self.SPEC, seed=9).events(500, 5_000)
        assert all(isinstance(e, ChurnEvent) for e in events)
        assert events == sorted(events, key=lambda e: e.time_ms)
        assert all(500 <= e.time_ms < 5_000 for e in events)


def e_kinds(events):
    return [e.kind for e in events]


# -- scenario-level churn ----------------------------------------------------

def _churn_record(**overrides):
    spec = ScenarioSpec.from_dict({
        "name": "churn-run", "nodes": 120, "episodes": 3, "seed": 11,
        "radio_radius": 0.18, "until_ms": 15_000, "loss_rate": 0.05,
        "channel_version": 2, "churn_rate": 4.0, "churn_crash_rate": 0.5,
        **overrides,
    })
    return run_scenario(spec)


RESULT_KEYS = (
    "matches", "frames_sent", "frame_bytes", "total_bytes", "replies",
    "latency_p50_ms", "latency_p95_ms", "sim_duration_ms", "nodes_joined",
    "nodes_left", "nodes_crashed", "orphaned_replies", "degraded_episodes",
)


class TestScenarioChurn:
    def test_churn_run_is_reproducible(self):
        a, b = _churn_record(), _churn_record()
        assert {k: a[k] for k in RESULT_KEYS} == {k: b[k] for k in RESULT_KEYS}
        assert a["nodes_joined"] > 0 and a["nodes_left"] > 0

    def test_sharded_equals_sequential_under_churn(self):
        sequential = _churn_record(regions=1)
        sharded = _churn_record(regions=2)
        assert {k: sequential[k] for k in RESULT_KEYS} == {
            k: sharded[k] for k in RESULT_KEYS
        }

    def test_seed_changes_the_run(self):
        assert {k: _churn_record()[k] for k in RESULT_KEYS} != {
            k: _churn_record(seed=12)[k] for k in RESULT_KEYS
        }

    def test_crashed_nodes_wake_with_state_lost(self):
        record = _churn_record(churn_rate=0.0, churn_crash_rate=2.0)
        # every crash books a wake; wakes count as joins
        assert record["nodes_crashed"] > 0
        assert record["nodes_joined"] >= record["nodes_crashed"] // 2


# -- crash-mid-flood regression ---------------------------------------------

def _mini_city(version: int = 2):
    adjacency, positions = city_topology(150, radius=0.12, seed=21)
    nodes = list(adjacency)
    participants = {
        node: Participant(
            Profile([f"c{i % 3}:t{j}" for j in range(3)] + [f"noise:{node}"],
                    user_id=node, normalized=True),
            rng=random.Random(3000 + i),
        )
        for i, node in enumerate(nodes)
    }
    channel = ChannelModel(drop_rate=0.05, seed=5, version=version)
    return AdHocNetwork(adjacency, participants, channel=channel), positions, nodes


def _mini_initiator(episode: int) -> Initiator:
    return Initiator(
        RequestProfile(necessary=[f"c{episode % 3}:t0"],
                       optional=[f"c{episode % 3}:t1"], beta=1, normalized=True),
        protocol=2, rng=random.Random(7000 + episode),
    )


class TestCrashMidFlood:
    """March one initiator down at successive times: every variant drains."""

    @pytest.mark.parametrize("crash_at_ms", [1, 5, 12, 30, 80, 200])
    def test_initiator_crash_never_wedges(self, crash_at_ms):
        network, positions, nodes = _mini_city()
        engine = FriendingEngine(network, retries=2, retransmit_timeout_ms=150)
        engine.begin([
            EpisodeSpec(initiator_node=nodes[0], initiator=_mini_initiator(0),
                        start_ms=0),
            EpisodeSpec(initiator_node=nodes[75], initiator=_mini_initiator(1),
                        start_ms=10),
        ])
        engine.step(crash_at_ms)
        if engine.episode_initiator_node(0) is not None:
            engine.crash_node(nodes[0])
        result = engine.finish()
        assert engine.live_episode_count() == 0
        assert not engine.wedged_episodes()
        total = result.aggregate.total
        if total.nodes_crashed:
            assert total.degraded_episodes == 1
        # the second episode is never collateral damage
        assert result.episodes[1].completed_at_ms >= 10


# -- hypothesis: arbitrary churn never deadlocks -----------------------------

_ACTIONS = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=400),      # step target offset
        st.sampled_from(["join", "leave", "crash", "inject", "restart"]),
        st.integers(min_value=0, max_value=10**6),    # victim/placement draw
    ),
    min_size=1, max_size=12,
)


class TestNeverDeadlocks:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(actions=_ACTIONS, regions=st.sampled_from([1, 2]))
    def test_arbitrary_churn_completes(self, actions, regions):
        network, positions, nodes = _mini_city()
        if regions == 1:
            engine = FriendingEngine(network, retries=1,
                                     retransmit_timeout_ms=150)
        else:
            engine = RegionShardedEngine(
                network, positions=positions, regions=regions,
                retries=1, retransmit_timeout_ms=150,
            )
        engine.begin([
            EpisodeSpec(initiator_node=nodes[0], initiator=_mini_initiator(0),
                        start_ms=0),
        ])
        live = set(nodes)
        joined = 0
        injected = 1
        now = 0
        for offset, kind, draw in actions:
            now += offset
            engine.step(now)
            if kind == "join":
                name = f"h{joined}"
                joined += 1
                neighbours = sorted(live)[draw % len(live):][:3] if live else []
                x = (draw % 1000) / 1000
                engine.join_node(name, None, neighbours, position=(x, x))
                live.add(name)
            elif kind in ("leave", "crash") and len(live) > 3:
                victim = sorted(live)[draw % len(live)]
                live.discard(victim)
                if kind == "crash":
                    engine.crash_node(victim)
                else:
                    engine.leave_node(victim)
            elif kind == "inject" and live:
                node = sorted(live)[draw % len(live)]
                engine.inject(EpisodeSpec(
                    initiator_node=node, initiator=_mini_initiator(injected),
                    start_ms=max(engine._queue.now_ms, now),
                ))
                injected += 1
            elif kind == "restart":
                for region in range(regions):
                    engine.restart_region(region)
        result = engine.finish()
        assert engine.live_episode_count() == 0
        assert not engine.wedged_episodes()
        assert len(result.episodes) == injected


# -- sleep-wake through the runner ------------------------------------------

class TestSleepWake:
    def test_crashed_node_wakes_and_rejoins(self):
        network, positions_map, nodes = _mini_city()
        engine = FriendingEngine(network)
        engine.begin([
            EpisodeSpec(initiator_node=nodes[0], initiator=_mini_initiator(0),
                        start_ms=0),
        ])
        model = ChurnModel(
            ChurnSpec(crash_rate_per_s=5.0, sleep_ms=500), seed=13
        )
        runner = ChurnRunner(
            engine, model, positions=dict(positions_map), radio_radius=0.12,
        )
        runner.drive(0, 3_000)
        engine.finish()
        crashed = engine.churn_metrics.nodes_crashed
        woken = engine.churn_metrics.nodes_joined
        assert crashed > 0
        # every crash more than sleep_ms before the horizon wakes again
        assert woken >= crashed - 3
        # woken nodes are back in the mesh
        assert len(runner.live) >= len(nodes) - 3


# -- the 10k city goldens ----------------------------------------------------

@pytest.mark.slow
class TestOpenWorld10kGolden:
    """churn=0 through begin/step/finish reproduces the PR-4 flood bytes."""

    def _stepped_record(self, *, channel_version: int, regions: int = 1):
        from repro.analysis.experiments import load_plan

        plan = load_plan(SPEC_10K)
        (spec,) = [s for s in plan.specs if s.loss_rate == 0.1]
        spec = ScenarioSpec.from_dict({
            **spec.as_dict(), "channel_version": channel_version,
            "regions": regions,
        })
        prepared = _prepare_scenario(spec)
        engine = prepared.engine
        engine.begin([
            EpisodeSpec(initiator_node=node, initiator=initiator,
                        start_ms=i * spec.arrival_ms)
            for i, (node, initiator) in enumerate(prepared.launches)
        ])
        while engine.live_episode_count():
            engine.step(engine._queue.now_ms + 500)
        result = engine.finish()
        return result.aggregate

    def test_v1_golden(self):
        agg = self._stepped_record(channel_version=1)
        assert agg.total.frames_sent == 30586
        assert agg.matches == 116

    def test_v2_golden(self):
        agg = self._stepped_record(channel_version=2)
        assert agg.total.frames_sent == 29461
        assert agg.matches == 104

    def test_v2_golden_sharded(self):
        agg = self._stepped_record(channel_version=2, regions=2)
        assert agg.total.frames_sent == 29461
        assert agg.matches == 104


@pytest.mark.slow
class TestChurn10kSharded:
    """A churn-enabled 10k lossy city: regions=2 == regions=1, and the run
    is reproducible from (seed, spec) alone."""

    def _record(self, regions: int):
        from repro.analysis.experiments import load_plan

        plan = load_plan(SPEC_10K)
        (spec,) = [s for s in plan.specs if s.loss_rate == 0.1]
        spec = ScenarioSpec.from_dict({
            **spec.as_dict(), "channel_version": 2, "regions": regions,
            "churn_rate": 4.0, "churn_crash_rate": 0.5, "until_ms": 10_000,
        })
        return run_scenario(spec)

    def test_sharded_equals_sequential(self):
        sequential = self._record(regions=1)
        sharded = self._record(regions=2)
        assert sequential["nodes_joined"] > 0
        assert {k: sequential[k] for k in RESULT_KEYS} == {
            k: sharded[k] for k in RESULT_KEYS
        }


# -- shared runner plumbing ---------------------------------------------------

class TestChurnRunnerFor:
    def test_horizon_prefers_until_ms(self):
        spec = ScenarioSpec(name="x", nodes=50, until_ms=9_000, churn_rate=1.0)
        prepared = _prepare_scenario(spec)
        prepared.engine.begin()
        assert churn_horizon(spec, prepared.engine) == 9_000
        runner = churn_runner_for(spec, prepared, 9_000)
        assert runner.engine is prepared.engine
        assert runner.model.spec.join_rate_per_s == pytest.approx(0.5)
        assert runner.model.spec.crash_rate_per_s == 0.0

    def test_joiner_participants_are_seeded_by_index(self):
        spec = ScenarioSpec(name="x", nodes=50, churn_rate=1.0)
        prepared = _prepare_scenario(spec)
        runner = churn_runner_for(spec, prepared, 1_000)
        a = runner.participant_factory("j0", 0)
        b = runner.participant_factory("j0", 0)
        assert a.profile.attributes == b.profile.attributes
