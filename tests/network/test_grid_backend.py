"""Grid cell-assignment backends: registry, equivalence, rebucket identity."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.grid_backend import (
    available_grid_backends,
    current_grid_backend,
    get_grid_backend,
    numpy_unavailable_reason,
    select_grid_backend,
    set_grid_backend,
    use_grid_backend,
)
from repro.network.mobility import RandomWaypoint
from repro.network.topology import SpatialGrid, naive_adjacency

coords_strategy = st.lists(
    st.tuples(
        st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
    ),
    max_size=80,
)


def _needs_numpy():
    return pytest.mark.skipif(
        "numpy" not in available_grid_backends(),
        reason="numpy grid backend not installed",
    )


class TestRegistry:
    def test_pure_always_available_and_default(self):
        assert "pure" in available_grid_backends()
        assert current_grid_backend().name == "pure"

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="available"):
            get_grid_backend("gpu")

    def test_select_falls_back_with_reason_or_hits(self):
        backend, reason = select_grid_backend("pure")
        assert backend.name == "pure" and reason is None
        if "numpy" in available_grid_backends():
            backend, reason = select_grid_backend("numpy")
            assert backend.name == "numpy" and reason is None
            assert numpy_unavailable_reason() is None
        else:
            backend, reason = select_grid_backend("numpy")
            assert backend.name == "pure"
            assert "numpy" in reason

    def test_use_restores_previous(self):
        before = current_grid_backend()
        with use_grid_backend("pure") as active:
            assert current_grid_backend() is active
        assert current_grid_backend() is before

    def test_set_returns_previous(self):
        previous = set_grid_backend("pure")
        set_grid_backend(previous)
        assert current_grid_backend() is previous


@_needs_numpy()
class TestBackendEquivalence:
    @given(coords=coords_strategy, cell_size=st.floats(min_value=1e-3, max_value=2.0))
    @settings(max_examples=100, deadline=None)
    def test_numpy_matches_pure_exactly(self, coords, cell_size):
        pure = get_grid_backend("pure").assign_cells(coords, cell_size)
        vec = get_grid_backend("numpy").assign_cells(coords, cell_size)
        assert vec == pure


class TestMoveMany:
    def _grid(self, n: int = 20) -> SpatialGrid:
        grid = SpatialGrid(0.1)
        rng = random.Random(3)
        for i in range(n):
            grid.insert(f"n{i}", rng.random(), rng.random())
        return grid

    def test_matches_single_moves(self):
        """Batch result and bucket state equal the single-move sequence."""
        rng = random.Random(5)
        moves = [(f"n{i}", rng.random(), rng.random()) for i in range(20)]
        single = self._grid()
        expected = [single.move(node, x, y) for node, x, y in moves]
        for backend in available_grid_backends():
            with use_grid_backend(backend):
                batched = self._grid()
                assert batched.move_many(moves) == expected
                for i in range(20):
                    node = f"n{i}"
                    assert batched.cell_of(node) == single.cell_of(node)
                    assert batched.position(node) == single.position(node)
                    assert batched.neighbors_within(node) == single.neighbors_within(node)

    def test_empty_batch(self):
        grid = self._grid()
        assert grid.move_many([]) == []

    def test_preserves_bucket_insertion_order(self):
        """Two nodes moved into one cell keep input order in the bucket."""
        for backend in available_grid_backends():
            with use_grid_backend(backend):
                grid = SpatialGrid(1.0)
                grid.insert("a", 0.1, 0.1)
                grid.insert("b", 2.5, 0.1)
                grid.insert("c", 4.5, 0.1)
                grid.move_many([("c", 6.5, 0.1), ("b", 6.6, 0.1)])
                cell = grid.cell_of("b")
                assert grid.cell_of("c") == cell
                assert list(grid._cells[cell]) == ["c", "b"]


class TestMobilityIntegration:
    @pytest.mark.parametrize("backend", sorted(available_grid_backends()))
    def test_incremental_refresh_equals_naive(self, backend):
        """The vectorised rebucket path pins exact adjacency equality --
        including row order -- against the brute-force reference."""
        with use_grid_backend(backend):
            model = RandomWaypoint(
                [f"n{i}" for i in range(250)], seed=17,
                min_speed=0.02, max_speed=0.08,
            )
            for _ in range(6):
                model.step(0.4)
                snapshot = model.snapshot_topology(0.09)
                assert snapshot == naive_adjacency(model.positions(), 0.09)

    def test_backends_agree_on_topology_deltas(self):
        if "numpy" not in available_grid_backends():
            pytest.skip("numpy grid backend not installed")
        deltas = {}
        for backend in ("pure", "numpy"):
            with use_grid_backend(backend):
                model = RandomWaypoint([f"n{i}" for i in range(150)], seed=23)
                model.snapshot_topology(0.1)
                run = []
                for _ in range(5):
                    model.step(1.0)
                    run.append(model.topology_delta(0.1))
                deltas[backend] = run
        assert deltas["pure"] == deltas["numpy"]
