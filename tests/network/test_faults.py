"""Fault campaigns: registry shape, action semantics, recovery identity."""

from __future__ import annotations

import random

import pytest

from repro.analysis.experiments import ScenarioSpec, SpecError, run_scenario
from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant
from repro.network.channel_model import ChannelModel
from repro.network.churn import ChurnModel, ChurnRunner, ChurnSpec
from repro.network.engine import EpisodeSpec, FriendingEngine
from repro.network.faults import (
    FAULT_PLANS,
    FaultAction,
    FaultCampaign,
    available_fault_plans,
    compile_campaign,
    load_fault_plan,
)
from repro.network.regions import RegionShardedEngine
from repro.network.simulator import AdHocNetwork
from repro.network.topology import city_topology


class TestRegistry:
    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError) as err:
            load_fault_plan("power-surge")
        message = str(err.value)
        assert "unknown fault plan 'power-surge'" in message
        for name in available_fault_plans():
            assert name in message

    def test_load_by_name_and_passthrough(self):
        campaign = load_fault_plan("blackout")
        assert campaign.name == "blackout"
        assert load_fault_plan(campaign) is campaign

    def test_every_builtin_is_well_formed(self):
        for name, campaign in FAULT_PLANS.items():
            assert campaign.name == name
            assert campaign.description
            assert campaign.actions
            compiled = compile_campaign(campaign, 0, 100_000)
            assert all(0 <= t <= 100_000 for t, _ in compiled)


class TestActionValidation:
    def test_at_must_be_fraction(self):
        with pytest.raises(ValueError, match="horizon fraction"):
            FaultAction(at=1.5, kind="region_restart")

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultAction(at=0.5, kind="meteor")

    def test_crash_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            FaultAction(at=0.5, kind="crash_fraction", fraction=0.0)

    def test_wake_after_ordering(self):
        with pytest.raises(ValueError, match="wake_after"):
            FaultAction(at=0.6, kind="crash_fraction", fraction=0.1,
                        wake_after=0.5)

    def test_session_pressure_needs_count_and_ttl(self):
        with pytest.raises(ValueError, match="session_pressure"):
            FaultAction(at=0.5, kind="session_pressure", count=0, ttl_ms=100)

    def test_campaign_must_be_time_ordered(self):
        with pytest.raises(ValueError, match="time-ordered"):
            FaultCampaign("bad", "x", (
                FaultAction(at=0.9, kind="region_restart"),
                FaultAction(at=0.1, kind="region_restart"),
            ))

    def test_compile_pins_fractions(self):
        campaign = FaultCampaign("c", "x", (
            FaultAction(at=0.0, kind="region_restart"),
            FaultAction(at=0.5, kind="region_restart"),
            FaultAction(at=1.0, kind="region_restart"),
        ))
        assert [t for t, _ in compile_campaign(campaign, 1_000, 11_000)] == [
            1_000, 6_000, 11_000,
        ]


def _city(session_limit: int = 4096):
    adjacency, positions = city_topology(150, radius=0.12, seed=21)
    nodes = list(adjacency)
    participants = {
        node: Participant(
            Profile([f"c{i % 3}:t{j}" for j in range(3)] + [f"noise:{node}"],
                    user_id=node, normalized=True),
            rng=random.Random(3000 + i),
        )
        for i, node in enumerate(nodes)
    }
    channel = ChannelModel(drop_rate=0.05, seed=5, version=2)
    network = AdHocNetwork(adjacency, participants, channel=channel,
                           session_limit=session_limit)
    return network, positions, nodes


def _initiator(episode: int) -> Initiator:
    return Initiator(
        RequestProfile(necessary=[f"c{episode % 3}:t0"],
                       optional=[f"c{episode % 3}:t1"], beta=1, normalized=True),
        protocol=2, rng=random.Random(7000 + episode),
    )


def _drive(engine, positions, faults, horizon_ms=10_000):
    runner = ChurnRunner(
        engine, ChurnModel(ChurnSpec(), seed=3),
        positions=dict(positions), radio_radius=0.12, faults=faults,
    )
    runner.drive(0, horizon_ms)
    return engine.finish()


class TestActionSemantics:
    def test_session_pressure_fills_bounded_tables(self):
        network, positions, nodes = _city(session_limit=48)
        engine = FriendingEngine(network)
        engine.begin([EpisodeSpec(initiator_node=nodes[0],
                                  initiator=_initiator(0), start_ms=0)])
        action = FaultAction(at=0.1, kind="session_pressure",
                             count=64, ttl_ms=2_000)
        _drive(engine, positions, [(1_000, action)])
        # 64 synthetic sessions against a 48-slot table: eviction pressure,
        # never unbounded growth
        assert all(len(n.sessions) <= 48 for n in network.nodes.values())
        assert any(len(n.sessions) > 0 for n in network.nodes.values())
        assert engine.live_episode_count() == 0

    def test_blackout_crashes_and_wakes_a_tenth(self):
        network, positions, nodes = _city()
        engine = FriendingEngine(network)
        engine.begin([EpisodeSpec(initiator_node=nodes[0],
                                  initiator=_initiator(0), start_ms=0)])
        faults = compile_campaign(load_fault_plan("blackout"), 0, 10_000)
        result = _drive(engine, positions, faults)
        total = result.aggregate.total
        assert total.nodes_crashed == 15  # 10% of 150
        assert total.nodes_joined == 15   # all woken at 60%
        assert not engine.wedged_episodes()

    def test_region_restart_is_invisible_in_results(self):
        """Kill-and-recover every region queue mid-run: byte-identical to
        the undisturbed run (the genealogy-key rebuild contract)."""
        results = {}
        for plan in (None, "region-restart"):
            network, positions, nodes = _city()
            engine = RegionShardedEngine(
                network, positions=positions, regions=2,
                retries=1, retransmit_timeout_ms=200,
            )
            engine.begin([
                EpisodeSpec(initiator_node=nodes[0], initiator=_initiator(0),
                            start_ms=0),
                EpisodeSpec(initiator_node=nodes[75], initiator=_initiator(1),
                            start_ms=13),
            ])
            faults = (
                compile_campaign(load_fault_plan(plan), 0, 400) if plan else []
            )
            results[plan] = _drive(engine, positions, faults, horizon_ms=400)
        undisturbed, restarted = results[None], results["region-restart"]
        assert restarted.region_restarts == 2
        assert undisturbed.region_restarts == 0
        for a, b in zip(undisturbed.episodes, restarted.episodes):
            assert a.matched_ids == b.matched_ids
            assert a.completed_at_ms == b.completed_at_ms
            assert a.metrics.frames_sent == b.metrics.frames_sent
            assert a.metrics.frame_bytes == b.metrics.frame_bytes


class TestSpecIntegration:
    def test_fault_plan_field_is_validated(self):
        with pytest.raises(SpecError) as err:
            ScenarioSpec(name="x", fault_plan="power-surge")
        assert "available:" in str(err.value)

    def test_fault_plan_rides_in_records(self):
        record = run_scenario(ScenarioSpec(
            name="x", nodes=100, episodes=2, seed=4, radio_radius=0.2,
            until_ms=8_000, fault_plan="session-pressure",
        ))
        assert record["fault_plan"] == "session-pressure"
        assert record["spec"]["fault_plan"] == "session-pressure"

    def test_initiator_crash_plan_degrades_episode(self):
        record = run_scenario(ScenarioSpec(
            name="x", nodes=100, episodes=1, seed=4, radio_radius=0.2,
            until_ms=200, retries=2, fault_plan="initiator-crash",
        ))
        assert record["nodes_crashed"] == 1
        assert record["degraded_episodes"] == 1
