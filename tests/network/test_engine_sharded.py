"""Region sharding: RegionShardedEngine == FriendingEngine, byte for byte.

The spatial analogue of ``test_engine_parallel.py``: the channel
determinism contract (every per-link fate is a pure function of
``(seed, flow, link, seq)``) plus the genealogy-key merge discipline in
``network/regions.py`` mean the region count is invisible in every
result -- frames, matches, per-episode metrics, completion times.  The
matrix here pins that across both channel fate planes, all four
reliability modes, multiple region counts and both shard transports;
the slow 10k-city golden run re-pins the exact PR-4 flood constants
through the sharded path.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant
from repro.network.channel_model import ChannelModel
from repro.network.engine import FriendingEngine
from repro.network.mobility import RandomWaypoint
from repro.network.regions import RegionShardedEngine
from repro.network.simulator import AdHocNetwork
from repro.network.topology import city_topology

N_NODES = 400
N_EPISODES = 6

LOSSY = dict(drop_rate=0.1, dup_rate=0.05, reorder_rate=0.1,
             corrupt_rate=0.05, jitter_ms=3, seed=5)


def _build(version: int = 1):
    adjacency, positions = city_topology(N_NODES, radius=0.08, seed=42)
    nodes = list(adjacency)
    participants = {
        node: Participant(
            Profile(
                [f"c{i % N_EPISODES}:t{j}" for j in range(3)] + [f"noise:{node}"],
                user_id=node, normalized=True,
            ),
            rng=random.Random(3000 + i),
        )
        for i, node in enumerate(nodes)
    }
    launches = [
        (
            nodes[episode * (N_NODES // N_EPISODES)],
            Initiator(
                RequestProfile(
                    necessary=[f"c{episode}:t0"],
                    optional=[f"c{episode}:t1", f"c{episode}:t2"],
                    beta=1, normalized=True,
                ),
                protocol=2, rng=random.Random(7000 + episode),
            ),
        )
        for episode in range(N_EPISODES)
    ]
    channel = ChannelModel(**LOSSY, version=version)
    return AdHocNetwork(adjacency, participants, channel=channel), positions, launches


def _fingerprints(result) -> list[tuple]:
    return [
        (
            ep.episode, ep.initiator_node, ep.started_at_ms, ep.completed_at_ms,
            ep.matched_ids,
            [(m.responder_id, m.similarity, m.y, m.session_key) for m in ep.matches],
            [r.elements for r in ep.replies],
            tuple(sorted(ep.metrics.as_dict().items())),
        )
        for ep in result.episodes
    ]


def _run(*, regions: int, version: int, reliability: str, transport: str = "inline"):
    network, positions, launches = _build(version)
    kwargs = dict(retries=2, retransmit_timeout_ms=200, reliability=reliability)
    if regions == 1:
        engine = FriendingEngine(network, **kwargs)
    else:
        engine = RegionShardedEngine(
            network, positions=positions, regions=regions, transport=transport,
            **kwargs,
        )
    return engine.run_staggered(launches, arrival_ms=7)


class TestShardedEqualsSequential:
    @pytest.mark.parametrize("version", [1, 2])
    @pytest.mark.parametrize(
        "reliability", ["simple", "stage", "window", "window_fec"]
    )
    def test_all_modes_both_planes(self, version, reliability):
        sequential = _run(regions=1, version=version, reliability=reliability)
        assert sequential.aggregate.matches > 0  # scenario is non-trivial
        for regions in (2, 3):
            sharded = _run(
                regions=regions, version=version, reliability=reliability
            )
            assert _fingerprints(sequential) == _fingerprints(sharded)
            assert sequential.aggregate.as_dict() == sharded.aggregate.as_dict()
            assert sequential.completed_at_ms == sharded.completed_at_ms

    @pytest.mark.parametrize("version", [1, 2])
    def test_process_transport(self, version):
        """Fork-based workers produce the same bytes as the inline merge."""
        sequential = _run(regions=1, version=version, reliability="window")
        sharded = _run(
            regions=3, version=version, reliability="window", transport="process"
        )
        assert _fingerprints(sequential) == _fingerprints(sharded)
        assert sequential.aggregate.as_dict() == sharded.aggregate.as_dict()

    def test_regions_one_delegates_to_sequential_engine(self):
        network, positions, launches = _build()
        result = RegionShardedEngine(
            network, positions=positions, regions=1
        ).run_staggered(launches, arrival_ms=7)
        network, positions, launches = _build()
        sequential = FriendingEngine(network).run_staggered(launches, arrival_ms=7)
        assert _fingerprints(sequential) == _fingerprints(result)


class TestShardedMobility:
    def test_rehoming_identity_random_waypoint(self):
        """Mid-flood refreshes with real mobility: nodes wander across
        stripe cuts and are re-homed without perturbing a single byte."""
        results = {}
        for regions in (1, 3):
            mobility = RandomWaypoint(
                [f"n{i}" for i in range(300)], seed=9,
                min_speed=0.05, max_speed=0.1,
            )
            adjacency = mobility.snapshot_topology(0.12)
            participants = {
                node: Participant(
                    Profile(["tag:a", f"noise:{node}"], user_id=node, normalized=True),
                    rng=random.Random(600 + i),
                )
                for i, node in enumerate(adjacency)
            }
            network = AdHocNetwork(
                adjacency, participants, channel=ChannelModel(**LOSSY)
            )
            launches = [
                ("n0", Initiator(RequestProfile.exact(["tag:a"], normalized=True),
                                 protocol=2, rng=random.Random(31))),
                ("n150", Initiator(RequestProfile.exact(["tag:a"], normalized=True),
                                   protocol=2, rng=random.Random(32))),
            ]
            kwargs = dict(
                mobility=mobility, radio_radius=0.12, refresh_interval_ms=40,
                retries=2, retransmit_timeout_ms=300,
            )
            if regions == 1:
                engine = FriendingEngine(network, **kwargs)
            else:
                engine = RegionShardedEngine(
                    network, positions=mobility.positions(), regions=regions,
                    **kwargs,
                )
            results[regions] = engine.run_staggered(launches, arrival_ms=20)

        assert results[1].topology_refreshes > 0
        assert results[1].topology_refreshes == results[3].topology_refreshes
        assert _fingerprints(results[1]) == _fingerprints(results[3])
        assert results[1].aggregate.as_dict() == results[3].aggregate.as_dict()


SPEC_10K = (
    Path(__file__).resolve().parent.parent.parent
    / "examples" / "specs" / "lossy_city.json"
)


@pytest.mark.slow
class TestLossyCity10kGolden:
    """The PR-4 flood constants through the sharded path, both planes."""

    def _record(self, *, regions: int, channel_version: int):
        from repro.analysis.experiments import ScenarioSpec, load_plan, run_scenario

        plan = load_plan(SPEC_10K)
        (spec,) = [s for s in plan.specs if s.loss_rate == 0.1]
        spec = ScenarioSpec.from_dict({
            **spec.as_dict(),
            "regions": regions,
            "channel_version": channel_version,
        })
        return run_scenario(spec)

    @pytest.mark.parametrize("regions", [2, 4])
    def test_v1_golden(self, regions):
        record = self._record(regions=regions, channel_version=1)
        assert record["frames_sent"] == 30586
        assert record["matches"] == 116

    @pytest.mark.parametrize("regions", [2, 4])
    def test_v2_golden(self, regions):
        record = self._record(regions=regions, channel_version=2)
        assert record["frames_sent"] == 29461
        assert record["matches"] == 104
