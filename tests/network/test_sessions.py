"""SessionTable: TTL eviction, bounded size, overflow policies."""

from __future__ import annotations

import pytest

from repro.network.sessions import SessionTable


def _rid(i: int) -> bytes:
    return i.to_bytes(8, "big")


class TestBasics:
    def test_open_and_get(self):
        table = SessionTable()
        session = table.open(_rid(1), parent="n0", hops=2, expires_ms=100, now_ms=0)
        assert table.get(_rid(1)) is session
        assert session.parent == "n0" and session.hops == 2
        assert _rid(1) in table and len(table) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionTable(max_sessions=0)
        with pytest.raises(ValueError, match="overflow"):
            SessionTable(overflow="lru")


class TestTtlEviction:
    def test_expired_sessions_purged_on_open(self):
        table = SessionTable()
        table.open(_rid(1), parent=None, hops=0, expires_ms=50, now_ms=0)
        table.open(_rid(2), parent=None, hops=0, expires_ms=500, now_ms=0)
        table.open(_rid(3), parent=None, hops=0, expires_ms=1000, now_ms=60)
        assert table.get(_rid(1)) is None
        assert table.get(_rid(2)) is not None
        assert table.evicted_expired == 1

    def test_explicit_evict_expired(self):
        table = SessionTable()
        for i in range(10):
            table.open(_rid(i), parent=None, hops=0, expires_ms=100 + 10 * i, now_ms=0)
        assert table.evict_expired(145) == 5
        assert len(table) == 5
        assert table.request_ids() == {_rid(i) for i in range(5, 10)}

    def test_eviction_is_deadline_not_insertion_order(self):
        table = SessionTable()
        table.open(_rid(1), parent=None, hops=0, expires_ms=900, now_ms=0)
        table.open(_rid(2), parent=None, hops=0, expires_ms=100, now_ms=0)
        table.evict_expired(500)
        assert table.get(_rid(1)) is not None
        assert table.get(_rid(2)) is None

    def test_session_on_its_deadline_is_still_live(self):
        """Boundary matches RequestPackage.is_expired (strict now > expiry):
        a frame arriving at exactly expiry_ms must still dedupe, not
        re-process."""
        table = SessionTable()
        table.open(_rid(1), parent=None, hops=0, expires_ms=100, now_ms=0)
        assert table.evict_expired(100) == 0
        assert table.get(_rid(1)) is not None
        assert table.evict_expired(101) == 1
        assert table.get(_rid(1)) is None


class TestOverflow:
    def test_evict_oldest_sacrifices_nearest_expiry(self):
        table = SessionTable(max_sessions=3)
        table.open(_rid(1), parent=None, hops=0, expires_ms=300, now_ms=0)
        table.open(_rid(2), parent=None, hops=0, expires_ms=100, now_ms=0)  # nearest death
        table.open(_rid(3), parent=None, hops=0, expires_ms=200, now_ms=0)
        admitted = table.open(_rid(4), parent=None, hops=0, expires_ms=400, now_ms=0)
        assert admitted is not None
        assert table.get(_rid(2)) is None
        assert len(table) == 3
        assert table.evicted_overflow == 1

    def test_drop_new_refuses_the_caller(self):
        table = SessionTable(max_sessions=2, overflow="drop_new")
        table.open(_rid(1), parent=None, hops=0, expires_ms=100, now_ms=0)
        table.open(_rid(2), parent=None, hops=0, expires_ms=100, now_ms=0)
        assert table.open(_rid(3), parent=None, hops=0, expires_ms=100, now_ms=0) is None
        assert table.rejected_overflow == 1
        assert len(table) == 2

    def test_expired_purge_makes_room_before_policy_applies(self):
        table = SessionTable(max_sessions=2, overflow="drop_new")
        table.open(_rid(1), parent=None, hops=0, expires_ms=10, now_ms=0)
        table.open(_rid(2), parent=None, hops=0, expires_ms=999, now_ms=0)
        # rid 1 is expired by now: the new session fits without rejection.
        assert table.open(_rid(3), parent=None, hops=0, expires_ms=999, now_ms=50) is not None
        assert table.rejected_overflow == 0

    def test_stale_heap_entries_skipped(self):
        """Overflow-evicted sessions leave heap entries that must be ignored."""
        table = SessionTable(max_sessions=2)
        table.open(_rid(1), parent=None, hops=0, expires_ms=100, now_ms=0)
        table.open(_rid(2), parent=None, hops=0, expires_ms=200, now_ms=0)
        table.open(_rid(3), parent=None, hops=0, expires_ms=300, now_ms=0)  # evicts rid1
        table.open(_rid(4), parent=None, hops=0, expires_ms=400, now_ms=0)  # evicts rid2
        assert table.request_ids() == {_rid(3), _rid(4)}
        assert table.evicted_overflow == 2


class TestHandOff:
    """export_rows / adopt_rows: the node re-homing state transfer."""

    def test_round_trip_preserves_rows_and_expiry(self):
        source = SessionTable()
        source.open(_rid(1), parent="a", hops=2, expires_ms=100, now_ms=0)
        source.open(_rid(2), parent=None, hops=1, expires_ms=50, now_ms=0)
        source.lookup(_rid(1)).last_seq = 3

        target = SessionTable()
        target.adopt_rows(source.export_rows())
        assert target.request_ids() == source.request_ids()
        row = target.lookup(_rid(1))
        assert (row.parent, row.hops, row.expires_ms, row.last_seq) == ("a", 2, 100, 3)
        # Adopted rows are indexed on the expiry heap: TTL eviction works.
        target.open(_rid(3), parent=None, hops=0, expires_ms=999, now_ms=60)
        assert _rid(2) not in target
        assert _rid(1) in target

    def test_rows_are_shared_not_copied(self):
        """Hand-off moves the live Session objects; the receiving worker
        continues exactly where the exporter stopped."""
        source = SessionTable()
        source.open(_rid(1), parent="p", hops=1, expires_ms=100, now_ms=0)
        target = SessionTable()
        target.adopt_rows(source.export_rows())
        assert target.lookup(_rid(1)) is source.lookup(_rid(1))

    def test_adoption_bypasses_overflow_policy(self):
        source = SessionTable()
        for i in range(4):
            source.open(_rid(i), parent=None, hops=0, expires_ms=100 + i, now_ms=0)
        target = SessionTable(max_sessions=2, overflow="drop_new")
        target.adopt_rows(source.export_rows())
        assert len(target) == 4
        assert target.rejected_overflow == 0

    def test_adoption_replaces_existing_rows(self):
        target = SessionTable()
        target.open(_rid(1), parent="old", hops=9, expires_ms=10, now_ms=0)
        source = SessionTable()
        source.open(_rid(1), parent="new", hops=1, expires_ms=500, now_ms=0)
        target.adopt_rows(source.export_rows())
        assert target.lookup(_rid(1)).parent == "new"
        assert target.lookup(_rid(1)).expires_ms == 500
