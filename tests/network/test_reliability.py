"""Reliability modes: registry, XOR parity algebra, wave schedules, engine runs."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant
from repro.network.channel_model import ChannelModel
from repro.network.engine import FriendingEngine
from repro.network.events import RetransmitEvent
from repro.network.reliability import (
    DEFAULT_FEC_WINDOW,
    RELIABILITY_MODES,
    ReliabilityMode,
    available_reliability_modes,
    fec_parity_elements,
    fec_reconstruct,
    load_reliability_mode,
    xor_bytes,
)
from repro.network.simulator import AdHocNetwork
from repro.network.topology import random_geometric_topology

N_NODES = 60
N_EPISODES = 12

LOSSY = dict(drop_rate=0.1, dup_rate=0.05, reorder_rate=0.1,
             corrupt_rate=0.05, jitter_ms=3, seed=5)


def _build(channel=None, **network_kwargs):
    adjacency, _ = random_geometric_topology(N_NODES, 0.22, seed=42)
    nodes = list(adjacency)
    participants = {
        node: Participant(
            Profile(
                [f"c{i % N_EPISODES}:t{j}" for j in range(3)] + [f"noise:{node}"],
                user_id=node, normalized=True,
            ),
            rng=random.Random(3000 + i),
        )
        for i, node in enumerate(nodes)
    }
    launches = [
        (
            nodes[episode * (N_NODES // N_EPISODES)],
            Initiator(
                RequestProfile(
                    necessary=[f"c{episode}:t0"],
                    optional=[f"c{episode}:t1", f"c{episode}:t2"],
                    beta=1, normalized=True,
                ),
                protocol=2, rng=random.Random(7000 + episode),
            ),
        )
        for episode in range(N_EPISODES)
    ]
    return AdHocNetwork(adjacency, participants, channel=channel, **network_kwargs), launches


def _fingerprints(result) -> list[tuple]:
    return [
        (
            ep.episode,
            ep.completed_at_ms,
            ep.matched_ids,
            [(m.responder_id, m.similarity, m.y, m.session_key) for m in ep.matches],
            [r.elements for r in ep.replies],
            tuple(sorted(ep.metrics.as_dict().items())),
        )
        for ep in result.episodes
    ]


class TestModeRegistry:
    def test_builtin_modes_present(self):
        assert available_reliability_modes() == ("simple", "stage", "window", "window_fec")

    def test_load_mode_by_name(self):
        mode = load_reliability_mode("window_fec")
        assert mode.segmented
        assert not mode.waves
        assert mode.fec_window == DEFAULT_FEC_WINDOW

    def test_load_mode_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown reliability mode"):
            load_reliability_mode("not-a-mode")

    def test_unknown_mode_error_lists_the_choices(self):
        with pytest.raises(ValueError, match="simple.*stage.*window"):
            load_reliability_mode("carrier-pigeon")

    def test_instance_passes_through(self):
        custom = ReliabilityMode(name="custom", description="x", wave_backoff=3.0)
        assert load_reliability_mode(custom) is custom

    def test_registry_names_match_keys(self):
        for name, mode in RELIABILITY_MODES.items():
            assert mode.name == name

    def test_wave_delay_simple_is_constant(self):
        mode = RELIABILITY_MODES["simple"]
        assert [mode.wave_delay_ms(k, 250) for k in (1, 2, 3, 8)] == [250] * 4

    def test_wave_delay_stage_doubles(self):
        mode = RELIABILITY_MODES["stage"]
        assert [mode.wave_delay_ms(k, 100) for k in (1, 2, 3, 4)] == [100, 200, 400, 800]

    def test_wave_delay_monotone_under_backoff(self):
        """A backoff >= 1 never shortens the gap from one wave to the next."""
        for mode in RELIABILITY_MODES.values():
            delays = [mode.wave_delay_ms(k, 130) for k in range(1, 10)]
            assert all(b >= a for a, b in zip(delays, delays[1:])), mode.name

    def test_wave_delay_rejects_attempt_zero(self):
        with pytest.raises(ValueError, match="attempt"):
            RELIABILITY_MODES["simple"].wave_delay_ms(0, 100)

    def test_wave_delay_never_zero(self):
        tiny = ReliabilityMode(name="t", description="x", wave_backoff=0.001)
        assert tiny.wave_delay_ms(5, 1) == 1


class TestFecAlgebra:
    def test_xor_bytes_length_mismatch(self):
        with pytest.raises(ValueError, match="XOR"):
            xor_bytes(b"ab", b"abc")

    def test_parity_covers_short_final_window(self):
        elements = [bytes([i]) * 4 for i in range(5)]
        parities = fec_parity_elements(elements, 4)
        assert len(parities) == 2
        assert parities[0] == xor_bytes(
            xor_bytes(elements[0], elements[1]), xor_bytes(elements[2], elements[3])
        )
        assert parities[1] == elements[4]  # lone element: parity is itself

    def test_parity_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            fec_parity_elements([b"xxxx"], 0)
        with pytest.raises(ValueError, match="window"):
            fec_reconstruct(1, 0, {}, {})

    def test_single_loss_per_window_recovers(self):
        elements = [bytes([i]) * 48 for i in range(8)]
        parity = dict(enumerate(fec_parity_elements(elements, 4)))
        data = {i: e for i, e in enumerate(elements) if i not in (1, 6)}
        completed, recovered = fec_reconstruct(8, 4, data, parity)
        assert recovered == [1, 6]
        assert completed == dict(enumerate(elements))

    def test_double_loss_in_one_window_stays_lost(self):
        elements = [bytes([i]) * 48 for i in range(4)]
        parity = dict(enumerate(fec_parity_elements(elements, 4)))
        data = {0: elements[0], 3: elements[3]}
        completed, recovered = fec_reconstruct(4, 4, data, parity)
        assert recovered == []
        assert completed == data

    def test_missing_parity_cannot_recover(self):
        elements = [bytes([i]) * 48 for i in range(4)]
        data = {i: e for i, e in enumerate(elements) if i != 2}
        completed, recovered = fec_reconstruct(4, 4, data, {})
        assert recovered == []
        assert completed == data

    def test_parity_past_the_data_is_ignored(self):
        completed, recovered = fec_reconstruct(2, 4, {0: b"a" * 48, 1: b"b" * 48},
                                               {5: b"z" * 48})
        assert recovered == []
        assert len(completed) == 2

    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_reconstruction_exact_under_any_in_budget_loss(self, data):
        """The satellite property: under ANY loss pattern within the parity
        budget (at most one data element lost per window, that window's
        parity delivered), reconstruction returns exactly the original
        element set -- nothing missing, nothing invented, nothing altered."""
        n = data.draw(st.integers(min_value=1, max_value=12), label="n_data")
        window = data.draw(st.integers(min_value=1, max_value=5), label="window")
        elements = [
            data.draw(st.binary(min_size=48, max_size=48), label=f"element[{i}]")
            for i in range(n)
        ]
        parity = dict(enumerate(fec_parity_elements(elements, window)))
        lost: set[int] = set()
        for w in range(len(parity)):
            start, stop = w * window, min((w + 1) * window, n)
            victim = data.draw(
                st.one_of(st.none(), st.integers(min_value=start, max_value=stop - 1)),
                label=f"loss[{w}]",
            )
            if victim is not None:
                lost.add(victim)
        received = {i: e for i, e in enumerate(elements) if i not in lost}
        completed, recovered = fec_reconstruct(n, window, received, parity)
        assert completed == dict(enumerate(elements))
        assert recovered == sorted(lost)


def _silent_line(reliability: str, retries: int = 3, timeout: int = 100):
    """A 2-node line where every frame is dropped: waves keep firing.

    Returns the (now_ms, attempt) log of every RetransmitEvent handled.
    """
    adjacency = {"n0": ["n1"], "n1": ["n0"]}
    participants = {
        "n0": None,
        "n1": Participant(Profile(["tag:a"], user_id="n1", normalized=True)),
    }
    network = AdHocNetwork(adjacency, participants, channel=ChannelModel(drop_rate=1.0, seed=1))
    initiator = Initiator(
        RequestProfile.exact(["tag:a"], normalized=True), protocol=2, rng=random.Random(1)
    )
    engine = FriendingEngine(
        network, retries=retries, retransmit_timeout_ms=timeout, reliability=reliability
    )
    fired: list[tuple[int, int]] = []
    inner = engine._handlers[RetransmitEvent]

    def spy(event):
        fired.append((engine._queue.now_ms, event.attempt))
        inner(event)

    engine._handlers[RetransmitEvent] = spy
    from repro.network.engine import EpisodeSpec

    engine.run([EpisodeSpec(initiator_node="n0", initiator=initiator)])
    return fired


class TestWaveSchedules:
    def test_simple_fires_exactly_at_timeout_boundaries(self):
        """Wave k of ``simple`` lands at exactly k * timeout -- the frozen
        pre-strategy timetable, to the millisecond."""
        assert _silent_line("simple") == [(100, 1), (200, 2), (300, 3)]

    def test_stage_backoff_escalates(self):
        """``stage`` doubles each gap: waves at T, T+2T, T+2T+4T."""
        assert _silent_line("stage") == [(100, 1), (300, 2), (700, 3)]

    def test_window_falls_back_to_reflood_when_silent(self):
        """Total silence gives ``window`` nothing to aim at: it re-floods
        on the same timetable as ``simple``."""
        assert _silent_line("window") == [(100, 1), (200, 2), (300, 3)]

    def test_window_fec_never_schedules_waves(self):
        assert _silent_line("window_fec") == []

    def test_retries_bounded_to_one_envelope_byte_in_every_mode(self):
        """The envelope seq names the wave in one byte; no mode escapes
        the 255-wave ceiling (and 255 itself is fine everywhere)."""
        network, _ = _build()
        for name in available_reliability_modes():
            with pytest.raises(ValueError, match="255"):
                FriendingEngine(network, retries=256, reliability=name)
            FriendingEngine(network, retries=255, reliability=name)


class TestEngineModes:
    def test_unknown_mode_raises_at_construction(self):
        network, _ = _build()
        with pytest.raises(ValueError, match="unknown reliability mode"):
            FriendingEngine(network, reliability="nope")

    def test_segmented_modes_require_the_wire_runtime(self):
        network, _ = _build()
        for name in ("window", "window_fec"):
            with pytest.raises(ValueError, match="wire"):
                FriendingEngine(network, wire=False, reliability=name)

    def test_simple_is_byte_frozen_against_the_default(self):
        """Passing reliability='simple' explicitly is the identity: same
        fingerprints as an engine that never heard of modes."""
        network, launches = _build(ChannelModel(**LOSSY))
        default = FriendingEngine(network, retries=2).run_staggered(launches, arrival_ms=7)
        network, launches = _build(ChannelModel(**LOSSY))
        explicit = FriendingEngine(
            network, retries=2, reliability="simple"
        ).run_staggered(launches, arrival_ms=7)
        assert _fingerprints(default) == _fingerprints(explicit)

    def test_window_fec_recovers_without_waves(self):
        network, launches = _build(ChannelModel(**LOSSY))
        result = FriendingEngine(
            network, retries=2, reliability="window_fec"
        ).run_staggered(launches, arrival_ms=7)
        total = result.aggregate.total
        assert total.fec_recovered > 0
        assert total.retransmissions == 0  # no waves, ever
        assert total.selective_retx == 0
        assert result.aggregate.matches > 0

    def test_window_resends_only_missing_segments(self):
        network, launches = _build(ChannelModel(**LOSSY))
        result = FriendingEngine(
            network, retries=2, reliability="window", retransmit_timeout_ms=100
        ).run_staggered(launches, arrival_ms=7)
        total = result.aggregate.total
        assert total.selective_retx > 0
        assert total.fec_recovered == 0  # no parity in plain window mode
        assert result.aggregate.matches > 0

    def test_segmented_modes_reproducible_from_seed(self):
        for name in ("window", "window_fec"):
            runs = []
            for _ in range(2):
                network, launches = _build(ChannelModel(**LOSSY))
                runs.append(
                    FriendingEngine(
                        network, retries=2, reliability=name, retransmit_timeout_ms=100
                    ).run_staggered(launches, arrival_ms=7)
                )
            assert _fingerprints(runs[0]) == _fingerprints(runs[1]), name

    @pytest.mark.parametrize("name", ["simple", "stage", "window", "window_fec"])
    def test_run_parallel_equals_sequential_in_every_mode(self, name):
        """The acceptance bar: sharding stays invisible no matter how the
        mode reshapes the retransmission traffic."""
        network, launches = _build(ChannelModel(**LOSSY))
        sequential = FriendingEngine(
            network, retries=2, reliability=name, retransmit_timeout_ms=100
        ).run_staggered(launches, arrival_ms=7)
        network, launches = _build(ChannelModel(**LOSSY))
        parallel = FriendingEngine(
            network, retries=2, reliability=name, retransmit_timeout_ms=100
        ).run_staggered(launches, arrival_ms=7, workers=4)
        assert _fingerprints(sequential) == _fingerprints(parallel)
        assert sequential.aggregate.as_dict() == parallel.aggregate.as_dict()

    def test_matches_survive_loss_in_every_mode(self):
        """Every mode still completes friendings over the lossy city block."""
        for name in available_reliability_modes():
            network, launches = _build(ChannelModel(**LOSSY))
            result = FriendingEngine(
                network, retries=2, reliability=name, retransmit_timeout_ms=100
            ).run_staggered(launches, arrival_ms=7)
            assert result.aggregate.matches > 0, name
