"""Verifiability against cheating participants (Sec. IV-A3)."""

from __future__ import annotations

import random

from repro.attacks.cheating import CheatingParticipant
from repro.core.attributes import RequestProfile
from repro.core.protocols import Initiator

REQUEST = RequestProfile.exact(["tag:a", "tag:b"], normalized=True)


def _initiator(protocol=2, **kwargs):
    return Initiator(REQUEST, protocol=protocol, rng=random.Random(3), **kwargs)


class TestCheatingRejected:
    def test_random_forgery_rejected(self):
        initiator = _initiator()
        package = initiator.create_request(now_ms=0)
        cheater = CheatingParticipant()
        reply = cheater.forge_random_reply(package)
        assert initiator.handle_reply(reply, now_ms=1) is None
        assert initiator.rejected[-1].reason == "no element verified"

    def test_plaintext_ack_guess_rejected(self):
        # Knowing the public ACK string does not help without x.
        initiator = _initiator()
        package = initiator.create_request(now_ms=0)
        reply = CheatingParticipant().forge_plaintext_guess_reply(package)
        assert initiator.handle_reply(reply, now_ms=1) is None

    def test_flood_reply_rejected_unopened(self):
        from repro.analysis.counters import OpCounter

        counter = OpCounter()
        initiator = _initiator(max_reply_elements=16)
        initiator.counter = counter
        package = initiator.create_request(now_ms=0)
        reply = CheatingParticipant().flood_reply(package, n_elements=500)
        counter.reset()
        assert initiator.handle_reply(reply, now_ms=1) is None
        assert counter.get("D") == 0  # rejected by cardinality, nothing decrypted

    def test_many_forgeries_never_succeed(self):
        initiator = _initiator(protocol=1)
        package = initiator.create_request(now_ms=0)
        cheater = CheatingParticipant()
        for _ in range(50):
            assert initiator.handle_reply(cheater.forge_random_reply(package), now_ms=1) is None
        assert initiator.matches == []

    def test_cheater_cannot_claim_under_protocol1_either(self):
        initiator = _initiator(protocol=1)
        package = initiator.create_request(now_ms=0)
        reply = CheatingParticipant().forge_plaintext_guess_reply(package)
        assert initiator.handle_reply(reply, now_ms=1) is None
