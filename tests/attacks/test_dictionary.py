"""Dictionary profiling attack tests (the Table II worst case, executed)."""

from __future__ import annotations

import random

import pytest

from repro.attacks.dictionary import DictionaryAttacker, ProbingInitiator
from repro.core.attributes import Profile, RequestProfile
from repro.core.entropy import AttributeDistribution, EntropyPolicy
from repro.core.protocols import Initiator, Participant

UNIVERSE = [f"tag:w{i}" for i in range(30)]
REQUEST = RequestProfile.exact(UNIVERSE[:3], normalized=True)


def _package(protocol):
    initiator = Initiator(REQUEST, protocol=protocol, rng=random.Random(5))
    return initiator.create_request(now_ms=0)


class TestRequestRecovery:
    def test_protocol1_broken_by_small_dictionary(self):
        """Table II: (A_I, v'_P) = PPL 0 under Protocol 1."""
        attacker = DictionaryAttacker(UNIVERSE)
        result = attacker.recover_request(_package(1))
        assert result.succeeded
        assert set(result.recovered) == set(UNIVERSE[:3])

    def test_protocol2_resists_dictionary(self):
        """Table II: (A_I, v'_P) = PPL 3 under Protocol 2 (no oracle)."""
        attacker = DictionaryAttacker(UNIVERSE)
        result = attacker.recover_request(_package(2))
        assert not result.succeeded

    def test_protocol3_resists_dictionary(self):
        attacker = DictionaryAttacker(UNIVERSE)
        assert not attacker.recover_request(_package(3)).succeeded

    def test_incomplete_dictionary_fails(self):
        # Dictionary missing one request attribute: bucket coverage breaks.
        attacker = DictionaryAttacker(UNIVERSE[1:])  # w0 missing
        result = attacker.recover_request(_package(1))
        assert not result.succeeded

    def test_guess_count_grows_with_dictionary(self):
        small = DictionaryAttacker(UNIVERSE).recover_request(_package(1))
        big = DictionaryAttacker(
            UNIVERSE + [f"tag:x{i}" for i in range(300)]
        ).recover_request(_package(1))
        assert big.candidate_combinations >= small.candidate_combinations


class TestProbingInitiator:
    VICTIM_ATTRS = ["tag:w1", "tag:w2", "tag:w3"]

    def test_protocol2_probe_learns_everything(self):
        """Table II: malicious initiator extracts attribute ownership."""
        victim = Participant(Profile(self.VICTIM_ATTRS, user_id="v", normalized=True))
        prober = ProbingInitiator(UNIVERSE[:8], protocol=2)
        learned = prober.probe(victim)
        for attr in UNIVERSE[:8]:
            assert learned[attr] == (attr in self.VICTIM_ATTRS)

    def test_protocol3_entropy_policy_caps_leakage(self):
        """Table II: Protocol 3 is phi-entropy private against the probe."""
        distribution = AttributeDistribution.uniform({"tag": 1 << 16})  # 16 bits/attr
        victim = Participant(
            Profile(self.VICTIM_ATTRS, user_id="v", normalized=True),
            entropy_policy=EntropyPolicy(distribution, phi=16.0),  # one attribute max
        )
        prober = ProbingInitiator(UNIVERSE[:8], protocol=3)
        learned = prober.probe(victim)
        profile = Profile(self.VICTIM_ATTRS, normalized=True)
        leaked = prober.leaked_attributes(profile, learned)
        # The victim replies only while the disclosure budget allows; each
        # probe is an independent request so at most one attribute can leak
        # per request, and phi=16 admits one 16-bit attribute each time, so
        # the probe may learn ownership but never more entropy than phi per
        # exchange.  Verify the cap is enforced per-reply:
        assert len(leaked) <= len(self.VICTIM_ATTRS)
        zero_victim = Participant(
            Profile(self.VICTIM_ATTRS, user_id="v", normalized=True),
            entropy_policy=EntropyPolicy(distribution, phi=0.0),
        )
        silent = ProbingInitiator(UNIVERSE[:8], protocol=3).probe(zero_victim)
        assert not any(silent.values())  # zero budget => nothing leaks

    def test_probe_requires_no_confirmation_protocol(self):
        with pytest.raises(ValueError):
            ProbingInitiator(UNIVERSE, protocol=1)
