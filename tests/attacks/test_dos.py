"""DoS flood and rate-limit defence tests."""

from __future__ import annotations

from repro.attacks.dos import DosAttacker
from repro.network.simulator import RateLimiter


class TestFlood:
    def test_defence_absorbs_most_traffic(self):
        attacker = DosAttacker(seed=1)
        limiter = RateLimiter(max_events=5, window_ms=10_000)
        outcome = attacker.flood_node(limiter, n_requests=500, interval_ms=10)
        assert outcome.processed <= 10
        assert outcome.absorption_ratio > 0.95

    def test_slow_sender_unaffected(self):
        attacker = DosAttacker(seed=2)
        limiter = RateLimiter(max_events=5, window_ms=1_000)
        outcome = attacker.flood_node(limiter, n_requests=20, interval_ms=300)
        assert outcome.dropped == 0

    def test_minted_requests_are_distinct(self):
        attacker = DosAttacker(seed=3)
        ids = {attacker.mint_request().request_id for _ in range(20)}
        assert len(ids) == 20  # fresh ids defeat naive duplicate suppression

    def test_minted_requests_parse(self):
        from repro.core.request import RequestPackage

        package = DosAttacker(seed=4).mint_request()
        assert RequestPackage.decode(package.encode()) == package
