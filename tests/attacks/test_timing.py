"""Response-time malicious-replier detection tests."""

from __future__ import annotations

import random

from repro.attacks.timing import (
    ResponseTimeModel,
    dictionary_reply_delay_ms,
    honest_reply_delay_ms,
)
from repro.core.attributes import RequestProfile
from repro.core.matching import build_request

MODEL = ResponseTimeModel()


def _package(m_t=6, p=11):
    request = RequestProfile.exact([f"tag:t{i}" for i in range(m_t)], normalized=True)
    package, _ = build_request(request, protocol=2, p=p, rng=random.Random(1))
    return package


class TestDelays:
    def test_honest_user_is_fast(self):
        delay = honest_reply_delay_ms(MODEL, m_k=20, candidate_keys=3, fuzzy=True)
        assert delay < 10.0  # well inside any sane reply window

    def test_dictionary_attacker_is_slow(self):
        package = _package()
        delay = dictionary_reply_delay_ms(MODEL, package, dictionary_size=100_000)
        # (100000/11)^6 combinations: astronomically beyond any window.
        assert delay > 1e9

    def test_separation_even_with_small_dictionary(self):
        """Even a 500-word dictionary blows a 5-second reply window."""
        package = _package()
        honest = honest_reply_delay_ms(MODEL, m_k=20, candidate_keys=5, fuzzy=True)
        attacker = dictionary_reply_delay_ms(MODEL, package, dictionary_size=500)
        window_ms = 5_000
        assert honest < window_ms
        assert attacker > window_ms

    def test_delay_grows_with_dictionary(self):
        package = _package()
        small = dictionary_reply_delay_ms(MODEL, package, dictionary_size=1_000)
        large = dictionary_reply_delay_ms(MODEL, package, dictionary_size=10_000)
        assert large > small

    def test_larger_p_helps_the_attacker(self):
        """The p trade-off again: bigger p shrinks the attack's work."""
        small_p = dictionary_reply_delay_ms(MODEL, _package(p=11), dictionary_size=10_000)
        large_p = dictionary_reply_delay_ms(MODEL, _package(p=101), dictionary_size=10_000)
        assert large_p < small_p

    def test_model_component_accounting(self):
        model = ResponseTimeModel(hash_ms=1, mod_ms=1, decrypt_ms=1, solve_ms=1, base_ms=0)
        assert model.reply_delay_ms(2, 3, 4, 5) == 14
