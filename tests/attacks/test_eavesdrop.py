"""Eavesdropper observations and profiling-cost estimates (Sec. IV-A1)."""

from __future__ import annotations

import math
import random

import pytest

from repro.attacks.eavesdrop import (
    Eavesdropper,
    dictionary_profiling_guesses,
)
from repro.attacks.eavesdrop import profiling_guesses_log2
from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant
from repro.core.wire import encode_reply_frame, encode_request_frame


class TestProfilingCost:
    def test_paper_2_100_claim(self):
        """Tencent Weibo: m = 2^20, p = 11, m_t = 6 -> about 2^100 guesses."""
        log2_guesses = profiling_guesses_log2(1 << 20, 11, 6)
        assert 99 <= log2_guesses <= 101

    def test_paper_10_30_claim(self):
        """Sec. V-A: guessing a 6-tag profile from 560419 tags ~ 10^30."""
        guesses = dictionary_profiling_guesses(560_419, 1, 6)
        assert math.log10(guesses) == pytest.approx(34.5, abs=1)
        # The paper quotes 10^30 for brute force over the tag space
        # without remainder help; with p=11 the attacker saves ~6*log10(11).
        with_remainders = dictionary_profiling_guesses(560_419, 11, 6)
        assert math.log10(with_remainders) == pytest.approx(28.2, abs=1)

    def test_larger_p_weakens_security(self):
        assert dictionary_profiling_guesses(10**6, 23, 6) < (
            dictionary_profiling_guesses(10**6, 11, 6)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            dictionary_profiling_guesses(0, 11, 6)


class TestObservations:
    def _traffic(self):
        eve = Eavesdropper()
        initiator = Initiator(
            RequestProfile.exact(["tag:a", "tag:b"], normalized=True),
            protocol=2,
            rng=random.Random(6),
        )
        package = initiator.create_request(now_ms=0)
        eve.observe_request(package)
        participant = Participant(Profile(["tag:a", "tag:b"], user_id="m", normalized=True))
        reply = participant.handle_request(package, now_ms=1)
        eve.observe_reply(reply)
        return eve, package, reply

    def test_no_attribute_hashes_on_the_wire(self):
        eve, _, _ = self._traffic()
        assert eve.attribute_hashes_observed() == 0

    def test_remainder_information_bounded(self):
        eve, package, _ = self._traffic()
        expected = len(package.remainders) * math.log2(package.p)
        assert eve.remainder_information_bits() == pytest.approx(expected)

    def test_byte_accounting_is_frame_level(self):
        eve, package, reply = self._traffic()
        expected = len(encode_request_frame(package)) + len(encode_reply_frame(reply))
        assert eve.traffic.observed_bytes == expected
        assert eve.traffic.frames_captured == 2

    def test_rebroadcast_copies_add_no_information(self):
        """The same request on many links: one package, many frames."""
        eve, package, _ = self._traffic()
        bits_before = eve.remainder_information_bits()
        frame = encode_request_frame(package)
        for dst in ("n1", "n2", "n3"):
            eve.capture("n0", dst, frame)
        assert len(eve.traffic.packages) == 1
        assert eve.traffic.frames_captured == 5
        assert eve.remainder_information_bits() == bits_before

    def test_corrupted_frames_unreadable_to_the_adversary_too(self):
        eve, package, _ = self._traffic()
        frame = bytearray(encode_request_frame(package))
        frame[len(frame) // 2] ^= 0x40
        eve.capture("n0", "n1", bytes(frame))
        assert eve.traffic.undecodable == 1
        assert len(eve.traffic.packages) == 1  # only the clean copy decoded


class TestEngineTap:
    def test_eavesdropper_reconstructs_flood_from_the_tap(self):
        """Wired as the engine's frame tap, Eve sees every datagram copy."""
        from repro.network.engine import EpisodeSpec, FriendingEngine
        from repro.network.simulator import AdHocNetwork
        from repro.network.topology import line_topology

        eve = Eavesdropper()
        adjacency, _ = line_topology(4)
        participants = {
            "n0": None,
            "n1": Participant(Profile(["tag:x1"], user_id="n1", normalized=True)),
            "n2": Participant(Profile(["tag:x2"], user_id="n2", normalized=True)),
            "n3": Participant(Profile(["tag:a", "tag:b"], user_id="n3", normalized=True),
                              rng=random.Random(9)),
        }
        network = AdHocNetwork(adjacency, participants)
        initiator = Initiator(
            RequestProfile.exact(["tag:a", "tag:b"], normalized=True),
            protocol=2, rng=random.Random(1),
        )
        engine = FriendingEngine(network, frame_tap=eve.capture)
        result = engine.run([EpisodeSpec(initiator_node="n0", initiator=initiator)])

        # Eve captured every link transmission and decoded the one request.
        metrics = result.episodes[0].metrics
        assert eve.traffic.frames_captured == metrics.frames_sent
        assert list(eve.traffic.packages) == [initiator.secret.request_id]
        # She also saw the matching user's acknowledge set -- as ciphertext.
        assert [r.responder_id for r in eve.traffic.replies] == ["n3"]
        assert eve.attribute_hashes_observed() == 0
