"""Eavesdropper observations and profiling-cost estimates (Sec. IV-A1)."""

from __future__ import annotations

import math
import random

import pytest

from repro.attacks.eavesdrop import (
    Eavesdropper,
    dictionary_profiling_guesses,
)
from repro.attacks.eavesdrop import profiling_guesses_log2
from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant


class TestProfilingCost:
    def test_paper_2_100_claim(self):
        """Tencent Weibo: m = 2^20, p = 11, m_t = 6 -> about 2^100 guesses."""
        log2_guesses = profiling_guesses_log2(1 << 20, 11, 6)
        assert 99 <= log2_guesses <= 101

    def test_paper_10_30_claim(self):
        """Sec. V-A: guessing a 6-tag profile from 560419 tags ~ 10^30."""
        guesses = dictionary_profiling_guesses(560_419, 1, 6)
        assert math.log10(guesses) == pytest.approx(34.5, abs=1)
        # The paper quotes 10^30 for brute force over the tag space
        # without remainder help; with p=11 the attacker saves ~6*log10(11).
        with_remainders = dictionary_profiling_guesses(560_419, 11, 6)
        assert math.log10(with_remainders) == pytest.approx(28.2, abs=1)

    def test_larger_p_weakens_security(self):
        assert dictionary_profiling_guesses(10**6, 23, 6) < (
            dictionary_profiling_guesses(10**6, 11, 6)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            dictionary_profiling_guesses(0, 11, 6)


class TestObservations:
    def _traffic(self):
        eve = Eavesdropper()
        initiator = Initiator(
            RequestProfile.exact(["tag:a", "tag:b"], normalized=True),
            protocol=2,
            rng=random.Random(6),
        )
        package = initiator.create_request(now_ms=0)
        eve.observe_request(package)
        participant = Participant(Profile(["tag:a", "tag:b"], user_id="m", normalized=True))
        reply = participant.handle_request(package, now_ms=1)
        eve.observe_reply(reply)
        return eve, package

    def test_no_attribute_hashes_on_the_wire(self):
        eve, _ = self._traffic()
        assert eve.attribute_hashes_observed() == 0

    def test_remainder_information_bounded(self):
        eve, package = self._traffic()
        expected = len(package.remainders) * math.log2(package.p)
        assert eve.remainder_information_bits() == pytest.approx(expected)

    def test_byte_accounting(self):
        eve, package = self._traffic()
        assert eve.traffic.observed_bytes == package.wire_size_bytes() + 48
