"""Man-in-the-middle resistance tests (Sec. IV-A2)."""

from __future__ import annotations

import random

import pytest

from repro.attacks.mitm import ManInTheMiddle
from repro.core.attributes import Profile, RequestProfile
from repro.core.channel import SecureChannel
from repro.core.protocols import Initiator, Participant
from repro.crypto.authenticated import AuthenticationError

REQUEST = RequestProfile.exact(["tag:a", "tag:b"], normalized=True)
MATCH = Profile(["tag:a", "tag:b", "tag:c"], user_id="match", normalized=True)


def _run_with_mitm(protocol=2):
    mitm = ManInTheMiddle()
    initiator = Initiator(REQUEST, protocol=protocol, rng=random.Random(4))
    package = mitm.intercept_request(initiator.create_request(now_ms=0))
    participant = Participant(MATCH)
    reply = participant.handle_request(package, now_ms=1)
    return mitm, initiator, participant, package, reply


class TestPassiveMitm:
    def test_cannot_read_x(self):
        mitm, *_ = _run_with_mitm()
        assert not mitm.outcome.read_x

    def test_cannot_read_session_traffic(self):
        mitm, initiator, participant, package, reply = _run_with_mitm()
        record = initiator.handle_reply(reply, now_ms=2)
        message = SecureChannel(record.session_key).send(b"secret chat")
        guessed_keys = [bytes([i]) * 32 for i in range(16)]
        assert not mitm.attack_session(message, guessed_keys)


class TestActiveMitm:
    def test_substituted_reply_rejected(self):
        """The classic splice: replace y with the attacker's own secret."""
        mitm, initiator, participant, package, reply = _run_with_mitm()
        forged = mitm.substitute_reply(reply)
        assert initiator.handle_reply(forged, now_ms=2) is None
        assert initiator.matches == []

    def test_tampered_session_message_rejected(self):
        mitm, initiator, participant, package, reply = _run_with_mitm()
        record = initiator.handle_reply(reply, now_ms=2)
        channel = SecureChannel(record.session_key)
        tampered = mitm.tamper_session(channel.send(b"meet at noon"))
        receiver = SecureChannel(record.session_key)
        with pytest.raises(AuthenticationError):
            receiver.receive(tampered)

    def test_original_reply_still_works_when_relayed(self):
        """MITM that faithfully relays gains nothing and blocks nothing."""
        mitm, initiator, participant, package, reply = _run_with_mitm()
        mitm.substitute_reply(reply)  # attacker keeps a forged copy
        record = initiator.handle_reply(reply, now_ms=2)  # genuine one arrives
        assert record is not None

    def test_protocol1_equally_resistant(self):
        mitm, initiator, participant, package, reply = _run_with_mitm(protocol=1)
        forged = mitm.substitute_reply(reply)
        assert initiator.handle_reply(forged, now_ms=2) is None
