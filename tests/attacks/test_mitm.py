"""Man-in-the-middle resistance tests over actual wire frames (Sec. IV-A2)."""

from __future__ import annotations

import random

import pytest

from repro.attacks.mitm import ManInTheMiddle
from repro.core.attributes import Profile, RequestProfile
from repro.core.channel import SecureChannel
from repro.core.exceptions import SerializationError
from repro.core.protocols import Initiator, Participant
from repro.core.wire import (
    decode_frame,
    decode_payload,
    decode_session_message,
    encode_reply_frame,
    encode_request_frame,
    encode_session_message,
)
from repro.crypto.authenticated import AuthenticationError

REQUEST = RequestProfile.exact(["tag:a", "tag:b"], normalized=True)
MATCH = Profile(["tag:a", "tag:b", "tag:c"], user_id="match", normalized=True)


def _run_with_mitm(protocol=2):
    """One friending exchange with the attacker on the wire."""
    mitm = ManInTheMiddle()
    initiator = Initiator(REQUEST, protocol=protocol, rng=random.Random(4))
    request_frame = mitm.intercept_request(
        encode_request_frame(initiator.create_request(now_ms=0))
    )
    package = decode_payload(decode_frame(request_frame))
    participant = Participant(MATCH)
    reply = participant.handle_request(package, now_ms=1)
    return mitm, initiator, participant, package, reply


class TestPassiveMitm:
    def test_cannot_read_x(self):
        mitm, *_ = _run_with_mitm()
        assert not mitm.outcome.read_x

    def test_forwarded_request_is_byte_identical(self):
        mitm = ManInTheMiddle()
        initiator = Initiator(REQUEST, protocol=2, rng=random.Random(4))
        frame = encode_request_frame(initiator.create_request(now_ms=0))
        assert mitm.intercept_request(frame) == frame

    def test_cannot_read_session_traffic(self):
        mitm, initiator, participant, package, reply = _run_with_mitm()
        record = initiator.handle_reply(reply, now_ms=2)
        session_frame = encode_session_message(
            package.request_id, SecureChannel(record.session_key).send(b"secret chat")
        )
        guessed_keys = [bytes([i]) * 32 for i in range(16)]
        assert not mitm.attack_session(session_frame, guessed_keys)


class TestActiveMitm:
    def test_substituted_reply_wellformed_but_rejected_by_protocol(self):
        """The classic splice: a *valid frame* whose elements fail the ACK check."""
        mitm, initiator, participant, package, reply = _run_with_mitm()
        forged_frame = mitm.substitute_reply(encode_reply_frame(reply))
        forged = decode_payload(decode_frame(forged_frame))  # codec accepts it
        assert initiator.handle_reply(forged, now_ms=2) is None
        assert initiator.matches == []
        assert initiator.rejected[-1].reason == "no element verified"

    def test_bitflipped_frame_rejected_by_codec(self):
        """Tampering without re-framing dies at the envelope checksum."""
        mitm, initiator, participant, package, reply = _run_with_mitm()
        reply_frame = encode_reply_frame(reply)
        for bit_index in (0, 7 * 8, len(reply_frame) * 8 - 3):
            with pytest.raises(SerializationError):
                decode_frame(mitm.tamper_frame(reply_frame, bit_index))

    def test_tampered_session_message_rejected_by_mac(self):
        mitm, initiator, participant, package, reply = _run_with_mitm()
        record = initiator.handle_reply(reply, now_ms=2)
        channel = SecureChannel(record.session_key)
        session_frame = encode_session_message(
            package.request_id, channel.send(b"meet at noon")
        )
        tampered = mitm.tamper_session(session_frame)
        # Decode-then-tamper keeps the envelope valid...
        _, ciphertext = decode_session_message(tampered)
        receiver = SecureChannel(record.session_key)
        # ...so the AEAD layer must be what rejects it.
        with pytest.raises(AuthenticationError):
            receiver.receive(ciphertext)

    def test_original_reply_still_works_when_relayed(self):
        """MITM that faithfully relays gains nothing and blocks nothing."""
        mitm, initiator, participant, package, reply = _run_with_mitm()
        mitm.substitute_reply(encode_reply_frame(reply))  # attacker keeps a forged copy
        record = initiator.handle_reply(reply, now_ms=2)  # genuine one arrives
        assert record is not None

    def test_protocol1_equally_resistant(self):
        mitm, initiator, participant, package, reply = _run_with_mitm(protocol=1)
        forged_frame = mitm.substitute_reply(encode_reply_frame(reply))
        forged = decode_payload(decode_frame(forged_frame))
        assert initiator.handle_reply(forged, now_ms=2) is None
