"""Prime-selection trade-off helper tests."""

from __future__ import annotations

import pytest

from repro.analysis.tradeoffs import (
    candidate_fraction,
    recommend_prime,
    security_bits,
)
from repro.crypto.numbers import is_probable_prime


class TestFormulas:
    def test_candidate_fraction_paper_example(self):
        # p = 11, m_t = 6, theta = 0.6: "about 1/5610 of users will reply".
        fraction = candidate_fraction(11, 6, 0.6)
        assert fraction == pytest.approx(1 / 5610, rel=0.05)

    def test_fraction_decreases_with_p(self):
        assert candidate_fraction(23, 6, 0.5) < candidate_fraction(11, 6, 0.5)

    def test_security_bits_paper_example(self):
        assert security_bits(1 << 20, 11, 6) == pytest.approx(99.2, abs=0.1)

    def test_security_zero_when_dictionary_small(self):
        assert security_bits(5, 11, 6) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            candidate_fraction(1, 6, 0.5)
        with pytest.raises(ValueError):
            candidate_fraction(11, 6, 0.0)


class TestRecommendation:
    def test_result_is_prime_above_mt(self):
        choice = recommend_prime(6, 0.5)
        assert is_probable_prime(choice.p)
        assert choice.p > 6

    def test_meets_both_constraints(self):
        choice = recommend_prime(
            6, 0.5, max_candidate_fraction=0.01, min_security_bits=60.0
        )
        assert choice.candidate_fraction <= 0.01
        assert choice.security_bits >= 60.0

    def test_smaller_target_needs_larger_p(self):
        loose = recommend_prime(6, 0.5, max_candidate_fraction=0.1)
        tight = recommend_prime(6, 0.5, max_candidate_fraction=0.001)
        assert tight.p > loose.p

    def test_infeasible_raises(self):
        # A tiny dictionary cannot support high security at any p.
        with pytest.raises(ValueError):
            recommend_prime(
                6, 0.5, dictionary_size=1 << 8,
                max_candidate_fraction=1e-9, min_security_bits=60.0,
            )

    def test_paper_default_scenario_prefers_small_prime(self):
        """For Weibo-scale dictionaries a small p already suffices."""
        choice = recommend_prime(
            6, 1.0, dictionary_size=1 << 20,
            max_candidate_fraction=0.001, min_security_bits=90.0,
        )
        assert choice.p <= 23
