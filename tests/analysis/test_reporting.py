"""Table/series rendering tests."""

from __future__ import annotations

from repro.analysis.reporting import format_quantity, render_series, render_table


class TestFormatQuantity:
    def test_integers_passthrough(self):
        assert format_quantity(42) == "42"

    def test_small_floats_scientific(self):
        assert "e" in format_quantity(1.2e-5) or "E" in format_quantity(1.2e-5)

    def test_zero(self):
        assert format_quantity(0.0) == "0"

    def test_strings_passthrough(self):
        assert format_quantity("label") == "label"


class TestRenderTable:
    def test_contains_title_headers_rows(self):
        out = render_table("My Table", ["col1", "col2"], [[1, 2], [3, 4]])
        assert "== My Table ==" in out
        assert "col1" in out and "col2" in out
        assert "3" in out and "4" in out

    def test_column_alignment(self):
        out = render_table("T", ["a", "b"], [["xxxxxx", 1]])
        lines = out.splitlines()
        header, sep, row = lines[1], lines[2], lines[3]
        assert header.index("|") == row.index("|")

    def test_empty_rows(self):
        out = render_table("Empty", ["a"], [])
        assert "== Empty ==" in out


class TestRenderSeries:
    def test_series_layout(self):
        out = render_series(
            "Fig X", "similarity", [1, 2, 3],
            {"truth": [0.1, 0.2, 0.3], "candidate": [0.15, 0.25, 0.35]},
        )
        assert "similarity" in out
        assert "truth" in out and "candidate" in out
        assert "0.35" in out
