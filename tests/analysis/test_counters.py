"""Operation counter tests."""

from __future__ import annotations

from repro.analysis.counters import NULL_COUNTER, OpCounter


class TestOpCounter:
    def test_add_and_get(self):
        counter = OpCounter()
        counter.add("H")
        counter.add("H", 4)
        assert counter.get("H") == 5
        assert counter.get("E") == 0

    def test_as_dict_hides_zeros(self):
        counter = OpCounter()
        counter.add("H", 0)
        counter.add("M", 2)
        assert counter.as_dict() == {"M": 2}

    def test_reset(self):
        counter = OpCounter()
        counter.add("H", 3)
        counter.reset()
        assert counter.get("H") == 0

    def test_merged(self):
        a, b = OpCounter(), OpCounter()
        a.add("H", 1)
        b.add("H", 2)
        b.add("E", 5)
        merged = a.merged(b)
        assert merged.get("H") == 3
        assert merged.get("E") == 5
        assert a.get("H") == 1  # originals untouched

    def test_repr(self):
        counter = OpCounter()
        counter.add("H", 2)
        assert "H=2" in repr(counter)

    def test_null_counter_discards(self):
        NULL_COUNTER.add("H", 100)
        assert NULL_COUNTER.get("H") == 0

    def test_truthiness_short_circuit_contract(self):
        # A real counter must be truthy even when empty, the null sink
        # falsy; hot loops use the equivalent identity compare.
        assert OpCounter()
        assert not NULL_COUNTER

    def test_null_counter_survives_pickling_as_the_singleton(self):
        # run_parallel ships Participants/Initiators to worker processes;
        # the identity guard must keep holding on the other side.
        import pickle

        clone = pickle.loads(pickle.dumps(NULL_COUNTER))
        assert clone is NULL_COUNTER
        holder = pickle.loads(pickle.dumps({"counter": NULL_COUNTER}))
        assert holder["counter"] is NULL_COUNTER

    def test_counts_identical_with_and_without_guard(self):
        # The guarded pattern used in the hot loops must not change what
        # gets recorded.
        guarded, unguarded = OpCounter(), OpCounter()
        for counter in (guarded, NULL_COUNTER):
            if counter is not NULL_COUNTER:
                counter.add("CMP256", 3)
        unguarded.add("CMP256", 3)
        assert guarded.as_dict() == unguarded.as_dict()
        assert NULL_COUNTER.get("CMP256") == 0
