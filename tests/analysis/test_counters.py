"""Operation counter tests."""

from __future__ import annotations

from repro.analysis.counters import NULL_COUNTER, OpCounter


class TestOpCounter:
    def test_add_and_get(self):
        counter = OpCounter()
        counter.add("H")
        counter.add("H", 4)
        assert counter.get("H") == 5
        assert counter.get("E") == 0

    def test_as_dict_hides_zeros(self):
        counter = OpCounter()
        counter.add("H", 0)
        counter.add("M", 2)
        assert counter.as_dict() == {"M": 2}

    def test_reset(self):
        counter = OpCounter()
        counter.add("H", 3)
        counter.reset()
        assert counter.get("H") == 0

    def test_merged(self):
        a, b = OpCounter(), OpCounter()
        a.add("H", 1)
        b.add("H", 2)
        b.add("E", 5)
        merged = a.merged(b)
        assert merged.get("H") == 3
        assert merged.get("E") == 5
        assert a.get("H") == 1  # originals untouched

    def test_repr(self):
        counter = OpCounter()
        counter.add("H", 2)
        assert "H=2" in repr(counter)

    def test_null_counter_discards(self):
        NULL_COUNTER.add("H", 100)
        assert NULL_COUNTER.get("H") == 0
