"""Privacy-protection-level evaluation tests: measured tables match the paper."""

from __future__ import annotations

from repro.analysis.ppl import (
    PAPER_TABLE1,
    evaluate_hbc_table,
    evaluate_malicious_table,
)


class TestTable1Hbc:
    def test_matches_paper_exactly(self):
        cells = evaluate_hbc_table()
        measured = {(c.protocol, c.pair): c.level for c in cells}
        assert measured == PAPER_TABLE1

    def test_every_cell_has_evidence(self):
        for cell in evaluate_hbc_table():
            assert cell.evidence

    def test_twelve_cells(self):
        assert len(evaluate_hbc_table()) == 12

    def test_deterministic(self):
        a = [(c.protocol, c.pair, c.level) for c in evaluate_hbc_table(seed=3)]
        b = [(c.protocol, c.pair, c.level) for c in evaluate_hbc_table(seed=3)]
        assert a == b


class TestTable2Malicious:
    def _measured(self):
        return {(c.protocol, c.pair): c.level for c in evaluate_malicious_table()}

    def test_protocol1_request_fully_exposed(self):
        assert self._measured()[("Protocol 1", "A_I vs v'_P")] == "0"

    def test_protocol2_request_protected(self):
        assert self._measured()[("Protocol 2", "A_I vs v'_P")] == "3"

    def test_protocol3_request_protected(self):
        assert self._measured()[("Protocol 3", "A_I vs v'_P")] == "3"

    def test_protocol2_probe_learns_matcher(self):
        assert self._measured()[("Protocol 2", "A_M vs v'_I")] == "2"

    def test_protocol3_probe_capped_by_phi(self):
        assert self._measured()[("Protocol 3", "A_M vs v'_I")] == "phi"

    def test_unmatching_users_always_protected(self):
        measured = self._measured()
        for protocol in ("Protocol 1", "Protocol 2", "Protocol 3"):
            assert measured[(protocol, "A_U vs v'_P")] == "3"
