"""ScenarioSpec parsing, sweep expansion and the experiment runner."""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import (
    ScenarioSpec,
    SpecError,
    load_plan,
    render_markdown_report,
    run_plan,
    run_scenario,
)

TINY = {
    "name": "tiny",
    "nodes": 40,
    "episodes": 2,
    "radio_radius": 0.25,
    "communities": 2,
    "seed": 7,
}


class TestSpecValidation:
    def test_defaults_are_valid(self):
        spec = ScenarioSpec()
        assert spec.protocol == 2
        assert spec.arrival_ms == 50

    def test_bad_protocol_id(self):
        with pytest.raises(SpecError, match="protocol"):
            ScenarioSpec.from_dict({**TINY, "protocol": 9})

    def test_negative_arrival_rate(self):
        with pytest.raises(SpecError, match="arrival_rate_per_s"):
            ScenarioSpec.from_dict({**TINY, "arrival_rate_per_s": -5.0})

    def test_zero_arrival_rate(self):
        with pytest.raises(SpecError, match="arrival_rate_per_s"):
            ScenarioSpec.from_dict({**TINY, "arrival_rate_per_s": 0})

    def test_unknown_mobility_model(self):
        with pytest.raises(SpecError, match="unknown mobility model"):
            ScenarioSpec.from_dict({**TINY, "mobility": "levy_flight"})

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown spec field"):
            ScenarioSpec.from_dict({**TINY, "warp_speed": True})

    def test_refresh_requires_waypoint_mobility(self):
        with pytest.raises(SpecError, match="refresh_interval_ms"):
            ScenarioSpec.from_dict(
                {**TINY, "mobility": "static", "refresh_interval_ms": 100}
            )

    def test_unknown_attacker_kind(self):
        with pytest.raises(SpecError, match="unknown attacker kind"):
            ScenarioSpec.from_dict({**TINY, "attackers": {"mind_control": 0.1}})

    def test_attacker_fraction_bounds(self):
        with pytest.raises(SpecError, match="fraction"):
            ScenarioSpec.from_dict({**TINY, "attackers": {"cheating": 1.5}})
        with pytest.raises(SpecError, match="sum"):
            ScenarioSpec.from_dict(
                {**TINY, "attackers": {"cheating": 0.7, "flooder": 0.7}}
            )

    def test_episodes_capped_by_nodes(self):
        with pytest.raises(SpecError, match="episodes"):
            ScenarioSpec.from_dict({**TINY, "episodes": 1000})

    def test_radio_radius_bounds(self):
        with pytest.raises(SpecError, match="radio_radius"):
            ScenarioSpec.from_dict({**TINY, "radio_radius": 0})
        with pytest.raises(SpecError, match="radio_radius"):
            ScenarioSpec.from_dict({**TINY, "radio_radius": 2.0})

    def test_arrival_ms_from_rate(self):
        spec = ScenarioSpec.from_dict({**TINY, "arrival_rate_per_s": 40})
        assert spec.arrival_ms == 25
        # Very high rates clamp to the 1 ms event-queue resolution.
        assert ScenarioSpec.from_dict(
            {**TINY, "arrival_rate_per_s": 5000}
        ).arrival_ms == 1

    def test_backend_defaults_and_validation(self):
        assert ScenarioSpec().backend == "tables"
        assert ScenarioSpec.from_dict({**TINY, "backend": "pure"}).backend == "pure"
        with pytest.raises(SpecError, match="unknown crypto backend"):
            ScenarioSpec.from_dict({**TINY, "backend": "openssl"})

    def test_workers_validation(self):
        assert ScenarioSpec().workers == 1
        assert ScenarioSpec.from_dict({**TINY, "workers": 4}).workers == 4
        with pytest.raises(SpecError, match="workers"):
            ScenarioSpec.from_dict({**TINY, "workers": 0})
        with pytest.raises(SpecError, match="workers"):
            ScenarioSpec.from_dict({**TINY, "workers": 2.5})

    def test_channel_version_defaults_and_validation(self):
        assert ScenarioSpec().channel_version == 1
        assert ScenarioSpec.from_dict(
            {**TINY, "channel_version": 2}
        ).channel_version == 2
        with pytest.raises(SpecError, match="channel_version"):
            ScenarioSpec.from_dict({**TINY, "channel_version": 3})
        with pytest.raises(SpecError, match="channel_version"):
            ScenarioSpec.from_dict({**TINY, "channel_version": "2"})

    def test_channel_version_is_sweepable(self):
        plan = load_plan({
            "name": "chan",
            "base": {**TINY, "loss_rate": 0.1},
            "sweep": {"channel_version": [1, 2]},
        })
        assert [s.channel_version for s in plan.specs] == [1, 2]
        with pytest.raises(SpecError, match="channel_version"):
            load_plan({
                "name": "chan", "base": TINY, "sweep": {"channel_version": [1, 9]},
            })

    def test_workers_incompatible_with_refresh(self):
        with pytest.raises(SpecError, match="workers > 1"):
            ScenarioSpec.from_dict({
                **TINY,
                "mobility": "random_waypoint",
                "refresh_interval_ms": 100,
                "workers": 2,
            })


class TestPlanLoading:
    def test_single_spec(self):
        plan = load_plan(TINY)
        assert plan.name == "tiny"
        assert len(plan.specs) == 1

    def test_sweep_expands_cartesian_product(self):
        plan = load_plan({
            "name": "grid",
            "base": TINY,
            "sweep": {"protocol": [1, 2, 3], "mobility": ["static", "random_waypoint"]},
        })
        assert len(plan.specs) == 6
        names = [s.name for s in plan.specs]
        assert len(set(names)) == 6
        assert all(name.startswith("grid/") for name in names)

    def test_sweep_values_must_be_lists(self):
        with pytest.raises(SpecError, match="non-empty JSON list"):
            load_plan({"name": "x", "base": TINY, "sweep": {"protocol": 2}})

    def test_unsweepable_field_rejected(self):
        with pytest.raises(SpecError, match="cannot sweep"):
            load_plan({"name": "x", "base": TINY, "sweep": {"name": ["a", "b"]}})

    def test_swept_values_are_validated(self):
        with pytest.raises(SpecError, match="protocol"):
            load_plan({"name": "x", "base": TINY, "sweep": {"protocol": [1, 9]}})

    def test_missing_file(self):
        with pytest.raises(SpecError, match="not found"):
            load_plan("/nonexistent/spec.json")

    def test_invalid_json_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SpecError, match="not valid JSON"):
            load_plan(bad)


class TestRunScenario:
    def test_record_shape_matches_throughput_bench(self):
        record = run_scenario(ScenarioSpec.from_dict(TINY))
        # The keys bench_engine_throughput.py's PERF_RECORD also carries.
        for key in (
            "nodes", "episodes", "wall_seconds", "episodes_per_wall_sec",
            "episodes_per_sim_sec", "sim_duration_ms", "matches",
            "latency_p50_ms", "latency_p95_ms", "total_bytes",
        ):
            assert key in record, f"missing bench-compatible key {key}"
        assert record["nodes"] == 40
        assert record["episodes"] == 2
        assert record["matches"] > 0  # dense tiny city: communities must meet
        # Perf records name the backend and worker count they measured.
        assert record["backend"] == "tables"
        assert record["workers"] == 1
        assert record["spec"]["backend"] == "tables"

    def test_record_carries_channel_version_and_backend(self):
        v1 = run_scenario(ScenarioSpec.from_dict({**TINY, "loss_rate": 0.1}))
        assert v1["channel_version"] == 1
        assert v1["channel_backend"] is None  # v1 never touches the seam
        v2 = run_scenario(
            ScenarioSpec.from_dict({**TINY, "loss_rate": 0.1, "channel_version": 2})
        )
        assert v2["channel_version"] == 2
        assert v2["channel_backend"] in ("pure", "numpy")
        # Same spec, different fate plane: both valid, not interchangeable.
        assert v2["matches"] >= 0
        assert v1["spec"]["channel_version"] == 1
        assert v2["spec"]["channel_version"] == 2

    def test_record_carries_reliability_fields(self):
        record = run_scenario(ScenarioSpec.from_dict(
            {**TINY, "loss_rate": 0.15, "channel_version": 2,
             "reliability": "window_fec"}
        ))
        assert record["reliability"] == "window_fec"
        assert record["retransmit_timeout_ms"] == 1000
        assert record["profile"] is None
        assert record["fec_recovered"] >= 0
        assert record["selective_retx"] == 0
        assert record["spec"]["reliability"] == "window_fec"

    def test_reliability_is_sweepable(self):
        plan = load_plan({
            "name": "rel",
            "base": {**TINY, "loss_rate": 0.1, "retries": 2},
            "sweep": {"reliability": ["simple", "stage", "window", "window_fec"],
                      "retransmit_timeout_ms": [500]},
        })
        assert [s.reliability for s in plan.specs] == [
            "simple", "stage", "window", "window_fec"
        ]
        assert all(s.retransmit_timeout_ms == 500 for s in plan.specs)
        with pytest.raises(SpecError, match="reliability"):
            load_plan({
                "name": "rel", "base": TINY, "sweep": {"reliability": ["simple", "nope"]},
            })

    def test_v2_scenario_is_deterministic(self):
        spec = ScenarioSpec.from_dict(
            {**TINY, "loss_rate": 0.15, "jitter_ms": 2, "channel_version": 2}
        )
        sim_keys = ("matches", "sim_duration_ms", "nodes_reached", "total_bytes")
        a, b = run_scenario(spec), run_scenario(spec)
        assert {k: a[k] for k in sim_keys} == {k: b[k] for k in sim_keys}

    def test_backends_and_sharding_agree_on_results(self):
        sim_keys = (
            "matches", "sim_duration_ms", "nodes_reached", "replies",
            "latency_p50_ms", "latency_p95_ms", "total_bytes",
        )
        baseline = run_scenario(ScenarioSpec.from_dict(TINY))
        pure = run_scenario(ScenarioSpec.from_dict({**TINY, "backend": "pure"}))
        sharded = run_scenario(ScenarioSpec.from_dict({**TINY, "workers": 2}))
        assert {k: baseline[k] for k in sim_keys} == {k: pure[k] for k in sim_keys}
        assert {k: baseline[k] for k in sim_keys} == {k: sharded[k] for k in sim_keys}
        assert pure["backend"] == "pure"
        assert sharded["workers"] == 2

    def test_deterministic_given_seed(self):
        sim_keys = (
            "matches", "sim_duration_ms", "nodes_reached", "replies",
            "latency_p50_ms", "latency_p95_ms",
        )
        a = run_scenario(ScenarioSpec.from_dict(TINY))
        b = run_scenario(ScenarioSpec.from_dict(TINY))
        assert {k: a[k] for k in sim_keys} == {k: b[k] for k in sim_keys}

    def test_attackers_cost_traffic_but_never_match(self):
        honest = run_scenario(ScenarioSpec.from_dict(TINY))
        attacked = run_scenario(ScenarioSpec.from_dict(
            {**TINY, "attackers": {"cheating": 0.3, "flooder": 0.1}}
        ))
        assert attacked["attackers"]["cheating"] > 0
        assert attacked["attackers"]["flooder"] > 0
        assert attacked["rejected_replies"] > honest["rejected_replies"]
        # Forged replies are rejected by the ACK / cardinality checks, so
        # replacing honest nodes can only lose matches, never invent them.
        assert attacked["matches"] <= honest["matches"]

    def test_fragmented_network_is_flagged(self):
        # Radio radius far below the connectivity threshold: the record
        # must carry a loud warning instead of a silent zero-metric run.
        record = run_scenario(ScenarioSpec.from_dict(
            {**TINY, "radio_radius": 0.01}
        ))
        assert record["largest_component_fraction"] < 0.9
        assert any("fragmented" in w for w in record["warnings"])

    def test_healthy_network_has_no_warnings(self):
        record = run_scenario(ScenarioSpec.from_dict(TINY))
        assert record["warnings"] == []
        assert record["largest_component_fraction"] > 0.9
        assert record["mean_degree"] > 0

    def test_mobile_scenario_refreshes_topology(self):
        record = run_scenario(ScenarioSpec.from_dict({
            **TINY,
            "mobility": "random_waypoint",
            "refresh_interval_ms": 20,
        }))
        assert record["topology_refreshes"] > 0


class TestRunPlan:
    def test_writes_json_and_markdown_artifacts(self, tmp_path):
        json_path, md_path, records = run_plan(
            {"name": "artifacts", "base": TINY, "sweep": {"protocol": [1, 2]}},
            tmp_path,
        )
        assert json_path.exists() and md_path.exists()
        payload = json.loads(json_path.read_text())
        assert payload["plan"] == "artifacts"
        assert len(payload["records"]) == len(records) == 2
        report = md_path.read_text()
        assert "# Experiment report: artifacts" in report
        assert "| scenario |" in report
        for record in records:
            assert record["scenario"] in report

    def test_markdown_report_lists_every_scenario(self):
        records = [
            run_scenario(ScenarioSpec.from_dict({**TINY, "name": f"s{i}"}))
            for i in range(2)
        ]
        report = render_markdown_report("demo", records)
        assert report.count("| s") >= 2
        assert "```json" in report
