"""Statistical validation of the paper's analytic formulas.

Sec. IV-B derives two closed forms under uniform hashing:
``(1/p)^{m_t·θ}`` for the candidate fraction and
``ε(κ_k) = C(m_k, α+β)·(1/p)^{α+β}`` for the expected candidate-key count.
These tests generate populations with *uniformly random* attributes (the
formula's assumption) and check the measured statistics against the
prediction within binomial-confidence tolerances.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.baselines.costs import Scenario, expected_kappa
from repro.core.attributes import Profile, RequestProfile
from repro.core.matching import build_request, process_request
from repro.core.profile_vector import ParticipantVector
from repro.core.remainder import is_candidate


def _uniform_profiles(n_users: int, m_k: int, seed: int) -> list[ParticipantVector]:
    """Profiles with attributes drawn uniformly from a huge space."""
    rng = random.Random(seed)
    vectors = []
    for i in range(n_users):
        attrs = [f"tag:u{rng.getrandbits(48)}" for _ in range(m_k)]
        vectors.append(
            ParticipantVector.from_profile(Profile(attrs, user_id=f"u{i}", normalized=True))
        )
    return vectors


class TestCandidateFractionFormula:
    def test_exact_match_fraction(self):
        """Perfect-match request: P(candidate) ≈ ordered-bucket hit rate.

        For uniform hashes, each of the m_t positions needs an unused own
        attribute with the right remainder; the paper's approximation is
        (1/p)^{m_t}; with m_k = 6 own attributes and p = 3 the combinatorial
        correction matters, so we compare against a Monte-Carlo-tight range
        rather than the point estimate.
        """
        p, m_t = 3, 2
        request = RequestProfile.exact(["tag:q1", "tag:q2"], normalized=True)
        package, _ = build_request(request, protocol=2, p=p, rng=random.Random(1))
        vectors = _uniform_profiles(4000, 6, seed=5)
        hits = sum(
            1 for v in vectors
            if is_candidate(package.remainders, package.necessary_mask,
                            package.gamma, v.values, p)
        )
        fraction = hits / len(vectors)
        # Uniform-hash analysis for two positions over 6 attributes at p=3:
        # P(some attr ≡ r1) * P(another, later attr ≡ r2) -- between the
        # naive (1/p)^2 and the birthday-style upper bound.
        assert 0.3 < fraction < 0.85

    def test_fraction_shrinks_with_p_as_predicted(self):
        request = RequestProfile.exact(["tag:q1", "tag:q2"], normalized=True)
        vectors = _uniform_profiles(3000, 6, seed=7)
        fractions = {}
        for p in (3, 11, 101):
            package, _ = build_request(request, protocol=2, p=p, rng=random.Random(2))
            hits = sum(
                1 for v in vectors
                if is_candidate(package.remainders, package.necessary_mask,
                                package.gamma, v.values, p)
            )
            fractions[p] = hits / len(vectors)
        # Small p saturates (several attributes per bucket), so the exact
        # (1/p)^2 ratio only emerges once buckets thin out; the monotone
        # ordering and the thin-bucket ratio are what the formula predicts.
        assert fractions[3] > fractions[11] > fractions[101] > 0
        assert fractions[11] > 10 * fractions[101]


class TestKappaFormula:
    def test_expected_candidate_keys_order_of_magnitude(self):
        """Measured mean key count among owners ≈ 1 + ε(collision keys)."""
        p = 11
        m_k = 12
        scenario = Scenario(m_t=6, m_k=m_k, p=p, alpha=0, beta=6)
        # ε(κ) for non-owners is tiny: C(12,6)/11^6 ≈ 0.0005.
        assert expected_kappa(scenario) < 0.01

        # For true owners the candidate set is 1 + collision terms; verify
        # empirically that it stays in low single digits.
        rng = random.Random(9)
        request_attrs = [f"tag:own{i}" for i in range(6)]
        request = RequestProfile.exact(request_attrs, normalized=True)
        package, _ = build_request(request, protocol=2, p=p, rng=rng)
        sizes = []
        for i in range(60):
            extra = [f"tag:noise{i}_{j}" for j in range(m_k - 6)]
            profile = Profile(request_attrs + extra, normalized=True)
            outcome = process_request(profile, package)
            assert outcome.candidate
            sizes.append(len(outcome.keys))
        mean_keys = sum(sizes) / len(sizes)
        assert 1.0 <= mean_keys <= 3.0

    def test_kappa_grows_with_m_k(self):
        small = expected_kappa(Scenario(m_k=8, alpha=0, beta=6))
        large = expected_kappa(Scenario(m_k=20, alpha=0, beta=6))
        assert large > small

    def test_kappa_formula_value(self):
        s = Scenario(m_k=20, alpha=0, beta=6, p=11)
        assert expected_kappa(s) == pytest.approx(
            math.comb(20, 6) / 11**6, rel=1e-12
        )
