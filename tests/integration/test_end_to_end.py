"""Cross-module integration: dataset -> protocols -> network -> channels."""

from __future__ import annotations

import random

import pytest

from repro.core.attributes import Profile, RequestProfile
from repro.core.channel import SecureChannel
from repro.core.matching import process_request
from repro.core.protocols import Initiator, Participant
from repro.dataset.weibo import WeiboGenerator
from repro.network.simulator import AdHocNetwork
from repro.network.topology import random_geometric_topology


@pytest.fixture(scope="module")
def population():
    return WeiboGenerator(n_users=300, tag_vocabulary=800, seed=99).generate()


class TestPopulationMatching:
    """Protocol outcomes agree with plaintext ground truth over a population."""

    def test_protocol2_agrees_with_ground_truth(self, population):
        target = population[0]
        request = RequestProfile.with_threshold(
            necessary=(), optional=[f"tag:{t}" for t in target.tags],
            theta=0.6, normalized=True,
        )
        initiator = Initiator(request, protocol=2, rng=random.Random(1))
        package = initiator.create_request(now_ms=0)
        mismatches = 0
        for user in population[1:80]:
            profile = user.profile()
            participant = Participant(profile, rng=random.Random(2))
            reply = participant.handle_request(package, now_ms=1)
            verified = (
                initiator.handle_reply(reply, now_ms=2) is not None if reply else False
            )
            if verified != request.matches(profile):
                mismatches += 1
        assert mismatches == 0

    def test_candidates_superset_of_matches(self, population):
        target = population[3]
        request = RequestProfile.with_threshold(
            necessary=(), optional=[f"tag:{t}" for t in target.tags],
            theta=0.5, normalized=True,
        )
        initiator = Initiator(request, protocol=2, rng=random.Random(7))
        package = initiator.create_request(now_ms=0)
        for user in population[1:60]:
            profile = user.profile()
            outcome = process_request(profile, package)
            if request.matches(profile):
                assert outcome.candidate


class TestNetworkedFriending:
    def test_weibo_population_over_geometric_network(self, population):
        adjacency, _ = random_geometric_topology(60, radius=0.22, seed=11)
        nodes = list(adjacency)
        users = population[: len(nodes)]
        target_tags = [f"tag:{t}" for t in users[10].tags]

        participants = {}
        for node, user in zip(nodes, users):
            profile = Profile(
                user.profile().attributes, user_id=node, normalized=True
            )
            participants[node] = Participant(profile, rng=random.Random(5))
        participants[nodes[0]] = None

        request = RequestProfile.with_threshold(
            necessary=(), optional=target_tags, theta=0.99, normalized=True
        )
        initiator = Initiator(request, protocol=2, rng=random.Random(6))
        network = AdHocNetwork(adjacency, participants)
        result = network.run_friending(nodes[0], initiator, start_ms=0)

        expected = {
            node
            for node, user in zip(nodes, users)
            if node != nodes[0] and request.matches(user.profile())
        }
        assert set(result.matched_ids) == expected
        assert expected  # the target user itself is in the population

    def test_channel_works_after_networked_match(self, population):
        adjacency, _ = random_geometric_topology(30, radius=0.3, seed=13)
        nodes = list(adjacency)
        match_profile = Profile(["tag:aa", "tag:bb"], user_id=nodes[5], normalized=True)
        participants = {node: None for node in nodes}
        by_node = {}
        for node in nodes[1:]:
            profile = (
                match_profile
                if node == nodes[5]
                else Profile([f"tag:{node}"], user_id=node, normalized=True)
            )
            by_node[node] = Participant(profile, rng=random.Random(8))
            participants[node] = by_node[node]
        participants[nodes[0]] = None

        initiator = Initiator(
            RequestProfile.exact(["tag:aa", "tag:bb"], normalized=True),
            protocol=2,
            rng=random.Random(9),
        )
        network = AdHocNetwork(adjacency, participants)
        result = network.run_friending(nodes[0], initiator)
        assert result.matched_ids == [nodes[5]]
        record = result.matches[0]

        message = SecureChannel(record.session_key).send(b"rendezvous?")
        package_id = initiator.secret.request_id
        received = []
        for key in by_node[nodes[5]].channel_keys(package_id):
            try:
                received.append(SecureChannel(key).receive(message))
            except Exception:
                continue
        assert b"rendezvous?" in received


class TestCommunityDiscovery:
    def test_group_key_reaches_all_matchers(self):
        request = RequestProfile.exact(["tag:club"], normalized=True)
        initiator = Initiator(request, protocol=2, rng=random.Random(20))
        package = initiator.create_request(now_ms=0)
        members = [
            Participant(
                Profile(["tag:club", f"tag:extra{i}"], user_id=f"m{i}", normalized=True),
                rng=random.Random(30 + i),
            )
            for i in range(4)
        ]
        for member in members:
            reply = member.handle_request(package, now_ms=1)
            assert initiator.handle_reply(reply, now_ms=2) is not None
        assert len(initiator.matches) == 4

        broadcast = SecureChannel.for_group(initiator.secret.x).send(b"meeting at 5")
        for member in members:
            xs = [x for x, _ in member._pending_secrets[package.request_id]]
            decrypted = []
            for x in xs:
                try:
                    decrypted.append(SecureChannel.for_group(x).receive(broadcast))
                except Exception:
                    continue
            assert b"meeting at 5" in decrypted
