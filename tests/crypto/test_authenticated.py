"""Authenticated channel cipher tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.authenticated import AuthenticatedCipher, AuthenticationError


class TestRoundTrip:
    @given(plaintext=st.binary(min_size=0, max_size=300))
    @settings(max_examples=20, deadline=None)
    def test_encrypt_decrypt(self, plaintext):
        cipher = AuthenticatedCipher(b"master secret")
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    def test_fixed_nonce_deterministic(self):
        cipher = AuthenticatedCipher(b"s")
        a = cipher.encrypt(b"msg", nonce=b"12345678")
        b = cipher.encrypt(b"msg", nonce=b"12345678")
        assert a == b

    def test_random_nonce_randomizes(self):
        cipher = AuthenticatedCipher(b"s")
        assert cipher.encrypt(b"msg") != cipher.encrypt(b"msg")

    def test_rejects_bad_nonce_length(self):
        with pytest.raises(ValueError):
            AuthenticatedCipher(b"s").encrypt(b"msg", nonce=b"short")

    def test_rejects_empty_secret(self):
        with pytest.raises(ValueError):
            AuthenticatedCipher(b"")


class TestTamperResistance:
    def test_bit_flip_detected_everywhere(self):
        cipher = AuthenticatedCipher(b"secret")
        message = cipher.encrypt(b"attack at dawn")
        for position in range(len(message)):
            tampered = bytearray(message)
            tampered[position] ^= 0x80
            with pytest.raises(AuthenticationError):
                cipher.decrypt(bytes(tampered))

    def test_truncation_detected(self):
        cipher = AuthenticatedCipher(b"secret")
        message = cipher.encrypt(b"attack at dawn")
        with pytest.raises(AuthenticationError):
            cipher.decrypt(message[:-1])

    def test_too_short_message(self):
        with pytest.raises(AuthenticationError):
            AuthenticatedCipher(b"secret").decrypt(b"short")

    def test_wrong_key_rejected(self):
        message = AuthenticatedCipher(b"key-a").encrypt(b"hello")
        with pytest.raises(AuthenticationError):
            AuthenticatedCipher(b"key-b").decrypt(message)

    def test_cross_message_splice_rejected(self):
        cipher = AuthenticatedCipher(b"secret")
        m1 = cipher.encrypt(b"first message!", nonce=b"AAAAAAAA")
        m2 = cipher.encrypt(b"second message", nonce=b"BBBBBBBB")
        spliced = m1[:8] + m2[8:]
        with pytest.raises(AuthenticationError):
            cipher.decrypt(spliced)
