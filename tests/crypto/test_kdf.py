"""HKDF tests pinned to RFC 5869 vectors."""

from __future__ import annotations

import pytest

from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract


class TestRfc5869:
    def test_case1(self):
        ikm = b"\x0b" * 22
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        okm = hkdf(ikm, salt=salt, info=info, length=42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_case1_prk(self):
        ikm = b"\x0b" * 22
        salt = bytes.fromhex("000102030405060708090a0b0c")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )

    def test_case3_empty_salt_and_info(self):
        ikm = b"\x0b" * 22
        okm = hkdf(ikm, salt=b"", info=b"", length=42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )


class TestBehaviour:
    def test_length_control(self):
        for length in (1, 16, 32, 64, 100):
            assert len(hkdf(b"ikm", length=length)) == length

    def test_info_separates_outputs(self):
        assert hkdf(b"ikm", info=b"a") != hkdf(b"ikm", info=b"b")

    def test_expand_prefix_consistency(self):
        prk = hkdf_extract(b"salt", b"ikm")
        assert hkdf_expand(prk, b"info", 64)[:32] == hkdf_expand(prk, b"info", 32)

    def test_rejects_oversized_output(self):
        prk = hkdf_extract(b"s", b"i")
        with pytest.raises(ValueError):
            hkdf_expand(prk, b"", 255 * 32 + 1)
