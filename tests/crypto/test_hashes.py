"""Hash helpers: SHA-256 vectors, HMAC RFC 4231, attribute hashing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashes import (
    HASH_BYTES,
    bytes_to_int,
    hash_attribute,
    hash_vector_key,
    hmac_sha256,
    int_to_bytes,
    sha256,
    sha256_int,
)


class TestSha256:
    def test_empty_vector(self):
        assert sha256(b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc_vector(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_int_form_matches_bytes(self):
        assert sha256_int(b"abc") == int.from_bytes(sha256(b"abc"), "big")

    def test_int_is_256_bits(self):
        assert sha256_int(b"x") < (1 << 256)


class TestHmac:
    def test_rfc4231_case1(self):
        key = b"\x0b" * 20
        data = b"Hi There"
        expected = "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        assert hmac_sha256(key, data).hex() == expected

    def test_rfc4231_case2(self):
        expected = "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        assert hmac_sha256(b"Jefe", b"what do ya want for nothing?").hex() == expected

    def test_rfc4231_case3_long_key_path(self):
        # Key longer than the block size must be hashed first.
        key = b"\xaa" * 131
        data = b"Test Using Larger Than Block-Size Key - Hash Key First"
        expected = "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        assert hmac_sha256(key, data).hex() == expected

    def test_matches_stdlib(self):
        import hashlib
        import hmac as std_hmac

        for key, msg in [(b"k", b"m"), (b"key" * 30, b"message" * 10)]:
            assert hmac_sha256(key, msg) == std_hmac.new(key, msg, hashlib.sha256).digest()


class TestIntConversions:
    @given(value=st.integers(min_value=0, max_value=(1 << 256) - 1))
    @settings(max_examples=50)
    def test_roundtrip(self, value):
        assert bytes_to_int(int_to_bytes(value)) == value

    def test_fixed_width(self):
        assert len(int_to_bytes(1)) == HASH_BYTES

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bytes(-1)


class TestAttributeHashing:
    def test_deterministic(self):
        assert hash_attribute("tag:music") == hash_attribute("tag:music")

    def test_distinct_attributes_distinct_hashes(self):
        assert hash_attribute("tag:music") != hash_attribute("tag:movies")

    def test_binding_changes_hash(self):
        plain = hash_attribute("tag:music")
        bound = hash_attribute("tag:music", binding=b"cell-42")
        assert plain != bound

    def test_different_bindings_differ(self):
        assert hash_attribute("a", binding=b"x") != hash_attribute("a", binding=b"y")

    def test_binding_is_unambiguous(self):
        # "ab" + binding "c" must differ from "a" + binding "bc".
        assert hash_attribute("ab", binding=b"c") != hash_attribute("a", binding=b"bc")


class TestVectorKey:
    def test_order_sensitive(self):
        assert hash_vector_key([1, 2, 3]) != hash_vector_key([3, 2, 1])

    def test_deterministic(self):
        values = [sha256_int(bytes([i])) for i in range(5)]
        assert hash_vector_key(values) == hash_vector_key(list(values))

    def test_accepts_generator(self):
        values = [5, 6, 7]
        assert hash_vector_key(iter(values)) == hash_vector_key(values)

    def test_key_width(self):
        assert len(hash_vector_key([42])) == 32

    def test_no_concatenation_ambiguity(self):
        # Fixed-width serialization: [1, 2] must differ from [1*2^256 + 2]-ish splits.
        assert hash_vector_key([1, 2]) != hash_vector_key([(1 << 256) - 1, 2])
