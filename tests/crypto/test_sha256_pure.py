"""Pure-Python SHA-256 against FIPS 180-4 vectors and hashlib."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha256 import Sha256, sha256_pure


class TestFipsVectors:
    @pytest.mark.parametrize(
        "message,expected",
        [
            (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
            (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"a" * 1_000_000,
                "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0",
            ),
        ],
    )
    def test_known_digests(self, message, expected):
        assert sha256_pure(message).hex() == expected

    def test_exactly_one_block(self):
        message = b"x" * 64
        assert sha256_pure(message) == hashlib.sha256(message).digest()

    def test_padding_boundary_55_56_57(self):
        # 55/56/57 bytes straddle the length-field padding boundary.
        for n in (55, 56, 57, 63, 64, 65, 119, 120, 121):
            message = bytes(range(n % 251)) * (n // 251 + 1)
            message = message[:n]
            assert sha256_pure(message) == hashlib.sha256(message).digest()


class TestIncremental:
    def test_chunked_update_equals_oneshot(self):
        hasher = Sha256()
        hasher.update(b"hello ")
        hasher.update(b"world")
        assert hasher.digest() == sha256_pure(b"hello world")

    def test_digest_is_idempotent(self):
        hasher = Sha256(b"data")
        first = hasher.digest()
        assert hasher.digest() == first

    def test_update_after_digest(self):
        hasher = Sha256(b"ab")
        hasher.digest()
        hasher.update(b"c")
        assert hasher.digest() == sha256_pure(b"abc")

    def test_hexdigest(self):
        assert Sha256(b"abc").hexdigest() == hashlib.sha256(b"abc").hexdigest()


class TestAgainstHashlib:
    @given(st.binary(min_size=0, max_size=500))
    @settings(max_examples=60, deadline=None)
    def test_matches_hashlib(self, data):
        assert sha256_pure(data) == hashlib.sha256(data).digest()

    @given(st.lists(st.binary(min_size=0, max_size=100), min_size=0, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_incremental_matches_hashlib(self, chunks):
        ours = Sha256()
        theirs = hashlib.sha256()
        for chunk in chunks:
            ours.update(chunk)
            theirs.update(chunk)
        assert ours.digest() == theirs.digest()
