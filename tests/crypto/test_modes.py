"""Cipher modes and padding tests (incl. NIST SP 800-38A vectors)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.modes import (
    PaddingError,
    ctr_keystream,
    decrypt_cbc,
    decrypt_ctr,
    decrypt_ecb,
    encrypt_cbc,
    encrypt_ctr,
    encrypt_ecb,
    pkcs7_pad,
    pkcs7_unpad,
)


class TestPkcs7:
    @pytest.mark.parametrize("length", range(0, 33))
    def test_roundtrip_all_lengths(self, length):
        data = bytes(range(length % 256))[:length]
        assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_always_adds_padding(self):
        assert len(pkcs7_pad(b"\x00" * 16)) == 32

    def test_pad_value_equals_pad_length(self):
        padded = pkcs7_pad(b"abc")
        assert padded[-1] == 13
        assert padded[-13:] == bytes([13] * 13)

    def test_unpad_rejects_empty(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"")

    def test_unpad_rejects_unaligned(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"\x01" * 15)

    def test_unpad_rejects_zero_byte(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"\x00" * 16)

    def test_unpad_rejects_oversized_byte(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"\x00" * 15 + b"\x11")

    def test_unpad_rejects_inconsistent_bytes(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"\x00" * 14 + b"\x01\x02")


class TestEcb:
    def test_roundtrip(self):
        key = b"k" * 32
        plaintext = b"0123456789abcdef" * 3
        assert decrypt_ecb(key, encrypt_ecb(key, plaintext)) == plaintext

    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            encrypt_ecb(b"k" * 32, b"short")
        with pytest.raises(ValueError):
            decrypt_ecb(b"k" * 32, b"short")

    def test_identical_blocks_leak(self):
        # ECB's known property -- documented, and why it is only used for
        # random key-sized payloads in the protocols.
        ct = encrypt_ecb(b"k" * 32, b"A" * 16 + b"A" * 16)
        assert ct[:16] == ct[16:]


class TestCbc:
    def test_nist_sp800_38a_cbc_aes128(self):
        # NIST SP 800-38A F.2.1 CBC-AES128.Encrypt, first block (padding
        # stripped by comparing the prefix).
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected_block1 = bytes.fromhex("7649abac8119b246cee98e9b12e9197d")
        assert encrypt_cbc(key, plaintext, iv)[:16] == expected_block1

    @given(plaintext=st.binary(min_size=0, max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, plaintext):
        key, iv = b"k" * 32, b"i" * 16
        assert decrypt_cbc(key, encrypt_cbc(key, plaintext, iv), iv) == plaintext

    def test_iv_changes_ciphertext(self):
        key = b"k" * 32
        pt = b"hello cbc world!"
        assert encrypt_cbc(key, pt, b"\x00" * 16) != encrypt_cbc(key, pt, b"\x01" * 16)

    def test_rejects_bad_iv_length(self):
        with pytest.raises(ValueError):
            encrypt_cbc(b"k" * 32, b"data", b"short")

    def test_wrong_key_usually_fails_padding(self):
        key = b"k" * 32
        ct = encrypt_cbc(key, b"some secret data", b"i" * 16)
        failures = 0
        for i in range(8):
            try:
                decrypt_cbc(bytes([i]) * 32, ct, b"i" * 16)
            except PaddingError:
                failures += 1
        assert failures >= 6  # padding check catches almost all wrong keys


class TestCtr:
    @given(plaintext=st.binary(min_size=0, max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, plaintext):
        key, nonce = b"k" * 32, b"n" * 8
        assert decrypt_ctr(key, encrypt_ctr(key, plaintext, nonce), nonce) == plaintext

    def test_length_preserving(self):
        assert len(encrypt_ctr(b"k" * 32, b"abc", b"n" * 8)) == 3

    def test_keystream_deterministic(self):
        assert ctr_keystream(b"k" * 32, b"n" * 8, 40) == ctr_keystream(b"k" * 32, b"n" * 8, 40)

    def test_keystream_extends_consistently(self):
        short = ctr_keystream(b"k" * 32, b"n" * 8, 10)
        long = ctr_keystream(b"k" * 32, b"n" * 8, 50)
        assert long[:10] == short

    def test_nonce_changes_stream(self):
        assert ctr_keystream(b"k" * 32, b"a" * 8, 16) != ctr_keystream(b"k" * 32, b"b" * 8, 16)

    def test_rejects_bad_nonce(self):
        with pytest.raises(ValueError):
            ctr_keystream(b"k" * 32, b"toolongnonce", 16)

    def test_malleable_by_design(self):
        # Wrong-key decryption must succeed and return garbage -- the
        # property Protocols 2/3 depend on (no decryption oracle).
        ct = encrypt_ctr(b"k" * 32, b"\x00" * 32, b"n" * 8)
        garbage = decrypt_ctr(b"w" * 32, ct, b"n" * 8)
        assert len(garbage) == 32
        assert garbage != b"\x00" * 32
