"""Number theory utilities: primality, inverses, CRT, Jacobi."""

from __future__ import annotations

import random
from math import gcd

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.numbers import (
    crt_pair,
    generate_prime,
    generate_safe_prime,
    invmod,
    is_probable_prime,
    jacobi,
    lcm,
    random_coprime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 257, 65537, 2**31 - 1, 2**61 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 15, 100, 561, 1105, 1729, 2**32 - 1, 65537 * 257]


class TestPrimality:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_accepts_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_rejects_composites(self, n):
        assert not is_probable_prime(n)

    def test_rejects_carmichael_numbers(self):
        # Fermat pseudoprimes that Miller-Rabin must still reject.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041):
            assert not is_probable_prime(carmichael)

    def test_negative_numbers(self):
        assert not is_probable_prime(-7)


class TestGeneration:
    def test_prime_has_requested_bits(self, rng):
        for bits in (16, 32, 64):
            p = generate_prime(bits, rng=rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_rejects_tiny_request(self, rng):
        with pytest.raises(ValueError):
            generate_prime(4, rng=rng)

    def test_safe_prime_structure(self, rng):
        p = generate_safe_prime(32, rng=rng)
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)

    def test_deterministic_given_seed(self):
        assert generate_prime(32, rng=random.Random(5)) == generate_prime(
            32, rng=random.Random(5)
        )


class TestInvmod:
    @given(a=st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=50)
    def test_inverse_property(self, a):
        m = 2**61 - 1  # prime modulus: everything nonzero is invertible
        if a % m == 0:
            return
        assert (a * invmod(a, m)) % m == 1

    def test_non_invertible_raises(self):
        with pytest.raises(ValueError):
            invmod(6, 9)

    def test_inverse_of_one(self):
        assert invmod(1, 97) == 1


class TestCrt:
    @given(x=st.integers(min_value=0, max_value=97 * 89 - 1))
    @settings(max_examples=50)
    def test_recombination(self, x):
        p, q = 97, 89
        assert crt_pair(x % p, p, x % q, q) % (p * q) == x


class TestJacobi:
    def test_quadratic_residues_mod_prime(self):
        p = 97
        residues = {pow(x, 2, p) for x in range(1, p)}
        for a in range(1, p):
            expected = 1 if a in residues else -1
            assert jacobi(a, p) == expected

    def test_zero_when_shared_factor(self):
        assert jacobi(15, 9) == 0

    def test_rejects_even_modulus(self):
        with pytest.raises(ValueError):
            jacobi(3, 8)


class TestMisc:
    def test_lcm(self):
        assert lcm(4, 6) == 12
        assert lcm(7, 13) == 91

    def test_random_coprime(self, rng):
        m = 360
        for _ in range(20):
            r = random_coprime(m, rng=rng)
            assert 1 <= r < m
            assert gcd(r, m) == 1
