"""HMAC-DRBG determinism and distribution sanity tests."""

from __future__ import annotations

import pytest

from repro.crypto.rng import HmacDrbg


class TestDeterminism:
    def test_same_seed_same_stream(self):
        assert HmacDrbg(42).generate(64) == HmacDrbg(42).generate(64)

    def test_different_seeds_differ(self):
        assert HmacDrbg(1).generate(32) != HmacDrbg(2).generate(32)

    def test_bytes_seed_supported(self):
        assert HmacDrbg(b"seed").generate(16) == HmacDrbg(b"seed").generate(16)

    def test_stream_advances(self):
        drbg = HmacDrbg(7)
        assert drbg.generate(16) != drbg.generate(16)


class TestIntegers:
    def test_randint_bits_range(self):
        drbg = HmacDrbg(3)
        for bits in (1, 8, 13, 64, 256):
            for _ in range(10):
                assert 0 <= drbg.randint_bits(bits) < (1 << bits)

    def test_randrange_bounds(self):
        drbg = HmacDrbg(4)
        for _ in range(200):
            value = drbg.randrange(10, 20)
            assert 10 <= value < 20

    def test_randrange_single_arg(self):
        drbg = HmacDrbg(5)
        assert all(0 <= drbg.randrange(7) < 7 for _ in range(50))

    def test_randrange_rejects_empty(self):
        with pytest.raises(ValueError):
            HmacDrbg(6).randrange(5, 5)

    def test_randrange_covers_range(self):
        drbg = HmacDrbg(8)
        seen = {drbg.randrange(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}
