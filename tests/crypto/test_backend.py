"""Crypto backend layer: registry, pure == tables equivalence, batching."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.backend import (
    PureBackend,
    TablesBackend,
    available_backends,
    current_backend,
    get_backend,
    set_backend,
    use_backend,
)
from repro.crypto.modes import decrypt_ecb, encrypt_ecb

PURE = get_backend("pure")
TABLES = get_backend("tables")

keys = st.sampled_from([16, 24, 32]).flatmap(
    lambda n: st.binary(min_size=n, max_size=n)
)
key_lists = st.lists(
    st.binary(min_size=32, max_size=32), min_size=0, max_size=12
)
buffers = st.integers(min_value=0, max_value=24).flatmap(
    lambda n: st.binary(min_size=16 * n, max_size=16 * n)
)
small_buffers = st.integers(min_value=1, max_value=4).flatmap(
    lambda n: st.binary(min_size=16 * n, max_size=16 * n)
)


class TestRegistry:
    def test_available(self):
        assert available_backends() == ("pure", "tables")
        assert isinstance(get_backend("pure"), PureBackend)
        assert isinstance(get_backend("tables"), TablesBackend)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown crypto backend"):
            get_backend("openssl")
        with pytest.raises(ValueError, match="unknown crypto backend"):
            set_backend("openssl")

    def test_default_is_tables(self):
        assert current_backend().name == "tables"

    def test_use_backend_restores(self):
        before = current_backend()
        with use_backend("pure") as active:
            assert active.name == "pure"
            assert current_backend() is active
        assert current_backend() is before

    def test_use_backend_restores_on_error(self):
        before = current_backend()
        with pytest.raises(RuntimeError):
            with use_backend("pure"):
                raise RuntimeError("boom")
        assert current_backend() is before

    def test_use_backend_accepts_instance(self):
        with use_backend(PURE) as active:
            assert active is PURE


class TestEquivalence:
    """pure == tables, bit for bit, for every key size and buffer shape."""

    @settings(max_examples=40, deadline=None)
    @given(key=keys, plaintext=buffers)
    def test_encrypt_decrypt_roundtrip(self, key, plaintext):
        ciphertext = TABLES.encrypt_ecb(key, plaintext)
        assert ciphertext == PURE.encrypt_ecb(key, plaintext)
        assert TABLES.decrypt_ecb(key, ciphertext) == plaintext
        assert PURE.decrypt_ecb(key, ciphertext) == plaintext

    @settings(max_examples=40, deadline=None)
    @given(keys_=key_lists, payload=small_buffers)
    def test_seal_many_and_open_many(self, keys_, payload):
        assert TABLES.seal_many(keys_, payload) == PURE.seal_many(keys_, payload)
        assert TABLES.open_many(keys_, payload) == PURE.open_many(keys_, payload)

    @settings(max_examples=40, deadline=None)
    @given(keys_=key_lists, payload=small_buffers)
    def test_open_many_matches_per_key_loop(self, keys_, payload):
        assert TABLES.open_many(keys_, payload) == [
            decrypt_ecb(k, payload) for k in keys_
        ]
        assert TABLES.seal_many(keys_, payload) == [
            encrypt_ecb(k, payload) for k in keys_
        ]

    @settings(max_examples=25, deadline=None)
    @given(
        payload=small_buffers,
        key128=st.binary(min_size=16, max_size=16),
        key192=st.binary(min_size=24, max_size=24),
        key256=st.binary(min_size=32, max_size=32),
    )
    def test_open_many_mixed_key_lengths(self, payload, key128, key192, key256):
        # Mixed lengths exercise the per-round-count grouping: results must
        # still come back in input order.
        mixed = [key256, key128, key192, key256, key128]
        assert TABLES.open_many(mixed, payload) == PURE.open_many(mixed, payload)
        assert TABLES.seal_many(mixed, payload) == PURE.seal_many(mixed, payload)

    @settings(max_examples=60, deadline=None)
    @given(data=st.binary(min_size=0, max_size=512))
    def test_sha256_cross_check(self, data):
        digest = hashlib.sha256(data).digest()
        assert PURE.sha256(data) == digest
        assert TABLES.sha256(data) == digest


class TestAlignmentRejection:
    @settings(max_examples=20, deadline=None)
    @given(
        key=keys,
        bad=st.binary(min_size=1, max_size=64).filter(lambda b: len(b) % 16),
    )
    def test_non_block_aligned_rejected(self, key, bad):
        for backend in (PURE, TABLES):
            with pytest.raises(ValueError, match="block-aligned"):
                backend.encrypt_ecb(key, bad)
            with pytest.raises(ValueError, match="block-aligned"):
                backend.decrypt_ecb(key, bad)
            with pytest.raises(ValueError, match="block-aligned"):
                backend.seal_many([key], bad)
            with pytest.raises(ValueError, match="block-aligned"):
                backend.open_many([key], bad)

    def test_misaligned_rejected_even_with_no_keys(self):
        for backend in (PURE, TABLES):
            with pytest.raises(ValueError, match="block-aligned"):
                backend.seal_many([], b"x")
            with pytest.raises(ValueError, match="block-aligned"):
                backend.open_many([], b"x")

    def test_bad_key_length_rejected(self):
        for backend in (PURE, TABLES):
            with pytest.raises(ValueError, match="AES key"):
                backend.encrypt_ecb(b"short", b"\x00" * 16)
            with pytest.raises(ValueError, match="AES key"):
                backend.open_many([b"\x00" * 17], b"\x00" * 16)


class TestEdgeCases:
    def test_empty_buffer(self):
        key = b"k" * 32
        for backend in (PURE, TABLES):
            assert backend.encrypt_ecb(key, b"") == b""
            assert backend.decrypt_ecb(key, b"") == b""
            assert backend.seal_many([key, key], b"") == [b"", b""]
            assert backend.open_many([key, key], b"") == [b"", b""]

    def test_empty_key_list(self):
        for backend in (PURE, TABLES):
            assert backend.seal_many([], b"\x00" * 16) == []
            assert backend.open_many([], b"\x00" * 16) == []

    def test_fips197_vector(self):
        # FIPS-197 Appendix C.1, through both backends' buffer paths.
        key = bytes(range(16))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        for backend in (PURE, TABLES):
            assert backend.encrypt_ecb(key, plaintext * 3) == expected * 3
            assert backend.decrypt_ecb(key, expected * 3) == plaintext * 3

    def test_repeated_keys_in_open_many(self):
        key = b"r" * 32
        payload = b"p" * 48
        assert TABLES.open_many([key, key, key], payload) == [
            decrypt_ecb(key, payload)
        ] * 3


class TestBatchedKeySchedule:
    """The SWAR multi-key expansion must equal FIPS-197 word for word."""

    @settings(max_examples=25, deadline=None)
    @given(
        key_len=st.sampled_from([16, 24, 32]),
        seeds=st.lists(st.binary(min_size=8, max_size=8), min_size=1, max_size=9),
    )
    def test_batch_equals_reference_schedule(self, key_len, seeds):
        from repro.crypto.aes import AES
        from repro.crypto.backend import TablesBackend

        backend = TablesBackend()  # fresh instance: no cache interference
        keys = [(seed * 4)[:key_len] for seed in seeds]
        batched = backend._expand_uncached(list(dict.fromkeys(keys)))
        reference = {
            key: [bytes(rk) for rk in AES(key)._round_keys]
            for key in dict.fromkeys(keys)
        }
        for key, schedule in zip(dict.fromkeys(keys), batched):
            assert schedule == reference[key]

    def test_cache_burst_does_not_lose_in_flight_hits(self):
        from repro.crypto.backend import TablesBackend

        backend = TablesBackend()
        backend._RK_CACHE_MAX = 8  # force eviction pressure
        old = b"o" * 32
        backend.encrypt_ecb(old, b"\x00" * 16)  # cache `old`
        burst = [old] + [bytes([i]) * 32 for i in range(16)]
        payload = b"p" * 16
        assert backend.seal_many(burst, payload) == [
            encrypt_ecb(k, payload) for k in burst
        ]
