"""AES block cipher tests pinned to FIPS-197 appendix vectors."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import (
    AES,
    BLOCK_SIZE,
    configure_schedule_cache,
    schedule_cache_stats,
)

FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestFips197Vectors:
    def test_aes128_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).encrypt_block(FIPS_PLAINTEXT) == expected

    def test_aes192_appendix_c2(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AES(key).encrypt_block(FIPS_PLAINTEXT) == expected

    def test_aes256_appendix_c3(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).encrypt_block(FIPS_PLAINTEXT) == expected

    def test_aes128_decrypt_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ciphertext = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).decrypt_block(ciphertext) == FIPS_PLAINTEXT

    def test_aes256_decrypt_appendix_c3(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
        ciphertext = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).decrypt_block(ciphertext) == FIPS_PLAINTEXT

    def test_aes128_nist_sp800_38a_ecb_block1(self):
        # NIST SP 800-38A F.1.1 ECB-AES128.Encrypt, first block.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_aes256_nist_sp800_38a_ecb_block1(self):
        # NIST SP 800-38A F.1.5 ECB-AES256.Encrypt, first block.
        key = bytes.fromhex(
            "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4"
        )
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("f3eed1bdb5d2a03c064b5a7e3db181f8")
        assert AES(key).encrypt_block(plaintext) == expected


class TestKeyHandling:
    @pytest.mark.parametrize("bad_len", [0, 1, 15, 17, 31, 33, 64])
    def test_rejects_bad_key_length(self, bad_len):
        with pytest.raises(ValueError):
            AES(b"\x00" * bad_len)

    @pytest.mark.parametrize("key_len,rounds", [(16, 10), (24, 12), (32, 14)])
    def test_round_count(self, key_len, rounds):
        assert AES(b"\x00" * key_len).rounds == rounds

    @pytest.mark.parametrize("key_len,rounds", [(16, 10), (24, 12), (32, 14)])
    def test_round_key_count(self, key_len, rounds):
        assert len(AES(b"\x00" * key_len)._round_keys) == rounds + 1

    def test_rejects_bad_block_length(self):
        cipher = AES(b"\x00" * 16)
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"\x00" * 15)
        with pytest.raises(ValueError):
            cipher.decrypt_block(b"\x00" * 17)


class TestRoundTrip:
    @given(
        key=st.binary(min_size=32, max_size=32),
        block=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
    )
    @settings(max_examples=25, deadline=None)
    def test_encrypt_decrypt_roundtrip(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(key=st.binary(min_size=16, max_size=16))
    @settings(max_examples=10, deadline=None)
    def test_different_blocks_encrypt_differently(self, key):
        cipher = AES(key)
        a = cipher.encrypt_block(b"\x00" * 16)
        b = cipher.encrypt_block(b"\x01" + b"\x00" * 15)
        assert a != b

    def test_key_sensitivity(self):
        block = b"same plaintext!!"
        c1 = AES(b"\x00" * 32).encrypt_block(block)
        c2 = AES(b"\x01" + b"\x00" * 31).encrypt_block(block)
        assert c1 != c2

    def test_deterministic(self):
        cipher = AES(b"k" * 32)
        assert cipher.encrypt_block(b"p" * 16) == cipher.encrypt_block(b"p" * 16)


class TestScheduleCache:
    """The key-schedule LRU must be transparent and bounded."""

    def teardown_method(self):
        configure_schedule_cache(1024)

    def test_cached_and_uncached_agree(self):
        key = b"cache-test-key.................."[:32]
        block = b"some plaintext!!"
        configure_schedule_cache(0)
        uncached = AES(key).encrypt_block(block)
        configure_schedule_cache(16)
        assert AES(key).encrypt_block(block) == uncached
        assert AES(key).decrypt_block(uncached) == block

    def test_hits_recorded_on_reuse(self):
        configure_schedule_cache(16)
        key = b"h" * 32
        AES(key)
        AES(key)
        stats = schedule_cache_stats()
        assert stats["misses"] >= 1
        assert stats["hits"] >= 1

    def test_lru_stays_bounded(self):
        configure_schedule_cache(4)
        for i in range(10):
            AES(bytes([i]) * 32)
        assert schedule_cache_stats()["size"] <= 4

    def test_disabled_cache_stores_nothing(self):
        configure_schedule_cache(0)
        AES(b"d" * 32)
        assert schedule_cache_stats()["size"] == 0


class TestEcbUnderKeys:
    def test_encrypt_matches_per_key_ecb(self):
        from repro.crypto.modes import encrypt_ecb, encrypt_ecb_under_keys

        keys = [bytes([i]) * 32 for i in range(3)]
        plaintext = b"p" * 48
        assert encrypt_ecb_under_keys(keys, plaintext) == [
            encrypt_ecb(k, plaintext) for k in keys
        ]

    def test_decrypt_matches_per_key_ecb(self):
        from repro.crypto.modes import decrypt_ecb, decrypt_ecb_under_keys, encrypt_ecb

        keys = [bytes([i]) * 32 for i in range(3)]
        ciphertext = encrypt_ecb(keys[0], b"q" * 32)
        assert decrypt_ecb_under_keys(keys, ciphertext) == [
            decrypt_ecb(k, ciphertext) for k in keys
        ]

    def test_rejects_unaligned_input(self):
        from repro.crypto.modes import decrypt_ecb_under_keys, encrypt_ecb_under_keys

        with pytest.raises(ValueError):
            encrypt_ecb_under_keys([b"k" * 32], b"short")
        with pytest.raises(ValueError):
            decrypt_ecb_under_keys([b"k" * 32], b"short")
