"""Remainder vector, fast check and candidate enumeration tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.counters import OpCounter
from repro.core.remainder import (
    EnumerationBudget,
    bucket_index,
    buckets_for,
    build_buckets,
    enumerate_candidates,
    is_candidate,
    iter_candidates,
    remainder_vector,
)


def _mask(necessary: int, total: int) -> tuple[bool, ...]:
    """First *necessary* positions necessary (values here are pre-sorted)."""
    return tuple(i < necessary for i in range(total))


class TestRemainderVector:
    def test_theorem1_soundness(self):
        # r_i != r_j  =>  h_i != h_j for any prime p.
        p = 11
        for h_i in range(0, 200, 7):
            for h_j in range(0, 200, 13):
                if h_i % p != h_j % p:
                    assert h_i != h_j

    def test_values(self):
        assert remainder_vector([23, 11, 7], 11) == (1, 0, 7)

    def test_counter(self):
        counter = OpCounter()
        remainder_vector([1, 2, 3], 11, counter)
        assert counter.get("M") == 3

    def test_rejects_bad_prime(self):
        with pytest.raises(ValueError):
            remainder_vector([1], 1)


class TestBuckets:
    def test_groups_by_remainder(self):
        participant = [11, 22, 24, 35]  # mod 11: 0, 0, 2, 2
        buckets = build_buckets((0, 2, 5), participant, 11)
        assert buckets[0] == [0, 1]
        assert buckets[1] == [2, 3]
        assert buckets[2] == []

    def test_single_pass_mod_count(self):
        counter = OpCounter()
        build_buckets((0, 1, 2, 3), [10, 20, 30], 11, counter)
        assert counter.get("M") == 3  # m_k reductions, not m_t * m_k


class TestIsCandidate:
    def test_exact_subset_is_candidate(self):
        request = [100, 200, 300]
        participant = sorted([100, 200, 300, 999])
        remainders = remainder_vector(request, 11)
        assert is_candidate(remainders, _mask(3, 3), 0, participant, 11)

    def test_missing_necessary_rejected(self):
        request = [100, 200]
        participant = [200]  # 100 mod 11 = 1 missing (200 mod 11 = 2)
        remainders = remainder_vector(request, 11)
        assert not is_candidate(remainders, _mask(2, 2), 0, participant, 11)

    def test_gamma_tolerates_missing_optional(self):
        request = sorted([100, 215, 333])
        participant = sorted([100, 215])
        remainders = remainder_vector(request, 11)
        mask = _mask(0, 3)
        assert not is_candidate(remainders, mask, 0, participant, 11)
        assert is_candidate(remainders, mask, 1, participant, 11)

    def test_order_violation_rejected(self):
        # Participant owns values whose remainders match but only in the
        # wrong order: position 0 wants r=5, position 1 wants r=1; the only
        # owner of r=5 sits *after* the only owner of r=1.
        request = [16, 23]  # sorted; mod 11 -> (5, 1)
        participant = [12, 27]  # mod 11 -> (1, 5): index of r=5 is 1, r=1 is 0
        remainders = remainder_vector(request, 11)
        # select pos0 -> idx1 (value 27), then pos1 needs idx > 1 with r=1: none.
        assert not is_candidate(remainders, _mask(2, 2), 0, participant, 11)

    def test_strict_mode_forces_nonempty_bucket_assignment(self):
        # Position 1 optional with colliding bucket entry; strict mode must
        # assign it, robust mode may skip it.
        request = [100, 211]  # mod 11: (1, 2)
        participant = [12, 13]  # mod 11: (1, 2) -- 13 collides with 211
        remainders = remainder_vector(request, 11)
        mask = (True, False)
        assert is_candidate(remainders, mask, 1, participant, 11, mode="strict")
        assert is_candidate(remainders, mask, 1, participant, 11, mode="robust")

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            is_candidate((0,), (True,), 0, [11], 11, mode="bogus")


class TestEnumerateCandidates:
    def test_exact_match_enumerated(self):
        request = sorted([1001, 2002, 3003])
        participant = sorted(request + [4004])
        remainders = remainder_vector(request, 11)
        candidates = enumerate_candidates(remainders, _mask(3, 3), 0, participant, 11)
        assert tuple(request) in {c.values for c in candidates}

    def test_true_combination_present_under_collisions(self):
        p = 11
        request = sorted([100, 211])  # both ≡ 1 mod 11... 100%11=1, 211%11=2
        participant = sorted([100, 111, 211])  # 111 ≡ 1 collides with 100
        remainders = remainder_vector(request, p)
        candidates = enumerate_candidates(remainders, _mask(2, 2), 0, participant, p)
        assert tuple(request) in {c.values for c in candidates}

    def test_unknown_positions_marked(self):
        request = sorted([100, 215, 333])
        participant = sorted([100, 215])
        remainders = remainder_vector(request, 11)
        candidates = enumerate_candidates(remainders, _mask(0, 3), 1, participant, 11)
        assert any(c.unknown_indices for c in candidates)
        for c in candidates:
            assert len(c.unknown_indices) <= 1

    def test_budget_caps_results(self):
        # Adversarial request: every position accepts every participant value.
        p = 11
        participant = sorted(11 * i for i in range(1, 30))  # all ≡ 0 mod 11
        remainders = tuple([0] * 5)
        budget = EnumerationBudget(max_candidates=10, max_visits=10_000)
        candidates = enumerate_candidates(
            remainders, _mask(0, 5), 4, participant, p, budget=budget
        )
        assert len(candidates) <= 10
        assert budget.exhausted

    def test_visit_budget_caps_search(self):
        p = 11
        participant = sorted(11 * i for i in range(1, 40))
        remainders = tuple([0] * 6)
        budget = EnumerationBudget(max_candidates=10**9, max_visits=500)
        enumerate_candidates(remainders, _mask(0, 6), 5, participant, p, budget=budget)
        assert budget.exhausted

    def test_no_candidates_for_stranger(self):
        request = [5, 16, 27]  # all ≡ 5 mod 11
        participant = [7, 18]  # all ≡ 7 mod 11
        remainders = remainder_vector(request, 11)
        assert enumerate_candidates(remainders, _mask(3, 3), 0, participant, 11) == []

    def test_strict_vs_robust_candidate_sets(self):
        # Robust mode is a superset of strict mode.
        request = sorted([100, 211, 322])
        participant = sorted([100, 111, 322])
        remainders = remainder_vector(request, 11)
        mask = _mask(1, 3)
        strict = {
            c.values
            for c in enumerate_candidates(remainders, mask, 2, participant, 11, mode="strict")
        }
        robust = {
            c.values
            for c in enumerate_candidates(remainders, mask, 2, participant, 11, mode="robust")
        }
        assert strict <= robust


class TestAgreementProperty:
    @given(
        data=st.data(),
        n_request=st.integers(min_value=1, max_value=6),
        n_participant=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_fast_check_agrees_with_enumeration(self, data, n_request, n_participant):
        """is_candidate is exactly 'enumeration finds >= 1 candidate'."""
        p = 11
        request = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=500),
                    min_size=n_request,
                    max_size=n_request,
                    unique=True,
                )
            )
        )
        participant = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=500),
                    min_size=n_participant,
                    max_size=n_participant,
                    unique=True,
                )
            )
        )
        alpha = data.draw(st.integers(min_value=0, max_value=n_request))
        gamma = data.draw(st.integers(min_value=0, max_value=n_request - alpha))
        mask = _mask(alpha, n_request)
        remainders = remainder_vector(request, p)
        for mode in ("strict", "robust"):
            fast = is_candidate(remainders, mask, gamma, participant, p, mode=mode)
            full = enumerate_candidates(remainders, mask, gamma, participant, p, mode=mode)
            assert fast == (len(full) > 0)


class TestBucketIndex:
    def test_index_matches_direct_bucketing(self):
        values = [3, 14, 25, 17, 8]
        p = 11
        remainders = remainder_vector(values, p)
        index = bucket_index(values, p)
        assert buckets_for(remainders, index) == build_buckets(remainders, values, p)

    def test_prebuilt_buckets_give_identical_results(self):
        values = (10, 21, 33, 47, 52)
        request = (10, 33, 52)
        p = 11
        remainders = remainder_vector(request, p)
        mask = (True, False, False)
        buckets = build_buckets(remainders, values, p)
        assert is_candidate(remainders, mask, 1, values, p) == is_candidate(
            remainders, mask, 1, values, p, buckets=buckets
        )
        direct = [c.values for c in enumerate_candidates(remainders, mask, 1, values, p)]
        via_index = []
        budget = EnumerationBudget()
        for candidate in iter_candidates(
            remainders, mask, 1, values, p, budget=budget, buckets=buckets
        ):
            via_index.append(candidate.values)
        assert direct == via_index

    def test_missing_remainder_maps_to_empty_bucket(self):
        index = bucket_index([5], 7)
        assert buckets_for((3,), index) == [[]]


class TestHostileGamma:
    """A wire-decodable package can imply gamma < 0 (beta > optional count);
    the fast check must reject it as a plain non-candidate, never crash."""

    def test_negative_gamma_matches_dict_dp_semantics(self):
        # The participant owns a value congruent to the remainder, so the
        # DP takes the bucket-assignment branch -- the path that used to
        # index an empty new_state row and crash.  Negative gamma only
        # forbids unknowns; a fully-assigned candidate is still feasible,
        # exactly as the original dict-based DP answered.
        assert is_candidate([1], [False], -1, [1], 5) is True
        assert is_candidate([2], [False], -1, [1], 5) is False

    def test_negative_gamma_never_enumerates(self):
        assert list(iter_candidates([1], [False], -1, [1], 5)) == []

    def test_zero_gamma_exact_match_still_passes(self):
        assert is_candidate([1], [False], 0, [1], 5) is True
