"""Hint matrix construction and exact-solve tests (Eq. 9-13)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import HintSolveError
from repro.core.hint import build_hint_matrix, solve_candidate


def _values(rng: random.Random, n: int) -> list[int]:
    return [rng.getrandbits(256) for _ in range(n)]


class TestBuild:
    def test_shapes(self, rng):
        hint = build_hint_matrix(_values(rng, 5), gamma=2, rng=rng)
        assert hint.gamma == 2
        assert hint.beta == 3
        assert len(hint.r_block) == 2
        assert all(len(row) == 3 for row in hint.r_block)
        assert len(hint.b_vector) == 2

    def test_r_entries_nonzero_32bit(self, rng):
        hint = build_hint_matrix(_values(rng, 6), gamma=3, rng=rng)
        for row in hint.r_block:
            for coeff in row:
                assert 1 <= coeff < (1 << 32)

    def test_b_equation(self, rng):
        values = _values(rng, 4)
        hint = build_hint_matrix(values, gamma=2, rng=rng)
        for i in range(2):
            expected = values[i] + sum(
                hint.r_block[i][j] * values[2 + j] for j in range(2)
            )
            assert hint.b_vector[i] == expected

    def test_rejects_zero_gamma(self, rng):
        with pytest.raises(ValueError):
            build_hint_matrix(_values(rng, 3), gamma=0, rng=rng)

    def test_rejects_gamma_exceeding_width(self, rng):
        with pytest.raises(ValueError):
            build_hint_matrix(_values(rng, 2), gamma=3, rng=rng)

    def test_row_coefficients(self, rng):
        hint = build_hint_matrix(_values(rng, 5), gamma=2, rng=rng)
        row0 = hint.row_coefficients(0)
        assert row0[0] == 1 and row0[1] == 0
        assert row0[2:] == list(hint.r_block[0])


class TestSolve:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        gamma=st.integers(min_value=1, max_value=4),
        beta=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_recovers_any_unknown_subset(self, seed, gamma, beta, data):
        """Up to γ unknowns anywhere in the optional segment are recovered."""
        rng = random.Random(seed)
        width = gamma + beta
        values = _values(rng, width)
        hint = build_hint_matrix(values, gamma=gamma, rng=rng)
        n_unknown = data.draw(st.integers(min_value=0, max_value=gamma))
        unknown_positions = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=width - 1),
                min_size=n_unknown,
                max_size=n_unknown,
                unique=True,
            )
        )
        candidate = list(values)
        for pos in unknown_positions:
            candidate[pos] = None
        recovered = solve_candidate(hint, candidate)
        assert recovered == values

    def test_no_unknowns_consistency_pass(self, rng):
        values = _values(rng, 4)
        hint = build_hint_matrix(values, gamma=2, rng=rng)
        assert solve_candidate(hint, list(values)) == values

    def test_no_unknowns_inconsistency_detected(self, rng):
        values = _values(rng, 4)
        hint = build_hint_matrix(values, gamma=2, rng=rng)
        wrong = list(values)
        wrong[1] ^= 1
        with pytest.raises(HintSolveError):
            solve_candidate(hint, wrong)

    def test_wrong_known_value_detected(self, rng):
        # A candidate with a colliding-but-wrong known value must be rejected
        # by the consistency check (when fewer unknowns than equations) or by
        # producing an out-of-range solution.
        values = _values(rng, 5)
        hint = build_hint_matrix(values, gamma=2, rng=rng)
        candidate: list[int | None] = list(values)
        candidate[0] = None  # one unknown, two equations
        candidate[3] = values[3] ^ 0xFFFF  # corrupted known
        with pytest.raises(HintSolveError):
            solve_candidate(hint, candidate)

    def test_too_many_unknowns_rejected(self, rng):
        values = _values(rng, 4)
        hint = build_hint_matrix(values, gamma=1, rng=rng)
        candidate = [None, None, values[2], values[3]]
        with pytest.raises(HintSolveError):
            solve_candidate(hint, candidate)

    def test_wrong_width_rejected(self, rng):
        values = _values(rng, 4)
        hint = build_hint_matrix(values, gamma=2, rng=rng)
        with pytest.raises(ValueError):
            solve_candidate(hint, values[:3])

    def test_unknowns_in_identity_part(self, rng):
        values = _values(rng, 6)
        hint = build_hint_matrix(values, gamma=3, rng=rng)
        candidate = [None, None, None] + values[3:]
        assert solve_candidate(hint, candidate) == values

    def test_unknowns_in_r_part(self, rng):
        values = _values(rng, 6)
        hint = build_hint_matrix(values, gamma=3, rng=rng)
        candidate = values[:3] + [None, None, None]
        assert solve_candidate(hint, candidate) == values
