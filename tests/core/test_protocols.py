"""Protocol 1/2/3 message-flow tests (Sec. III-E)."""

from __future__ import annotations

import random

import pytest

from repro.core.attributes import Profile, RequestProfile
from repro.core.channel import SecureChannel
from repro.core.entropy import AttributeDistribution, EntropyPolicy
from repro.core.protocols import (
    Initiator,
    Participant,
    Reply,
    build_reply_element,
    open_reply_element,
)

REQUEST = RequestProfile(
    necessary=["tag:n"],
    optional=["tag:o1", "tag:o2", "tag:o3"],
    beta=2,
    normalized=True,
)
MATCHING = Profile(["tag:n", "tag:o1", "tag:o2", "tag:q"], user_id="match", normalized=True)
PERFECT = Profile(["tag:n", "tag:o1", "tag:o2", "tag:o3"], user_id="perfect", normalized=True)
UNMATCHING = Profile(["tag:z1", "tag:z2"], user_id="miss", normalized=True)


def _initiator(protocol, **kwargs):
    return Initiator(REQUEST, protocol=protocol, rng=random.Random(1), **kwargs)


class TestReplyElements:
    def test_roundtrip(self):
        x, y = b"x" * 32, b"y" * 32
        element = build_reply_element(x, y, similarity=3)
        assert open_reply_element(x, element) == (3, y)

    def test_wrong_x_rejected(self):
        element = build_reply_element(b"x" * 32, b"y" * 32, similarity=3)
        assert open_reply_element(b"w" * 32, element) is None

    def test_similarity_clamped(self):
        element = build_reply_element(b"x" * 32, b"y" * 32, similarity=9999)
        assert open_reply_element(b"x" * 32, element) == (255, b"y" * 32)

    def test_wrong_size_rejected(self):
        assert open_reply_element(b"x" * 32, b"short") is None

    def test_batched_open_matches_sequential_scan(self):
        from repro.core.protocols import open_reply_elements

        x, y = b"x" * 32, b"y" * 32
        good = build_reply_element(x, y, similarity=5)
        junk = build_reply_element(b"w" * 32, b"z" * 32, similarity=1)
        assert open_reply_elements(x, (junk, good, junk)) == (5, y)
        assert open_reply_elements(x, (junk, junk)) is None
        assert open_reply_elements(x, (b"short", good)) == (5, y)
        assert open_reply_elements(x, ()) is None

    def test_batched_open_counts_like_the_sequential_scan(self):
        """D/CMP256 record the cost model of the per-element scan it
        replaced: elements examined up to the verifying one, not the
        whole batched decryption."""
        from repro.analysis.counters import OpCounter
        from repro.core.protocols import open_reply_elements

        x, y = b"x" * 32, b"y" * 32
        good = build_reply_element(x, y, similarity=5)
        junk = build_reply_element(b"w" * 32, b"z" * 32, similarity=1)

        counter = OpCounter()
        assert open_reply_elements(x, (good, junk, junk, junk), counter) == (5, y)
        assert counter.get("D") == 3  # one 48-byte element examined
        assert counter.get("CMP256") == 1

        counter = OpCounter()
        assert open_reply_elements(x, (junk, junk, good), counter) == (5, y)
        assert counter.get("D") == 9
        assert counter.get("CMP256") == 3

    def test_bad_lengths_raise(self):
        with pytest.raises(ValueError):
            build_reply_element(b"x", b"y" * 32, 0)


class TestProtocol1:
    def test_end_to_end_match(self):
        initiator = _initiator(1)
        package = initiator.create_request(now_ms=0)
        participant = Participant(MATCHING)
        reply = participant.handle_request(package, now_ms=1)
        assert reply is not None
        assert len(reply.elements) == 1  # P1: single verified element
        record = initiator.handle_reply(reply, now_ms=2)
        assert record is not None
        assert record.responder_id == "match"
        assert record.similarity == 3  # owns n, o1, o2

    def test_unmatching_user_stays_silent(self):
        initiator = _initiator(1)
        package = initiator.create_request(now_ms=0)
        assert Participant(UNMATCHING).handle_request(package, now_ms=1) is None

    def test_below_threshold_candidate_stays_silent(self):
        initiator = _initiator(1)
        package = initiator.create_request(now_ms=0)
        below = Profile(["tag:n", "tag:o1"], user_id="below", normalized=True)
        assert Participant(below).handle_request(package, now_ms=1) is None

    def test_channel_established_both_sides(self):
        initiator = _initiator(1)
        package = initiator.create_request(now_ms=0)
        participant = Participant(MATCHING)
        reply = participant.handle_request(package, now_ms=1)
        record = initiator.handle_reply(reply, now_ms=2)
        message = SecureChannel(record.session_key).send(b"hi!")
        keys = participant.channel_keys(package.request_id)
        assert any(_try_receive(k, message) == b"hi!" for k in keys)

    def test_best_match_prefers_higher_similarity(self):
        initiator = _initiator(1)
        package = initiator.create_request(now_ms=0)
        r1 = Participant(MATCHING).handle_request(package, now_ms=1)
        r2 = Participant(PERFECT).handle_request(package, now_ms=1)
        initiator.handle_reply(r1, now_ms=2)
        initiator.handle_reply(r2, now_ms=2)
        assert initiator.best_match().responder_id == "perfect"


class TestProtocol2:
    def test_end_to_end_match(self):
        initiator = _initiator(2)
        package = initiator.create_request(now_ms=0)
        reply = Participant(MATCHING).handle_request(package, now_ms=1)
        assert reply is not None
        record = initiator.handle_reply(reply, now_ms=2)
        assert record is not None

    def test_candidate_cannot_self_verify(self):
        initiator = _initiator(2)
        package = initiator.create_request(now_ms=0)
        participant = Participant(MATCHING)
        participant.handle_request(package, now_ms=1)
        assert participant.last_outcome.x is None

    def test_time_window_rejection(self):
        initiator = _initiator(2, reply_window_ms=100)
        package = initiator.create_request(now_ms=0)
        reply = Participant(MATCHING).handle_request(package, now_ms=1)
        record = initiator.handle_reply(reply, now_ms=500)
        assert record is None
        assert initiator.rejected[-1].reason == "outside time window"

    def test_cardinality_threshold_rejection(self):
        initiator = _initiator(2, max_reply_elements=2)
        package = initiator.create_request(now_ms=0)
        oversized = Reply(
            request_id=package.request_id,
            responder_id="flooder",
            elements=tuple(build_reply_element(bytes([i]) * 32, b"y" * 32, 0) for i in range(5)),
            sent_at_ms=1,
        )
        assert initiator.handle_reply(oversized, now_ms=2) is None
        assert initiator.rejected[-1].reason == "reply set too large"

    def test_unknown_request_id_rejected(self):
        initiator = _initiator(2)
        initiator.create_request(now_ms=0)
        stray = Reply(request_id=b"12345678", responder_id="x", elements=(), sent_at_ms=1)
        assert initiator.handle_reply(stray, now_ms=2) is None
        assert initiator.rejected[-1].reason == "unknown request id"

    def test_expired_request_ignored_by_participant(self):
        initiator = _initiator(2, validity_ms=10)
        package = initiator.create_request(now_ms=0)
        assert Participant(MATCHING).handle_request(package, now_ms=1000) is None

    def test_group_key_shared_with_all_matchers(self):
        initiator = _initiator(2)
        package = initiator.create_request(now_ms=0)
        reply = Participant(PERFECT).handle_request(package, now_ms=1)
        assert initiator.handle_reply(reply, now_ms=2) is not None
        group = SecureChannel.for_group(initiator.secret.x)
        broadcast = group.send(b"welcome to the community")
        # The perfect matcher recovered x as one of its candidate x_j values.
        matcher = Participant(PERFECT)
        matcher.handle_request(package, now_ms=1)
        xs = [x for x, _ in matcher._pending_secrets[package.request_id]]
        assert any(
            _try_receive_group(x, broadcast) == b"welcome to the community" for x in xs
        )


class TestProtocol3:
    def _policy(self, phi):
        return EntropyPolicy(AttributeDistribution.uniform({"tag": 1 << 12}), phi=phi)

    def test_generous_budget_behaves_like_protocol2(self):
        initiator = _initiator(3)
        package = initiator.create_request(now_ms=0)
        participant = Participant(MATCHING, entropy_policy=self._policy(1000.0))
        reply = participant.handle_request(package, now_ms=1)
        assert initiator.handle_reply(reply, now_ms=2) is not None

    def test_zero_budget_silences_participant(self):
        initiator = _initiator(3)
        package = initiator.create_request(now_ms=0)
        participant = Participant(MATCHING, entropy_policy=self._policy(0.0))
        assert participant.handle_request(package, now_ms=1) is None

    def test_no_policy_means_no_filtering(self):
        initiator = _initiator(3)
        package = initiator.create_request(now_ms=0)
        reply = Participant(MATCHING).handle_request(package, now_ms=1)
        assert reply is not None


def _try_receive(key: bytes, message: bytes):
    try:
        return SecureChannel(key).receive(message)
    except Exception:
        return None


def _try_receive_group(x: bytes, message: bytes):
    try:
        return SecureChannel.for_group(x).receive(message)
    except Exception:
        return None


class TestParticipantDefences:
    def test_duplicate_request_answered_once(self):
        initiator = _initiator(2)
        package = initiator.create_request(now_ms=0)
        participant = Participant(MATCHING)
        assert participant.handle_request(package, now_ms=1) is not None
        assert participant.handle_request(package, now_ms=2) is None

    @staticmethod
    def _two_requests():
        first = Initiator(REQUEST, protocol=2, rng=random.Random(101)).create_request(now_ms=0)
        second = Initiator(REQUEST, protocol=2, rng=random.Random(202)).create_request(now_ms=0)
        return first, second

    def test_reply_throttle_blocks_within_interval(self):
        participant = Participant(MATCHING, reply_min_interval_ms=1000)
        first, second = self._two_requests()
        assert participant.handle_request(first, now_ms=10) is not None
        assert participant.handle_request(second, now_ms=20) is None

    def test_reply_throttle_releases_after_interval(self):
        participant = Participant(MATCHING, reply_min_interval_ms=100)
        first, second = self._two_requests()
        assert participant.handle_request(first, now_ms=10) is not None
        assert participant.handle_request(second, now_ms=500) is not None

    def test_throttle_disabled_by_default(self):
        participant = Participant(MATCHING)
        first, second = self._two_requests()
        assert participant.handle_request(first, now_ms=1) is not None
        assert participant.handle_request(second, now_ms=1) is not None
