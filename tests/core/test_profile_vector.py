"""Profile vector and key derivation tests (Eq. 2-3)."""

from __future__ import annotations

from repro.analysis.counters import OpCounter
from repro.core.attributes import Profile, RequestProfile
from repro.core.profile_vector import ParticipantVector, RequestVector, profile_key
from repro.crypto.hashes import hash_attribute


class TestParticipantVector:
    def test_sorted_ascending(self):
        vector = ParticipantVector.from_profile(
            Profile(["tag:c", "tag:a", "tag:b"], normalized=True)
        )
        assert list(vector.values) == sorted(vector.values)

    def test_attribute_backmap(self):
        vector = ParticipantVector.from_profile(Profile(["tag:a", "tag:b"], normalized=True))
        for attr, value in zip(vector.attributes, vector.values):
            assert hash_attribute(attr) == value

    def test_binding_changes_vector(self):
        profile = Profile(["tag:a"], normalized=True)
        plain = ParticipantVector.from_profile(profile)
        bound = ParticipantVector.from_profile(profile, binding=b"cell")
        assert plain.values != bound.values

    def test_counter_tallies_hashes(self):
        counter = OpCounter()
        ParticipantVector.from_profile(Profile(["a", "b", "c"], normalized=True), counter=counter)
        assert counter.get("H") == 3

    def test_own_key_matches_manual(self):
        vector = ParticipantVector.from_profile(Profile(["tag:a"], normalized=True))
        assert vector.key() == profile_key(vector.values)


class TestRequestVector:
    def test_globally_sorted_with_mask(self):
        request = RequestProfile(
            necessary=["tag:n"], optional=["tag:o1", "tag:o2"], beta=1, normalized=True
        )
        vector = RequestVector.from_request(request)
        assert list(vector.values) == sorted(vector.values)
        assert sum(vector.necessary_mask) == 1
        assert len(vector) == 3

    def test_alpha_gamma(self):
        request = RequestProfile(
            necessary=["n1", "n2"], optional=["o1", "o2", "o3"], beta=1, normalized=True
        )
        vector = RequestVector.from_request(request)
        assert vector.alpha == 2
        assert vector.gamma == 2

    def test_necessary_mask_tracks_sorted_position(self):
        request = RequestProfile(necessary=["tag:n"], optional=["tag:o"], beta=1, normalized=True)
        vector = RequestVector.from_request(request)
        n_hash = hash_attribute("tag:n")
        for value, necessary in zip(vector.values, vector.necessary_mask):
            assert necessary == (value == n_hash)

    def test_optional_values_in_order(self):
        request = RequestProfile(
            necessary=["n"], optional=["o1", "o2", "o3"], beta=2, normalized=True
        )
        vector = RequestVector.from_request(request)
        opts = vector.optional_values()
        assert len(opts) == 3
        assert list(opts) == sorted(opts)

    def test_same_attributes_same_key_as_participant(self):
        # The crux of the mechanism: a participant owning exactly the request
        # attributes derives the identical key.
        attrs = ["tag:a", "tag:b", "tag:c"]
        request_vec = RequestVector.from_request(RequestProfile.exact(attrs, normalized=True))
        participant_vec = ParticipantVector.from_profile(Profile(attrs, normalized=True))
        assert request_vec.key() == participant_vec.key()

    def test_binding_propagates(self):
        request = RequestProfile.exact(["tag:a"], normalized=True)
        assert RequestVector.from_request(request).values != (
            RequestVector.from_request(request, binding=b"cell").values
        )


class TestProfileKey:
    def test_distinct_vectors_distinct_keys(self):
        assert profile_key([1, 2, 3]) != profile_key([1, 2, 4])

    def test_key_is_aes256_sized(self):
        assert len(profile_key([7])) == 32

    def test_counter(self):
        counter = OpCounter()
        profile_key([1, 2], counter)
        assert counter.get("H") == 1
