"""Hypothesis property tests for the frame envelope (all message classes).

The contract under test: ``decode_frame(encode_frame(...))`` is the
identity for every message class, and *every* malformed input --
truncation, any single bit flip, unknown version, unknown type tag,
length-field lies, trailing bytes -- raises
:class:`~repro.core.exceptions.SerializationError`, never a partial parse.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import RequestProfile
from repro.core.exceptions import SerializationError
from repro.core.matching import build_request
from repro.core.protocols import Reply
from repro.core.wire import (
    FRAME_HEADER_LEN,
    FRAME_TYPES,
    FT_REPLY,
    FT_REQUEST,
    FT_SESSION,
    decode_frame,
    decode_payload,
    encode_frame,
    encode_reply_frame,
    encode_request_frame,
    encode_session_frame,
    patch_frame,
    reframe,
)

# -- generators for the three message classes --------------------------------


@st.composite
def request_frames(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n_optional = draw(st.integers(min_value=1, max_value=5))
    beta = draw(st.integers(min_value=0, max_value=n_optional - 1)) if n_optional > 1 else 0
    protocol = draw(st.sampled_from([1, 2, 3]))
    request = RequestProfile(
        necessary=[f"tag:n{seed}"],
        optional=[f"tag:o{i}" for i in range(n_optional)],
        beta=beta,
        normalized=True,
    )
    package, _ = build_request(
        request, protocol=protocol, p=11, rng=random.Random(seed), now_ms=0
    )
    return package, encode_request_frame(package)


@st.composite
def reply_frames(draw):
    n = draw(st.integers(min_value=0, max_value=8))
    responder = draw(
        st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FFF), max_size=40)
    )
    reply = Reply(
        request_id=draw(st.binary(min_size=8, max_size=8)),
        responder_id=responder,
        elements=tuple(bytes([i % 256]) * 48 for i in range(n)),
        sent_at_ms=draw(st.integers(min_value=0, max_value=2**63 - 1)),
    )
    ttl = draw(st.integers(min_value=0, max_value=255))
    return reply, encode_reply_frame(reply, ttl=ttl)


@st.composite
def session_frames(draw):
    channel_id = draw(st.binary(min_size=8, max_size=8))
    ciphertext = draw(st.binary(min_size=0, max_size=200))
    return (channel_id, ciphertext), encode_session_frame(channel_id, ciphertext)


ANY_FRAME = st.one_of(request_frames(), reply_frames(), session_frames())


# -- round trips -------------------------------------------------------------


class TestRoundTrip:
    @given(request_frames())
    @settings(max_examples=25, deadline=None)
    def test_request_identity(self, built):
        package, frame = built
        decoded = decode_frame(frame)
        assert decoded.ftype == FT_REQUEST
        assert decoded.ttl == package.ttl
        assert decode_payload(decoded) == package

    @given(reply_frames())
    @settings(max_examples=40, deadline=None)
    def test_reply_identity(self, built):
        reply, frame = built
        decoded = decode_frame(frame)
        assert decoded.ftype == FT_REPLY
        assert decode_payload(decoded) == reply

    @given(session_frames())
    @settings(max_examples=40, deadline=None)
    def test_session_identity(self, built):
        (channel_id, ciphertext), frame = built
        decoded = decode_frame(frame)
        assert decoded.ftype == FT_SESSION
        assert decode_payload(decoded) == (channel_id, ciphertext)

    @given(reply_frames(), st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=30, deadline=None)
    def test_reframe_patches_only_routing_bytes(self, built, ttl, seq):
        reply, frame = built
        patched = decode_frame(reframe(frame, ttl=ttl, seq=seq))
        assert (patched.ttl, patched.seq) == (ttl, seq)
        assert patched.payload == decode_frame(frame).payload


# -- zero-copy reframe: incremental CRC == full re-encode --------------------


class TestZeroCopyReframe:
    """The relay fast path patches bytes + CRC deltas; the result must be
    bit-identical to a from-scratch ``encode_frame`` for every routing
    state.  This is the invariant that lets relays skip the per-hop
    payload CRC walk entirely."""

    def test_every_ttl_seq_pair_equals_full_reencode(self):
        """Exhaustive 256 x 256 sweep of the two routing bytes."""
        payload = bytes(range(256)) + b"exhaustive-sweep"
        frame = encode_frame(FT_REQUEST, payload, ttl=9, seq=1)
        for ttl in range(256):
            expected_ttl_only = encode_frame(FT_REQUEST, payload, ttl=ttl, seq=1)
            assert reframe(frame, ttl=ttl) == expected_ttl_only
            for seq in range(0, 256, 17):
                expected = encode_frame(FT_REQUEST, payload, ttl=ttl, seq=seq)
                assert reframe(frame, ttl=ttl, seq=seq) == expected
        for seq in range(256):
            assert reframe(frame, seq=seq) == encode_frame(
                FT_REQUEST, payload, ttl=9, seq=seq
            )

    @given(
        st.binary(min_size=0, max_size=400),
        st.sampled_from(FRAME_TYPES),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=120, deadline=None)
    def test_patch_equals_reencode_any_payload(self, payload, ftype, ttl0,
                                               seq0, ttl1, seq1):
        frame = encode_frame(ftype, payload, ttl=ttl0, seq=seq0)
        patched = reframe(frame, ttl=ttl1, seq=seq1)
        assert patched == encode_frame(ftype, payload, ttl=ttl1, seq=seq1)
        decoded = decode_frame(patched)  # CRC must verify
        assert (decoded.ttl, decoded.seq) == (ttl1, seq1)
        assert decoded.payload == payload

    def test_patch_frame_mutates_in_place_without_copy(self):
        payload = b"in-place" * 11
        frame = encode_frame(FT_SESSION, payload, ttl=4, seq=2)
        buf = bytearray(frame)
        patch_frame(buf, ttl=3)
        assert bytes(buf) == encode_frame(FT_SESSION, payload, ttl=3, seq=2)
        patch_frame(memoryview(buf), seq=9)
        assert bytes(buf) == encode_frame(FT_SESSION, payload, ttl=3, seq=9)

    def test_patch_noop_keeps_frame_identical(self):
        frame = encode_frame(FT_REPLY, b"payload", ttl=7, seq=7)
        assert reframe(frame) == frame
        assert reframe(frame, ttl=7, seq=7) == frame

    def test_patch_rejects_out_of_range_routing_bytes(self):
        frame = encode_frame(FT_REPLY, b"x", ttl=1)
        with pytest.raises(SerializationError):
            reframe(frame, ttl=256)
        with pytest.raises(SerializationError):
            reframe(frame, seq=-1)


# -- strict rejection --------------------------------------------------------


class TestRejection:
    @given(ANY_FRAME, st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncation_rejected(self, built, data):
        _, frame = built
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(SerializationError):
            decode_frame(frame[:cut])

    @given(ANY_FRAME, st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_single_bit_flip_rejected(self, built, data):
        """CRC-32 detects every single-bit error; magic/header flips too."""
        _, frame = built
        bit = data.draw(st.integers(min_value=0, max_value=len(frame) * 8 - 1))
        flipped = bytearray(frame)
        flipped[bit // 8] ^= 1 << (bit % 8)
        with pytest.raises(SerializationError):
            decode_frame(bytes(flipped))

    @given(ANY_FRAME, st.data())
    @settings(max_examples=40, deadline=None)
    def test_trailing_bytes_rejected(self, built, data):
        _, frame = built
        tail = data.draw(st.binary(min_size=1, max_size=16))
        with pytest.raises(SerializationError):
            decode_frame(frame + tail)

    @given(ANY_FRAME, st.integers(min_value=2, max_value=255))
    @settings(max_examples=30, deadline=None)
    def test_unknown_version_rejected(self, built, version):
        """A future version must be rejected even with a refreshed checksum."""
        import struct
        import zlib

        _, frame = built
        forged = bytearray(frame)
        forged[4] = version
        crc = zlib.crc32(bytes(forged[4:12])) & 0xFFFF_FFFF
        crc = zlib.crc32(bytes(forged[FRAME_HEADER_LEN:]), crc) & 0xFFFF_FFFF
        forged[12:16] = struct.pack(">I", crc)
        with pytest.raises(SerializationError, match="version"):
            decode_frame(bytes(forged))

    @given(ANY_FRAME, st.integers(min_value=0, max_value=255))
    @settings(max_examples=30, deadline=None)
    def test_unknown_type_rejected(self, built, ftype):
        import struct
        import zlib

        if ftype in FRAME_TYPES:
            return
        _, frame = built
        forged = bytearray(frame)
        forged[5] = ftype
        crc = zlib.crc32(bytes(forged[4:12])) & 0xFFFF_FFFF
        crc = zlib.crc32(bytes(forged[FRAME_HEADER_LEN:]), crc) & 0xFFFF_FFFF
        forged[12:16] = struct.pack(">I", crc)
        with pytest.raises(SerializationError, match="type"):
            decode_frame(bytes(forged))

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_random_bytes_never_half_parse(self, data):
        try:
            decode_frame(data)
        except SerializationError:
            pass

    def test_encode_rejects_bad_type_and_ranges(self):
        with pytest.raises(SerializationError):
            encode_frame(99, b"x")
        with pytest.raises(SerializationError):
            encode_frame(FT_REPLY, b"x", ttl=256)
        with pytest.raises(SerializationError):
            encode_frame(FT_REPLY, b"x", seq=-1)
