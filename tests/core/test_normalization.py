"""Normalization pipeline tests (Sec. III-B requirements)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalization import (
    normalize_attribute,
    normalize_profile,
    number_to_words,
    singularize,
)


class TestNumberToWords:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "zero"),
            (7, "seven"),
            (13, "thirteen"),
            (20, "twenty"),
            (42, "forty two"),
            (100, "one hundred"),
            (101, "one hundred one"),
            (999, "nine hundred ninety nine"),
            (1000, "one thousand"),
            (1984, "one thousand nine hundred eighty four"),
            (1_000_000, "one million"),
            (2_000_003, "two million three"),
        ],
    )
    def test_spelling(self, value, expected):
        assert number_to_words(value) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            number_to_words(-1)

    def test_rejects_huge(self):
        with pytest.raises(ValueError):
            number_to_words(10**12)

    def test_normalization_spells_huge_runs_digit_wise(self):
        # number_to_words stops at 10^12, but normalize_attribute must
        # terminate on any digit run: beyond the scale table it spells
        # digit by digit (hypothesis found the crash via test_idempotent).
        from repro.core.normalization import normalize_attribute

        once = normalize_attribute("1000000000000")
        assert once == normalize_attribute(once)  # idempotent
        assert not any(c.isdigit() for c in once)
        assert once.startswith("onezero")


class TestSingularize:
    @pytest.mark.parametrize(
        "plural,singular",
        [
            ("cats", "cat"),
            ("hobbies", "hobby"),
            ("buses", "bus"),
            ("boxes", "box"),
            ("dishes", "dish"),
            ("churches", "church"),
            ("glass", "glass"),  # trailing 'ss' untouched
            ("campus", "campus"),  # trailing 'us' untouched
            ("tennis", "tennis"),  # trailing 'is' untouched
            ("cat", "cat"),
            ("a", "a"),
        ],
    )
    def test_rules(self, plural, singular):
        assert singularize(plural) == singular


class TestNormalizeAttribute:
    def test_case_folding(self):
        assert normalize_attribute("BasketBall") == normalize_attribute("basketball")

    def test_whitespace_removed(self):
        assert normalize_attribute("computer  science") == normalize_attribute(
            "computer science"
        )

    def test_punctuation_removed(self):
        assert normalize_attribute("rock'n'roll!") == normalize_attribute("rocknroll")

    def test_accents_stripped(self):
        assert normalize_attribute("café") == normalize_attribute("cafe")

    def test_numbers_to_words(self):
        assert normalize_attribute("42") == normalize_attribute("forty two")

    def test_plural_to_singular(self):
        assert normalize_attribute("computer games") == normalize_attribute(
            "computer game"
        )

    def test_abbreviation_expansion(self):
        assert normalize_attribute("cs") == normalize_attribute("computer science")

    def test_custom_abbreviations(self):
        assert normalize_attribute("ml", {"ml": "machine learning"}) == (
            normalize_attribute("machine learning")
        )

    def test_category_preserved(self):
        normalized = normalize_attribute("Interest:BasketBall")
        assert normalized == "interest:basketball"

    def test_category_separator_distinguishes(self):
        assert normalize_attribute("interest:jazz") != normalize_attribute("interestjazz")

    @given(st.text(min_size=0, max_size=50))
    @settings(max_examples=50)
    def test_idempotent(self, text):
        once = normalize_attribute(text)
        assert normalize_attribute(once) == once


class TestNormalizeProfile:
    def test_deduplicates_equivalents(self):
        result = normalize_profile(["Basketball", "basketball", "BASKETBALL!"])
        assert len(result) == 1

    def test_drops_empty(self):
        assert normalize_profile(["", "   ", "ok"]) == ["ok"]

    def test_preserves_first_seen_order(self):
        assert normalize_profile(["zebra", "apple"]) == ["zebra", "apple"]
