"""High-level agent tests: the byte-level application facade."""

from __future__ import annotations

import random

import pytest

from repro.core.agent import SealedBottleAgent
from repro.core.attributes import RequestProfile
from repro.core.exceptions import SealedBottleError, SerializationError
from repro.core.location import LatticeSpec


def _agents():
    rng_a = random.Random(1)
    rng_b = random.Random(2)
    alice = SealedBottleAgent("alice", ["interest:basketball", "city:nyc"], rng=rng_a)
    bob = SealedBottleAgent(
        "bob", ["interest:basketball", "city:nyc", "food:sushi"], rng=rng_b
    )
    return alice, bob


class TestSearchFlow:
    def test_full_byte_level_exchange(self):
        alice, bob = _agents()
        request = RequestProfile.exact(["interest:basketball", "city:nyc"])
        datagram = alice.search(request, now_ms=0)

        outbound, event = bob.handle_datagram(datagram, now_ms=1)
        assert outbound is not None  # bob matched and replies
        assert event.kind == "relay"

        _, match_event = alice.handle_datagram(outbound, now_ms=2)
        assert match_event is not None
        assert match_event.kind == "match"
        assert match_event.peer == "bob"
        assert alice.matches()

    def test_non_matching_agent_only_relays(self):
        alice, _ = _agents()
        stranger = SealedBottleAgent("eve", ["hobby:stamps"], rng=random.Random(3))
        datagram = alice.search(RequestProfile.exact(["interest:basketball", "city:nyc"]))
        outbound, event = stranger.handle_datagram(datagram, now_ms=1)
        assert outbound is None
        assert event.kind == "relay"

    def test_own_broadcast_ignored(self):
        alice, _ = _agents()
        datagram = alice.search(RequestProfile.exact(["interest:basketball"]))
        outbound, event = alice.handle_datagram(datagram, now_ms=1)
        assert outbound is None
        assert event is None

    def test_unknown_datagram_rejected(self):
        alice, _ = _agents()
        with pytest.raises(SerializationError):
            alice.handle_datagram(b"GARBAGE!", now_ms=0)

    def test_stray_reply_ignored(self):
        alice, bob = _agents()
        datagram = alice.search(RequestProfile.exact(["interest:basketball", "city:nyc"]))
        outbound, _ = bob.handle_datagram(datagram, now_ms=1)
        third = SealedBottleAgent("carol", ["x:y"], rng=random.Random(5))
        _, event = third.handle_datagram(outbound, now_ms=2)
        assert event is None


class TestSessions:
    def test_message_after_match(self):
        alice, bob = _agents()
        request = RequestProfile.exact(["interest:basketball", "city:nyc"])
        datagram = alice.search(request, now_ms=0)
        reply, _ = bob.handle_datagram(datagram, now_ms=1)
        _, match_event = alice.handle_datagram(reply, now_ms=2)
        record = match_event.record

        request_id = list(alice._initiators)[0]
        framed = alice.send_message(record, request_id, b"coffee tomorrow?")
        inbound = bob.handle_session(framed)
        assert inbound is not None
        assert inbound.kind == "message"
        assert inbound.payload == b"coffee tomorrow?"

    def test_second_message_reuses_session(self):
        alice, bob = _agents()
        request = RequestProfile.exact(["interest:basketball", "city:nyc"])
        datagram = alice.search(request, now_ms=0)
        reply, _ = bob.handle_datagram(datagram, now_ms=1)
        _, match_event = alice.handle_datagram(reply, now_ms=2)
        request_id = list(alice._initiators)[0]
        first = alice.send_message(match_event.record, request_id, b"one")
        second = alice.send_message(match_event.record, request_id, b"two")
        assert bob.handle_session(first).payload == b"one"
        assert bob.handle_session(second).payload == b"two"

    def test_eavesdropper_cannot_read(self):
        alice, bob = _agents()
        eve = SealedBottleAgent("eve", ["hobby:stamps"], rng=random.Random(9))
        request = RequestProfile.exact(["interest:basketball", "city:nyc"])
        datagram = alice.search(request, now_ms=0)
        reply, _ = bob.handle_datagram(datagram, now_ms=1)
        eve.handle_datagram(datagram, now_ms=1)
        _, match_event = alice.handle_datagram(reply, now_ms=2)
        request_id = list(alice._initiators)[0]
        framed = alice.send_message(match_event.record, request_id, b"secret")
        assert eve.handle_session(framed) is None


class TestVicinity:
    def test_vicinity_search_between_agents(self):
        spec = LatticeSpec(d=10.0)
        alice = SealedBottleAgent(
            "alice", [], lattice=spec, location=(100.0, 100.0), rng=random.Random(1)
        )
        # Bob's profile is his vicinity region around a nearby point.
        bob_attrs = spec.vicinity_attributes(110.0, 95.0, 30.0)
        bob = SealedBottleAgent("bob", bob_attrs, rng=random.Random(2))

        datagram = alice.search_vicinity(search_range=30.0, theta=0.45, now_ms=0)
        reply, _ = bob.handle_datagram(datagram, now_ms=1)
        assert reply is not None
        _, event = alice.handle_datagram(reply, now_ms=2)
        assert event.kind == "match"

    def test_vicinity_requires_location(self):
        agent = SealedBottleAgent("x", ["a:b"])
        with pytest.raises(SealedBottleError):
            agent.search_vicinity(10.0, 0.5)

    def test_update_location(self):
        spec = LatticeSpec(d=5.0)
        agent = SealedBottleAgent("x", [], lattice=spec, location=(0.0, 0.0))
        agent.update_location(50.0, 50.0)
        assert agent.location == (50.0, 50.0)

    def test_update_attributes_rebuilds_participant(self):
        agent = SealedBottleAgent("x", ["a:b"])
        old_vector = agent._participant.vector.values
        agent.update_attributes(["c:d", "e:f"])
        assert agent._participant.vector.values != old_vector
        assert len(agent.profile) == 2
