"""Golden-value regression pins.

The wire formats and key-derivation outputs must stay byte-stable across
refactors: two devices running different builds of this code still have to
derive identical profile keys from identical profiles.  These tests pin
exact values computed at the time the formats were frozen.
"""

from __future__ import annotations

import random

from repro.core.attributes import Profile, RequestProfile
from repro.core.matching import build_request
from repro.core.normalization import normalize_attribute
from repro.core.profile_vector import ParticipantVector
from repro.core.request import RequestPackage
from repro.crypto.hashes import hash_attribute


class TestKeyDerivationPins:
    def test_attribute_hash_pin(self):
        # SHA-256("interest:basketball") -- frozen interoperability value.
        assert hash_attribute("interest:basketball") == int(
            "0xe2bd29cb892a9c27c939d968d49101ab1c9ef12208a5f322a9031d1237625bea", 16
        )

    def test_profile_key_stable(self):
        vector = ParticipantVector.from_profile(
            Profile(["tag:a", "tag:b"], normalized=True)
        )
        assert vector.key() == vector.key()
        assert len(vector.key()) == 32

    def test_normalization_pins(self):
        # These canonical forms are part of the interoperability contract.
        assert normalize_attribute("Interest:BasketBall") == "interest:basketball"
        assert normalize_attribute("cs") == "computerscience"
        assert normalize_attribute("42 things") == "fortytwothing"
        assert normalize_attribute("lattice:1.0|2.0|3.0|4|5") == "lattice:1.0|2.0|3.0|4|5"


class TestWireFormatPins:
    def test_request_package_layout_stable(self):
        request = RequestProfile(
            necessary=["tag:n"], optional=["tag:o1", "tag:o2"], beta=1, normalized=True
        )
        package, _ = build_request(
            request, protocol=2, p=11, rng=random.Random(99), now_ms=0, validity_ms=1000
        )
        encoded = package.encode()
        assert encoded[:4] == b"SBRQ"
        assert encoded[4] == 1  # version byte
        assert encoded[5] == 2  # protocol byte
        # A byte-stable format decodes to an equal object forever.
        assert RequestPackage.decode(encoded) == package

    def test_deterministic_build_is_bit_stable(self):
        request = RequestProfile.exact(["tag:x", "tag:y"], normalized=True)
        a, _ = build_request(request, protocol=1, rng=random.Random(7), now_ms=0)
        b, _ = build_request(request, protocol=1, rng=random.Random(7), now_ms=0)
        assert a.encode() == b.encode()

    def test_reply_magic(self):
        from repro.core.protocols import Reply
        from repro.core.wire import encode_reply

        reply = Reply(request_id=b"12345678", responder_id="r", elements=(), sent_at_ms=0)
        assert encode_reply(reply)[:4] == b"SBRP"

    def test_session_rides_the_frame_envelope(self):
        from repro.core.wire import FT_SESSION, encode_session_message

        framed = encode_session_message(b"12345678", b"x")
        assert framed[:4] == b"SBFM"  # one envelope for every message class
        assert framed[4] == 1  # frame version byte
        assert framed[5] == FT_SESSION

    def test_frame_envelope_layout_stable(self):
        from repro.core.wire import FRAME_HEADER_LEN, FT_REPLY, decode_frame, encode_frame

        frame = encode_frame(FT_REPLY, b"payload", ttl=3, seq=1)
        assert frame[:4] == b"SBFM"
        assert frame[4] == 1 and frame[5] == FT_REPLY
        assert frame[6] == 3 and frame[7] == 1
        assert len(frame) == FRAME_HEADER_LEN + len(b"payload")
        assert decode_frame(frame).payload == b"payload"


class TestCrossDeviceAgreement:
    def test_two_independent_builds_agree_on_keys(self):
        """Simulates two devices deriving keys from raw user input."""
        raw_alice = ["Interest:BasketBall", "city:NYC"]
        raw_bob = ["interest:basketball!", "City:nyc"]
        alice = ParticipantVector.from_profile(Profile(raw_alice))
        bob = ParticipantVector.from_profile(Profile(raw_bob))
        assert alice.key() == bob.key()
