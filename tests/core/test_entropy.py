"""Entropy and φ-privacy policy tests (Def. 4-6)."""

from __future__ import annotations

import math

import pytest

from repro.core.entropy import (
    AttributeDistribution,
    EntropyPolicy,
    k_anonymity_phi,
    sensitive_attribute_phi,
)


class TestAttributeDistribution:
    def test_uniform_entropy_is_log2(self):
        dist = AttributeDistribution.uniform({"gender": 2, "city": 1024})
        assert dist.attribute_entropy("gender:male") == pytest.approx(1.0)
        assert dist.attribute_entropy("city:paris") == pytest.approx(10.0)

    def test_empirical_entropy(self):
        dist = AttributeDistribution({"coin": {"heads": 1, "tails": 1}})
        assert dist.attribute_entropy("coin:heads") == pytest.approx(1.0)

    def test_skewed_entropy_below_uniform(self):
        dist = AttributeDistribution({"x": {"a": 99, "b": 1}})
        assert dist.attribute_entropy("x:a") < 1.0

    def test_unknown_category_uses_default(self):
        dist = AttributeDistribution(default_entropy=12.5)
        assert dist.attribute_entropy("mystery:thing") == 12.5

    def test_uncategorized_attribute_uses_default(self):
        dist = AttributeDistribution.uniform({"tag": 4}, default_entropy=7.0)
        assert dist.attribute_entropy("plainword") == 7.0

    def test_profile_entropy_sums_distinct(self):
        dist = AttributeDistribution.uniform({"a": 2, "b": 4})
        total = dist.profile_entropy(["a:x", "b:y", "a:x"])  # duplicate ignored
        assert total == pytest.approx(1.0 + 2.0)

    def test_rejects_empty_category(self):
        with pytest.raises(ValueError):
            AttributeDistribution.uniform({"bad": 0})


class TestPhiPolicies:
    def test_k_anonymity_phi(self):
        assert k_anonymity_phi(1024, 4) == pytest.approx(8.0)
        assert k_anonymity_phi(100, 100) == pytest.approx(0.0)

    def test_k_anonymity_validates(self):
        with pytest.raises(ValueError):
            k_anonymity_phi(10, 11)

    def test_sensitive_phi_is_min(self):
        dist = AttributeDistribution.uniform({"hiv": 2, "city": 1024})
        phi = sensitive_attribute_phi(dist, ["hiv:positive", "city:paris"])
        assert phi == pytest.approx(1.0)

    def test_sensitive_phi_requires_attributes(self):
        with pytest.raises(ValueError):
            sensitive_attribute_phi(AttributeDistribution(), [])


class TestEntropyPolicy:
    def _dist(self):
        return AttributeDistribution.uniform({"tag": 256})  # 8 bits each

    def test_allows_within_budget(self):
        policy = EntropyPolicy(self._dist(), phi=16.0)
        assert policy.allows(["tag:a", "tag:b"])
        assert not policy.allows(["tag:a", "tag:b", "tag:c"])

    def test_select_greedy_union(self):
        policy = EntropyPolicy(self._dist(), phi=16.0)
        sets = [
            frozenset({"tag:a"}),
            frozenset({"tag:a", "tag:b"}),  # union still 16 bits
            frozenset({"tag:c"}),  # would push union to 24 bits
        ]
        assert policy.select(sets) == [0, 1]

    def test_select_union_not_per_set(self):
        # Two disjoint sets, each within budget, but union exceeds it.
        policy = EntropyPolicy(self._dist(), phi=8.0)
        sets = [frozenset({"tag:a"}), frozenset({"tag:b"})]
        assert policy.select(sets) == [0]

    def test_zero_budget_selects_empty_only(self):
        policy = EntropyPolicy(self._dist(), phi=0.0)
        assert policy.select([frozenset({"tag:a"})]) == []
        assert policy.select([frozenset()]) == [0]

    def test_rejects_negative_phi(self):
        with pytest.raises(ValueError):
            EntropyPolicy(self._dist(), phi=-1.0)

    def test_math_consistency_with_k_anonymity(self):
        # phi = log2(n/k) admits subsets expected to be k-anonymous: with
        # 2^8-valued tags and n = 2^20 users, k = 16 allows two tags
        # (16 bits = log2(2^20/16)).
        phi = k_anonymity_phi(1 << 20, 16)
        assert math.isclose(phi, 16.0)
        policy = EntropyPolicy(self._dist(), phi=phi)
        assert policy.allows(["tag:a", "tag:b"])
        assert not policy.allows(["tag:a", "tag:b", "tag:c"])
