"""Property-based end-to-end invariants of the matching mechanism.

These are the contracts the whole paper rests on:

1. **Completeness** -- any profile satisfying the match predicate (Eq. 1)
   recovers the profile key and (Protocol 1) self-verifies.
2. **Soundness** -- any profile below the threshold never produces a
   verifiable reply the initiator accepts.
3. **Key agreement** -- whenever a match verifies, both sides derive the
   same session key.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import Profile, RequestProfile
from repro.core.matching import build_request, process_request
from repro.core.protocols import Initiator, Participant

# A compact attribute universe makes remainder collisions *likely*, which is
# exactly the stress the robust enumeration mode must survive.
UNIVERSE = [f"tag:u{i}" for i in range(24)]


@st.composite
def scenario(draw):
    """Random (request, participant profile) pair with known ground truth."""
    m_t = draw(st.integers(min_value=1, max_value=6))
    request_attrs = draw(
        st.lists(st.sampled_from(UNIVERSE), min_size=m_t, max_size=m_t, unique=True)
    )
    alpha = draw(st.integers(min_value=0, max_value=m_t))
    optional = request_attrs[alpha:]
    if alpha == 0 and optional:
        beta = draw(st.integers(min_value=1, max_value=len(optional)))
    elif optional:
        beta = draw(st.integers(min_value=0, max_value=len(optional)))
    else:
        beta = 0
    if alpha == 0 and not optional:
        alpha = m_t  # degenerate: make everything necessary
    request = RequestProfile(
        necessary=request_attrs[:alpha], optional=optional, beta=beta, normalized=True
    )
    m_k = draw(st.integers(min_value=1, max_value=10))
    profile_attrs = draw(
        st.lists(st.sampled_from(UNIVERSE), min_size=m_k, max_size=m_k, unique=True)
    )
    profile = Profile(profile_attrs, user_id="p", normalized=True)
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return request, profile, seed


class TestCompleteness:
    @given(scenario())
    @settings(max_examples=80, deadline=None)
    def test_matching_profile_recovers_key_protocol1(self, case):
        request, profile, seed = case
        package, secret = build_request(request, protocol=1, rng=random.Random(seed))
        outcome = process_request(profile, package)
        if request.matches(profile):
            assert outcome.candidate
            assert outcome.matched
            assert outcome.x == secret.x

    @given(scenario())
    @settings(max_examples=60, deadline=None)
    def test_matching_profile_holds_key_protocol2(self, case):
        request, profile, seed = case
        package, secret = build_request(request, protocol=2, rng=random.Random(seed))
        outcome = process_request(profile, package)
        if request.matches(profile):
            assert secret.request_key in outcome.keys


class TestSoundness:
    @given(scenario())
    @settings(max_examples=80, deadline=None)
    def test_non_matching_profile_never_verifies(self, case):
        request, profile, seed = case
        package, secret = build_request(request, protocol=1, rng=random.Random(seed))
        outcome = process_request(profile, package)
        if not request.matches(profile):
            # SHA-256 collision aside, a wrong profile cannot hold the key.
            assert not outcome.matched
            assert secret.request_key not in outcome.keys


class TestEndToEndAgreement:
    @given(scenario(), st.sampled_from([1, 2]))
    @settings(max_examples=50, deadline=None)
    def test_protocol_run_agrees_with_ground_truth(self, case, protocol):
        request, profile, seed = case
        rng = random.Random(seed)
        initiator = Initiator(request, protocol=protocol, rng=rng)
        package = initiator.create_request(now_ms=0)
        participant = Participant(profile, rng=rng)
        reply = participant.handle_request(package, now_ms=1)
        record = initiator.handle_reply(reply, now_ms=2) if reply else None
        assert (record is not None) == request.matches(profile)

    @given(scenario())
    @settings(max_examples=40, deadline=None)
    def test_session_keys_agree(self, case):
        from repro.core.channel import SecureChannel

        request, profile, seed = case
        if not request.matches(profile):
            return
        rng = random.Random(seed)
        initiator = Initiator(request, protocol=2, rng=rng)
        package = initiator.create_request(now_ms=0)
        participant = Participant(profile, rng=rng)
        reply = participant.handle_request(package, now_ms=1)
        record = initiator.handle_reply(reply, now_ms=2)
        assert record is not None
        message = SecureChannel(record.session_key).send(b"key agreement")
        received = []
        for key in participant.channel_keys(package.request_id):
            try:
                received.append(SecureChannel(key).receive(message))
            except Exception:
                continue
        assert b"key agreement" in received


class TestRemainderPruning:
    @given(scenario())
    @settings(max_examples=50, deadline=None)
    def test_candidate_is_superset_of_matching(self, case):
        """Fast check never prunes a true match (Theorem 1 corollary)."""
        request, profile, seed = case
        package, _ = build_request(request, protocol=2, rng=random.Random(seed))
        outcome = process_request(profile, package)
        if request.matches(profile):
            assert outcome.candidate
