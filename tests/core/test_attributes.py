"""Profile / RequestProfile model tests (Sec. II-A definitions)."""

from __future__ import annotations

import pytest

from repro.core.attributes import Profile, RequestProfile


class TestProfile:
    def test_normalizes_on_construction(self):
        profile = Profile(["Interest:BasketBall", "interest:basketball"])
        assert len(profile) == 1

    def test_normalized_flag_skips_pipeline(self):
        profile = Profile(["Interest:X"], normalized=True)
        assert profile.attributes == ("Interest:X",)

    def test_membership(self):
        profile = Profile(["tag:a"], normalized=True)
        assert "tag:a" in profile
        assert "tag:b" not in profile

    def test_intersection(self):
        a = Profile(["tag:a", "tag:b"], normalized=True)
        b = Profile(["tag:b", "tag:c"], normalized=True)
        assert a.intersection(b) == frozenset({"tag:b"})

    def test_similarity_to(self):
        request = RequestProfile.exact(["tag:a", "tag:b"], normalized=True)
        profile = Profile(["tag:a", "tag:z"], normalized=True)
        assert profile.similarity_to(request) == 0.5

    def test_frozen(self):
        profile = Profile(["tag:a"], normalized=True)
        with pytest.raises(AttributeError):
            profile.attributes = ()


class TestRequestProfile:
    def test_alpha_beta_gamma_theta(self):
        req = RequestProfile(
            necessary=["n1", "n2"], optional=["o1", "o2", "o3"], beta=2, normalized=True
        )
        assert req.alpha == 2
        assert req.beta == 2
        assert req.gamma == 1
        assert req.theta == pytest.approx(4 / 5)

    def test_exact_request(self):
        req = RequestProfile.exact(["a", "b"], normalized=True)
        assert req.is_perfect()
        assert req.theta == 1.0

    def test_default_beta_is_perfect(self):
        req = RequestProfile(necessary=["n"], optional=["o1", "o2"], normalized=True)
        assert req.beta == 2
        assert req.is_perfect()

    def test_duplicate_optional_removed(self):
        req = RequestProfile(necessary=["x"], optional=["x", "y"], beta=1, normalized=True)
        assert req.optional == ("y",)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RequestProfile(necessary=[], optional=[], normalized=True)

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            RequestProfile(necessary=["n"], optional=["o"], beta=2, normalized=True)

    def test_rejects_zero_beta_without_necessary(self):
        with pytest.raises(ValueError):
            RequestProfile(necessary=[], optional=["o1", "o2"], beta=0, normalized=True)

    def test_with_threshold(self):
        req = RequestProfile.with_threshold(
            necessary=["n"], optional=["o1", "o2", "o3"], theta=0.75, normalized=True
        )
        # m_t = 4, ceil(0.75*4) - 1 = 2
        assert req.beta == 2
        assert req.theta >= 0.75

    def test_with_threshold_validates(self):
        with pytest.raises(ValueError):
            RequestProfile.with_threshold(["n"], [], theta=0.0, normalized=True)

    def test_matches_ground_truth(self):
        req = RequestProfile(
            necessary=["n1"], optional=["o1", "o2", "o3"], beta=2, normalized=True
        )
        assert req.matches(Profile(["n1", "o1", "o2"], normalized=True))
        assert req.matches(Profile(["n1", "o1", "o2", "o3"], normalized=True))
        assert not req.matches(Profile(["o1", "o2", "o3"], normalized=True))  # missing necessary
        assert not req.matches(Profile(["n1", "o1"], normalized=True))  # below beta

    def test_matches_perfect(self):
        req = RequestProfile.exact(["a", "b"], normalized=True)
        assert req.matches(Profile(["a", "b", "c"], normalized=True))
        assert not req.matches(Profile(["a"], normalized=True))
