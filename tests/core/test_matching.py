"""Initiator/participant matching pipeline tests (Fig. 1)."""

from __future__ import annotations

import random

import pytest

from repro.analysis.counters import OpCounter
from repro.core.attributes import Profile, RequestProfile
from repro.core.exceptions import InvalidRequestError
from repro.core.matching import (
    build_request,
    process_request,
    seal_secret,
    unseal_secret,
)
from repro.core.profile_vector import ParticipantVector


def _build(request, protocol=1, seed=3, **kwargs):
    return build_request(request, protocol=protocol, rng=random.Random(seed), **kwargs)


class TestSealUnseal:
    def test_protocol1_confirmation_roundtrip(self):
        key, x = b"k" * 32, b"x" * 32
        sealed = seal_secret(key, 1, x)
        recovered, _ = unseal_secret(key, 1, sealed)
        assert recovered == x

    def test_protocol1_wrong_key_fails_confirmation(self):
        sealed = seal_secret(b"k" * 32, 1, b"x" * 32)
        recovered, _ = unseal_secret(b"w" * 32, 1, sealed)
        assert recovered is None

    def test_protocol2_no_oracle(self):
        # Under protocol 2 every key "succeeds": no verifiable signal.
        sealed = seal_secret(b"k" * 32, 2, b"x" * 32)
        _, right = unseal_secret(b"k" * 32, 2, sealed)
        _, wrong = unseal_secret(b"w" * 32, 2, sealed)
        assert right == b"x" * 32
        assert wrong != right
        assert len(wrong) == 32

    def test_rejects_bad_x_length(self):
        with pytest.raises(ValueError):
            seal_secret(b"k" * 32, 2, b"short")


class TestBuildRequest:
    def test_perfect_request_has_no_hint(self):
        package, _ = _build(RequestProfile.exact(["a", "b"], normalized=True))
        assert package.hint is None
        assert package.gamma == 0

    def test_fuzzy_request_has_hint(self):
        request = RequestProfile(necessary=["n"], optional=["o1", "o2"], beta=1, normalized=True)
        package, _ = _build(request)
        assert package.hint is not None
        assert package.hint.gamma == 1

    def test_rejects_small_prime(self):
        request = RequestProfile.exact([f"a{i}" for i in range(12)], normalized=True)
        with pytest.raises(InvalidRequestError):
            _build(request, p=11)

    def test_rejects_unknown_protocol(self):
        with pytest.raises(InvalidRequestError):
            _build(RequestProfile.exact(["a"], normalized=True), protocol=4)

    def test_secret_matches_package(self):
        request = RequestProfile.exact(["a", "b"], normalized=True)
        package, secret = _build(request, protocol=1)
        x, _ = unseal_secret(secret.request_key, 1, package.ciphertext)
        assert x == secret.x

    def test_initiator_cost_model(self):
        # Paper Sec. IV-B1: m_t + 1 hashes, m_t mods, 1 encryption for a
        # perfect-match request.
        counter = OpCounter()
        request = RequestProfile.exact(["a", "b", "c"], normalized=True)
        build_request(request, protocol=2, rng=random.Random(0), counter=counter)
        assert counter.get("H") == 4  # m_t attribute hashes + 1 key hash
        assert counter.get("M") == 3
        assert counter.get("E") == 2  # one 32-byte seal = 2 AES blocks

    def test_deterministic_given_rng(self):
        request = RequestProfile.exact(["a"], normalized=True)
        p1, s1 = _build(request, seed=9)
        p2, s2 = _build(request, seed=9)
        assert p1 == p2
        assert s1.x == s2.x


class TestProcessRequest:
    def test_perfect_match_protocol1(self):
        request = RequestProfile.exact(["tag:a", "tag:b"], normalized=True)
        package, secret = _build(request, protocol=1)
        outcome = process_request(Profile(["tag:a", "tag:b", "tag:c"], normalized=True), package)
        assert outcome.candidate
        assert outcome.matched
        assert outcome.x == secret.x

    def test_non_candidate_short_circuits(self):
        request = RequestProfile.exact(["tag:a", "tag:b"], normalized=True)
        package, _ = _build(request, protocol=1)
        counter = OpCounter()
        outcome = process_request(
            Profile(["tag:zz9"], normalized=True), package, counter=counter
        )
        assert not outcome.candidate
        assert outcome.keys == []
        assert counter.get("D") == 0  # never decrypted anything

    def test_fuzzy_match_via_hint(self):
        request = RequestProfile(
            necessary=["tag:n"], optional=["tag:o1", "tag:o2", "tag:o3"], beta=2,
            normalized=True,
        )
        package, secret = _build(request, protocol=1)
        # Owns necessary + exactly beta optional: must recover the key.
        profile = Profile(["tag:n", "tag:o1", "tag:o3", "tag:x"], normalized=True)
        outcome = process_request(profile, package)
        assert outcome.matched
        assert outcome.x == secret.x

    def test_below_threshold_never_matches(self):
        request = RequestProfile(
            necessary=["tag:n"], optional=["tag:o1", "tag:o2", "tag:o3"], beta=2,
            normalized=True,
        )
        package, _ = _build(request, protocol=1)
        profile = Profile(["tag:n", "tag:o1"], normalized=True)  # only 1 optional < beta
        outcome = process_request(profile, package)
        assert not outcome.matched

    def test_missing_necessary_never_matches(self):
        request = RequestProfile(
            necessary=["tag:n"], optional=["tag:o1", "tag:o2"], beta=1, normalized=True
        )
        package, _ = _build(request, protocol=1)
        profile = Profile(["tag:o1", "tag:o2"], normalized=True)
        outcome = process_request(profile, package)
        assert not outcome.matched

    def test_accepts_cached_vector(self):
        request = RequestProfile.exact(["tag:a"], normalized=True)
        package, secret = _build(request, protocol=1)
        vector = ParticipantVector.from_profile(Profile(["tag:a"], normalized=True))
        outcome = process_request(vector, package)
        assert outcome.x == secret.x

    def test_recovered_vector_matches_request(self):
        request = RequestProfile(
            necessary=["tag:n"], optional=["tag:o1", "tag:o2"], beta=1, normalized=True
        )
        package, secret = _build(request, protocol=2)
        profile = Profile(["tag:n", "tag:o1"], normalized=True)
        outcome = process_request(profile, package)
        assert tuple(secret.request_vector.values) in set(outcome.recovered_vectors)

    def test_protocol2_returns_keys_without_verdict(self):
        request = RequestProfile.exact(["tag:a"], normalized=True)
        package, secret = _build(request, protocol=2)
        outcome = process_request(Profile(["tag:a"], normalized=True), package)
        assert outcome.candidate
        assert outcome.x is None  # no oracle
        assert secret.request_key in outcome.keys

    def test_duplicate_vectors_deduped(self):
        request = RequestProfile.exact(["tag:a", "tag:b"], normalized=True)
        package, _ = _build(request, protocol=2)
        profile = Profile(["tag:a", "tag:b"], normalized=True)
        outcome = process_request(profile, package)
        assert len(outcome.keys) == len(set(outcome.keys))


class TestMalformedHint:
    """Attacker-mutated packages with inconsistent hints fail cleanly."""

    def _package_with_bad_hint(self):
        from repro.core.hint import build_hint_matrix
        from repro.core.request import RequestPackage

        rng = random.Random(5)
        # Hint sized for 4 optional positions, package exposing only 2.
        hint = build_hint_matrix([rng.getrandbits(256) for _ in range(4)], gamma=2, rng=rng)
        return RequestPackage(
            protocol=2, p=11,
            remainders=(1, 2, 3),
            necessary_mask=(True, False, False),
            beta=1, hint=hint,
            ciphertext=b"\x00" * 32,
            request_id=b"badhint!", ttl=4, expiry_ms=1 << 40,
        )

    def test_mismatched_hint_width_is_not_a_candidate(self):
        package = self._package_with_bad_hint()
        outcome = process_request(Profile(["tag:a", "tag:b"], normalized=True), package)
        assert not outcome.candidate
        assert outcome.keys == []


class TestBucketReuse:
    def test_repeated_processing_reuses_the_mod_pass(self):
        request = RequestProfile.exact(["tag:a", "tag:b"], normalized=True)
        package, _ = _build(request, protocol=2)
        vector = ParticipantVector.from_profile(Profile(["tag:a", "tag:b"], normalized=True))

        first_counter = OpCounter()
        first = process_request(vector, package, counter=first_counter)
        second_counter = OpCounter()
        second = process_request(vector, package, counter=second_counter)

        assert first.keys == second.keys
        # The m_k mod pass ran once (cached on the vector afterwards).
        assert first_counter.get("M") > second_counter.get("M")
