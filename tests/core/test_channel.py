"""Secure channel derivation tests (Sec. III-F)."""

from __future__ import annotations

import pytest

from repro.core.channel import SecureChannel, group_session_key, pair_session_key
from repro.crypto.authenticated import AuthenticationError


class TestKeyDerivation:
    def test_pair_key_symmetric_inputs(self):
        x, y = b"x" * 32, b"y" * 32
        assert pair_session_key(x, y) == pair_session_key(x, y)

    def test_pair_key_order_sensitive(self):
        # x and y have fixed roles (initiator / matcher), so order matters.
        assert pair_session_key(b"a" * 32, b"b" * 32) != pair_session_key(b"b" * 32, b"a" * 32)

    def test_group_key_independent_of_y(self):
        assert group_session_key(b"x" * 32) == group_session_key(b"x" * 32)

    def test_pair_and_group_keys_differ(self):
        x, y = b"x" * 32, b"y" * 32
        assert pair_session_key(x, y) != group_session_key(x)

    def test_different_x_different_keys(self):
        assert group_session_key(b"a" * 32) != group_session_key(b"b" * 32)


class TestSecureChannel:
    def test_bidirectional(self):
        key = pair_session_key(b"x" * 32, b"y" * 32)
        alice, bob = SecureChannel(key), SecureChannel(key)
        assert bob.receive(alice.send(b"ping")) == b"ping"
        assert alice.receive(bob.send(b"pong")) == b"pong"

    def test_counters(self):
        channel = SecureChannel(b"k" * 32)
        peer = SecureChannel(b"k" * 32)
        peer.receive(channel.send(b"one"))
        peer.receive(channel.send(b"two"))
        assert channel.messages_sent == 2
        assert peer.messages_received == 2

    def test_wrong_key_rejected(self):
        message = SecureChannel.for_pair(b"x" * 32, b"y" * 32).send(b"secret")
        with pytest.raises(AuthenticationError):
            SecureChannel.for_pair(b"x" * 32, b"z" * 32).receive(message)

    def test_group_channel(self):
        x = b"x" * 32
        broadcast = SecureChannel.for_group(x).send(b"to all matchers")
        assert SecureChannel.for_group(x).receive(broadcast) == b"to all matchers"

    def test_failed_receive_not_counted(self):
        channel = SecureChannel(b"k" * 32)
        with pytest.raises(AuthenticationError):
            channel.receive(b"\x00" * 64)
        assert channel.messages_received == 0
