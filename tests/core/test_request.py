"""Request package wire-format tests."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import RequestProfile
from repro.core.exceptions import SerializationError
from repro.core.hint import build_hint_matrix
from repro.core.matching import build_request
from repro.core.request import RequestPackage


def _package(protocol=2, hint=True, rng_seed=1) -> RequestPackage:
    rng = random.Random(rng_seed)
    request = RequestProfile(
        necessary=["tag:n"],
        optional=["tag:o1", "tag:o2", "tag:o3"],
        beta=2 if hint else 3,
        normalized=True,
    )
    package, _ = build_request(request, protocol=protocol, rng=rng)
    return package


class TestRoundTrip:
    @pytest.mark.parametrize("protocol", [1, 2, 3])
    @pytest.mark.parametrize("with_hint", [True, False])
    def test_encode_decode(self, protocol, with_hint):
        package = _package(protocol, with_hint)
        assert RequestPackage.decode(package.encode()) == package

    def test_hint_presence(self):
        assert _package(hint=True).hint is not None
        assert _package(hint=False).hint is None

    def test_derived_fields_survive(self):
        package = _package()
        decoded = RequestPackage.decode(package.encode())
        assert decoded.m_t == package.m_t
        assert decoded.alpha == package.alpha
        assert decoded.gamma == package.gamma


class TestValidation:
    def test_rejects_bad_protocol(self):
        pkg = _package()
        with pytest.raises(SerializationError):
            RequestPackage(
                protocol=9, p=pkg.p, remainders=pkg.remainders,
                necessary_mask=pkg.necessary_mask, beta=pkg.beta, hint=pkg.hint,
                ciphertext=pkg.ciphertext, request_id=pkg.request_id,
                ttl=pkg.ttl, expiry_ms=pkg.expiry_ms,
            )

    def test_rejects_length_mismatch(self):
        pkg = _package()
        with pytest.raises(SerializationError):
            RequestPackage(
                protocol=2, p=pkg.p, remainders=pkg.remainders,
                necessary_mask=pkg.necessary_mask[:-1], beta=pkg.beta, hint=pkg.hint,
                ciphertext=pkg.ciphertext, request_id=pkg.request_id,
                ttl=pkg.ttl, expiry_ms=pkg.expiry_ms,
            )

    def test_rejects_unreduced_remainder(self):
        pkg = _package()
        with pytest.raises(SerializationError):
            RequestPackage(
                protocol=2, p=pkg.p, remainders=(pkg.p,) + pkg.remainders[1:],
                necessary_mask=pkg.necessary_mask, beta=pkg.beta, hint=pkg.hint,
                ciphertext=pkg.ciphertext, request_id=pkg.request_id,
                ttl=pkg.ttl, expiry_ms=pkg.expiry_ms,
            )

    def test_rejects_bad_request_id(self):
        pkg = _package()
        with pytest.raises(SerializationError):
            RequestPackage(
                protocol=2, p=pkg.p, remainders=pkg.remainders,
                necessary_mask=pkg.necessary_mask, beta=pkg.beta, hint=pkg.hint,
                ciphertext=pkg.ciphertext, request_id=b"short",
                ttl=pkg.ttl, expiry_ms=pkg.expiry_ms,
            )

    def test_decode_rejects_bad_magic(self):
        with pytest.raises(SerializationError):
            RequestPackage.decode(b"XXXX" + _package().encode()[4:])

    @given(cut=st.integers(min_value=4, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_decode_rejects_truncation(self, cut):
        data = _package().encode()
        with pytest.raises(SerializationError):
            RequestPackage.decode(data[: len(data) - cut])


class TestSizeAccounting:
    def test_perfect_match_request_is_small(self):
        # Paper: ~190 B average for a 60%-similarity 6-attribute search.
        package = _package(hint=False)
        assert package.wire_size_bytes() < 120

    def test_fuzzy_request_within_paper_bound(self):
        package = _package(hint=True)
        # (1-θ)32m_t² + (288-256θ)m_t + 256 bits plus framing.
        assert package.wire_size_bytes() < 1024

    def test_expiry(self):
        package = _package()
        assert not package.is_expired(package.expiry_ms)
        assert package.is_expired(package.expiry_ms + 1)


class TestHintSerialization:
    def test_large_b_values_roundtrip(self, rng):
        values = [(1 << 256) - 1 - i for i in range(4)]
        hint = build_hint_matrix(values, gamma=2, rng=rng)
        pkg = _package()
        boxed = RequestPackage(
            protocol=2, p=pkg.p, remainders=pkg.remainders,
            necessary_mask=pkg.necessary_mask, beta=pkg.beta, hint=hint,
            ciphertext=pkg.ciphertext, request_id=pkg.request_id,
            ttl=pkg.ttl, expiry_ms=pkg.expiry_ms,
        )
        assert RequestPackage.decode(boxed.encode()).hint == hint
