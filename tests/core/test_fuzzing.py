"""Adversarial-input fuzzing: malformed bytes must fail *cleanly*.

A relay in a hostile MANET feeds the parsers attacker-controlled bytes;
every decode path must either succeed or raise SerializationError -- never
an unhandled IndexError/struct.error/UnicodeDecodeError, and never hang.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import RequestProfile
from repro.core.exceptions import SerializationError
from repro.core.matching import build_request
from repro.core.protocols import Participant, Reply
from repro.core.request import REQUEST_MAGIC, RequestPackage
from repro.core.wire import decode_reply, decode_session_message, encode_reply


def _package_bytes() -> bytes:
    request = RequestProfile(
        necessary=["tag:n"], optional=["tag:o1", "tag:o2"], beta=1, normalized=True
    )
    package, _ = build_request(request, protocol=2, rng=random.Random(1))
    return package.encode()


class TestRequestDecodeFuzz:
    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_random_bytes_never_crash(self, data):
        try:
            RequestPackage.decode(data)
        except SerializationError:
            pass

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_mutated_valid_package(self, data):
        raw = bytearray(_package_bytes())
        index = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        raw[index] ^= data.draw(st.integers(min_value=1, max_value=255))
        try:
            decoded = RequestPackage.decode(bytes(raw))
        except SerializationError:
            return
        # If it still parses, processing it must not crash either.
        participant = Participant(
            __import__("repro.core.attributes", fromlist=["Profile"]).Profile(
                ["tag:n", "tag:o1"], normalized=True
            )
        )
        participant.handle_request(decoded, now_ms=0)

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_magic_prefix_with_garbage(self, tail):
        try:
            RequestPackage.decode(REQUEST_MAGIC + tail)
        except SerializationError:
            pass


class TestReplyDecodeFuzz:
    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_random_bytes_never_crash(self, data):
        try:
            decode_reply(data)
        except SerializationError:
            pass

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_mutated_valid_reply(self, data):
        reply = Reply(
            request_id=b"abcdefgh", responder_id="bob",
            elements=(b"\x01" * 48, b"\x02" * 48), sent_at_ms=5,
        )
        raw = bytearray(encode_reply(reply))
        index = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        raw[index] ^= data.draw(st.integers(min_value=1, max_value=255))
        try:
            decode_reply(bytes(raw))
        except SerializationError:
            pass


class TestSessionDecodeFuzz:
    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_random_bytes_never_crash(self, data):
        try:
            decode_session_message(data)
        except SerializationError:
            pass


class TestHostileRequestProcessing:
    """Crafted-but-valid packages must stay within the enumeration budget."""

    def test_all_zero_remainders_bounded(self):
        # Worst case: every position accepts every attribute.
        from repro.core.hint import build_hint_matrix
        from repro.core.profile_vector import ParticipantVector
        from repro.core.attributes import Profile
        from repro.core.matching import process_request

        rng = random.Random(2)
        m_t = 8
        fake_optional = [rng.getrandbits(256) for _ in range(m_t)]
        hint = build_hint_matrix(fake_optional, gamma=4, rng=rng)
        package = RequestPackage(
            protocol=2, p=11,
            remainders=tuple([0] * m_t),
            necessary_mask=tuple([False] * m_t),
            beta=4, hint=hint,
            ciphertext=b"\x00" * 32,
            request_id=b"hostile!", ttl=4, expiry_ms=1 << 40,
        )
        victim = Profile([f"tag:v{i}" for i in range(20)], normalized=True)
        vector = ParticipantVector.from_profile(victim)
        # Force many collisions: shift values so they are ≡ 0 mod 11.
        crafted = ParticipantVector(
            values=tuple(sorted(v - (v % 11) for v in vector.values)),
            attributes=vector.attributes,
        )
        outcome = process_request(crafted, package)
        assert outcome.budget.max_visits >= 1
        assert len(outcome.keys) <= outcome.budget.max_candidates

    def test_expired_hostile_package_ignored(self):
        package = RequestPackage(
            protocol=2, p=11, remainders=(0,), necessary_mask=(True,),
            beta=0, hint=None, ciphertext=b"\x00" * 32,
            request_id=b"hostile!", ttl=4, expiry_ms=0,
        )
        from repro.core.attributes import Profile

        participant = Participant(Profile(["tag:a"], normalized=True))
        assert participant.handle_request(package, now_ms=10) is None
