"""Reply and session-message wire-format tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import SerializationError
from repro.core.protocols import Reply
from repro.core.wire import (
    MAX_REPLY_ELEMENTS_WIRE,
    MAX_RESPONDER_ID_LEN,
    REPLY_ELEMENT_LEN,
    decode_reply,
    decode_session_message,
    encode_reply,
    encode_session_message,
    reply_wire_size,
)


def _reply(n_elements=2, responder="bob"):
    return Reply(
        request_id=b"12345678",
        responder_id=responder,
        elements=tuple(bytes([i]) * 48 for i in range(n_elements)),
        sent_at_ms=777,
    )


class TestReplyRoundTrip:
    @given(
        n=st.integers(min_value=0, max_value=10),
        responder=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FFF), max_size=40
        ),
        sent=st.integers(min_value=0, max_value=2**63 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, n, responder, sent):
        reply = Reply(
            request_id=b"abcdefgh",
            responder_id=responder,
            elements=tuple(bytes([i % 256]) * 48 for i in range(n)),
            sent_at_ms=sent,
        )
        assert decode_reply(encode_reply(reply)) == reply

    def test_wire_size_matches(self):
        reply = _reply(3)
        assert len(encode_reply(reply)) == reply_wire_size(3, "bob")

    def test_empty_elements(self):
        reply = _reply(0)
        assert decode_reply(encode_reply(reply)).elements == ()


class TestReplyValidation:
    def test_rejects_wrong_element_size(self):
        reply = Reply(
            request_id=b"12345678", responder_id="x",
            elements=(b"short",), sent_at_ms=0,
        )
        with pytest.raises(SerializationError):
            encode_reply(reply)

    def test_rejects_long_responder(self):
        with pytest.raises(SerializationError):
            encode_reply(_reply(1, responder="x" * 300))

    def test_rejects_bad_magic(self):
        data = encode_reply(_reply())
        with pytest.raises(SerializationError):
            decode_reply(b"XXXX" + data[4:])

    def test_rejects_truncation(self):
        data = encode_reply(_reply(2))
        with pytest.raises(SerializationError):
            decode_reply(data[:-10])

    def test_rejects_trailing_garbage(self):
        data = encode_reply(_reply(1))
        with pytest.raises(SerializationError):
            decode_reply(data + b"junk")


class TestReplyBoundaries:
    """Every wire limit is a typed SerializationError at the exact boundary."""

    def test_responder_id_at_limit_round_trips(self):
        reply = _reply(1, responder="x" * MAX_RESPONDER_ID_LEN)
        assert decode_reply(encode_reply(reply)) == reply

    def test_responder_id_one_past_limit_rejected(self):
        with pytest.raises(SerializationError, match="responder id too long"):
            encode_reply(_reply(1, responder="x" * (MAX_RESPONDER_ID_LEN + 1)))

    def test_responder_limit_is_encoded_bytes_not_characters(self):
        # 128 two-byte characters encode to 256 bytes: one past the limit.
        with pytest.raises(SerializationError, match="responder id too long"):
            encode_reply(_reply(1, responder="é" * 128))

    @pytest.mark.parametrize("bad_len", [REPLY_ELEMENT_LEN - 1, REPLY_ELEMENT_LEN + 1, 0])
    def test_element_length_off_by_one_rejected(self, bad_len):
        reply = Reply(
            request_id=b"12345678", responder_id="x",
            elements=(b"e" * bad_len,), sent_at_ms=0,
        )
        with pytest.raises(SerializationError, match="reply elements must be"):
            encode_reply(reply)

    def test_element_count_at_wire_limit_encodes(self):
        reply = Reply(
            request_id=b"12345678", responder_id="",
            elements=(b"e" * REPLY_ELEMENT_LEN,) * MAX_REPLY_ELEMENTS_WIRE,
            sent_at_ms=0,
        )
        encoded = encode_reply(reply)
        assert len(encoded) == reply_wire_size(MAX_REPLY_ELEMENTS_WIRE)

    def test_element_count_one_past_wire_limit_rejected(self):
        reply = Reply(
            request_id=b"12345678", responder_id="",
            elements=(b"e" * REPLY_ELEMENT_LEN,) * (MAX_REPLY_ELEMENTS_WIRE + 1),
            sent_at_ms=0,
        )
        with pytest.raises(SerializationError, match="acknowledge set too large"):
            encode_reply(reply)

    @pytest.mark.parametrize("rid", [b"", b"1234567", b"123456789"])
    def test_request_id_must_be_exactly_8_bytes(self, rid):
        reply = Reply(request_id=rid, responder_id="x",
                      elements=(), sent_at_ms=0)
        with pytest.raises(SerializationError, match="request id"):
            encode_reply(reply)

    @pytest.mark.parametrize("sent", [-1, 2**64])
    def test_timestamp_range_is_typed_not_struct_error(self, sent):
        reply = Reply(request_id=b"12345678", responder_id="x",
                      elements=(), sent_at_ms=sent)
        with pytest.raises(SerializationError, match="sent_at_ms"):
            encode_reply(reply)

    def test_timestamp_at_limit_round_trips(self):
        reply = Reply(request_id=b"12345678", responder_id="x",
                      elements=(), sent_at_ms=2**64 - 1)
        assert decode_reply(encode_reply(reply)).sent_at_ms == 2**64 - 1


class TestSessionMessages:
    def test_roundtrip(self):
        framed = encode_session_message(b"chan0001", b"ciphertext bytes")
        assert decode_session_message(framed) == (b"chan0001", b"ciphertext bytes")

    def test_empty_payload(self):
        framed = encode_session_message(b"chan0001", b"")
        assert decode_session_message(framed) == (b"chan0001", b"")

    def test_rejects_bad_channel_id(self):
        with pytest.raises(SerializationError):
            encode_session_message(b"short", b"x")

    def test_rejects_oversized(self):
        with pytest.raises(SerializationError):
            encode_session_message(b"chan0001", b"x" * 70_000)

    def test_rejects_truncated(self):
        framed = encode_session_message(b"chan0001", b"payload")
        with pytest.raises(SerializationError):
            decode_session_message(framed[:-2])

    def test_end_to_end_with_channel(self):
        from repro.core.channel import SecureChannel

        channel = SecureChannel(b"k" * 32)
        framed = encode_session_message(b"req00001", channel.send(b"hi"))
        channel_id, ciphertext = decode_session_message(framed)
        assert channel_id == b"req00001"
        assert SecureChannel(b"k" * 32).receive(ciphertext) == b"hi"
