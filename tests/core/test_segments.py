"""Reply segment codec (frame version 2) and the per-version type grammar."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import SerializationError
from repro.core.wire import (
    FRAME_TYPES,
    FRAME_VERSION,
    FRAME_VERSION_SEGMENTS,
    FT_REPLY_SEG,
    FT_REQUEST,
    ReplySegment,
    VERSION_FRAME_TYPES,
    decode_frame,
    decode_payload,
    decode_reply_segment,
    encode_frame,
    encode_reply_segment,
    encode_segment_frame,
    segment_wire_size,
)

RID = b"REQUESTi"


def _segment(**overrides) -> ReplySegment:
    fields = dict(
        request_id=RID, responder_id="bob", sent_at_ms=1234,
        seg_index=2, n_data=5, window=4, is_parity=False, element=b"\x07" * 48,
    )
    fields.update(overrides)
    return ReplySegment(**fields)


class TestVersionGrammar:
    def test_grammar_is_disjoint_and_complete(self):
        assert VERSION_FRAME_TYPES[FRAME_VERSION] == FRAME_TYPES
        assert VERSION_FRAME_TYPES[FRAME_VERSION_SEGMENTS] == (FT_REPLY_SEG,)
        assert FT_REPLY_SEG not in FRAME_TYPES

    def test_segment_type_invalid_under_version_one(self):
        with pytest.raises(SerializationError, match="not valid under frame version 1"):
            encode_frame(FT_REPLY_SEG, b"x")

    def test_legacy_types_invalid_under_version_two(self):
        for ftype in FRAME_TYPES:
            with pytest.raises(SerializationError, match="version"):
                encode_frame(ftype, b"x", version=FRAME_VERSION_SEGMENTS)

    def test_unknown_version_rejected_at_encode(self):
        with pytest.raises(SerializationError, match="version"):
            encode_frame(FT_REQUEST, b"x", version=3)

    def test_decode_gates_type_by_version(self):
        """The same type byte flips accept/reject with the version byte."""
        good = encode_frame(FT_REPLY_SEG, b"p", version=FRAME_VERSION_SEGMENTS)
        frame = decode_frame(good)
        assert (frame.version, frame.ftype) == (FRAME_VERSION_SEGMENTS, FT_REPLY_SEG)
        import zlib

        crossed = bytearray(good)
        crossed[4] = FRAME_VERSION  # same type byte, legacy version
        crc = zlib.crc32(bytes(crossed[4:12]))
        crc = zlib.crc32(bytes(crossed[16:]), crc) & 0xFFFF_FFFF
        crossed[12:16] = crc.to_bytes(4, "big")
        with pytest.raises(SerializationError, match="unknown frame type"):
            decode_frame(bytes(crossed))


class TestSegmentRoundTrip:
    def test_roundtrip(self):
        segment = _segment()
        frame = decode_frame(encode_segment_frame(segment, ttl=3, seq=1))
        assert frame.version == FRAME_VERSION_SEGMENTS
        assert frame.ftype == FT_REPLY_SEG
        assert (frame.ttl, frame.seq) == (3, 1)
        assert decode_reply_segment(frame.payload) == segment

    def test_decode_payload_dispatches_segments(self):
        frame = decode_frame(encode_segment_frame(_segment(is_parity=True)))
        assert decode_payload(frame) == _segment(is_parity=True)

    def test_wire_size_accounts_the_payload(self):
        segment = _segment(responder_id="resp-x")
        assert segment_wire_size("resp-x") == len(encode_reply_segment(segment))
        # The full datagram adds exactly the 16-byte frame envelope.
        assert len(encode_segment_frame(segment)) == segment_wire_size("resp-x") + 16

    def test_unicode_responder(self):
        segment = _segment(responder_id="ünïcode-nøde")
        frame = decode_frame(encode_segment_frame(segment))
        assert decode_reply_segment(frame.payload).responder_id == "ünïcode-nøde"

    @settings(max_examples=100, deadline=None)
    @given(
        seg_index=st.integers(min_value=0, max_value=0xFFFF),
        n_data=st.integers(min_value=1, max_value=0xFFFF),
        window=st.integers(min_value=0, max_value=255),
        is_parity=st.booleans(),
        sent=st.integers(min_value=0, max_value=(1 << 64) - 1),
        element=st.binary(min_size=48, max_size=48),
    )
    def test_roundtrip_property(self, seg_index, n_data, window, is_parity, sent, element):
        segment = _segment(
            seg_index=seg_index, n_data=n_data, window=window,
            is_parity=is_parity, sent_at_ms=sent, element=element,
        )
        assert decode_reply_segment(encode_reply_segment(segment)) == segment


class TestSegmentValidation:
    @pytest.mark.parametrize("overrides,match", [
        (dict(request_id=b"short"), "request id"),
        (dict(responder_id="r" * 256), "responder"),
        (dict(element=b"\x07" * 47), "element"),
        (dict(element=b"\x07" * 49), "element"),
        (dict(n_data=0), "n_data"),
        (dict(seg_index=0x1_0000), "segment index"),
        (dict(sent_at_ms=1 << 64), "sent_at_ms"),
    ])
    def test_encode_rejects_bad_fields(self, overrides, match):
        with pytest.raises(SerializationError, match=match):
            encode_reply_segment(_segment(**overrides))

    def test_decode_rejects_every_truncation(self):
        data = encode_reply_segment(_segment())
        for cut in range(len(data)):
            with pytest.raises(SerializationError):
                decode_reply_segment(data[:cut])

    def test_decode_rejects_trailing_bytes(self):
        data = encode_reply_segment(_segment())
        with pytest.raises(SerializationError, match="trailing"):
            decode_reply_segment(data + b"\x00")

    def test_decode_rejects_bad_magic(self):
        data = encode_reply_segment(_segment())
        with pytest.raises(SerializationError, match="magic"):
            decode_reply_segment(b"XBRS" + data[4:])

    def test_decode_rejects_unknown_flags(self):
        data = bytearray(encode_reply_segment(_segment()))
        flags_offset = 4 + 8 + 8 + 2 + 2 + 1  # magic+rid+sent+index+n_data+window
        data[flags_offset] |= 0x82
        with pytest.raises(SerializationError, match="flag"):
            decode_reply_segment(bytes(data))

    def test_decode_rejects_invalid_utf8_responder(self):
        data = bytearray(encode_reply_segment(_segment()))
        data[-49] = 0xFF  # first responder byte (element is the 48-byte tail)
        with pytest.raises(SerializationError):
            decode_reply_segment(bytes(data))
