"""Hexagonal lattice and vicinity search tests (Sec. III-D)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import Profile
from repro.core.location import (
    LatticePoint,
    LatticeSpec,
    vicinity_request,
    vicinity_threshold_beta,
)
from repro.core.protocols import Initiator, Participant

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)


class TestLattice:
    def test_primitive_vectors(self):
        spec = LatticeSpec(d=2.0)
        assert spec.point_xy(LatticePoint(1, 0)) == (2.0, 0.0)
        x, y = spec.point_xy(LatticePoint(0, 1))
        assert x == pytest.approx(1.0)
        assert y == pytest.approx(math.sqrt(3.0))

    def test_origin_offset(self):
        spec = LatticeSpec(origin_x=10.0, origin_y=-5.0, d=1.0)
        assert spec.point_xy(LatticePoint(0, 0)) == (10.0, -5.0)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            LatticeSpec(d=0.0)

    @given(x=coords, y=coords)
    @settings(max_examples=80, deadline=None)
    def test_nearest_within_covering_radius(self, x, y):
        # The hexagonal lattice covering radius is d/sqrt(3).
        spec = LatticeSpec(d=1.0)
        point = spec.nearest(x, y)
        px, py = spec.point_xy(point)
        assert math.hypot(px - x, py - y) <= 1.0 / math.sqrt(3.0) + 1e-6

    @given(u1=st.integers(-20, 20), u2=st.integers(-20, 20))
    @settings(max_examples=50, deadline=None)
    def test_lattice_points_are_fixed_points(self, u1, u2):
        spec = LatticeSpec(d=1.5)
        x, y = spec.point_xy(LatticePoint(u1, u2))
        assert spec.nearest(x, y) == LatticePoint(u1, u2)

    def test_fractional_inverts_point_xy(self):
        spec = LatticeSpec(d=2.5)
        x, y = spec.point_xy(LatticePoint(3, -2))
        u1, u2 = spec.fractional(x, y)
        assert u1 == pytest.approx(3.0)
        assert u2 == pytest.approx(-2.0)


class TestVicinitySet:
    def test_contains_center(self):
        spec = LatticeSpec(d=1.0)
        points = spec.vicinity_set(0.1, 0.1, 2.0)
        assert spec.nearest(0.1, 0.1) in points

    def test_all_within_range(self):
        spec = LatticeSpec(d=1.0)
        center = spec.point_xy(spec.nearest(0.0, 0.0))
        for pt in spec.vicinity_set(0.0, 0.0, 3.0):
            px, py = spec.point_xy(pt)
            assert math.hypot(px - center[0], py - center[1]) <= 3.0 + 1e-6

    def test_sorted_and_deterministic(self):
        spec = LatticeSpec(d=1.0)
        a = spec.vicinity_set(5.0, 5.0, 2.0)
        b = spec.vicinity_set(5.0, 5.0, 2.0)
        assert a == b
        assert a == sorted(a, key=lambda p: (p.u1, p.u2))

    def test_cardinality_constant_across_locations(self):
        # Same D and d => same |V| wherever the user stands (the property
        # that turns theta into a fixed beta).
        spec = LatticeSpec(d=1.0)
        sizes = {
            len(spec.vicinity_set(x, y, 3.0))
            for x, y in [(0, 0), (10.3, -4.2), (100.7, 55.1)]
        }
        assert len(sizes) == 1

    def test_paper_example_d3_gives_19_points(self):
        # Fig. 3: D = 3d covers the centre + two rings... the hexagonal
        # disc of radius 3d contains exactly the points with distance <= 3d.
        spec = LatticeSpec(d=1.0)
        points = spec.vicinity_set(0.0, 0.0, 3.0)
        # Count lattice points within Euclidean distance 3 of the origin.
        expected = 0
        for u1 in range(-6, 7):
            for u2 in range(-6, 7):
                x = u1 + u2 / 2
                y = u2 * math.sqrt(3) / 2
                if math.hypot(x, y) <= 3.0 + 1e-9:
                    expected += 1
        assert len(points) == expected

    def test_zero_range_is_center_only(self):
        spec = LatticeSpec(d=1.0)
        assert len(spec.vicinity_set(0.2, 0.1, 0.0)) == 1

    def test_negative_range_rejected(self):
        with pytest.raises(ValueError):
            LatticeSpec(d=1.0).vicinity_set(0, 0, -1.0)


class TestVicinitySearch:
    def test_threshold_beta(self):
        assert vicinity_threshold_beta(19, 9 / 19) == 9
        assert vicinity_threshold_beta(10, 1.0) == 10
        with pytest.raises(ValueError):
            vicinity_threshold_beta(10, 0.0)

    def test_nearby_user_matches(self):
        spec = LatticeSpec(d=1.0)
        request = vicinity_request(spec, 0.0, 0.0, 3.0, theta=0.45)
        initiator = Initiator(request, protocol=1, p=101)
        package = initiator.create_request(now_ms=0)
        # A user one cell away shares most lattice points.
        nearby = Participant(
            Profile(spec.vicinity_attributes(1.0, 0.0, 3.0), user_id="near", normalized=True)
        )
        reply = nearby.handle_request(package, now_ms=1)
        assert reply is not None
        assert initiator.handle_reply(reply, now_ms=2) is not None

    def test_distant_user_does_not_match(self):
        spec = LatticeSpec(d=1.0)
        request = vicinity_request(spec, 0.0, 0.0, 3.0, theta=0.45)
        initiator = Initiator(request, protocol=1, p=101)
        package = initiator.create_request(now_ms=0)
        distant = Participant(
            Profile(spec.vicinity_attributes(40.0, 40.0, 3.0), user_id="far", normalized=True)
        )
        assert distant.handle_request(package, now_ms=1) is None

    def test_cell_binding_shared_within_cell(self):
        spec = LatticeSpec(d=10.0)
        assert spec.cell_binding(0.1, 0.1) == spec.cell_binding(0.4, -0.2)

    def test_cell_binding_differs_across_cells(self):
        spec = LatticeSpec(d=1.0)
        assert spec.cell_binding(0.0, 0.0) != spec.cell_binding(5.0, 5.0)

    def test_bound_static_attributes_match_only_same_cell(self):
        from repro.core.attributes import RequestProfile
        from repro.core.matching import build_request, process_request

        spec = LatticeSpec(d=10.0)
        binding = spec.cell_binding(1.0, 1.0)
        request = RequestProfile.exact(["tag:coffee"], normalized=True)
        package, secret = build_request(request, protocol=1, binding=binding)
        same_cell = process_request(
            Profile(["tag:coffee"], normalized=True), package,
            binding=spec.cell_binding(2.0, 0.5),
        )
        other_cell = process_request(
            Profile(["tag:coffee"], normalized=True), package,
            binding=spec.cell_binding(100.0, 100.0),
        )
        assert same_cell.x == secret.x
        assert not other_cell.matched
