"""Shared fixtures: deterministic RNGs and amortized small keypairs.

Key generation dominates baseline test time, so Paillier/RSA/ElGamal keys
are session-scoped and deliberately small -- the protocols are exercised,
not their concrete security level.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.elgamal import ElGamalKeyPair
from repro.baselines.paillier import PaillierKeyPair
from repro.baselines.rsa import RsaKeyPair


@pytest.fixture
def rng() -> random.Random:
    """Fresh deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def paillier_key() -> PaillierKeyPair:
    """Small session-wide Paillier key (256-bit n)."""
    return PaillierKeyPair.generate(256, rng=random.Random(11))


@pytest.fixture(scope="session")
def rsa_key() -> RsaKeyPair:
    """Small session-wide RSA key (256-bit n)."""
    return RsaKeyPair.generate(256, rng=random.Random(13))


@pytest.fixture(scope="session")
def elgamal_key() -> ElGamalKeyPair:
    """Small session-wide ElGamal key (128-bit safe prime)."""
    return ElGamalKeyPair.generate(128, rng=random.Random(17))


@pytest.fixture(scope="session")
def dh_group() -> int:
    """Small safe-prime group for the DH-PSI tests."""
    from repro.crypto.numbers import generate_safe_prime

    return generate_safe_prime(128, rng=random.Random(19))
