"""Long-running soak harness: hours of sim-time under open-world churn.

Drives one engine through the incremental ``begin``/``step`` plane for a
configurable stretch of simulated time, continuously injecting fresh
friending episodes while the churn plane joins, sleeps and crashes nodes
and an optional fault campaign fires.  The point is not throughput -- the
benchmarks own that -- but *survival*: the run must hold three invariants
for however long it goes:

1. **No wedges.** Every injected episode eventually retires; the live
   episode count stays bounded by the injection rate times the validity
   window, and ``wedged_episodes()`` stays empty at every checkpoint.
2. **Bounded state.** The engine's decode/reject caches respect their
   caps, per-node rate-limiter histories are pruned, and retired episode
   state is freed -- checked with ``tracemalloc`` growth between the
   warm-up checkpoint and the end of the run.
3. **Bounded RSS.** ``ru_maxrss`` stays under a hard ceiling.

Usage::

    PYTHONPATH=src python tools/soak.py --sim-hours 1 --nodes 400
    SOAK=1 PYTHONPATH=src python tools/soak.py --sim-hours 1 \\
        | python tools/bench_record.py BENCH_crypto.json

Exits non-zero (with an ``AssertionError``) the moment an invariant
breaks; prints one ``PERF_RECORD {...}`` line on success so CI can append
the soak record to the perf trajectory.  Fully deterministic for a given
argument vector: the churn schedule is a counter-mode function of
``(seed, spec)`` and episode injection happens at fixed boundaries.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
import tracemalloc

from repro.analysis.experiments import (
    ScenarioSpec,
    _prepare_scenario,
    churn_runner_for,
)
from repro.core.attributes import RequestProfile
from repro.core.protocols import Initiator
from repro.network.engine import EpisodeSpec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sim-hours", type=float, default=1.0,
                        help="simulated hours to soak for (default: 1.0)")
    parser.add_argument("--nodes", type=int, default=400,
                        help="initial population size (default: 400)")
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument("--churn-rate", type=float, default=4.0,
                        help="join+leave events per simulated second (default: 4)")
    parser.add_argument("--churn-crash-rate", type=float, default=0.5,
                        help="crashes per simulated second (default: 0.5)")
    parser.add_argument("--fault-plan", default="blackout",
                        help="fault campaign name or 'none' (default: blackout)")
    parser.add_argument("--regions", type=int, default=1,
                        help="region shards (default: 1)")
    parser.add_argument("--inject-every-ms", type=int, default=5_000,
                        help="simulated ms between episode injections (default: 5000)")
    parser.add_argument("--loss", type=float, default=0.1,
                        help="channel loss rate (default: 0.1)")
    parser.add_argument("--channel-version", type=int, choices=(1, 2), default=2)
    parser.add_argument("--reliability", default="window_fec")
    parser.add_argument("--rss-limit-mb", type=int, default=1024,
                        help="hard ru_maxrss ceiling in MiB (default: 1024)")
    parser.add_argument("--leak-limit-mb", type=int, default=64,
                        help="max tracemalloc growth after warm-up in MiB (default: 64)")
    parser.add_argument("--step-ms", type=int, default=1_000,
                        help="checkpoint interval in simulated ms (default: 1000)")
    return parser


def _max_rss_mb() -> float:
    """Peak RSS of this process in MiB (Linux reports ru_maxrss in KiB)."""
    import resource

    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover -- bytes on macOS
        rss //= 1024
    return rss / 1024


def run_soak(args) -> dict:
    horizon_ms = int(args.sim_hours * 3_600_000)
    spec = ScenarioSpec(
        name="soak",
        nodes=args.nodes,
        episodes=1,  # placeholder; soak injects its own episodes
        seed=args.seed,
        radio_radius=max(0.05, min(0.25, (8.0 / args.nodes) ** 0.5)),
        loss_rate=args.loss,
        channel_version=args.channel_version,
        reliability=args.reliability,
        regions=args.regions,
        until_ms=horizon_ms,
        churn_rate=args.churn_rate,
        churn_crash_rate=args.churn_crash_rate,
        fault_plan=None if args.fault_plan in (None, "none") else args.fault_plan,
    )
    prepared = _prepare_scenario(spec)
    engine = prepared.engine
    engine.begin(start_ms=0)
    runner = churn_runner_for(spec, prepared, horizon_ms)

    decode_cap = engine._frame_cache.cap
    reject_cap = engine._reject_cache.cap
    # One flood is bounded by the validity window, so at any instant no
    # more than ceil(validity / inject_every) injected episodes can be
    # live; +8 leaves room for degraded stragglers draining their timers.
    live_bound = 60_000 // max(1, args.inject_every_ms) + 8

    state = {
        "injected": 0,
        "checkpoints": 0,
        "warmup_bytes": None,
        "peak_live": 0,
        "limiter_pruned": 0,
        "sessions_swept": 0,
    }
    warmup_ms = max(args.step_ms, horizon_ms // 10)

    def on_step(runner, now_ms: int) -> None:
        if now_ms % args.inject_every_ms == 0 and runner.live:
            ordered = sorted(runner.live)
            node = ordered[(state["injected"] * 7) % len(ordered)]
            community = state["injected"] % spec.communities
            tags = [f"c{community}:tag{j}" for j in range(spec.tags_per_community)]
            request = RequestProfile(
                necessary=[tags[0]], optional=tags[1:], beta=1, normalized=True
            )
            engine.inject(EpisodeSpec(
                initiator_node=node,
                initiator=Initiator(
                    request, protocol=spec.protocol,
                    rng=random.Random(spec.seed * 1000 + state["injected"]),
                ),
                start_ms=now_ms,
            ))
            state["injected"] += 1

        state["checkpoints"] += 1
        live = engine.live_episode_count()
        state["peak_live"] = max(state["peak_live"], live)
        assert live <= live_bound, (
            f"live episodes unbounded at t={now_ms}: {live} > {live_bound}"
        )
        wedged = engine.wedged_episodes()
        assert not wedged, f"wedged episodes at t={now_ms}: {wedged}"
        assert len(engine._frame_cache) <= decode_cap, "frame cache over cap"
        assert len(engine._package_cache) <= decode_cap, "package cache over cap"
        assert len(engine._reject_cache) <= reject_cap, "reject cache over cap"

        if now_ms % 60_000 == 0:
            state["limiter_pruned"] += engine.network.prune_rate_limiters(now_ms)
            state["sessions_swept"] += engine.network.evict_expired_sessions(now_ms)
        if state["warmup_bytes"] is None and now_ms >= warmup_ms:
            state["warmup_bytes"] = tracemalloc.get_traced_memory()[0]
        rss = _max_rss_mb()
        assert rss <= args.rss_limit_mb, (
            f"RSS {rss:.0f} MiB exceeded the {args.rss_limit_mb} MiB ceiling"
        )

    tracemalloc.start()
    wall_start = time.perf_counter()
    runner.drive(0, horizon_ms, step_ms=args.step_ms, on_step=on_step)
    result = engine.finish()
    wall_s = time.perf_counter() - wall_start

    final_bytes = tracemalloc.get_traced_memory()[0]
    tracemalloc.stop()
    assert engine.live_episode_count() == 0, "episodes still live after finish()"
    assert state["injected"] > 0, "soak injected no episodes"
    grown_mb = (final_bytes - (state["warmup_bytes"] or final_bytes)) / 2**20
    assert grown_mb <= args.leak_limit_mb, (
        f"traced memory grew {grown_mb:.1f} MiB after warm-up "
        f"(limit {args.leak_limit_mb} MiB): leak"
    )

    total = result.aggregate.total
    return {
        "bench": "soak",
        "sim_hours": args.sim_hours,
        "nodes": args.nodes,
        "regions": args.regions,
        "seed": args.seed,
        "churn_rate": args.churn_rate,
        "churn_crash_rate": args.churn_crash_rate,
        "fault_plan": spec.fault_plan,
        "reliability": spec.reliability,
        "channel_version": spec.channel_version,
        "episodes_injected": state["injected"],
        "episodes_retired": len(result.episodes),
        "peak_live_episodes": state["peak_live"],
        "checkpoints": state["checkpoints"],
        "churn_events_applied": runner.events_applied,
        "nodes_joined": total.nodes_joined,
        "nodes_left": total.nodes_left,
        "nodes_crashed": total.nodes_crashed,
        "orphaned_replies": total.orphaned_replies,
        "degraded_episodes": total.degraded_episodes,
        "region_restarts": result.region_restarts,
        "matches": result.aggregate.matches,
        "frames_sent": total.frames_sent,
        "limiter_peers_pruned": state["limiter_pruned"],
        "sessions_swept": state["sessions_swept"],
        "max_rss_mb": round(_max_rss_mb(), 1),
        "traced_growth_mb": round(grown_mb, 2),
        "wall_seconds": round(wall_s, 2),
    }


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    record = run_soak(args)
    print(
        f"soak ok: {record['sim_hours']} sim-h, "
        f"{record['episodes_injected']} episodes injected and retired, "
        f"{record['churn_events_applied']} churn/fault events, "
        f"0 wedged, RSS {record['max_rss_mb']} MiB, "
        f"{record['wall_seconds']}s wall",
        file=sys.stderr,
    )
    print("PERF_RECORD " + json.dumps(record))
    return 0


if __name__ == "__main__":
    sys.exit(main())
