#!/usr/bin/env python3
"""Fail on broken intra-repo links in README.md and docs/*.md.

Scans markdown inline links (``[text](target)``) and reference
definitions (``[label]: target``), ignores external schemes
(http/https/mailto) and pure-anchor links, strips ``#fragment`` suffixes,
and verifies every remaining target exists relative to the file that
links to it.  Exit code 1 lists every broken link.

Run from the repo root (CI's docs job does):  python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_RE = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:")


def _strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks: example paths in them are not links."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def check_file(path: Path) -> list[str]:
    """Return 'file: target' entries for every broken link in *path*."""
    text = _strip_code_blocks(path.read_text())
    broken = []
    targets = LINK_RE.findall(text) + REF_RE.findall(text)
    for target in targets:
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            broken.append(f"{path}: {target}")
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    broken: list[str] = []
    checked = 0
    for path in files:
        if not path.exists():
            broken.append(f"missing documentation file: {path}")
            continue
        checked += 1
        broken.extend(check_file(path))
    if broken:
        print("broken intra-repo links:", file=sys.stderr)
        for entry in broken:
            print(f"  {entry}", file=sys.stderr)
        return 1
    print(f"checked {checked} file(s): all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
