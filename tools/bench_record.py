"""Append benchmark PERF_RECORD output to a BENCH_*.json trajectory file.

Every benchmark in ``benchmarks/`` prints one or more ``PERF_RECORD {...}``
lines.  This tool collects them into an append-only JSON trajectory so perf
can be tracked across commits instead of evaporating with each run:

    PYTHONPATH=src python benchmarks/bench_crypto_backends.py \\
        | python tools/bench_record.py BENCH_crypto.json

Stable schema of the trajectory file::

    {
      "schema": 1,
      "records": [
        {"recorded_at": "<UTC ISO-8601>", "git_commit": "<short sha>|null",
         ...benchmark record fields (always include "bench")...},
        ...
      ]
    }

Records are only ever appended; rewriting history is a human decision.
The tool passes its stdin through to stdout, so it can sit in the middle
of a pipeline without hiding the benchmark output (or its failures).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

PREFIX = "PERF_RECORD "
SCHEMA = 1


def git_commit() -> str | None:
    """Short commit of the measured tree, ``-dirty``-suffixed when the
    working tree has uncommitted changes -- a record must never attribute
    a measurement to a commit that does not contain the measured code."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=10, check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None


def extract_records(lines) -> list[dict]:
    """Parse every ``PERF_RECORD {...}`` line into a record dict."""
    records = []
    for line in lines:
        stripped = line.strip()
        if not stripped.startswith(PREFIX):
            continue
        try:
            record = json.loads(stripped[len(PREFIX):])
        except json.JSONDecodeError as exc:
            raise SystemExit(f"malformed PERF_RECORD line: {exc}: {stripped!r}")
        if not isinstance(record, dict):
            raise SystemExit(f"PERF_RECORD payload must be a JSON object: {stripped!r}")
        records.append(record)
    return records


def load_trajectory(path: Path) -> dict:
    """Read an existing trajectory file (or start a fresh one)."""
    if not path.exists():
        return {"schema": SCHEMA, "records": []}
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{path} is not valid JSON: {exc}")
    if not isinstance(data, dict) or not isinstance(data.get("records"), list):
        raise SystemExit(f"{path} does not look like a bench trajectory file")
    return data


def append_records(path: Path, records: list[dict]) -> int:
    """Append *records* (stamped with time + commit) to *path*; return count."""
    if not records:
        return 0
    trajectory = load_trajectory(path)
    stamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    commit = git_commit()
    for record in records:
        trajectory["records"].append(
            {"recorded_at": stamp, "git_commit": commit, **record}
        )
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return len(records)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="append PERF_RECORD lines from stdin to a BENCH_*.json trajectory",
    )
    parser.add_argument("target", help="trajectory file to append to, e.g. BENCH_crypto.json")
    parser.add_argument(
        "--quiet", action="store_true",
        help="do not echo stdin through to stdout",
    )
    args = parser.parse_args(argv)

    lines = []
    for line in sys.stdin:
        lines.append(line)
        if not args.quiet:
            sys.stdout.write(line)
    appended = append_records(Path(args.target), extract_records(lines))
    print(f"bench_record: appended {appended} record(s) to {args.target}", file=sys.stderr)
    if appended == 0:
        print("bench_record: warning: no PERF_RECORD lines found", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
