"""cProfile the friending engine on a ScenarioSpec and print a top-N report.

The profiling harness behind the before/after tables in
``docs/performance.md``: builds the population and topology *outside* the
profiled region (exactly like the experiment runner's ``wall_seconds``
accounting), then runs the engine under cProfile and prints the top-N
functions by internal and cumulative time.

Usage::

    PYTHONPATH=src python tools/profile_engine.py                      # default spec
    PYTHONPATH=src python tools/profile_engine.py --spec examples/specs/lossy_city.json \\
        --loss 0.1 --top 25 --sort tottime
    PYTHONPATH=src python tools/profile_engine.py --spec examples/specs/lossy_city.json \\
        --loss 0.1 --channel-version 2   # the docs' channel-plane-v2 'after' profile
    PYTHONPATH=src python tools/profile_engine.py --nodes 2000 --episodes 4

The same report is reachable from the CLI as
``repro simulate --profile-top N`` for one-off runs.
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import io
import pstats
import random
import sys


def profile_spec(spec, *, top: int, sort: str, out=sys.stdout) -> pstats.Stats:
    """Profile one engine run of *spec*; print the report; return the stats."""
    from repro.analysis.experiments import _build_population
    from repro.crypto.backend import use_backend
    from repro.network.channel_model import ChannelModel
    from repro.network.engine import FriendingEngine
    from repro.network.mobility import RandomWaypoint, StaticPlacement
    from repro.network.regions import RegionShardedEngine
    from repro.network.simulator import AdHocNetwork

    rng = random.Random(spec.seed)
    node_ids, participants, launches, _ = _build_population(spec, rng)
    if spec.mobility == "random_waypoint":
        mobility = RandomWaypoint(node_ids, seed=spec.seed)
    else:
        mobility = StaticPlacement(node_ids, seed=spec.seed)
    adjacency = mobility.snapshot_topology(spec.radio_radius)
    channel = ChannelModel(
        drop_rate=spec.loss_rate,
        dup_rate=spec.dup_rate,
        reorder_rate=spec.reorder_rate,
        corrupt_rate=spec.corrupt_rate,
        jitter_ms=spec.jitter_ms,
        seed=spec.seed,
        version=spec.channel_version,
    )
    network = AdHocNetwork(adjacency, participants, channel=channel)
    # Mirror run_scenario's engine construction exactly, including the
    # mid-run topology-refresh wiring: the profile must describe the same
    # workload the experiment runner measures for this spec.
    engine_kwargs = dict(retries=spec.retries)
    if spec.refresh_interval_ms is not None:
        engine_kwargs.update(
            mobility=mobility,
            radio_radius=spec.radio_radius,
            refresh_interval_ms=spec.refresh_interval_ms,
        )
    if spec.regions > 1:
        engine = RegionShardedEngine(
            network,
            positions=mobility.positions(),
            regions=spec.regions,
            **engine_kwargs,
        )
    else:
        engine = FriendingEngine(network, **engine_kwargs)

    profiler = cProfile.Profile()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        with use_backend(spec.backend):
            profiler.enable()
            result = engine.run_staggered(
                launches, arrival_ms=spec.arrival_ms, until_ms=spec.until_ms
            )
            profiler.disable()
    finally:
        if gc_was_enabled:
            gc.enable()

    agg = result.aggregate
    print(
        f"# {spec.name}: {spec.nodes} nodes, {agg.episodes} episodes, "
        f"loss={spec.loss_rate}, {agg.total.frames_sent} frames, "
        f"{agg.matches} matches",
        file=out,
    )
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    print(buffer.getvalue(), file=out)
    return stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="profile one FriendingEngine run and print the top-N report"
    )
    parser.add_argument(
        "--spec", help="ScenarioSpec JSON (single spec or base+sweep plan)"
    )
    parser.add_argument(
        "--loss", type=float, default=None,
        help="pick/override the sweep point with this loss_rate",
    )
    parser.add_argument("--nodes", type=int, default=None, help="override population")
    parser.add_argument("--episodes", type=int, default=None)
    parser.add_argument(
        "--channel-version", type=int, choices=(1, 2), default=None,
        help="override the spec's channel fate plane (1 = scratch-MT, "
             "2 = counter-mode); the docs' before/after profiles are "
             "--loss 0.1 with each version in turn",
    )
    parser.add_argument(
        "--regions", type=int, default=None,
        help="override the spec's region count (> 1 profiles the "
             "region-sharded engine; byte-identical workload)",
    )
    parser.add_argument("--top", type=int, default=25, help="rows to print (default 25)")
    parser.add_argument(
        "--sort", choices=("tottime", "cumulative", "calls"), default="tottime"
    )
    args = parser.parse_args(argv)

    from repro.analysis.experiments import ScenarioSpec, SpecError, load_plan

    try:
        if args.spec:
            plan = load_plan(args.spec)
            spec = plan.specs[0]
            if args.loss is not None:
                matching = [s for s in plan.specs if s.loss_rate == args.loss]
                spec = matching[0] if matching else spec
        else:
            spec = ScenarioSpec(name="profile", nodes=1000, episodes=4,
                                mobility="random_waypoint", radio_radius=0.05)
        overrides = {}
        if args.loss is not None and spec.loss_rate != args.loss:
            overrides["loss_rate"] = args.loss
        if args.nodes is not None:
            overrides["nodes"] = args.nodes
        if args.episodes is not None:
            overrides["episodes"] = args.episodes
        if args.channel_version is not None:
            overrides["channel_version"] = args.channel_version
        if args.regions is not None:
            overrides["regions"] = args.regions
        if overrides:
            spec = ScenarioSpec.from_dict({**spec.as_dict(), **overrides})
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    profile_spec(spec, top=args.top, sort=args.sort)
    return 0


if __name__ == "__main__":
    sys.exit(main())
