"""Category-structured (Facebook-like) population generator.

Fig. 4 contrasts Weibo profiles with Facebook-style structured profiles
("profile without keywords"): fewer, categorical fields (school, city,
employer, a handful of interests) produce somewhat more collisions yet
still >90 % unique profiles.  This generator draws each category value from
its own Zipf distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dataset.schema import UserRecord
from repro.dataset.weibo import _sample_distinct, _zipf_cdf, _zipf_draw

__all__ = ["FacebookGenerator"]

_DEFAULT_CATEGORIES: dict[str, int] = {
    "school": 3_000,
    "city": 2_000,
    "employer": 5_000,
    "hometown": 2_000,
}


@dataclass
class FacebookGenerator:
    """Structured profiles: one value per category + a few interest tags."""

    n_users: int = 5_000
    category_sizes: dict[str, int] = field(default_factory=lambda: dict(_DEFAULT_CATEGORIES))
    interest_vocabulary: int = 10_000
    interests_per_user: int = 3
    zipf_s: float = 1.0
    seed: int = 2013

    def generate(self) -> list[UserRecord]:
        """Produce the population; category values become tags."""
        rng = random.Random(self.seed)
        category_cdfs = {
            name: _zipf_cdf(size, self.zipf_s) for name, size in self.category_sizes.items()
        }
        interest_cdf = _zipf_cdf(self.interest_vocabulary, self.zipf_s)
        users = []
        for i in range(self.n_users):
            tags = [
                f"{name}v{_zipf_draw(rng, cdf)}" for name, cdf in sorted(category_cdfs.items())
            ]
            tags.extend(
                _sample_distinct(rng, interest_cdf, self.interests_per_user, prefix="int")
            )
            users.append(
                UserRecord(
                    user_id=f"f{i}",
                    year_of_birth=rng.randint(1950, 2000),
                    gender=rng.choice(("male", "female")),
                    tags=tuple(tags),
                    keywords=(),
                )
            )
        return users
