"""Population statistics backing Figures 4-7.

Pure functions over :class:`~repro.dataset.schema.UserRecord` lists: the
profile-collision CDF (Fig. 4), the attribute-count distribution (Fig. 5)
and ground-truth shared-attribute counts used by the candidate-proportion
experiments (Figs. 6-7).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.dataset.schema import UserRecord

__all__ = [
    "profile_collision_cdf",
    "attribute_count_distribution",
    "shared_attribute_counts",
    "unique_profile_fraction",
]


def _profile_fingerprint(user: UserRecord, include_keywords: bool) -> frozenset[str]:
    attrs = frozenset(user.tags)
    if include_keywords:
        attrs |= frozenset(user.keywords)
    return attrs


def profile_collision_cdf(
    users: Sequence[UserRecord],
    *,
    include_keywords: bool,
    max_collisions: int = 10,
) -> list[float]:
    """Fig. 4: P(a user's profile is shared by ≤ c users), for c = 1..max.

    ``result[0]`` is the unique-profile fraction; the paper reports > 0.9
    for both datasets.
    """
    counts = Counter(_profile_fingerprint(u, include_keywords) for u in users)
    total = len(users)
    if total == 0:
        return [0.0] * max_collisions
    cdf = []
    for c in range(1, max_collisions + 1):
        covered = sum(count for count in counts.values() if count <= c)
        cdf.append(covered / total)
    return cdf


def unique_profile_fraction(users: Sequence[UserRecord], *, include_keywords: bool) -> float:
    """Fraction of users whose full profile no one else shares."""
    return profile_collision_cdf(users, include_keywords=include_keywords, max_collisions=1)[0]


def attribute_count_distribution(users: Sequence[UserRecord]) -> dict[int, int]:
    """Fig. 5: tag-count histogram (count → number of users)."""
    histogram = Counter(len(u.tags) for u in users)
    return dict(sorted(histogram.items()))


def shared_attribute_counts(
    initiator_attributes: Sequence[str], users: Sequence[UserRecord]
) -> list[int]:
    """Ground truth for Figs. 6-7: |request ∩ user| per user."""
    request = set(initiator_attributes)
    return [len(request & set(u.tags)) for u in users]
