"""Synthetic Tencent-Weibo-calibrated population generator.

The real dataset (Sec. V-A) is not redistributable, so this generator
reproduces its published marginals:

===========================  ======================  =====================
Statistic                    Paper (Tencent Weibo)   Generator default
===========================  ======================  =====================
tag vocabulary               560 419                 ``tag_vocabulary``
keyword vocabulary           713 747                 ``keyword_vocabulary``
tags per user                mean 6, max 20          truncated Poisson
keywords per user            mean 7, max 129         truncated lognormal
profile uniqueness           > 90 % unique           emerges from Zipf tags
===========================  ======================  =====================

Tag popularity follows a Zipf law (exponent ``zipf_s``), the standard model
for social-tag frequency, which also reproduces the Fig. 4 collision curve
shape: a heavy head creates the few colliding profiles, the long tail makes
most profiles unique.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.dataset.schema import UserRecord

__all__ = ["WeiboGenerator", "WEIBO_CALIBRATION"]

WEIBO_CALIBRATION = {
    "tag_vocabulary": 560_419,
    "keyword_vocabulary": 713_747,
    "mean_tags": 6,
    "max_tags": 20,
    "mean_keywords": 7,
    "max_keywords": 129,
    "users": 2_320_000,
}


@dataclass
class WeiboGenerator:
    """Seeded generator of Weibo-like user populations.

    Defaults are scaled down from the paper's 2.32 M users to stay
    laptop-friendly; vocabulary/user counts scale together so density (and
    therefore collision statistics) stays comparable.
    """

    n_users: int = 5_000
    tag_vocabulary: int = 50_000
    keyword_vocabulary: int = 70_000
    mean_tags: float = 6.0
    max_tags: int = 20
    mean_keywords: float = 7.0
    max_keywords: int = 129
    zipf_s: float = 1.0
    seed: int = 2013

    def generate(self) -> list[UserRecord]:
        """Produce the full population (deterministic for a fixed seed)."""
        rng = random.Random(self.seed)
        tag_cdf = _zipf_cdf(self.tag_vocabulary, self.zipf_s)
        kw_cdf = _zipf_cdf(self.keyword_vocabulary, self.zipf_s)
        users = []
        for i in range(self.n_users):
            n_tags = _truncated_poisson(rng, self.mean_tags, 1, self.max_tags)
            n_keywords = _truncated_lognormal_count(
                rng, self.mean_keywords, 1, self.max_keywords
            )
            tags = _sample_distinct(rng, tag_cdf, n_tags, prefix="t")
            keywords = _sample_distinct(rng, kw_cdf, n_keywords, prefix="k")
            users.append(
                UserRecord(
                    user_id=f"u{i}",
                    year_of_birth=rng.randint(1950, 2000),
                    gender=rng.choice(("male", "female")),
                    tags=tuple(tags),
                    keywords=tuple(keywords),
                )
            )
        return users

    def users_with_tag_count(self, records: list[UserRecord], count: int) -> list[UserRecord]:
        """Subset owning exactly *count* tags (the paper's 6-attribute cohort)."""
        return [u for u in records if len(u.tags) == count]


def _zipf_cdf(size: int, s: float) -> list[float]:
    """Cumulative Zipf distribution over ranks 1..size."""
    weights = [1.0 / (r**s) for r in range(1, size + 1)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    cdf[-1] = 1.0
    return cdf


def _zipf_draw(rng: random.Random, cdf: list[float]) -> int:
    """One rank (0-based) from the precomputed CDF via bisection."""
    from bisect import bisect_left

    return bisect_left(cdf, rng.random())


def _sample_distinct(rng: random.Random, cdf: list[float], count: int, prefix: str) -> list[str]:
    """Sample *count* distinct vocabulary items by Zipf popularity."""
    count = min(count, len(cdf))
    chosen: set[int] = set()
    # Rejection sampling; the head is dense but vocabulary >> count.
    while len(chosen) < count:
        chosen.add(_zipf_draw(rng, cdf))
    return [f"{prefix}{idx}" for idx in sorted(chosen)]


def _truncated_poisson(rng: random.Random, mean: float, low: int, high: int) -> int:
    """Poisson draw conditioned on [low, high] (matches mean≈6, max 20)."""
    while True:
        value = _poisson(rng, mean - low) + low
        if low <= value <= high:
            return value


def _poisson(rng: random.Random, lam: float) -> int:
    if lam <= 0:
        return 0
    limit = math.exp(-lam)
    product = rng.random()
    count = 0
    while product > limit:
        product *= rng.random()
        count += 1
    return count


def _truncated_lognormal_count(rng: random.Random, mean: float, low: int, high: int) -> int:
    """Heavy-tailed keyword count: mean≈`mean`, rare large values up to *high*."""
    sigma = 0.8
    mu = math.log(mean) - sigma * sigma / 2.0
    while True:
        value = int(round(rng.lognormvariate(mu, sigma)))
        if low <= value <= high:
            return value
