"""Synthetic social-network workloads calibrated to the paper's datasets.

The paper evaluates on Tencent Weibo profile data (2.32 M users, 560 419
tags, 713 747 keywords, 6 tags / 7 keywords per user on average) that is
not redistributable; :mod:`repro.dataset.weibo` generates populations with
the same published marginals, and :mod:`repro.dataset.facebook` a
category-structured population for the Fig. 4 uniqueness comparison.
"""

from repro.dataset.schema import UserRecord
from repro.dataset.weibo import WeiboGenerator, WEIBO_CALIBRATION
from repro.dataset.facebook import FacebookGenerator
from repro.dataset.stats import (
    attribute_count_distribution,
    profile_collision_cdf,
    shared_attribute_counts,
)

__all__ = [
    "FacebookGenerator",
    "UserRecord",
    "WEIBO_CALIBRATION",
    "WeiboGenerator",
    "attribute_count_distribution",
    "profile_collision_cdf",
    "shared_attribute_counts",
]
