"""User record schema shared by the dataset generators."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attributes import Profile

__all__ = ["UserRecord"]


@dataclass(frozen=True)
class UserRecord:
    """One synthetic user mirroring the Tencent Weibo dataset fields."""

    user_id: str
    year_of_birth: int
    gender: str
    tags: tuple[str, ...]
    keywords: tuple[str, ...]

    def attribute_strings(
        self,
        *,
        include_keywords: bool = False,
        include_demographics: bool = False,
    ) -> list[str]:
        """Attribute strings in the canonical ``category:value`` form."""
        attrs = [f"tag:{t}" for t in self.tags]
        if include_keywords:
            attrs.extend(f"kw:{k}" for k in self.keywords)
        if include_demographics:
            attrs.append(f"birth:{self.year_of_birth}")
            attrs.append(f"gender:{self.gender}")
        return attrs

    def profile(
        self,
        *,
        include_keywords: bool = False,
        include_demographics: bool = False,
    ) -> Profile:
        """Build a core :class:`~repro.core.attributes.Profile`.

        Generated attribute values are already canonical, so normalization
        is skipped for speed (important when hashing 10⁴-10⁵ users).
        """
        return Profile(
            self.attribute_strings(
                include_keywords=include_keywords,
                include_demographics=include_demographics,
            ),
            user_id=self.user_id,
            normalized=True,
        )
