"""Multiplicative ElGamal in a safe-prime group.

Included for completeness of the asymmetric substrate (some PSI variants
and the MITM demonstrations use it); exercised by the unit tests and the
asymmetric-operation microbenchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.counters import NULL_COUNTER, OpCounter
from repro.crypto.numbers import generate_safe_prime, invmod

__all__ = ["ElGamalKeyPair"]


@dataclass(frozen=True)
class ElGamalKeyPair:
    """ElGamal key pair over the quadratic-residue subgroup of Z_p*."""

    p: int
    g: int
    x: int  # private
    h: int  # public: g^x

    @classmethod
    def generate(cls, bits: int = 512, rng: random.Random | None = None) -> "ElGamalKeyPair":
        """Generate parameters; *bits* is the safe-prime size."""
        rng = rng or random
        p = generate_safe_prime(bits, rng=rng)
        q = (p - 1) // 2
        # A generator of the order-q subgroup: square any non-trivial element.
        while True:
            a = rng.randrange(2, p - 1)
            g = pow(a, 2, p)
            if g != 1:
                break
        x = rng.randrange(2, q)
        return cls(p=p, g=g, x=x, h=pow(g, x, p))

    @property
    def q(self) -> int:
        """Order of the subgroup."""
        return (self.p - 1) // 2

    def encrypt(self, message: int, rng: random.Random | None = None, counter: OpCounter = NULL_COUNTER) -> tuple[int, int]:
        """Encrypt a subgroup element; returns (c1, c2)."""
        rng = rng or random
        k = rng.randrange(2, self.q)
        counter.add("E2", 2)
        counter.add("M2")
        return pow(self.g, k, self.p), (message * pow(self.h, k, self.p)) % self.p

    def decrypt(self, ciphertext: tuple[int, int], counter: OpCounter = NULL_COUNTER) -> int:
        """Recover the plaintext subgroup element."""
        c1, c2 = ciphertext
        counter.add("E2")
        counter.add("M2")
        return (c2 * invmod(pow(c1, self.x, self.p), self.p)) % self.p
