"""Symbolic cost model reproducing Table III / Table VII.

The paper compares its Protocol 1 against three asymmetric comparators by
counting primitive operations and transmitted bits as closed-form functions
of the scenario parameters.  This module encodes those published formulas
verbatim so the benchmark harness can print the same rows, and converts
operation counts to milliseconds with either the paper's published
primitive timings (Tables IV/V) or timings measured on this machine.

Parameter vocabulary (Table III caption): ``m_t`` request attributes,
``m_k`` attributes per participant, ``n`` participants, ``q = 256`` the
hash/key width, ``t`` a comparator-specific round parameter, ``θ`` the
similarity threshold, ``p`` the remainder prime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "Scenario",
    "SchemeCost",
    "OP_TIMES_PAPER_LAPTOP_MS",
    "OP_TIMES_PAPER_PHONE_MS",
    "fnp_cost",
    "fc10_cost",
    "advanced_cost",
    "protocol1_cost",
    "cost_ms",
    "expected_kappa",
    "expected_candidate_fraction",
    "all_schemes",
]

# Paper Table IV (symmetric) + Table V (asymmetric), laptop column, in ms.
OP_TIMES_PAPER_LAPTOP_MS: dict[str, float] = {
    "H": 1.2e-3,
    "M": 3.1e-4,
    "E": 8.7e-4,
    "D": 9.6e-4,
    "MUL256": 1.4e-4,
    "CMP256": 1.0e-5,
    "E2": 17.0,
    "E3": 120.0,
    "M2": 2.3e-2,
    "M3": 1.0e-1,
}

# Paper Table IV/V, phone column (HTC G17), in ms.
OP_TIMES_PAPER_PHONE_MS: dict[str, float] = {
    "H": 4.8e-2,
    "M": 5.7e-2,
    "E": 2.1e-2,
    "D": 2.5e-2,
    "MUL256": 3.2e-2,
    "CMP256": 1.0e-3,
    "E2": 34.0,
    "E3": 197.0,
    "M2": 1.5e-1,
    "M3": 2.4e-1,
}


@dataclass(frozen=True)
class Scenario:
    """One evaluation scenario (Table VII uses the defaults)."""

    m_t: int = 6
    m_k: int = 6
    n: int = 100
    t: int = 4
    q: int = 256
    p: int = 11
    alpha: int = 0
    beta: int = 3

    @property
    def gamma(self) -> int:
        return self.m_t - self.alpha - self.beta

    @property
    def theta(self) -> float:
        return (self.alpha + self.beta) / self.m_t


@dataclass
class SchemeCost:
    """Computation (per party) and communication cost of one scheme."""

    name: str
    initiator_ops: dict[str, float]
    participant_ops: dict[str, float]
    communication_bits: float
    transmissions: str
    notes: str = ""
    extra: dict[str, float] = field(default_factory=dict)

    def initiator_ms(self, op_times: dict[str, float]) -> float:
        return cost_ms(self.initiator_ops, op_times)

    def participant_ms(self, op_times: dict[str, float]) -> float:
        return cost_ms(self.participant_ops, op_times)

    def communication_kb(self) -> float:
        return self.communication_bits / 8.0 / 1024.0


def cost_ms(ops: dict[str, float], op_times: dict[str, float]) -> float:
    """Convert an operation-count dict to milliseconds."""
    return sum(count * op_times.get(op, 0.0) for op, count in ops.items())


def expected_kappa(scenario: Scenario) -> float:
    """Expected candidate-key-set size ε(κ_k) = C(m_k, α+β) · (1/p)^{α+β}."""
    need = scenario.alpha + scenario.beta
    if need > scenario.m_k:
        return 0.0
    return math.comb(scenario.m_k, need) * (1.0 / scenario.p) ** need


def expected_candidate_fraction(scenario: Scenario) -> float:
    """Fraction of users expected to reply in Protocol 2: (1/p)^{m_t·θ}."""
    return (1.0 / scenario.p) ** (scenario.m_t * scenario.theta)


def fnp_cost(s: Scenario) -> SchemeCost:
    """FNP [10] row of Table III."""
    return SchemeCost(
        name="FNP [10]",
        initiator_ops={"E3": 2 * s.m_t + s.m_k * s.n},
        participant_ops={"E3": s.m_k * math.log2(s.m_t)},
        communication_bits=8 * s.q * (s.m_t + s.m_k * s.n),
        transmissions=f"1 broadcast + {s.n} unicasts",
        notes="oblivious polynomial evaluation over Paillier",
    )


def fc10_cost(s: Scenario) -> SchemeCost:
    """FC10 [7] row of Table III."""
    return SchemeCost(
        name="FC10 [7]",
        initiator_ops={"M2": 2.5 * s.m_t * s.n},
        participant_ops={"E2": s.m_t + s.m_k},
        communication_bits=4 * s.q * s.n * (3 * s.m_t + s.m_k),
        transmissions=f"{2 * s.n} unicasts",
        notes="blind-RSA linear PSI",
    )


def advanced_cost(s: Scenario) -> SchemeCost:
    """Advanced [14] (FindU) row of Table III."""
    comm = 24 * (
        s.m_t * s.m_k * s.n
        + s.t * s.n * (8 * s.m_t + 2 * s.m_k + 12 * s.m_t * s.t)
    ) + 16 * s.q * s.m_t * s.n
    return SchemeCost(
        name="Advanced [14]",
        initiator_ops={"E3": 3 * s.m_t * s.n},
        participant_ops={"E3": 2 * s.m_t},
        communication_bits=comm,
        transmissions=f"{5 * s.n} unicasts",
        notes="blind-and-permute PCSI (executable stand-in: DH-PSI-CA)",
    )


def protocol1_cost(s: Scenario) -> SchemeCost:
    """Protocol 1 row of Table III (our scheme).

    Participant cost is reported for the *expected* mix: the candidate
    fraction pays the candidate pipeline, everyone else only hashing and
    remainders.  ``extra`` carries the per-role breakdown used by the
    Table VII bench.
    """
    kappa = expected_kappa(s)
    candidate_fraction = expected_candidate_fraction(s)
    initiator_ops = {"H": s.m_t + 1, "M": s.m_t, "E": 1.0}
    noncandidate_ops = {"H": float(s.m_k), "M": float(s.m_k)}
    candidate_ops = {
        "MUL256": kappa * s.gamma * s.gamma * (s.gamma + s.beta),
        "H": s.m_k + kappa,
        "M": float(s.m_k),
        "D": kappa,
    }
    comm = (
        (1 - s.theta) * 32 * s.m_t**2
        + (288 - s.q * s.theta) * s.m_t
        + s.q
        + s.q * s.n * candidate_fraction
    )
    expected_participant = {
        op: (1 - candidate_fraction) * noncandidate_ops.get(op, 0.0)
        + candidate_fraction * candidate_ops.get(op, 0.0)
        for op in set(noncandidate_ops) | set(candidate_ops)
    }
    return SchemeCost(
        name="Protocol 1",
        initiator_ops=initiator_ops,
        participant_ops=expected_participant,
        communication_bits=comm,
        transmissions=f"1 broadcast + ~{s.n * candidate_fraction:.1f} unicasts",
        notes="symmetric only; remainder vector prunes non-candidates",
        extra={
            "kappa": kappa,
            "candidate_fraction": candidate_fraction,
            "noncandidate_ms_paper_laptop": cost_ms(noncandidate_ops, OP_TIMES_PAPER_LAPTOP_MS),
            "candidate_ms_paper_laptop": cost_ms(candidate_ops, OP_TIMES_PAPER_LAPTOP_MS),
        },
    )


def all_schemes(s: Scenario) -> list[SchemeCost]:
    """All four Table III rows for one scenario."""
    return [fnp_cost(s), fc10_cost(s), advanced_cost(s), protocol1_cost(s)]
