"""RSA with blind signing, substrate for the FC10 PSI baseline [7]."""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import gcd

from repro.analysis.counters import NULL_COUNTER, OpCounter
from repro.crypto.numbers import generate_prime, invmod

__all__ = ["RsaKeyPair"]


@dataclass(frozen=True)
class RsaKeyPair:
    """Textbook RSA key pair (sufficient for the PSI blind-signature core)."""

    n: int
    e: int
    d: int

    @classmethod
    def generate(cls, bits: int = 1024, e: int = 65537, rng: random.Random | None = None) -> "RsaKeyPair":
        """Generate an RSA modulus of roughly *bits* bits."""
        rng = rng or random
        while True:
            p = generate_prime(bits // 2, rng=rng)
            q = generate_prime(bits // 2, rng=rng)
            if p == q:
                continue
            phi = (p - 1) * (q - 1)
            if gcd(e, phi) == 1:
                break
        return cls(n=p * q, e=e, d=invmod(e, phi))

    def sign(self, message: int, counter: OpCounter = NULL_COUNTER) -> int:
        """Raw RSA signature m^d mod n (counted as a 1024-bit exponentiation)."""
        counter.add("E2")
        return pow(message % self.n, self.d, self.n)

    def verify(self, message: int, signature: int, counter: OpCounter = NULL_COUNTER) -> bool:
        """Check sig^e == m mod n."""
        counter.add("E2")
        return pow(signature, self.e, self.n) == message % self.n

    def blind(self, message: int, rng: random.Random | None = None, counter: OpCounter = NULL_COUNTER) -> tuple[int, int]:
        """Blind *message* with a random factor; returns (blinded, factor)."""
        rng = rng or random
        while True:
            r = rng.randrange(2, self.n)
            if gcd(r, self.n) == 1:
                break
        counter.add("E2")
        counter.add("M2")
        return (message * pow(r, self.e, self.n)) % self.n, r

    def unblind(self, blinded_signature: int, factor: int, counter: OpCounter = NULL_COUNTER) -> int:
        """Strip the blinding factor from a blind signature."""
        counter.add("M2")
        return (blinded_signature * invmod(factor, self.n)) % self.n
