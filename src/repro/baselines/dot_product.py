"""Private vector dot-product proximity (Dong et al. [9], INFOCOM'11).

The second mainstream of private-matching approaches treats profiles as
vectors over a public attribute space and measures social proximity by a
private dot product.  We implement the Paillier realization: the client
encrypts its vector coordinate-wise; the server computes
``Π Enc(u_i)^{v_i} = Enc(⟨u, v⟩)`` and blinds nothing (HBC); the client
decrypts the proximity score.

The paper's critique this module makes measurable: the vector length equals
the *attribute-space* size, so for a Tencent-Weibo-scale space (≈2²⁰ tags)
the approach is hopeless -- the benchmark sweeps vector length to show the
cost wall.
"""

from __future__ import annotations

import random

from repro.analysis.counters import NULL_COUNTER, OpCounter
from repro.baselines.paillier import PaillierKeyPair

__all__ = ["private_dot_product", "profiles_to_vectors"]


def profiles_to_vectors(
    attribute_space: list[str], client_attrs: set[str], server_attrs: set[str]
) -> tuple[list[int], list[int]]:
    """0/1 indicator vectors over a public attribute space."""
    u = [1 if a in client_attrs else 0 for a in attribute_space]
    v = [1 if a in server_attrs else 0 for a in attribute_space]
    return u, v


def private_dot_product(
    client_vector: list[int],
    server_vector: list[int],
    *,
    keypair: PaillierKeyPair | None = None,
    key_bits: int = 1024,
    rng: random.Random | None = None,
    client_counter: OpCounter = NULL_COUNTER,
    server_counter: OpCounter = NULL_COUNTER,
) -> int:
    """Compute ⟨u, v⟩ privately; only the client learns the result."""
    if len(client_vector) != len(server_vector):
        raise ValueError("vectors must have equal length")
    rng = rng or random
    if keypair is None:
        keypair = PaillierKeyPair.generate(key_bits, rng=rng)
    public = keypair.public

    encrypted = [public.encrypt(u, rng=rng, counter=client_counter) for u in client_vector]
    acc = public.encrypt(0, rng=rng, counter=server_counter)
    for ct, v in zip(encrypted, server_vector):
        if v == 0:
            continue
        term = public.scalar_mul(ct, v, counter=server_counter) if v != 1 else ct
        acc = public.add(acc, term, counter=server_counter)
    return keypair.decrypt(acc, counter=client_counter)
