"""Fine-grained private matching (Zhang et al. [28], INFOCOM'12 style).

The related-work section's most capable dot-product competitor: every user
attaches an *interest level* to each attribute of a public attribute
space, and social proximity is measured on the weighted vectors.  We
implement the two metrics the line of work uses, both computed privately
under Paillier:

- **weighted dot product**  ⟨u, v⟩;
- **negated squared l2 distance**  −Σ (u_i − v_i)², computable from
  Enc(u_i), Enc(u_i²) and the server's plaintext v (the standard trick:
  Σu_i² − 2Σu_i·v_i + Σv_i² with the first two terms homomorphic).

Like the other baselines this exists to make the paper's comparison
executable: cost scales with the *attribute-space size*, not the profile
size, which is exactly the weakness Table III's critique hinges on.
"""

from __future__ import annotations

import random

from repro.analysis.counters import NULL_COUNTER, OpCounter
from repro.baselines.paillier import PaillierKeyPair

__all__ = ["fine_grained_dot_product", "fine_grained_distance", "levels_to_vector"]


def levels_to_vector(attribute_space: list[str], levels: dict[str, int]) -> list[int]:
    """Interest levels over the public space (0 = not interested)."""
    return [levels.get(attr, 0) for attr in attribute_space]


def fine_grained_dot_product(
    client_levels: list[int],
    server_levels: list[int],
    *,
    keypair: PaillierKeyPair | None = None,
    key_bits: int = 1024,
    rng: random.Random | None = None,
    client_counter: OpCounter = NULL_COUNTER,
    server_counter: OpCounter = NULL_COUNTER,
) -> int:
    """Weighted proximity ⟨u, v⟩; only the client learns the score."""
    if len(client_levels) != len(server_levels):
        raise ValueError("level vectors must have equal length")
    rng = rng or random
    if keypair is None:
        keypair = PaillierKeyPair.generate(key_bits, rng=rng)
    public = keypair.public
    encrypted = [public.encrypt(u, rng=rng, counter=client_counter) for u in client_levels]
    acc = public.encrypt(0, rng=rng, counter=server_counter)
    for ct, v in zip(encrypted, server_levels):
        if v == 0:
            continue
        acc = public.add(acc, public.scalar_mul(ct, v, counter=server_counter), counter=server_counter)
    return keypair.decrypt(acc, counter=client_counter)


def fine_grained_distance(
    client_levels: list[int],
    server_levels: list[int],
    *,
    keypair: PaillierKeyPair | None = None,
    key_bits: int = 1024,
    rng: random.Random | None = None,
    client_counter: OpCounter = NULL_COUNTER,
    server_counter: OpCounter = NULL_COUNTER,
) -> int:
    """Squared l2 distance Σ (u_i − v_i)², revealed only to the client.

    The client sends Enc(u_i) and Enc(u_i²); the server computes
    ``Enc(Σu_i²) · Enc(Σu_i)^(−2v_i) · Enc(Σv_i²)`` homomorphically.
    """
    if len(client_levels) != len(server_levels):
        raise ValueError("level vectors must have equal length")
    rng = rng or random
    if keypair is None:
        keypair = PaillierKeyPair.generate(key_bits, rng=rng)
    public = keypair.public
    n = public.n

    enc_u = [public.encrypt(u, rng=rng, counter=client_counter) for u in client_levels]
    enc_u_sq = [public.encrypt(u * u, rng=rng, counter=client_counter) for u in client_levels]

    acc = public.encrypt(sum(v * v for v in server_levels), rng=rng, counter=server_counter)
    for ct_u, ct_u_sq, v in zip(enc_u, enc_u_sq, server_levels):
        acc = public.add(acc, ct_u_sq, counter=server_counter)
        if v:
            # subtract 2*v*u_i homomorphically: multiply by (n - 2v).
            minus = public.scalar_mul(ct_u, (n - 2 * v) % n, counter=server_counter)
            acc = public.add(acc, minus, counter=server_counter)
    return keypair.decrypt(acc, counter=client_counter)
