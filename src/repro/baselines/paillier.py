"""Paillier additively homomorphic cryptosystem.

Substrate for the FNP04 PSI baseline [10] and the private dot-product
baseline [9].  Standard construction: n = p·q, g = n+1, encryption
``c = g^m · r^n mod n²``; ``Enc(a)·Enc(b) = Enc(a+b)`` and
``Enc(a)^k = Enc(k·a)``.

Every modular multiplication and exponentiation is tallied on an optional
:class:`~repro.analysis.counters.OpCounter` using the paper's vocabulary
(operations modulo n² of a 1024-bit n count as 2048-bit ops: ``E3``/``M3``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import gcd

from repro.analysis.counters import NULL_COUNTER, OpCounter
from repro.crypto.numbers import generate_prime, invmod, lcm

__all__ = ["PaillierPublicKey", "PaillierKeyPair"]


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public parameters (n, g) with g = n+1."""

    n: int
    n_squared: int

    @property
    def g(self) -> int:
        return self.n + 1

    def encrypt(
        self,
        message: int,
        rng: random.Random | None = None,
        counter: OpCounter = NULL_COUNTER,
    ) -> int:
        """Encrypt ``message`` (mod n) with fresh randomness."""
        rng = rng or random
        m = message % self.n
        while True:
            r = rng.randrange(1, self.n)
            if gcd(r, self.n) == 1:
                break
        # g^m = (n+1)^m = 1 + n*m mod n^2  (one M3 instead of an exponentiation)
        counter.add("M3")
        g_m = (1 + self.n * m) % self.n_squared
        counter.add("E3")
        r_n = pow(r, self.n, self.n_squared)
        counter.add("M3")
        return (g_m * r_n) % self.n_squared

    def add(self, c1: int, c2: int, counter: OpCounter = NULL_COUNTER) -> int:
        """Homomorphic addition: Enc(a)·Enc(b) = Enc(a+b)."""
        counter.add("M3")
        return (c1 * c2) % self.n_squared

    def scalar_mul(self, c: int, k: int, counter: OpCounter = NULL_COUNTER) -> int:
        """Homomorphic scalar multiply: Enc(a)^k = Enc(k·a)."""
        counter.add("E3")
        return pow(c, k % self.n, self.n_squared)


@dataclass(frozen=True)
class PaillierKeyPair:
    """Private key (λ, μ) plus the public key."""

    public: PaillierPublicKey
    lam: int
    mu: int

    @classmethod
    def generate(cls, bits: int = 1024, rng: random.Random | None = None) -> "PaillierKeyPair":
        """Generate a key pair with an n of roughly *bits* bits."""
        rng = rng or random
        while True:
            p = generate_prime(bits // 2, rng=rng)
            q = generate_prime(bits // 2, rng=rng)
            if p != q:
                break
        n = p * q
        lam = lcm(p - 1, q - 1)
        public = PaillierPublicKey(n=n, n_squared=n * n)
        # mu = (L(g^lambda mod n^2))^-1 mod n, with g = n+1 so L(...) = lambda... n
        g_lam = pow(public.g, lam, public.n_squared)
        l_value = (g_lam - 1) // n
        mu = invmod(l_value, n)
        return cls(public=public, lam=lam, mu=mu)

    def decrypt(self, ciphertext: int, counter: OpCounter = NULL_COUNTER) -> int:
        """Recover the plaintext (mod n)."""
        counter.add("E3")
        c_lam = pow(ciphertext, self.lam, self.public.n_squared)
        l_value = (c_lam - 1) // self.public.n
        counter.add("M2")
        return (l_value * self.mu) % self.public.n
