"""De Cristofaro-Tsudik linear-complexity PSI [7] (FC 2010).

Blind-RSA-signature construction: the server holds an RSA key and
publishes tags ``t_b = H'(H(b)^d)`` for its elements; the client blinds
each own hash ``H(a)·r^e``, the server signs the blinded values, the
client unblinds to obtain ``H(a)^d`` and compares ``H'(H(a)^d)`` against
the server tags.  Linear in both set sizes -- the "practical" PSI of its
generation and the second comparator row in Tables III/VII.

The client learns the intersection; the server learns nothing beyond the
client's set size (HBC model).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.counters import NULL_COUNTER, OpCounter
from repro.baselines.rsa import RsaKeyPair
from repro.crypto.hashes import sha256, sha256_int

__all__ = ["fc10_psi", "Fc10Transcript"]


def _hash_to_group(element: str, n: int) -> int:
    return sha256_int(element.encode("utf-8")) % n


def _tag(signature: int) -> bytes:
    return sha256(signature.to_bytes((signature.bit_length() + 7) // 8 or 1, "big"))


@dataclass
class Fc10Transcript:
    """Message accounting for one FC10 run."""

    blinded_values: list[int]
    blind_signatures: list[int]
    server_tags: list[bytes]

    def communication_bits(self, modulus_bits: int) -> int:
        """Bits moved: client→server blinds, server→client sigs + tags."""
        return (
            len(self.blinded_values) * modulus_bits
            + len(self.blind_signatures) * modulus_bits
            + len(self.server_tags) * 256
        )


def fc10_psi(
    client_set: list[str],
    server_set: list[str],
    *,
    keypair: RsaKeyPair | None = None,
    key_bits: int = 1024,
    rng: random.Random | None = None,
    client_counter: OpCounter = NULL_COUNTER,
    server_counter: OpCounter = NULL_COUNTER,
) -> tuple[set[str], Fc10Transcript]:
    """Run the complete FC10 protocol; returns (intersection, transcript)."""
    rng = rng or random
    if keypair is None:
        keypair = RsaKeyPair.generate(key_bits, rng=rng)
    n = keypair.n

    # --- Server: publish tags of its signed elements.
    server_tags = []
    for element in server_set:
        h = _hash_to_group(element, n)
        sig = keypair.sign(h, counter=server_counter)
        server_counter.add("H")
        server_tags.append(_tag(sig))
    tag_set = set(server_tags)

    # --- Client: blind own hashes; server signs blindly; client unblinds.
    blinded = []
    factors = []
    for element in client_set:
        h = _hash_to_group(element, n)
        b, r = keypair.blind(h, rng=rng, counter=client_counter)
        blinded.append(b)
        factors.append(r)
    blind_sigs = [keypair.sign(b, counter=server_counter) for b in blinded]

    intersection = set()
    for element, blind_sig, factor in zip(client_set, blind_sigs, factors):
        sig = keypair.unblind(blind_sig, factor, counter=client_counter)
        client_counter.add("H")
        if _tag(sig) in tag_set:
            intersection.add(element)
    return intersection, Fc10Transcript(blinded, blind_sigs, server_tags)
