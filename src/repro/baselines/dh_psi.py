"""Commutative-encryption (DDH-based) PSI and PSI-CA.

Executable stand-in for the multi-round "Advanced" FindU scheme [14], which
outputs the private *cardinality* of the set intersection.  Both parties
exponentiate hashed elements with secret exponents in a safe-prime group;
because exponentiation commutes, double-encrypted values match exactly for
common elements.  For PSI-CA the server shuffles before returning, so the
client learns only the count (the PCSI functionality the paper's Table I
row "PCSI" describes).

Substitution note (see DESIGN.md): FindU's blind-and-permute construction
needs homomorphic shuffling circuits; DH-PSI-CA realizes the identical
functionality with the same asymptotic asymmetric-operation count, so all
shape-level comparisons survive.
"""

from __future__ import annotations

import random

from repro.analysis.counters import NULL_COUNTER, OpCounter
from repro.crypto.hashes import sha256_int
from repro.crypto.numbers import generate_safe_prime

__all__ = ["dh_psi", "dh_psi_cardinality", "generate_group"]

_DEFAULT_GROUP_BITS = 512


def generate_group(bits: int = _DEFAULT_GROUP_BITS, rng: random.Random | None = None) -> int:
    """A safe prime defining the commutative-encryption group."""
    return generate_safe_prime(bits, rng=rng)


def _hash_to_qr(element: str, p: int) -> int:
    """Hash to the quadratic-residue subgroup (square the raw hash)."""
    return pow(sha256_int(element.encode("utf-8")) % p, 2, p)


def _encrypt_all(elements: list[str], exponent: int, p: int, counter: OpCounter) -> list[int]:
    out = []
    for element in elements:
        counter.add("H")
        counter.add("E2")
        out.append(pow(_hash_to_qr(element, p), exponent, p))
    return out


def dh_psi_cardinality(
    client_set: list[str],
    server_set: list[str],
    *,
    p: int | None = None,
    rng: random.Random | None = None,
    client_counter: OpCounter = NULL_COUNTER,
    server_counter: OpCounter = NULL_COUNTER,
) -> int:
    """PSI-CA: the client learns only |client ∩ server|.

    Flow: client sends H(a)^c; server returns (H(a)^c)^s *shuffled* plus its
    own H(b)^s; client raises the latter to c and counts collisions.
    """
    rng = rng or random
    if p is None:
        p = generate_group(rng=rng)
    q = (p - 1) // 2
    c = rng.randrange(2, q)
    s = rng.randrange(2, q)

    client_once = _encrypt_all(client_set, c, p, client_counter)
    # Server double-encrypts the client's values and shuffles them.
    client_twice = []
    for value in client_once:
        server_counter.add("E2")
        client_twice.append(pow(value, s, p))
    rng.shuffle(client_twice)
    server_once = _encrypt_all(server_set, s, p, server_counter)
    # Client completes the commutative encryption of the server's values.
    server_twice = set()
    for value in server_once:
        client_counter.add("E2")
        server_twice.add(pow(value, c, p))
    return sum(1 for v in client_twice if v in server_twice)


def dh_psi(
    client_set: list[str],
    server_set: list[str],
    *,
    p: int | None = None,
    rng: random.Random | None = None,
    client_counter: OpCounter = NULL_COUNTER,
    server_counter: OpCounter = NULL_COUNTER,
) -> set[str]:
    """Full PSI: without the shuffle the client learns *which* elements match."""
    rng = rng or random
    if p is None:
        p = generate_group(rng=rng)
    q = (p - 1) // 2
    c = rng.randrange(2, q)
    s = rng.randrange(2, q)

    client_once = _encrypt_all(client_set, c, p, client_counter)
    client_twice = []
    for value in client_once:  # order preserved => client maps back to elements
        server_counter.add("E2")
        client_twice.append(pow(value, s, p))
    server_once = _encrypt_all(server_set, s, p, server_counter)
    server_twice = set()
    for value in server_once:
        client_counter.add("E2")
        server_twice.add(pow(value, c, p))
    return {
        element for element, v in zip(client_set, client_twice) if v in server_twice
    }
