"""Asymmetric-cryptosystem comparators evaluated against in the paper.

Each baseline is a complete, executable protocol built on the from-scratch
primitives in :mod:`repro.crypto.numbers`:

- :mod:`repro.baselines.paillier` -- additively homomorphic encryption.
- :mod:`repro.baselines.rsa` -- RSA with blind signing.
- :mod:`repro.baselines.elgamal` -- multiplicative ElGamal in a safe-prime group.
- :mod:`repro.baselines.fnp04` -- Freedman-Nissim-Pinkas PSI via oblivious
  polynomial evaluation [10].
- :mod:`repro.baselines.fc10` -- De Cristofaro-Tsudik linear PSI via blind
  RSA signatures [7].
- :mod:`repro.baselines.dh_psi` -- commutative-encryption PSI / PSI-CA, the
  executable stand-in for the FindU "Advanced" scheme [14].
- :mod:`repro.baselines.dot_product` -- Dong et al. private dot-product
  social proximity [9].
- :mod:`repro.baselines.costs` -- the symbolic cost model of Table III.
"""

from repro.baselines.paillier import PaillierKeyPair, PaillierPublicKey
from repro.baselines.rsa import RsaKeyPair
from repro.baselines.elgamal import ElGamalKeyPair
from repro.baselines.fnp04 import fnp_psi
from repro.baselines.fc10 import fc10_psi
from repro.baselines.dh_psi import dh_psi, dh_psi_cardinality
from repro.baselines.dot_product import private_dot_product
from repro.baselines.fine_grained import (
    fine_grained_distance,
    fine_grained_dot_product,
)

__all__ = [
    "ElGamalKeyPair",
    "PaillierKeyPair",
    "PaillierPublicKey",
    "RsaKeyPair",
    "dh_psi",
    "dh_psi_cardinality",
    "fc10_psi",
    "fine_grained_distance",
    "fine_grained_dot_product",
    "fnp_psi",
    "private_dot_product",
]
