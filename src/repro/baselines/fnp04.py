"""Freedman-Nissim-Pinkas private set intersection [10] (EUROCRYPT'04).

The client (initiator, P1) encodes its set as the roots of a polynomial
``P(y) = Π (y − a_i)`` and sends the Paillier-encrypted coefficients.  For
each element *b* of its own set, the server evaluates
``Enc(r·P(b) + b)`` homomorphically (Horner's rule) with a fresh random
*r*, and returns the ciphertexts.  The client decrypts: values that fall in
its own set are intersection elements, everything else is random.

This baseline achieves PPL1 for the *server's* profile against the client
(the client learns the intersection) and is the canonical expensive PSI the
paper's Tables III/VII compare against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.counters import NULL_COUNTER, OpCounter
from repro.baselines.paillier import PaillierKeyPair
from repro.crypto.hashes import sha256_int

__all__ = ["fnp_psi", "FnpTranscript", "element_to_plaintext"]


def element_to_plaintext(element: str, modulus: int) -> int:
    """Map a set element to the plaintext space (hash truncated mod n)."""
    return sha256_int(element.encode("utf-8")) % modulus


def _poly_from_roots(roots: list[int], modulus: int) -> list[int]:
    """Coefficients (low→high) of Π (y − r) over Z_modulus."""
    coeffs = [1]
    for root in roots:
        coeffs = [0] + coeffs  # multiply by y
        for i in range(len(coeffs) - 1):
            coeffs[i] = (coeffs[i] - root * coeffs[i + 1]) % modulus
    return coeffs


@dataclass
class FnpTranscript:
    """Everything exchanged during one FNP run, for cost accounting."""

    encrypted_coefficients: list[int]
    response_ciphertexts: list[int]

    def communication_bits(self, modulus_bits: int) -> int:
        """Total transmitted ciphertext bits (each is 2·|n| bits)."""
        total = len(self.encrypted_coefficients) + len(self.response_ciphertexts)
        return total * 2 * modulus_bits


def fnp_psi(
    client_set: list[str],
    server_set: list[str],
    *,
    keypair: PaillierKeyPair | None = None,
    key_bits: int = 1024,
    rng: random.Random | None = None,
    client_counter: OpCounter = NULL_COUNTER,
    server_counter: OpCounter = NULL_COUNTER,
) -> tuple[set[str], FnpTranscript]:
    """Run the complete FNP protocol; returns (intersection, transcript).

    The client learns the intersection; the server learns nothing (in the
    HBC model).  Pass a pre-generated *keypair* to amortize key generation
    across benchmark iterations.
    """
    rng = rng or random
    if keypair is None:
        keypair = PaillierKeyPair.generate(key_bits, rng=rng)
    public = keypair.public
    n = public.n

    # --- Client: polynomial from roots, encrypt every coefficient.
    client_plain = {element_to_plaintext(e, n): e for e in client_set}
    coeffs = _poly_from_roots(list(client_plain), n)
    encrypted_coeffs = [public.encrypt(c, rng=rng, counter=client_counter) for c in coeffs]

    # --- Server: for each own element evaluate Enc(r*P(b) + b) via Horner.
    responses = []
    for element in server_set:
        b = element_to_plaintext(element, n)
        acc = encrypted_coeffs[-1]
        for coeff_ct in reversed(encrypted_coeffs[:-1]):
            acc = public.scalar_mul(acc, b, counter=server_counter)  # acc^b = Enc(b*acc)
            acc = public.add(acc, coeff_ct, counter=server_counter)
        r = rng.randrange(1, n)
        acc = public.scalar_mul(acc, r, counter=server_counter)  # Enc(r*P(b))
        b_ct = public.encrypt(b, rng=rng, counter=server_counter)
        responses.append(public.add(acc, b_ct, counter=server_counter))

    # --- Client: decrypt; plaintexts landing in the client set intersect.
    intersection = set()
    for ct in responses:
        value = keypair.decrypt(ct, counter=client_counter)
        if value in client_plain:
            intersection.add(client_plain[value])
    return intersection, FnpTranscript(encrypted_coeffs, responses)
