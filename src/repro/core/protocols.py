"""The three privacy-preserving profile matching protocols (Sec. III-E).

Protocol 1
    The sealed message carries a public confirmation string, so a candidate
    self-verifies and only a *matching* user replies (one reply element).
Protocol 2
    No confirmation: a candidate cannot tell which candidate key is right,
    so it replies one acknowledge element per candidate key.  The initiator
    filters replies by a time window and a reply-cardinality threshold,
    which exposes dictionary-armed repliers (their candidate sets are huge
    and slow).
Protocol 3
    Protocol 2 plus a participant-side φ-entropy budget limiting which
    candidate profiles the participant is willing to test at all.

All three complete profile matching and key exchange in a single
broadcast + unicast-replies round.
"""

from __future__ import annotations

import os
import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.counters import NULL_COUNTER, OpCounter
from repro.core.attributes import Profile, RequestProfile
from repro.core.channel import group_session_key, pair_session_key
from repro.core.entropy import EntropyPolicy
from repro.core.matching import (
    SECRET_LEN,
    InitiatorSecret,
    MatchOutcome,
    build_request,
    process_request,
    unseal_many,
)
from repro.core.profile_vector import ParticipantVector
from repro.core.remainder import EnumerationBudget
from repro.core.request import RequestPackage
from repro.crypto.backend import current_backend
from repro.crypto.hashes import hmac_sha256

__all__ = [
    "ACK",
    "Reply",
    "MatchRecord",
    "RejectedReply",
    "Initiator",
    "Participant",
    "build_reply_element",
    "open_reply_element",
    "open_reply_elements",
]

ACK = b"SEALED-BTL-ACK1"[:15]  # 15 bytes; 16th byte carries the similarity
_REPLY_PLAINTEXT_LEN = 48  # ACK(15) + similarity(1) + y(32)
DEFAULT_REPLY_WINDOW_MS = 5_000
DEFAULT_MAX_REPLY_ELEMENTS = 16


@dataclass(frozen=True)
class Reply:
    """A participant's acknowledge set for one request."""

    request_id: bytes
    responder_id: str
    elements: tuple[bytes, ...]
    sent_at_ms: int


@dataclass(frozen=True)
class MatchRecord:
    """Initiator-side record of one verified matching user."""

    responder_id: str
    y: bytes
    similarity: int
    session_key: bytes


@dataclass(frozen=True)
class RejectedReply:
    """A reply the initiator discarded, with the reason (Sec. III-E, step 3)."""

    responder_id: str
    reason: str


def _reply_plaintext(similarity: int, y: bytes) -> bytes:
    """The reply-element payload ``ack || similarity || y`` (one layout)."""
    if len(y) != SECRET_LEN:
        raise ValueError("y must be 32 bytes")
    plaintext = ACK + bytes([min(similarity, 255)]) + y
    assert len(plaintext) == _REPLY_PLAINTEXT_LEN
    return plaintext


def build_reply_element(
    x_candidate: bytes, y: bytes, similarity: int, counter: OpCounter = NULL_COUNTER
) -> bytes:
    """Encrypt ``(ack, similarity, y)`` under one candidate ``x_j``."""
    if len(x_candidate) != SECRET_LEN:
        raise ValueError("x must be 32 bytes")
    plaintext = _reply_plaintext(similarity, y)
    if counter is not NULL_COUNTER:
        counter.add("E", len(plaintext) // 16)
    return current_backend().encrypt_ecb(x_candidate, plaintext)


def open_reply_element(
    x: bytes, element: bytes, counter: OpCounter = NULL_COUNTER
) -> tuple[int, bytes] | None:
    """Try to open one reply element with the true ``x``.

    Returns ``(similarity, y)`` when the ACK verifies, else ``None`` --
    which proves the replier did not actually recover ``x`` (anti-cheating,
    Sec. IV-A3).
    """
    if len(element) != _REPLY_PLAINTEXT_LEN:
        return None
    if counter is not NULL_COUNTER:
        counter.add("D", len(element) // 16)
    plaintext = current_backend().decrypt_ecb(x, element)
    if counter is not NULL_COUNTER:
        counter.add("CMP256")
    if plaintext[: len(ACK)] != ACK:
        return None
    similarity = plaintext[len(ACK)]
    y = plaintext[len(ACK) + 1 :]
    return similarity, y


def open_reply_elements(
    x: bytes, elements: Sequence[bytes], counter: OpCounter = NULL_COUNTER
) -> tuple[int, bytes] | None:
    """Open a whole acknowledge set with the true ``x`` in one batched pass.

    All elements of one reply share the key, so the entire set decrypts
    as a single buffer -- one schedule lookup and one round loop for the
    reply instead of one per element.  Returns the first element's
    ``(similarity, y)`` whose ACK verifies (element order is preserved,
    matching the sequential scan it replaces), else ``None``.

    *counter* records the protocol cost model of that sequential scan --
    ``D``/``CMP256`` per element examined, stopping at the verifying one,
    exactly what per-element :func:`open_reply_element` calls would have
    recorded -- so Table III comparisons are unaffected by the batching
    (the batched call itself decrypts the whole set; the over-decryption
    beyond the verifying element is the price of one-call batching).
    """
    valid = [e for e in elements if len(e) == _REPLY_PLAINTEXT_LEN]
    if not valid:
        return None
    opened = current_backend().decrypt_ecb(x, b"".join(valid))
    ack_len = len(ACK)
    for i in range(len(valid)):
        if counter is not NULL_COUNTER:
            counter.add("D", _REPLY_PLAINTEXT_LEN // 16)
            counter.add("CMP256")
        plaintext = opened[i * _REPLY_PLAINTEXT_LEN : (i + 1) * _REPLY_PLAINTEXT_LEN]
        if plaintext[:ack_len] == ACK:
            return plaintext[ack_len], plaintext[ack_len + 1 :]
    return None


class Initiator:
    """Initiator-side protocol driver for one friending request."""

    def __init__(
        self,
        request: RequestProfile,
        *,
        protocol: int = 2,
        p: int = 11,
        reply_window_ms: int = DEFAULT_REPLY_WINDOW_MS,
        max_reply_elements: int = DEFAULT_MAX_REPLY_ELEMENTS,
        binding: bytes | None = None,
        ttl: int = 8,
        validity_ms: int = 60_000,
        rng: random.Random | None = None,
        counter: OpCounter = NULL_COUNTER,
    ):
        self.request = request
        self.protocol = protocol
        self.p = p
        self.reply_window_ms = reply_window_ms
        self.max_reply_elements = max_reply_elements
        self.binding = binding
        self.ttl = ttl
        self.validity_ms = validity_ms
        self.rng = rng
        self.counter = counter
        self.secret: InitiatorSecret | None = None
        self.sent_at_ms: int | None = None
        self.matches: list[MatchRecord] = []
        self.rejected: list[RejectedReply] = []

    def create_request(self, now_ms: int = 0) -> RequestPackage:
        """Build and remember the request package (one broadcast)."""
        package, secret = build_request(
            self.request,
            protocol=self.protocol,
            p=self.p,
            binding=self.binding,
            ttl=self.ttl,
            now_ms=now_ms,
            validity_ms=self.validity_ms,
            rng=self.rng,
            counter=self.counter,
        )
        self.secret = secret
        self.sent_at_ms = now_ms
        return package

    def handle_reply(self, reply: Reply, now_ms: int) -> MatchRecord | None:
        """Validate one reply; record and return a match if it verifies.

        Implements the initiator-side malicious-replier exclusion: replies
        arriving outside the time window or carrying more elements than the
        cardinality threshold are rejected unopened.
        """
        if self.secret is None or self.sent_at_ms is None:
            raise RuntimeError("create_request must be called before handling replies")
        if reply.request_id != self.secret.request_id:
            self.rejected.append(RejectedReply(reply.responder_id, "unknown request id"))
            return None
        if now_ms - self.sent_at_ms > self.reply_window_ms:
            self.rejected.append(RejectedReply(reply.responder_id, "outside time window"))
            return None
        if len(reply.elements) > self.max_reply_elements:
            self.rejected.append(RejectedReply(reply.responder_id, "reply set too large"))
            return None
        # Every element of one reply is sealed under candidate keys but
        # opened with the same true x, so the whole acknowledge set
        # decrypts as one batched buffer.
        opened = open_reply_elements(self.secret.x, reply.elements, self.counter)
        if opened is not None:
            similarity, y = opened
            record = MatchRecord(
                responder_id=reply.responder_id,
                y=y,
                similarity=similarity,
                session_key=pair_session_key(self.secret.x, y),
            )
            self.matches.append(record)
            return record
        self.rejected.append(RejectedReply(reply.responder_id, "no element verified"))
        return None

    def best_match(self) -> MatchRecord | None:
        """The verified match with the highest reported similarity."""
        return max(self.matches, key=lambda m: m.similarity, default=None)

    def group_key(self) -> bytes:
        """The community key ``x`` shared with all matching users."""
        if self.secret is None:
            raise RuntimeError("create_request must be called first")
        return group_session_key(self.secret.x)


class Participant:
    """Participant-side protocol driver (relay user / candidate / match)."""

    def __init__(
        self,
        profile: Profile,
        *,
        mode: str = "robust",
        entropy_policy: EntropyPolicy | None = None,
        binding: bytes | None = None,
        budget: EnumerationBudget | None = None,
        reply_min_interval_ms: int = 0,
        rng: random.Random | None = None,
        counter: OpCounter = NULL_COUNTER,
    ):
        self.profile = profile
        self.mode = mode
        self.entropy_policy = entropy_policy
        self.binding = binding
        self.budget_template = budget
        self.reply_min_interval_ms = reply_min_interval_ms
        self.rng = rng
        # Seeded participants derive the per-request reply secret ``y``
        # from one master secret via a PRF of the request id, so the
        # bytes a participant sends for request R depend only on (seed,
        # R) -- never on how concurrent episodes interleave.  This is
        # what lets sharded engine runs (``FriendingEngine.run_parallel``)
        # reproduce sequential runs byte for byte.
        self._y_seed = rng.randbytes(SECRET_LEN) if rng is not None else None
        self.counter = counter
        # Hash/sort once and reuse until the attributes change (Sec. IV-B1).
        self.vector = ParticipantVector.from_profile(profile, binding=binding, counter=counter)
        self.last_outcome: MatchOutcome | None = None
        self._pending_secrets: dict[bytes, list[tuple[bytes, bytes]]] = {}
        # Cumulative disclosure ledger: the phi budget applies to the union
        # of everything this participant has ever been willing to test, so
        # repeated probing cannot drain attributes one request at a time.
        self._disclosed: set[str] = set()
        self._seen_requests: set[bytes] = set()
        self._last_reply_ms: int | None = None

    def handle_request(self, package: RequestPackage, now_ms: int = 0) -> Reply | None:
        """Process a request package; return an acknowledge reply or None.

        Returning ``None`` means the participant only relays the package
        (non-candidate, expired request, or empty post-policy key set).
        """
        if package.is_expired(now_ms):
            return None
        # Each request is answered at most once, and replies are throttled
        # (the paper's request-frequency defence, Sec. III-E).
        if package.request_id in self._seen_requests:
            return None
        self._seen_requests.add(package.request_id)
        if (
            self.reply_min_interval_ms
            and self._last_reply_ms is not None
            and now_ms - self._last_reply_ms < self.reply_min_interval_ms
        ):
            return None
        budget = EnumerationBudget(
            max_candidates=(self.budget_template.max_candidates if self.budget_template else 256),
            max_visits=(self.budget_template.max_visits if self.budget_template else 100_000),
        )
        outcome = process_request(
            self.vector,
            package,
            mode=self.mode,
            budget=budget,
            counter=self.counter,
        )
        self.last_outcome = outcome
        if not outcome.candidate:
            return None

        if package.protocol == 1:
            reply = self._reply_protocol1(package, outcome, now_ms)
        else:
            reply = self._reply_protocol23(package, outcome, now_ms)
        if reply is not None:
            self._last_reply_ms = now_ms
        return reply

    def _reply_protocol1(
        self, package: RequestPackage, outcome: MatchOutcome, now_ms: int
    ) -> Reply | None:
        if outcome.x is None:
            return None  # candidate but not matching: nothing to say
        matched_vector = next(
            vec for vec, key in zip(outcome.recovered_vectors, outcome.keys)
            if key == outcome.matched_key
        )
        similarity = len(set(self.vector.values) & set(matched_vector))
        y = self._random_secret(package.request_id)
        element = build_reply_element(outcome.x, y, similarity, self.counter)
        self._pending_secrets.setdefault(package.request_id, []).append((outcome.x, y))
        return Reply(
            request_id=package.request_id,
            responder_id=self.profile.user_id,
            elements=(element,),
            sent_at_ms=now_ms,
        )

    def _reply_protocol23(
        self, package: RequestPackage, outcome: MatchOutcome, now_ms: int
    ) -> Reply | None:
        keys = outcome.keys
        vectors = outcome.recovered_vectors
        if package.protocol == 3 and self.entropy_policy is not None:
            exposures = [self._own_attributes_in(v) for v in vectors]
            chosen = self.entropy_policy.select(
                exposures, already_disclosed=frozenset(self._disclosed)
            )
            keys = [keys[i] for i in chosen]
            vectors = [vectors[i] for i in chosen]
            for i in chosen:
                self._disclosed |= exposures[i]
        if not keys:
            return None
        y = self._random_secret(package.request_id)
        # Both halves of reply building are batched: the sealed message is
        # trial-decrypted under every candidate key in one pass, and the
        # same (ack, similarity=0, y) payload is sealed under every
        # recovered x candidate in one pass.
        x_candidates = unseal_many(keys, package.ciphertext, self.counter)
        plaintext = _reply_plaintext(0, y)
        if self.counter is not NULL_COUNTER:
            self.counter.add("E", (len(plaintext) // 16) * len(x_candidates))
        elements = current_backend().seal_many(x_candidates, plaintext)
        self._pending_secrets.setdefault(package.request_id, []).extend(
            (x_candidate, y) for x_candidate in x_candidates
        )
        return Reply(
            request_id=package.request_id,
            responder_id=self.profile.user_id,
            elements=tuple(elements),
            sent_at_ms=now_ms,
        )

    def _own_attributes_in(self, recovered_vector: tuple[int, ...]) -> frozenset[str]:
        """Which of the participant's own attributes a candidate would expose."""
        recovered = set(recovered_vector)
        return frozenset(
            attr for attr, h in zip(self.vector.attributes, self.vector.values) if h in recovered
        )

    def channel_keys(self, request_id: bytes) -> list[bytes]:
        """Candidate pairwise session keys for a request this user replied to.

        Under Protocols 2/3 the participant does not learn whether it
        matched until the initiator opens the channel; it then tries each
        candidate ``(x_j, y)`` pair it replied with.
        """
        return [
            pair_session_key(x_candidate, y)
            for x_candidate, y in self._pending_secrets.get(request_id, [])
        ]

    def _random_secret(self, request_id: bytes) -> bytes:
        if self._y_seed is not None:
            return hmac_sha256(self._y_seed, request_id)
        return os.urandom(SECRET_LEN)
