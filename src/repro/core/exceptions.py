"""Exception hierarchy for the sealed-bottle core."""

from __future__ import annotations

__all__ = [
    "SealedBottleError",
    "InvalidRequestError",
    "MatchingError",
    "HintSolveError",
    "SerializationError",
    "PolicyViolation",
]


class SealedBottleError(Exception):
    """Base class for all errors raised by :mod:`repro.core`."""


class InvalidRequestError(SealedBottleError):
    """A request package is malformed or violates protocol parameters."""


class MatchingError(SealedBottleError):
    """The matching engine hit an unrecoverable inconsistency."""


class HintSolveError(SealedBottleError):
    """The hint-matrix linear system is unsolvable or inconsistent."""


class SerializationError(SealedBottleError):
    """Wire-format encoding or decoding failed."""


class PolicyViolation(SealedBottleError):
    """An operation would exceed a user's privacy policy (e.g. entropy cap)."""
