"""Hexagonal-lattice location hashing and private vicinity search (Sec. III-D).

Locations are snapped to the hexagonal lattice spanned by the primitive
vectors ``a1 = (d, 0)`` and ``a2 = (d/2, √3·d/2)`` (Eq. 15).  A user's
*vicinity region* is the set of lattice points within the search range D of
their own snapped cell centre; hashing those points like ordinary
attributes turns "are we within distance ≈D of each other?" into the same
fuzzy set-matching problem the core mechanism already solves:

    match  ⇔  |V_i ∩ V_k| / |V_k| ≥ Θ        (Eq. 16)

Because every participant uses the same lattice spec (origin, cell size d)
and the same range D, |V_k| is a fixed geometry constant and the threshold
translates directly into the β of a fuzzy request.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.attributes import RequestProfile
from repro.crypto.hashes import sha256

__all__ = ["LatticeSpec", "LatticePoint", "vicinity_request", "vicinity_threshold_beta"]

_EPS = 1e-9


@dataclass(frozen=True)
class LatticePoint:
    """A lattice point identified by its integer coordinates ``(u1, u2)``."""

    u1: int
    u2: int


@dataclass(frozen=True)
class LatticeSpec:
    """Publicly agreed lattice: origin O and cell scale d (Sec. III-D1)."""

    origin_x: float = 0.0
    origin_y: float = 0.0
    d: float = 1.0

    def __post_init__(self):
        if self.d <= 0:
            raise ValueError("lattice scale d must be positive")

    def point_xy(self, point: LatticePoint) -> tuple[float, float]:
        """Cartesian coordinates of a lattice point (Eq. 14-15)."""
        x = self.origin_x + point.u1 * self.d + point.u2 * self.d / 2.0
        y = self.origin_y + point.u2 * self.d * math.sqrt(3.0) / 2.0
        return x, y

    def fractional(self, x: float, y: float) -> tuple[float, float]:
        """Real-valued lattice coordinates of a Cartesian location."""
        dy = y - self.origin_y
        dx = x - self.origin_x
        u2 = dy / (self.d * math.sqrt(3.0) / 2.0)
        u1 = (dx - u2 * self.d / 2.0) / self.d
        return u1, u2

    def nearest(self, x: float, y: float) -> LatticePoint:
        """Snap a location to its nearest lattice point (location hash).

        The nearest point is found exactly by scanning the 3×3 integer
        neighbourhood of the real-valued solve -- cheap and provably
        sufficient for this basis.
        """
        fu1, fu2 = self.fractional(x, y)
        best: LatticePoint | None = None
        best_dist = math.inf
        for cu1 in (math.floor(fu1) - 1, math.floor(fu1), math.floor(fu1) + 1, math.ceil(fu1) + 1):
            for cu2 in (math.floor(fu2) - 1, math.floor(fu2), math.floor(fu2) + 1, math.ceil(fu2) + 1):
                candidate = LatticePoint(cu1, cu2)
                px, py = self.point_xy(candidate)
                dist = (px - x) ** 2 + (py - y) ** 2
                if dist < best_dist:
                    best_dist = dist
                    best = candidate
        assert best is not None
        return best

    def vicinity_set(self, x: float, y: float, search_range: float) -> list[LatticePoint]:
        """All lattice points within *search_range* of the snapped centre.

        Includes the centre itself; sorted by (u1, u2) so every user
        enumerates the identical ordered set for the identical location.
        """
        if search_range < 0:
            raise ValueError("search range must be non-negative")
        center = self.nearest(x, y)
        cx, cy = self.point_xy(center)
        radius_cells = int(math.ceil(search_range / self.d)) + 1
        points = []
        for du2 in range(-radius_cells, radius_cells + 1):
            for du1 in range(-2 * radius_cells, 2 * radius_cells + 1):
                candidate = LatticePoint(center.u1 + du1, center.u2 + du2)
                px, py = self.point_xy(candidate)
                if math.hypot(px - cx, py - cy) <= search_range + _EPS:
                    points.append(candidate)
        points.sort(key=lambda pt: (pt.u1, pt.u2))
        return points

    def point_attribute(self, point: LatticePoint) -> str:
        """Canonical attribute string for one lattice point.

        Embeds the lattice spec so requests built over different grids can
        never collide; already in normalized form (no re-normalization
        needed downstream).
        """
        return f"lattice:{self.origin_x!r}|{self.origin_y!r}|{self.d!r}|{point.u1}|{point.u2}"

    def vicinity_attributes(self, x: float, y: float, search_range: float) -> list[str]:
        """The sorted vicinity region as hashable attribute strings."""
        return [self.point_attribute(pt) for pt in self.vicinity_set(x, y, search_range)]

    def cell_binding(self, x: float, y: float) -> bytes:
        """Dynamic key shared by users snapped to the same cell (Sec. III-D3).

        Used to bind static attributes to the current location so the hash
        of the same static attribute differs across cells, hardening
        dictionary profiling.
        """
        return sha256(self.point_attribute(self.nearest(x, y)).encode("utf-8"))


def vicinity_threshold_beta(cardinality: int, theta: float) -> int:
    """β for a vicinity request: minimum common lattice points (Eq. 16)."""
    if not 0.0 < theta <= 1.0:
        raise ValueError("theta must be in (0, 1]")
    return max(1, math.ceil(theta * cardinality))


def vicinity_request(
    spec: LatticeSpec, x: float, y: float, search_range: float, theta: float
) -> RequestProfile:
    """Build the fuzzy request implementing a private vicinity search.

    All vicinity lattice points are optional attributes; a participant
    matches iff it shares at least ``β = ⌈Θ·|V|⌉`` of them, i.e. iff the
    vicinity regions overlap by the required proportion.
    """
    attributes = spec.vicinity_attributes(x, y, search_range)
    beta = vicinity_threshold_beta(len(attributes), theta)
    return RequestProfile(necessary=(), optional=attributes, beta=beta, normalized=True)
