"""High-level application agent: one object per device.

:class:`SealedBottleAgent` is the byte-level application facade a real
deployment would embed: it owns the device's profile, current location,
privacy policy and open sessions, and exposes exactly two inbound entry
points (``handle_datagram`` for request/reply packets, ``handle_session``
for channel traffic).  Everything underneath -- hashing, remainder checks,
hint solving, entropy budgeting, key schedules, wire formats -- is the
machinery from the rest of :mod:`repro.core`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.attributes import Profile, RequestProfile
from repro.core.channel import SecureChannel
from repro.core.entropy import EntropyPolicy
from repro.core.exceptions import SealedBottleError, SerializationError
from repro.core.location import LatticeSpec, vicinity_request
from repro.core.protocols import Initiator, MatchRecord, Participant
from repro.core.wire import (
    FT_REPLY,
    FT_REQUEST,
    FT_SESSION,
    decode_frame,
    decode_payload,
    decode_session_message,
    encode_reply_frame,
    encode_request_frame,
    encode_session_message,
)

__all__ = ["SealedBottleAgent", "AgentEvent"]


@dataclass
class AgentEvent:
    """Something the application layer should know about."""

    kind: str  # "match" | "message" | "relay"
    peer: str = ""
    payload: bytes = b""
    record: MatchRecord | None = None


@dataclass
class _Session:
    channel: SecureChannel
    peer: str


class SealedBottleAgent:
    """One device: profile + location + policies + open sessions.

    Parameters
    ----------
    user_id:
        Stable identifier used in replies (pseudonymous is fine).
    attributes:
        Raw attribute strings; normalized internally.
    lattice / location:
        Optional location context for vicinity search and dynamic keys.
    entropy_policy:
        Optional Protocol 3 disclosure budget.
    """

    def __init__(
        self,
        user_id: str,
        attributes: list[str],
        *,
        lattice: LatticeSpec | None = None,
        location: tuple[float, float] | None = None,
        entropy_policy: EntropyPolicy | None = None,
        protocol: int = 2,
        rng: random.Random | None = None,
    ):
        self.user_id = user_id
        self.protocol = protocol
        self.lattice = lattice
        self.location = location
        self.entropy_policy = entropy_policy
        self.rng = rng or random.Random()
        self._attributes = list(attributes)
        self._participant = self._build_participant()
        self._initiators: dict[bytes, Initiator] = {}
        self._sessions: dict[bytes, _Session] = {}

    # ------------------------------------------------------------------
    # Profile and location lifecycle

    def _build_participant(self) -> Participant:
        return Participant(
            Profile(self._attributes, user_id=self.user_id),
            entropy_policy=self.entropy_policy,
            rng=self.rng,
        )

    @property
    def profile(self) -> Profile:
        """The agent's current normalized profile."""
        return self._participant.profile

    def update_attributes(self, attributes: list[str]) -> None:
        """Replace the profile; hashes are recomputed once (paper Sec. IV-B1)."""
        self._attributes = list(attributes)
        self._participant = self._build_participant()

    def update_location(self, x: float, y: float) -> None:
        """Move the device; vicinity attributes derive from here."""
        self.location = (x, y)

    # ------------------------------------------------------------------
    # Initiating searches

    def search(self, request: RequestProfile, *, now_ms: int = 0, p: int = 11) -> bytes:
        """Start a profile search; returns the frame to broadcast."""
        initiator = Initiator(request, protocol=self.protocol, p=p, rng=self.rng)
        package = initiator.create_request(now_ms=now_ms)
        self._initiators[package.request_id] = initiator
        return encode_request_frame(package)

    def search_vicinity(
        self, search_range: float, theta: float, *, now_ms: int = 0, p: int = 1009
    ) -> bytes:
        """Start a location-private vicinity search from the current location."""
        if self.lattice is None or self.location is None:
            raise SealedBottleError("agent has no lattice/location configured")
        request = vicinity_request(
            self.lattice, self.location[0], self.location[1], search_range, theta
        )
        initiator = Initiator(request, protocol=self.protocol, p=p, rng=self.rng)
        package = initiator.create_request(now_ms=now_ms)
        self._initiators[package.request_id] = initiator
        return encode_request_frame(package)

    def matches(self) -> list[MatchRecord]:
        """All verified matches across outstanding searches."""
        return [m for ini in self._initiators.values() for m in ini.matches]

    # ------------------------------------------------------------------
    # Inbound datagrams

    def handle_datagram(self, data: bytes, *, now_ms: int = 0) -> tuple[bytes | None, AgentEvent | None]:
        """Process one inbound frame (any of the three message classes).

        Returns ``(outbound, event)``: *outbound* is a frame to send back
        towards the packet's origin (a reply, or None), *event* tells the
        application what happened (a verified match, a relay decision, an
        inbound session message).  Malformed frames raise
        :class:`SerializationError` -- a real endpoint drops them.
        """
        frame = decode_frame(data)
        if frame.ftype == FT_REQUEST:
            return self._handle_request(frame, now_ms)
        if frame.ftype == FT_REPLY:
            return None, self._handle_reply(frame, now_ms)
        if frame.ftype == FT_SESSION:
            return None, self.handle_session(data)
        raise SerializationError(f"unknown datagram type {frame.ftype}")  # pragma: no cover

    def _handle_request(self, frame, now_ms: int) -> tuple[bytes | None, AgentEvent | None]:
        package = decode_payload(frame)
        if package.request_id in self._initiators:
            return None, None  # our own broadcast echoed back
        reply = self._participant.handle_request(package, now_ms=now_ms)
        if reply is None:
            return None, AgentEvent(kind="relay")
        return encode_reply_frame(reply), AgentEvent(kind="relay")

    def _handle_reply(self, frame, now_ms: int) -> AgentEvent | None:
        reply = decode_payload(frame)
        initiator = self._initiators.get(reply.request_id)
        if initiator is None:
            return None
        record = initiator.handle_reply(reply, now_ms=now_ms)
        if record is None:
            return None
        session = _Session(
            channel=SecureChannel(record.session_key), peer=record.responder_id
        )
        self._sessions[reply.request_id + record.y[:8]] = session
        return AgentEvent(kind="match", peer=record.responder_id, record=record)

    # ------------------------------------------------------------------
    # Session traffic

    def send_message(self, record: MatchRecord, request_id: bytes, plaintext: bytes) -> bytes:
        """Encrypt a message to a verified match; returns the framed datagram."""
        key = request_id + record.y[:8]
        session = self._sessions.get(key)
        if session is None:
            session = _Session(channel=SecureChannel(record.session_key), peer=record.responder_id)
            self._sessions[key] = session
        return encode_session_message(request_id, session.channel.send(plaintext))

    def handle_session(self, data: bytes) -> AgentEvent | None:
        """Try to read inbound session traffic with every known channel key.

        Under Protocols 2/3 the responder does not know which of its
        candidate secrets was correct until the first authenticated message
        arrives -- this method resolves that by trial verification.
        """
        channel_id, ciphertext = decode_session_message(data)
        # Existing sessions first.
        for session in self._sessions.values():
            try:
                plaintext = session.channel.receive(ciphertext)
            except Exception:
                continue
            return AgentEvent(kind="message", peer=session.peer, payload=plaintext)
        # Candidate keys from requests this agent replied to.
        for key in self._participant.channel_keys(channel_id):
            channel = SecureChannel(key)
            try:
                plaintext = channel.receive(ciphertext)
            except Exception:
                continue
            self._sessions[channel_id] = _Session(channel=channel, peer="initiator")
            return AgentEvent(kind="message", peer="initiator", payload=plaintext)
        return None
