"""Wire formats: the frame envelope and the per-message payload codecs.

Every datagram the simulated radios exchange is one **frame**:

    offset  field        size  notes
    ------  -----------  ----  -------------------------------------------
    0       magic        4     ``b"SBFM"``
    4       version      1     :data:`FRAME_VERSION`; unknown versions rejected
    5       type         1     :data:`FT_REQUEST` / :data:`FT_REPLY` / :data:`FT_SESSION`
    6       ttl          1     live hop budget (routing state, not payload)
    7       seq          1     retransmission wave (requests) / flow sequence
    8       length       4     payload length, big-endian
    12      crc32        4     CRC-32 over bytes 4..12 and the payload
    16      payload      len   one of the three message-class encodings

The envelope carries the *routing* state (TTL, retransmission wave) so a
relay can forward a frame by patching two header bytes and the checksum
without re-encoding the payload -- the payload bytes stay identical hop to
hop, which is what the per-episode byte accounting and the attack modules
rely on.  The CRC makes in-flight corruption (``ChannelModel.corrupt_rate``)
detectable: a frame that fails any envelope check raises
:class:`~repro.core.exceptions.SerializationError` and is dropped by the
receiving endpoint, never half-parsed.

Payload codecs: request packages encode themselves
(:meth:`repro.core.request.RequestPackage.encode`); this module owns the
other two message classes -- the acknowledge reply (request id + element
set) and the session message (channel id + AEAD ciphertext).  Session
messages ride the same envelope as everything else (``FT_SESSION``) rather
than a parallel framing path.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Union

from repro.core.exceptions import SerializationError
from repro.core.protocols import Reply
from repro.core.request import RequestPackage

__all__ = [
    "Frame",
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "FRAME_HEADER_LEN",
    "FT_REQUEST",
    "FT_REPLY",
    "FT_SESSION",
    "FRAME_TYPES",
    "encode_frame",
    "decode_frame",
    "reframe",
    "encode_request_frame",
    "encode_reply_frame",
    "encode_session_frame",
    "decode_payload",
    "flip_bit",
    "encode_reply",
    "decode_reply",
    "reply_wire_size",
    "encode_session_message",
    "decode_session_message",
    "REPLY_MAGIC",
    "REPLY_ELEMENT_LEN",
    "MAX_REPLY_ELEMENTS_WIRE",
    "MAX_RESPONDER_ID_LEN",
]

FRAME_MAGIC = b"SBFM"
FRAME_VERSION = 1
FRAME_HEADER_LEN = 16
FT_REQUEST = 1
FT_REPLY = 2
FT_SESSION = 3
FRAME_TYPES = (FT_REQUEST, FT_REPLY, FT_SESSION)

_MAX_PAYLOAD = 0xFFFF_FFFF
_HEADER = ">BBBBI"  # version, type, ttl, seq, payload length (crc packed after)

REPLY_MAGIC = b"SBRP"
REPLY_ELEMENT_LEN = 48
MAX_REPLY_ELEMENTS_WIRE = 0xFFFF
MAX_RESPONDER_ID_LEN = 255
SESSION_CHANNEL_ID_LEN = 8
MAX_SESSION_CIPHERTEXT = 0xFFFF


@dataclass(frozen=True)
class Frame:
    """One decoded datagram envelope."""

    ftype: int
    payload: bytes
    ttl: int = 0
    seq: int = 0


def encode_frame(ftype: int, payload: bytes, *, ttl: int = 0, seq: int = 0) -> bytes:
    """Wrap *payload* in the versioned frame envelope."""
    if ftype not in FRAME_TYPES:
        raise SerializationError(f"unknown frame type {ftype!r}")
    if not 0 <= ttl <= 255:
        raise SerializationError(f"frame ttl must fit one byte, got {ttl!r}")
    if not 0 <= seq <= 255:
        raise SerializationError(f"frame seq must fit one byte, got {seq!r}")
    if len(payload) > _MAX_PAYLOAD:
        raise SerializationError("frame payload too large")
    header = struct.pack(_HEADER, FRAME_VERSION, ftype, ttl, seq, len(payload))
    crc = zlib.crc32(header) & 0xFFFF_FFFF
    crc = zlib.crc32(payload, crc) & 0xFFFF_FFFF
    return FRAME_MAGIC + header + struct.pack(">I", crc) + payload


def decode_frame(data: bytes) -> Frame:
    """Parse and validate one frame; reject anything malformed.

    Rejection is strict and total: bad magic, unknown version, unknown
    type, truncated header, length mismatch (short *or* trailing bytes)
    and checksum failure all raise
    :class:`~repro.core.exceptions.SerializationError`.
    """
    if len(data) < FRAME_HEADER_LEN:
        raise SerializationError("frame shorter than its header")
    if data[:4] != FRAME_MAGIC:
        raise SerializationError("bad frame magic")
    version, ftype, ttl, seq, length = struct.unpack_from(_HEADER, data, 4)
    (crc,) = struct.unpack_from(">I", data, 12)
    if version != FRAME_VERSION:
        raise SerializationError(f"unsupported frame version {version}")
    if ftype not in FRAME_TYPES:
        raise SerializationError(f"unknown frame type {ftype}")
    if len(data) != FRAME_HEADER_LEN + length:
        raise SerializationError("frame length field does not match the datagram")
    payload = data[FRAME_HEADER_LEN:]
    expected = zlib.crc32(data[4:12]) & 0xFFFF_FFFF
    expected = zlib.crc32(payload, expected) & 0xFFFF_FFFF
    if crc != expected:
        raise SerializationError("frame checksum mismatch")
    return Frame(ftype=ftype, payload=payload, ttl=ttl, seq=seq)


def reframe(frame: bytes, *, ttl: int | None = None, seq: int | None = None) -> bytes:
    """Return *frame* with its TTL and/or wave patched, checksum refreshed.

    This is the relay fast path: the payload is not touched (or validated),
    only the two routing bytes and the CRC change.  Callers must pass a
    frame they already decoded successfully.
    """
    out = bytearray(frame)
    if ttl is not None:
        if not 0 <= ttl <= 255:
            raise SerializationError(f"frame ttl must fit one byte, got {ttl!r}")
        out[6] = ttl
    if seq is not None:
        if not 0 <= seq <= 255:
            raise SerializationError(f"frame seq must fit one byte, got {seq!r}")
        out[7] = seq
    crc = zlib.crc32(bytes(out[4:12])) & 0xFFFF_FFFF
    crc = zlib.crc32(bytes(out[FRAME_HEADER_LEN:]), crc) & 0xFFFF_FFFF
    out[12:16] = struct.pack(">I", crc)
    return bytes(out)


def flip_bit(data: bytes, bit_index: int) -> bytes:
    """Return *data* with one bit flipped (indices wrap modulo the length).

    The in-flight-corruption primitive shared by the channel model and
    the MITM attacker; the envelope CRC guarantees the result fails
    :func:`decode_frame`.
    """
    if not data:
        return data
    out = bytearray(data)
    out[(bit_index // 8) % len(out)] ^= 1 << (bit_index % 8)
    return bytes(out)


def encode_request_frame(
    package: RequestPackage, *, ttl: int | None = None, seq: int = 0
) -> bytes:
    """Encode a request package into a broadcast-ready frame.

    The envelope TTL is the *live* hop budget and defaults to the package's
    initial ``ttl`` field; relays decrement the envelope copy only.
    """
    return encode_frame(
        FT_REQUEST,
        package.encode(),
        ttl=package.ttl if ttl is None else ttl,
        seq=seq,
    )


def encode_reply_frame(reply: Reply, *, ttl: int = 0, seq: int = 0) -> bytes:
    """Encode an acknowledge reply into a unicast-ready frame."""
    return encode_frame(FT_REPLY, encode_reply(reply), ttl=ttl, seq=seq)


def encode_session_frame(channel_id: bytes, ciphertext: bytes, *, ttl: int = 0) -> bytes:
    """Frame one authenticated session message (``FT_SESSION``).

    *channel_id* is a public 8-byte routing tag (e.g. the request id) so
    relays can route without learning anything about the content.
    """
    if len(channel_id) != SESSION_CHANNEL_ID_LEN:
        raise SerializationError(
            f"channel id must be {SESSION_CHANNEL_ID_LEN} bytes, got {len(channel_id)}"
        )
    if len(ciphertext) > MAX_SESSION_CIPHERTEXT:
        raise SerializationError("session message too large for one frame")
    return encode_frame(FT_SESSION, channel_id + ciphertext, ttl=ttl)


def decode_payload(frame: Frame) -> Union[RequestPackage, Reply, tuple[bytes, bytes]]:
    """Decode a frame's payload according to its type tag.

    Returns a :class:`RequestPackage`, a :class:`Reply`, or a
    ``(channel_id, ciphertext)`` pair for session frames.
    """
    if frame.ftype == FT_REQUEST:
        return RequestPackage.decode(frame.payload)
    if frame.ftype == FT_REPLY:
        return decode_reply(frame.payload)
    if frame.ftype == FT_SESSION:
        if len(frame.payload) < SESSION_CHANNEL_ID_LEN:
            raise SerializationError("session payload shorter than its channel id")
        return frame.payload[:SESSION_CHANNEL_ID_LEN], frame.payload[SESSION_CHANNEL_ID_LEN:]
    raise SerializationError(f"unknown frame type {frame.ftype}")  # pragma: no cover


# -- reply payload codec ----------------------------------------------------


def encode_reply(reply: Reply) -> bytes:
    """Serialize a :class:`~repro.core.protocols.Reply` to bytes.

    Every boundary is a typed :class:`SerializationError`, never a raw
    ``struct.error``: responder ids longer than
    :data:`MAX_RESPONDER_ID_LEN` encoded bytes, elements that are not
    exactly :data:`REPLY_ELEMENT_LEN` bytes, acknowledge sets larger than
    :data:`MAX_REPLY_ELEMENTS_WIRE`, request ids that are not 8 bytes and
    timestamps outside the unsigned 64-bit range are all rejected.
    """
    responder = reply.responder_id.encode("utf-8")
    if len(responder) > MAX_RESPONDER_ID_LEN:
        raise SerializationError(
            f"responder id too long: {len(responder)} bytes > {MAX_RESPONDER_ID_LEN}"
        )
    if len(reply.request_id) != 8:
        raise SerializationError("reply request id must be 8 bytes")
    if len(reply.elements) > MAX_REPLY_ELEMENTS_WIRE:
        raise SerializationError(
            f"acknowledge set too large: {len(reply.elements)} elements "
            f"> {MAX_REPLY_ELEMENTS_WIRE}"
        )
    if not 0 <= reply.sent_at_ms <= 0xFFFF_FFFF_FFFF_FFFF:
        raise SerializationError(f"sent_at_ms out of range: {reply.sent_at_ms!r}")
    for element in reply.elements:
        if len(element) != REPLY_ELEMENT_LEN:
            raise SerializationError(
                f"reply elements must be {REPLY_ELEMENT_LEN} bytes, got {len(element)}"
            )
    out = bytearray()
    out += REPLY_MAGIC
    out += struct.pack(">8sQHB", reply.request_id, reply.sent_at_ms, len(reply.elements), len(responder))
    out += responder
    for element in reply.elements:
        out += element
    return bytes(out)


def decode_reply(data: bytes) -> Reply:
    """Parse bytes back into a Reply."""
    try:
        if data[:4] != REPLY_MAGIC:
            raise SerializationError("bad reply magic")
        offset = 4
        request_id, sent_at_ms, n_elements, id_len = struct.unpack_from(">8sQHB", data, offset)
        offset += struct.calcsize(">8sQHB")
        responder = data[offset : offset + id_len].decode("utf-8")
        offset += id_len
        elements = []
        for _ in range(n_elements):
            element = data[offset : offset + REPLY_ELEMENT_LEN]
            if len(element) != REPLY_ELEMENT_LEN:
                raise SerializationError("truncated reply element")
            elements.append(element)
            offset += REPLY_ELEMENT_LEN
        if offset != len(data):
            raise SerializationError("trailing bytes after reply")
    except (struct.error, UnicodeDecodeError) as exc:
        raise SerializationError(f"malformed reply: {exc}") from exc
    return Reply(
        request_id=request_id,
        responder_id=responder,
        elements=tuple(elements),
        sent_at_ms=sent_at_ms,
    )


def reply_wire_size(n_elements: int, responder_id: str = "") -> int:
    """Size in bytes of an encoded reply payload with *n_elements* elements."""
    return 4 + struct.calcsize(">8sQHB") + len(responder_id.encode("utf-8")) + (
        n_elements * REPLY_ELEMENT_LEN
    )


# -- session message convenience wrappers -----------------------------------


def encode_session_message(channel_id: bytes, ciphertext: bytes) -> bytes:
    """Frame one session message as a full ``FT_SESSION`` datagram.

    Thin wrapper over :func:`encode_session_frame`, kept for the agent
    API; session traffic shares the one frame envelope.
    """
    return encode_session_frame(channel_id, ciphertext)


def decode_session_message(data: bytes) -> tuple[bytes, bytes]:
    """Unframe a session datagram; returns (channel_id, ciphertext)."""
    frame = decode_frame(data)
    if frame.ftype != FT_SESSION:
        raise SerializationError(f"expected a session frame, got type {frame.ftype}")
    return decode_payload(frame)
