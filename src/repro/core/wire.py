"""Wire formats for replies and session messages.

The request package has its own encoding in :mod:`repro.core.request`;
this module covers the other two message classes so the whole protocol can
run over raw datagrams: the acknowledge reply (request id + element set)
and the framed session message (channel id + AEAD ciphertext).  Byte
layouts are what the network simulator and communication-cost benches
account.
"""

from __future__ import annotations

import struct

from repro.core.exceptions import SerializationError
from repro.core.protocols import Reply

__all__ = [
    "encode_reply",
    "decode_reply",
    "reply_wire_size",
    "encode_session_message",
    "decode_session_message",
    "REPLY_MAGIC",
    "SESSION_MAGIC",
]

REPLY_MAGIC = b"SBRP"
SESSION_MAGIC = b"SBSM"
_ELEMENT_LEN = 48
_MAX_RESPONDER_ID = 255


def encode_reply(reply: Reply) -> bytes:
    """Serialize a :class:`~repro.core.protocols.Reply` to bytes."""
    responder = reply.responder_id.encode("utf-8")
    if len(responder) > _MAX_RESPONDER_ID:
        raise SerializationError("responder id too long")
    for element in reply.elements:
        if len(element) != _ELEMENT_LEN:
            raise SerializationError(
                f"reply elements must be {_ELEMENT_LEN} bytes, got {len(element)}"
            )
    out = bytearray()
    out += REPLY_MAGIC
    out += struct.pack(">8sQHB", reply.request_id, reply.sent_at_ms, len(reply.elements), len(responder))
    out += responder
    for element in reply.elements:
        out += element
    return bytes(out)


def decode_reply(data: bytes) -> Reply:
    """Parse bytes back into a Reply."""
    try:
        if data[:4] != REPLY_MAGIC:
            raise SerializationError("bad reply magic")
        offset = 4
        request_id, sent_at_ms, n_elements, id_len = struct.unpack_from(">8sQHB", data, offset)
        offset += struct.calcsize(">8sQHB")
        responder = data[offset : offset + id_len].decode("utf-8")
        offset += id_len
        elements = []
        for _ in range(n_elements):
            element = data[offset : offset + _ELEMENT_LEN]
            if len(element) != _ELEMENT_LEN:
                raise SerializationError("truncated reply element")
            elements.append(element)
            offset += _ELEMENT_LEN
        if offset != len(data):
            raise SerializationError("trailing bytes after reply")
    except (struct.error, UnicodeDecodeError) as exc:
        raise SerializationError(f"malformed reply: {exc}") from exc
    return Reply(
        request_id=request_id,
        responder_id=responder,
        elements=tuple(elements),
        sent_at_ms=sent_at_ms,
    )


def reply_wire_size(n_elements: int, responder_id: str = "") -> int:
    """Size in bytes of an encoded reply with *n_elements* elements."""
    return 4 + struct.calcsize(">8sQHB") + len(responder_id.encode("utf-8")) + (
        n_elements * _ELEMENT_LEN
    )


def encode_session_message(channel_id: bytes, ciphertext: bytes) -> bytes:
    """Frame one authenticated session message.

    *channel_id* is a public 8-byte routing tag (e.g. the request id) so
    relays can route without learning anything about the content.
    """
    if len(channel_id) != 8:
        raise SerializationError("channel id must be 8 bytes")
    if len(ciphertext) > 0xFFFF:
        raise SerializationError("session message too large for one frame")
    return SESSION_MAGIC + channel_id + struct.pack(">H", len(ciphertext)) + ciphertext


def decode_session_message(data: bytes) -> tuple[bytes, bytes]:
    """Unframe a session message; returns (channel_id, ciphertext)."""
    try:
        if data[:4] != SESSION_MAGIC:
            raise SerializationError("bad session magic")
        channel_id = data[4:12]
        (length,) = struct.unpack_from(">H", data, 12)
        ciphertext = data[14 : 14 + length]
        if len(channel_id) != 8 or len(ciphertext) != length or len(data) != 14 + length:
            raise SerializationError("truncated session message")
    except struct.error as exc:
        raise SerializationError(f"malformed session message: {exc}") from exc
    return channel_id, ciphertext
