"""Wire formats: the frame envelope and the per-message payload codecs.

Every datagram the simulated radios exchange is one **frame**:

    offset  field        size  notes
    ------  -----------  ----  -------------------------------------------
    0       magic        4     ``b"SBFM"``
    4       version      1     :data:`FRAME_VERSION`; unknown versions rejected
    5       type         1     :data:`FT_REQUEST` / :data:`FT_REPLY` / :data:`FT_SESSION`
    6       ttl          1     live hop budget (routing state, not payload)
    7       seq          1     retransmission wave (requests) / flow sequence
    8       length       4     payload length, big-endian
    12      crc32        4     CRC-32 over bytes 4..12 and the payload
    16      payload      len   one of the three message-class encodings

The envelope carries the *routing* state (TTL, retransmission wave) so a
relay can forward a frame by patching two header bytes and the checksum
without re-encoding the payload -- the payload bytes stay identical hop to
hop, which is what the per-episode byte accounting and the attack modules
rely on.  The CRC makes in-flight corruption (``ChannelModel.corrupt_rate``)
detectable: a frame that fails any envelope check raises
:class:`~repro.core.exceptions.SerializationError` and is dropped by the
receiving endpoint, never half-parsed.

Payload codecs: request packages encode themselves
(:meth:`repro.core.request.RequestPackage.encode`); this module owns the
other two message classes -- the acknowledge reply (request id + element
set) and the session message (channel id + AEAD ciphertext).  Session
messages ride the same envelope as everything else (``FT_SESSION``) rather
than a parallel framing path.

Version policy: the type grammar is **per version**.  Frame version 1
carries exactly the three original message classes; frame version 2 adds
the reply **segment** (``FT_REPLY_SEG``) -- one 48-byte reply element per
frame, with a parity tag for the ``window_fec`` reliability mode -- and
carries *only* that type.  A version-1 endpoint therefore rejects every
version-2 frame outright ("unsupported frame version 2") instead of
half-parsing an unknown type, and a version-2 type under a version-1
envelope is equally dead on arrival.  ``docs/wire_format.md`` and the
conformance suite pin both directions.
"""

from __future__ import annotations

import struct
import sys
import zlib
from dataclasses import dataclass
from typing import Union

from repro.core.exceptions import SerializationError
from repro.core.protocols import Reply
from repro.core.request import RequestPackage

__all__ = [
    "Frame",
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "FRAME_VERSION_SEGMENTS",
    "FRAME_HEADER_LEN",
    "FT_REQUEST",
    "FT_REPLY",
    "FT_SESSION",
    "FT_REPLY_SEG",
    "FRAME_TYPES",
    "VERSION_FRAME_TYPES",
    "encode_frame",
    "decode_frame",
    "reframe",
    "patch_frame",
    "encode_request_frame",
    "encode_reply_frame",
    "encode_session_frame",
    "decode_payload",
    "flip_bit",
    "encode_reply",
    "decode_reply",
    "reply_wire_size",
    "encode_session_message",
    "decode_session_message",
    "ReplySegment",
    "encode_reply_segment",
    "decode_reply_segment",
    "encode_segment_frame",
    "segment_wire_size",
    "REPLY_MAGIC",
    "REPLY_ELEMENT_LEN",
    "SEGMENT_MAGIC",
    "MAX_REPLY_ELEMENTS_WIRE",
    "MAX_RESPONDER_ID_LEN",
]

FRAME_MAGIC = b"SBFM"
FRAME_VERSION = 1
FRAME_VERSION_SEGMENTS = 2
FRAME_HEADER_LEN = 16
FT_REQUEST = 1
FT_REPLY = 2
FT_SESSION = 3
FT_REPLY_SEG = 4
FRAME_TYPES = (FT_REQUEST, FT_REPLY, FT_SESSION)

# Per-version type grammars (the version policy): version 1 is the original
# three message classes, frozen; version 2 carries only reply segments.  A
# type under the wrong version is rejected as a *version* problem -- the
# receiving stack never dispatches on a type its version does not define.
VERSION_FRAME_TYPES: dict[int, tuple[int, ...]] = {
    FRAME_VERSION: FRAME_TYPES,
    FRAME_VERSION_SEGMENTS: (FT_REPLY_SEG,),
}

_MAX_PAYLOAD = 0xFFFF_FFFF
_HEADER = ">BBBBI"  # version, type, ttl, seq, payload length (crc packed after)
# Precompiled codecs: every frame passes through these on every hop, so the
# per-call format-string parse of struct.pack/unpack is pure overhead.
_HEADER_STRUCT = struct.Struct(_HEADER)
_CRC_STRUCT = struct.Struct(">I")

REPLY_MAGIC = b"SBRP"
REPLY_ELEMENT_LEN = 48
MAX_REPLY_ELEMENTS_WIRE = 0xFFFF
MAX_RESPONDER_ID_LEN = 255
SESSION_CHANNEL_ID_LEN = 8
MAX_SESSION_CIPHERTEXT = 0xFFFF


@dataclass(frozen=True)
class Frame:
    """One decoded datagram envelope."""

    ftype: int
    payload: bytes
    ttl: int = 0
    seq: int = 0
    version: int = FRAME_VERSION


# One scratch buffer serves every encode: small-frame encodes used to pay
# two allocations (the packed header plus the final concatenation); now the
# header, CRC and payload are assembled in place and only the immutable
# return value is allocated.  Single-threaded by design, like the engine.
_ENCODE_SCRATCH = bytearray(4096)


def encode_frame(
    ftype: int,
    payload: bytes,
    *,
    ttl: int = 0,
    seq: int = 0,
    version: int = FRAME_VERSION,
) -> bytes:
    """Wrap *payload* in the versioned frame envelope.

    The type must belong to *version*'s grammar
    (:data:`VERSION_FRAME_TYPES`); an endpoint can no more encode a
    version-1 segment frame than decode one.
    """
    global _ENCODE_SCRATCH
    allowed = VERSION_FRAME_TYPES.get(version)
    if allowed is None:
        raise SerializationError(f"unsupported frame version {version!r}")
    if ftype not in allowed:
        if ftype in FRAME_TYPES or ftype == FT_REPLY_SEG:
            raise SerializationError(
                f"frame type {ftype!r} is not valid under frame version {version}"
            )
        raise SerializationError(f"unknown frame type {ftype!r}")
    if not 0 <= ttl <= 255:
        raise SerializationError(f"frame ttl must fit one byte, got {ttl!r}")
    if not 0 <= seq <= 255:
        raise SerializationError(f"frame seq must fit one byte, got {seq!r}")
    if len(payload) > _MAX_PAYLOAD:
        raise SerializationError("frame payload too large")
    total = FRAME_HEADER_LEN + len(payload)
    if len(_ENCODE_SCRATCH) < total:
        _ENCODE_SCRATCH = bytearray(total)
    buf = _ENCODE_SCRATCH
    buf[0:4] = FRAME_MAGIC
    _HEADER_STRUCT.pack_into(buf, 4, version, ftype, ttl, seq, len(payload))
    buf[FRAME_HEADER_LEN:total] = payload
    crc = zlib.crc32(memoryview(buf)[4:12]) & 0xFFFF_FFFF
    crc = zlib.crc32(payload, crc) & 0xFFFF_FFFF
    _CRC_STRUCT.pack_into(buf, 12, crc)
    return bytes(memoryview(buf)[:total])


def decode_frame(data: bytes) -> Frame:
    """Parse and validate one frame; reject anything malformed.

    Rejection is strict and total: bad magic, unknown version, unknown
    type, truncated header, length mismatch (short *or* trailing bytes)
    and checksum failure all raise
    :class:`~repro.core.exceptions.SerializationError`.
    """
    if len(data) < FRAME_HEADER_LEN:
        raise SerializationError("frame shorter than its header")
    if data[:4] != FRAME_MAGIC:
        raise SerializationError("bad frame magic")
    version, ftype, ttl, seq, length = _HEADER_STRUCT.unpack_from(data, 4)
    (crc,) = _CRC_STRUCT.unpack_from(data, 12)
    allowed = VERSION_FRAME_TYPES.get(version)
    if allowed is None:
        raise SerializationError(f"unsupported frame version {version}")
    if ftype not in allowed:
        if version != FRAME_VERSION:
            raise SerializationError(
                f"frame type {ftype} is not valid under frame version {version}"
            )
        raise SerializationError(f"unknown frame type {ftype}")
    if len(data) != FRAME_HEADER_LEN + length:
        raise SerializationError("frame length field does not match the datagram")
    payload = data[FRAME_HEADER_LEN:]
    expected = zlib.crc32(data[4:12]) & 0xFFFF_FFFF
    expected = zlib.crc32(payload, expected) & 0xFFFF_FFFF
    if crc != expected:
        raise SerializationError("frame checksum mismatch")
    return Frame(ftype=ftype, payload=payload, ttl=ttl, seq=seq, version=version)


# CRC-32 is linear over GF(2): flipping one byte of the message XORs the
# checksum with a delta that depends only on the byte-difference and the
# number of message bytes that follow it.  The tables below cache those
# 256 deltas per tail length, so a relay patching the TTL/wave bytes never
# re-reads the payload: the new CRC is ``old_crc ^ table[old ^ new]``.
# (Derivation: for equal-length messages m, m', crc(m') = crc(m) ^ crc(d)
# ^ crc(0) with d = m ^ m' -- the init/xor-out constants cancel pairwise --
# and for a single-byte difference that XOR depends only on the differing
# byte and its distance from the end.)
_CRC_DELTA_TABLES: dict[int, list[int]] = {}

# Message-offset geometry of the two routing bytes: the CRC covers bytes
# 4..12 of the envelope plus the payload, so the TTL (offset 6) has
# ``len(frame) - 11`` message bytes after it and the seq (offset 7) has
# ``len(frame) - 12``.
_TTL_TAIL_BIAS = 11
_SEQ_TAIL_BIAS = 12


def _crc_delta_table(tail_len: int) -> list[int]:
    """256 CRC deltas for a byte-difference *tail_len* bytes before the end."""
    table = _CRC_DELTA_TABLES.get(tail_len)
    if table is None:
        buf = bytearray(tail_len + 1)
        base = zlib.crc32(buf)
        deltas = []
        for value in range(256):
            buf[0] = value
            deltas.append(zlib.crc32(buf) ^ base)
        table = _CRC_DELTA_TABLES[tail_len] = deltas
    return table


def patch_frame(
    frame: bytearray | memoryview, *, ttl: int | None = None, seq: int | None = None
) -> None:
    """Patch TTL/wave routing bytes of *frame* in place, CRC updated incrementally.

    The zero-copy relay primitive: the payload is neither read nor copied
    -- the two routing bytes are written through the buffer and the CRC is
    refreshed from the cached per-byte-position delta tables
    (O(1) regardless of payload size).  The caller must hand in a frame
    whose embedded CRC is valid (i.e. one that decoded successfully);
    patching a corrupt frame yields another corrupt frame.
    """
    length = len(frame)
    delta = 0
    if ttl is not None:
        if not 0 <= ttl <= 255:
            raise SerializationError(f"frame ttl must fit one byte, got {ttl!r}")
        changed = frame[6] ^ ttl
        if changed:
            delta ^= _crc_delta_table(length - _TTL_TAIL_BIAS)[changed]
            frame[6] = ttl
    if seq is not None:
        if not 0 <= seq <= 255:
            raise SerializationError(f"frame seq must fit one byte, got {seq!r}")
        changed = frame[7] ^ seq
        if changed:
            delta ^= _crc_delta_table(length - _SEQ_TAIL_BIAS)[changed]
            frame[7] = seq
    if delta:
        (crc,) = _CRC_STRUCT.unpack_from(frame, 12)
        _CRC_STRUCT.pack_into(frame, 12, crc ^ delta)


def reframe(frame: bytes, *, ttl: int | None = None, seq: int | None = None) -> bytes:
    """Return *frame* with its TTL and/or wave patched, checksum refreshed.

    This is the relay fast path: the payload is not touched, validated or
    re-encoded -- only the two routing bytes change, and the CRC is
    updated incrementally through :func:`patch_frame` rather than
    recomputed over the datagram.  Callers must pass a frame they already
    decoded successfully (the incremental update extends the embedded
    CRC, so garbage in means garbage out -- exactly like the envelope
    contract demands).
    """
    out = bytearray(frame)
    patch_frame(out, ttl=ttl, seq=seq)
    return bytes(out)


def flip_bit(data: bytes, bit_index: int) -> bytes:
    """Return *data* with one bit flipped (indices wrap modulo the length).

    The in-flight-corruption primitive shared by the channel model and
    the MITM attacker; the envelope CRC guarantees the result fails
    :func:`decode_frame`.
    """
    if not data:
        return data
    out = bytearray(data)
    out[(bit_index // 8) % len(out)] ^= 1 << (bit_index % 8)
    return bytes(out)


def encode_request_frame(
    package: RequestPackage, *, ttl: int | None = None, seq: int = 0
) -> bytes:
    """Encode a request package into a broadcast-ready frame.

    The envelope TTL is the *live* hop budget and defaults to the package's
    initial ``ttl`` field; relays decrement the envelope copy only.
    """
    return encode_frame(
        FT_REQUEST,
        package.encode(),
        ttl=package.ttl if ttl is None else ttl,
        seq=seq,
    )


def encode_reply_frame(reply: Reply, *, ttl: int = 0, seq: int = 0) -> bytes:
    """Encode an acknowledge reply into a unicast-ready frame."""
    return encode_frame(FT_REPLY, encode_reply(reply), ttl=ttl, seq=seq)


def encode_session_frame(channel_id: bytes, ciphertext: bytes, *, ttl: int = 0) -> bytes:
    """Frame one authenticated session message (``FT_SESSION``).

    *channel_id* is a public 8-byte routing tag (e.g. the request id) so
    relays can route without learning anything about the content.
    """
    if len(channel_id) != SESSION_CHANNEL_ID_LEN:
        raise SerializationError(
            f"channel id must be {SESSION_CHANNEL_ID_LEN} bytes, got {len(channel_id)}"
        )
    if len(ciphertext) > MAX_SESSION_CIPHERTEXT:
        raise SerializationError("session message too large for one frame")
    return encode_frame(FT_SESSION, channel_id + ciphertext, ttl=ttl)


def decode_payload(
    frame: Frame,
) -> Union[RequestPackage, Reply, "ReplySegment", tuple[bytes, bytes]]:
    """Decode a frame's payload according to its type tag.

    Returns a :class:`RequestPackage`, a :class:`Reply`, a
    :class:`ReplySegment` (version-2 frames), or a
    ``(channel_id, ciphertext)`` pair for session frames.
    """
    if frame.ftype == FT_REQUEST:
        return RequestPackage.decode(frame.payload)
    if frame.ftype == FT_REPLY:
        return decode_reply(frame.payload)
    if frame.ftype == FT_REPLY_SEG:
        return decode_reply_segment(frame.payload)
    if frame.ftype == FT_SESSION:
        if len(frame.payload) < SESSION_CHANNEL_ID_LEN:
            raise SerializationError("session payload shorter than its channel id")
        return frame.payload[:SESSION_CHANNEL_ID_LEN], frame.payload[SESSION_CHANNEL_ID_LEN:]
    raise SerializationError(f"unknown frame type {frame.ftype}")  # pragma: no cover


# -- reply payload codec ----------------------------------------------------

_REPLY_HEADER_STRUCT = struct.Struct(">8sQHB")


def encode_reply(reply: Reply) -> bytes:
    """Serialize a :class:`~repro.core.protocols.Reply` to bytes.

    Every boundary is a typed :class:`SerializationError`, never a raw
    ``struct.error``: responder ids longer than
    :data:`MAX_RESPONDER_ID_LEN` encoded bytes, elements that are not
    exactly :data:`REPLY_ELEMENT_LEN` bytes, acknowledge sets larger than
    :data:`MAX_REPLY_ELEMENTS_WIRE`, request ids that are not 8 bytes and
    timestamps outside the unsigned 64-bit range are all rejected.
    """
    responder = reply.responder_id.encode("utf-8")
    if len(responder) > MAX_RESPONDER_ID_LEN:
        raise SerializationError(
            f"responder id too long: {len(responder)} bytes > {MAX_RESPONDER_ID_LEN}"
        )
    if len(reply.request_id) != 8:
        raise SerializationError("reply request id must be 8 bytes")
    if len(reply.elements) > MAX_REPLY_ELEMENTS_WIRE:
        raise SerializationError(
            f"acknowledge set too large: {len(reply.elements)} elements "
            f"> {MAX_REPLY_ELEMENTS_WIRE}"
        )
    if not 0 <= reply.sent_at_ms <= 0xFFFF_FFFF_FFFF_FFFF:
        raise SerializationError(f"sent_at_ms out of range: {reply.sent_at_ms!r}")
    for element in reply.elements:
        if len(element) != REPLY_ELEMENT_LEN:
            raise SerializationError(
                f"reply elements must be {REPLY_ELEMENT_LEN} bytes, got {len(element)}"
            )
    out = bytearray()
    out += REPLY_MAGIC
    out += _REPLY_HEADER_STRUCT.pack(
        reply.request_id, reply.sent_at_ms, len(reply.elements), len(responder)
    )
    out += responder
    for element in reply.elements:
        out += element
    return bytes(out)


def decode_reply(data: bytes) -> Reply:
    """Parse bytes back into a Reply.

    Responder ids are interned: a simulation decodes the same node names
    over and over (every hop of every reply), and interning collapses
    them to one shared string whose cached hash makes the endpoint's
    dedup-set and dict lookups identity-fast.
    """
    try:
        if data[:4] != REPLY_MAGIC:
            raise SerializationError("bad reply magic")
        offset = 4
        request_id, sent_at_ms, n_elements, id_len = _REPLY_HEADER_STRUCT.unpack_from(
            data, offset
        )
        offset += _REPLY_HEADER_STRUCT.size
        responder = sys.intern(data[offset : offset + id_len].decode("utf-8"))
        offset += id_len
        elements = []
        for _ in range(n_elements):
            element = data[offset : offset + REPLY_ELEMENT_LEN]
            if len(element) != REPLY_ELEMENT_LEN:
                raise SerializationError("truncated reply element")
            elements.append(element)
            offset += REPLY_ELEMENT_LEN
        if offset != len(data):
            raise SerializationError("trailing bytes after reply")
    except (struct.error, UnicodeDecodeError) as exc:
        raise SerializationError(f"malformed reply: {exc}") from exc
    return Reply(
        request_id=request_id,
        responder_id=responder,
        elements=tuple(elements),
        sent_at_ms=sent_at_ms,
    )


def reply_wire_size(n_elements: int, responder_id: str = "") -> int:
    """Size in bytes of an encoded reply payload with *n_elements* elements."""
    return 4 + _REPLY_HEADER_STRUCT.size + len(responder_id.encode("utf-8")) + (
        n_elements * REPLY_ELEMENT_LEN
    )


# -- reply segment codec (frame version 2) ----------------------------------

SEGMENT_MAGIC = b"SBRS"
_SEGMENT_PARITY_FLAG = 0x01
# rid(8) + sent_at_ms(8) + seg_index(2) + n_data(2) + window(1) + flags(1)
# + responder id length(1); one 48-byte element follows the responder id.
_SEGMENT_HEADER_STRUCT = struct.Struct(">8sQHHBBB")


@dataclass(frozen=True)
class ReplySegment:
    """One reply element travelling alone (the segmented reliability modes).

    A responder's acknowledge reply of *n_data* elements is shipped as
    ``n_data`` data segments (``seg_index`` = element position,
    ``is_parity`` False) plus -- under ``window_fec`` -- one parity
    segment per *window* of elements (``seg_index`` = window position,
    ``element`` = XOR of that window's data elements; the final window
    may cover fewer than *window* elements).  Every segment repeats the
    reply header fields so the initiator can reassemble from any subset.
    """

    request_id: bytes
    responder_id: str
    sent_at_ms: int
    seg_index: int
    n_data: int
    window: int
    is_parity: bool
    element: bytes


def encode_reply_segment(segment: ReplySegment) -> bytes:
    """Serialize one :class:`ReplySegment` payload (``SBRS`` codec)."""
    responder = segment.responder_id.encode("utf-8")
    if len(responder) > MAX_RESPONDER_ID_LEN:
        raise SerializationError(
            f"responder id too long: {len(responder)} bytes > {MAX_RESPONDER_ID_LEN}"
        )
    if len(segment.request_id) != 8:
        raise SerializationError("segment request id must be 8 bytes")
    if not 0 <= segment.sent_at_ms <= 0xFFFF_FFFF_FFFF_FFFF:
        raise SerializationError(f"sent_at_ms out of range: {segment.sent_at_ms!r}")
    if not 0 <= segment.seg_index <= 0xFFFF:
        raise SerializationError(f"segment index out of range: {segment.seg_index!r}")
    if not 1 <= segment.n_data <= MAX_REPLY_ELEMENTS_WIRE:
        raise SerializationError(f"segment n_data out of range: {segment.n_data!r}")
    if not 0 <= segment.window <= 255:
        raise SerializationError(f"segment window out of range: {segment.window!r}")
    if len(segment.element) != REPLY_ELEMENT_LEN:
        raise SerializationError(
            f"segment element must be {REPLY_ELEMENT_LEN} bytes, got {len(segment.element)}"
        )
    flags = _SEGMENT_PARITY_FLAG if segment.is_parity else 0
    return (
        SEGMENT_MAGIC
        + _SEGMENT_HEADER_STRUCT.pack(
            segment.request_id,
            segment.sent_at_ms,
            segment.seg_index,
            segment.n_data,
            segment.window,
            flags,
            len(responder),
        )
        + responder
        + segment.element
    )


def decode_reply_segment(data: bytes) -> ReplySegment:
    """Parse bytes back into a :class:`ReplySegment` (strict, total)."""
    try:
        if data[:4] != SEGMENT_MAGIC:
            raise SerializationError("bad reply segment magic")
        offset = 4
        (
            request_id,
            sent_at_ms,
            seg_index,
            n_data,
            window,
            flags,
            id_len,
        ) = _SEGMENT_HEADER_STRUCT.unpack_from(data, offset)
        offset += _SEGMENT_HEADER_STRUCT.size
        responder = sys.intern(data[offset : offset + id_len].decode("utf-8"))
        if len(responder.encode("utf-8")) != id_len:
            raise SerializationError("truncated responder id")
        offset += id_len
        element = data[offset : offset + REPLY_ELEMENT_LEN]
        if len(element) != REPLY_ELEMENT_LEN:
            raise SerializationError("truncated segment element")
        offset += REPLY_ELEMENT_LEN
        if offset != len(data):
            raise SerializationError("trailing bytes after reply segment")
        if flags & ~_SEGMENT_PARITY_FLAG:
            raise SerializationError(f"unknown segment flags 0x{flags:02x}")
        if n_data < 1:
            raise SerializationError("segment n_data must be >= 1")
    except (struct.error, UnicodeDecodeError) as exc:
        raise SerializationError(f"malformed reply segment: {exc}") from exc
    return ReplySegment(
        request_id=request_id,
        responder_id=responder,
        sent_at_ms=sent_at_ms,
        seg_index=seg_index,
        n_data=n_data,
        window=window,
        is_parity=bool(flags & _SEGMENT_PARITY_FLAG),
        element=element,
    )


def encode_segment_frame(segment: ReplySegment, *, ttl: int = 0, seq: int = 0) -> bytes:
    """Encode one reply segment as a version-2 ``FT_REPLY_SEG`` frame."""
    return encode_frame(
        FT_REPLY_SEG,
        encode_reply_segment(segment),
        ttl=ttl,
        seq=seq,
        version=FRAME_VERSION_SEGMENTS,
    )


def segment_wire_size(responder_id: str = "") -> int:
    """Size in bytes of one encoded segment payload for *responder_id*."""
    return (
        4
        + _SEGMENT_HEADER_STRUCT.size
        + len(responder_id.encode("utf-8"))
        + REPLY_ELEMENT_LEN
    )


# -- session message convenience wrappers -----------------------------------


def encode_session_message(channel_id: bytes, ciphertext: bytes) -> bytes:
    """Frame one session message as a full ``FT_SESSION`` datagram.

    Thin wrapper over :func:`encode_session_frame`, kept for the agent
    API; session traffic shares the one frame envelope.
    """
    return encode_session_frame(channel_id, ciphertext)


def decode_session_message(data: bytes) -> tuple[bytes, bytes]:
    """Unframe a session datagram; returns (channel_id, ciphertext)."""
    frame = decode_frame(data)
    if frame.ftype != FT_SESSION:
        raise SerializationError(f"expected a session frame, got type {frame.ftype}")
    return decode_payload(frame)
