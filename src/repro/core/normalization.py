"""Profile normalization pipeline (paper Sec. III-B).

Because attribute equality is decided by comparing cryptographic hashes, two
attributes that users would consider "the same" must normalize to the same
byte string before hashing.  The paper lists the transformations; this
module implements them in a fixed order:

1. Unicode canonicalization (NFKD) and removal of accents/diacritics.
2. Lower-casing.
3. Abbreviation expansion (extensible dictionary).
4. Conversion of numbers to English words.
5. Removal of punctuation and whitespace.
6. De-pluralization of the trailing word-form.

Semantic equivalence between different words is explicitly out of scope, as
in the paper.
"""

from __future__ import annotations

import re
import string
import unicodedata
from collections.abc import Mapping

__all__ = [
    "DEFAULT_ABBREVIATIONS",
    "OPAQUE_CATEGORIES",
    "normalize_attribute",
    "normalize_profile",
    "number_to_words",
    "singularize",
]

# Machine-generated attribute categories whose values are already canonical
# byte strings; linguistic normalization would corrupt them.  Lattice points
# (Sec. III-D) are the paper's own example of such attributes.
OPAQUE_CATEGORIES = frozenset({"lattice"})

DEFAULT_ABBREVIATIONS: dict[str, str] = {
    "cs": "computer science",
    "ee": "electrical engineering",
    "prof": "professor",
    "dr": "doctor",
    "univ": "university",
    "dept": "department",
    "eng": "engineering",
    "mgmt": "management",
    "intl": "international",
    "assoc": "associate",
    "asst": "assistant",
    "bball": "basketball",
    "nyc": "new york city",
    "sf": "san francisco",
    "usa": "united states",
    "uk": "united kingdom",
}

_ONES = [
    "zero", "one", "two", "three", "four", "five", "six", "seven", "eight",
    "nine", "ten", "eleven", "twelve", "thirteen", "fourteen", "fifteen",
    "sixteen", "seventeen", "eighteen", "nineteen",
]
_TENS = [
    "", "", "twenty", "thirty", "forty", "fifty", "sixty", "seventy",
    "eighty", "ninety",
]
_SCALES = [(10**9, "billion"), (10**6, "million"), (10**3, "thousand"), (100, "hundred")]


def number_to_words(value: int) -> str:
    """Spell a non-negative integer below 10^12 in English words."""
    if value < 0:
        raise ValueError("only non-negative numbers are supported")
    if value >= 10**12:
        raise ValueError("number too large to spell")
    if value < 20:
        return _ONES[value]
    if value < 100:
        tens, ones = divmod(value, 10)
        return _TENS[tens] + ("" if ones == 0 else " " + _ONES[ones])
    for scale, name in _SCALES:
        if value >= scale:
            head, rest = divmod(value, scale)
            spelled = number_to_words(head) + " " + name
            if rest:
                spelled += " " + number_to_words(rest)
            return spelled
    raise AssertionError("unreachable")


def singularize(word: str) -> str:
    """Convert a plural English word-form to singular with simple rules.

    The rules are heuristic (as any rule-based stemmer is) but deterministic,
    which is the property the hashing pipeline actually needs.
    """
    if len(word) <= 3:
        return word
    if word.endswith("ies") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith(("sses", "shes", "ches", "xes", "zes", "uses")):
        return word[:-2]
    if word.endswith("ss") or word.endswith("us") or word.endswith("is"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


_NUMBER_RE = re.compile(r"\d+")
_PUNCT_TABLE = str.maketrans("", "", string.punctuation)


def _strip_accents(text: str) -> str:
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def normalize_attribute(
    raw: str,
    abbreviations: Mapping[str, str] | None = None,
) -> str:
    """Normalize one raw attribute string to its canonical hashable form.

    An attribute may carry a category header separated by ``:`` (e.g.
    ``"interest:Basketball"``); header and value are normalized separately
    and re-joined with ``:`` so categories stay distinguishable.
    """
    if abbreviations is None:
        abbreviations = DEFAULT_ABBREVIATIONS
    head, sep, value = raw.partition(":")
    if sep and head in OPAQUE_CATEGORIES:
        return raw
    if sep:
        return (
            _normalize_fixed_point(head, abbreviations)
            + ":"
            + _normalize_fixed_point(value, abbreviations)
        )
    return _normalize_fixed_point(raw, abbreviations)


def _normalize_fixed_point(text: str, abbreviations: Mapping[str, str]) -> str:
    """Iterate field normalization until stable.

    Joining words can mint new word-forms ("zero"+"s" -> "zeros"; "e"+"e"
    -> the abbreviation "ee"), so a single pass is not idempotent.  Both
    endpoints must map equivalent inputs to the *identical* byte string, so
    we run to a fixed point (bounded -- each pass only shrinks or expands
    through a finite abbreviation table).
    """
    for _ in range(8):
        result = _normalize_field(text, abbreviations)
        if result == text:
            return result
        text = result
    return text


def _spell_number(token: str) -> str:
    """Digit run -> words, falling back to digit-wise beyond 10^12.

    ``number_to_words`` deliberately stops at the scale table's edge;
    normalization must still terminate (and stay digit-free and
    idempotent) for arbitrarily long digit runs, so anything larger is
    spelled one digit at a time ("90010..." -> "nine zero zero one ...").
    """
    value = int(token)
    if value < 10**12:
        return number_to_words(value)
    return " ".join(_ONES[int(d)] for d in token)


def _normalize_field(text: str, abbreviations: Mapping[str, str]) -> str:
    text = _strip_accents(text).lower()
    # Expand abbreviations token-wise before punctuation is removed.
    tokens = re.split(r"[\s\-_/.,;]+", text)
    tokens = [abbreviations.get(tok, tok) for tok in tokens if tok]
    text = " ".join(tokens)
    # Numbers to words so "42" and "forty two" collide.
    text = _NUMBER_RE.sub(lambda m: _spell_number(m.group()), text)
    text = text.translate(_PUNCT_TABLE)
    words = text.split()
    if words:
        words[-1] = singularize(words[-1])
    return "".join(words)


def normalize_profile(
    attributes: list[str] | tuple[str, ...],
    abbreviations: Mapping[str, str] | None = None,
) -> list[str]:
    """Normalize and deduplicate a whole attribute list (order-preserving)."""
    seen: set[str] = set()
    result: list[str] = []
    for raw in attributes:
        canonical = normalize_attribute(raw, abbreviations)
        if canonical and canonical not in seen:
            seen.add(canonical)
            result.append(canonical)
    return result
