"""Secure channel establishment from the exchanged secrets (Sec. III-F).

After matching, the initiator's random ``x`` and the matcher's random ``y``
have been exchanged under profile-key protection: ``x`` only reached users
owning the matching attributes, ``y`` only reached the holder of the true
``x``.  The pairwise session key is derived from ``x‖y``; the group
(community) key from ``x`` alone.  A MITM who does not own the matching
attributes can recover neither, which is the paper's anti-MITM argument.
"""

from __future__ import annotations

from repro.crypto.authenticated import AuthenticatedCipher
from repro.crypto.kdf import hkdf

__all__ = ["pair_session_key", "group_session_key", "SecureChannel"]


def pair_session_key(x: bytes, y: bytes) -> bytes:
    """Derive the pairwise session key from both parties' secrets."""
    return hkdf(x + y, info=b"sealed-bottle pair channel", length=32)


def group_session_key(x: bytes) -> bytes:
    """Derive the community/group key known to every matching user."""
    return hkdf(x, info=b"sealed-bottle group channel", length=32)


class SecureChannel:
    """Authenticated bidirectional channel over an established session key.

    This is deliberately a thin wrapper: the sealed-bottle handshake *is*
    the key exchange, so once ``x``/``y`` are shared the channel is just
    encrypt-then-MAC symmetric messaging.
    """

    def __init__(self, session_key: bytes):
        self._cipher = AuthenticatedCipher(session_key)
        self.messages_sent = 0
        self.messages_received = 0

    @classmethod
    def for_pair(cls, x: bytes, y: bytes) -> "SecureChannel":
        """Channel between the initiator and one matching user."""
        return cls(pair_session_key(x, y))

    @classmethod
    def for_group(cls, x: bytes) -> "SecureChannel":
        """Channel shared by the initiator and all matching users."""
        return cls(group_session_key(x))

    def send(self, plaintext: bytes, nonce: bytes | None = None) -> bytes:
        """Encrypt and authenticate an outgoing message."""
        self.messages_sent += 1
        return self._cipher.encrypt(plaintext, nonce)

    def receive(self, message: bytes) -> bytes:
        """Verify and decrypt an incoming message (raises on tampering)."""
        plaintext = self._cipher.decrypt(message)
        self.messages_received += 1
        return plaintext
