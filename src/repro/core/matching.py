"""Initiator-side request building and participant-side matching (Fig. 1).

This module implements the two halves of the basic mechanism:

- :func:`build_request` -- normalize/hash/sort the request profile, derive
  the profile key, seal the secret, compute remainder vector and (for fuzzy
  search) the hint matrix, and pack everything into a
  :class:`~repro.core.request.RequestPackage`.
- :func:`process_request` -- the relay/candidate pipeline: fast check via
  the remainder vector, candidate enumeration, hint solving, candidate key
  generation and (Protocol 1) trial decryption with confirmation.

Protocol-level message flows (replies, time windows, channels) live in
:mod:`repro.core.protocols`.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field

from repro.analysis.counters import NULL_COUNTER, OpCounter
from repro.core.attributes import Profile, RequestProfile
from repro.core.exceptions import HintSolveError, InvalidRequestError
from repro.core.hint import build_hint_matrix, solve_candidate
from repro.core.profile_vector import ParticipantVector, RequestVector, profile_key
from repro.core.remainder import (
    EnumerationBudget,
    buckets_for,
    is_candidate,
    iter_candidates,
    remainder_vector,
)
from repro.core.request import RequestPackage
from repro.crypto.backend import current_backend

__all__ = [
    "CONFIRMATION",
    "SECRET_LEN",
    "InitiatorSecret",
    "MatchOutcome",
    "build_request",
    "process_request",
    "seal_secret",
    "unseal_many",
    "unseal_secret",
]

# Publicly known confirmation string for Protocol 1 (Sec. III-E).
CONFIRMATION = b"SEALED-BTL-CONFv1"[:16]
SECRET_LEN = 32  # |x| = |y| = 256 bits
_DEFAULT_PRIME = 11
_DEFAULT_TTL = 8
_DEFAULT_VALIDITY_MS = 60_000


@dataclass(frozen=True)
class InitiatorSecret:
    """Initiator-side private state for one outstanding request."""

    x: bytes
    request_key: bytes
    request_vector: RequestVector
    protocol: int
    request_id: bytes


@dataclass
class MatchOutcome:
    """Result of a participant processing one request package.

    ``keys`` holds every distinct candidate profile key; for Protocol 1,
    ``x`` is set iff one of them verified against the confirmation string
    (i.e. the participant proved to itself that it matches).
    """

    candidate: bool
    keys: list[bytes] = field(default_factory=list)
    recovered_vectors: list[tuple[int, ...]] = field(default_factory=list)
    x: bytes | None = None
    matched_key: bytes | None = None
    budget: EnumerationBudget = field(default_factory=EnumerationBudget)

    @property
    def matched(self) -> bool:
        """Protocol 1 only: the participant self-verified as a match."""
        return self.x is not None


def seal_secret(key: bytes, protocol: int, x: bytes, counter: OpCounter = NULL_COUNTER) -> bytes:
    """Encrypt the sealed message for the given protocol.

    Protocol 1 prepends the public confirmation string so a candidate can
    self-verify; Protocols 2/3 seal the bare ``x`` so decryption under any
    key yields *some* plausible value (no confirmation oracle).
    """
    if len(x) != SECRET_LEN:
        raise ValueError(f"x must be {SECRET_LEN} bytes")
    plaintext = (CONFIRMATION + x) if protocol == 1 else x
    if counter is not NULL_COUNTER:
        counter.add("E", len(plaintext) // 16)
    return current_backend().encrypt_ecb(key, plaintext)


def unseal_secret(
    key: bytes, protocol: int, ciphertext: bytes, counter: OpCounter = NULL_COUNTER
) -> tuple[bytes | None, bytes]:
    """Decrypt a sealed message with a candidate key.

    Returns ``(x, raw)`` for Protocol 1 where ``x`` is None unless the
    confirmation verified; for Protocols 2/3 returns ``(None, x_candidate)``
    -- the caller cannot tell whether ``x_candidate`` is correct.
    """
    if counter is not NULL_COUNTER:
        counter.add("D", len(ciphertext) // 16)
    plaintext = current_backend().decrypt_ecb(key, ciphertext)
    if protocol == 1:
        if counter is not NULL_COUNTER:
            counter.add("CMP256")
        if plaintext[: len(CONFIRMATION)] == CONFIRMATION:
            return plaintext[len(CONFIRMATION):], plaintext
        return None, plaintext
    return None, plaintext


def unseal_many(
    keys: list[bytes], ciphertext: bytes, counter: OpCounter = NULL_COUNTER
) -> list[bytes]:
    """Trial-decrypt one sealed message under every candidate key, batched.

    The Protocol 2/3 participant-side hot path: every candidate profile
    key yields *some* plausible ``x`` (no confirmation oracle), so all
    keys must be tried.  The backend amortizes schedule lookup and the
    round loops across the whole key set in one call.
    """
    if counter is not NULL_COUNTER:
        counter.add("D", (len(ciphertext) // 16) * len(keys))
    return current_backend().open_many(keys, ciphertext)


def build_request(
    request: RequestProfile,
    *,
    protocol: int = 2,
    p: int = _DEFAULT_PRIME,
    binding: bytes | None = None,
    ttl: int = _DEFAULT_TTL,
    now_ms: int = 0,
    validity_ms: int = _DEFAULT_VALIDITY_MS,
    rng: random.Random | None = None,
    x: bytes | None = None,
    counter: OpCounter = NULL_COUNTER,
) -> tuple[RequestPackage, InitiatorSecret]:
    """Create a request package and the initiator's private state.

    Parameters mirror the paper: *p* is the small remainder prime (must
    exceed m_t), *binding* the optional dynamic location key, *ttl* the
    relay hop budget and *validity_ms* the expiry window after which relays
    drop the request.
    """
    if protocol not in (1, 2, 3):
        raise InvalidRequestError(f"unknown protocol {protocol}")
    vector = RequestVector.from_request(request, binding=binding, counter=counter)
    if p <= len(vector):
        raise InvalidRequestError(
            f"remainder prime p={p} must exceed the request size m_t={len(vector)}"
        )
    key = vector.key(counter)
    if x is None:
        x = rng.randbytes(SECRET_LEN) if rng is not None else os.urandom(SECRET_LEN)
    ciphertext = seal_secret(key, protocol, x, counter)
    remainders = remainder_vector(vector.values, p, counter)
    hint = None
    if vector.gamma > 0:
        hint = build_hint_matrix(vector.optional_values(), vector.gamma, rng=rng, counter=counter)
    request_id = rng.randbytes(8) if rng is not None else os.urandom(8)
    package = RequestPackage(
        protocol=protocol,
        p=p,
        remainders=remainders,
        necessary_mask=vector.necessary_mask,
        beta=vector.beta,
        hint=hint,
        ciphertext=ciphertext,
        request_id=request_id,
        ttl=ttl,
        expiry_ms=now_ms + validity_ms,
    )
    secret = InitiatorSecret(
        x=x, request_key=key, request_vector=vector, protocol=protocol, request_id=request_id
    )
    return package, secret


def process_request(
    profile: Profile | ParticipantVector,
    package: RequestPackage,
    *,
    binding: bytes | None = None,
    mode: str = "robust",
    budget: EnumerationBudget | None = None,
    counter: OpCounter = NULL_COUNTER,
) -> MatchOutcome:
    """Run the full participant pipeline of Fig. 1 on one request.

    Accepts either a raw :class:`Profile` (hashed on the fly) or a cached
    :class:`ParticipantVector` -- the paper notes that sorting/hashing are
    computed once per profile and reused until attributes change.

    Deterministic: the outcome (candidacy, recovered vectors/keys, ``x``)
    is a pure function of the profile, the package bytes and the budget;
    no clock or RNG is consulted, so replaying a package yields an
    identical :class:`MatchOutcome`.  Expiry is *not* checked here -- time
    (simulated ms) enters only at the protocol layer
    (``Participant.handle_request``).
    """
    if isinstance(profile, Profile):
        vector = ParticipantVector.from_profile(profile, binding=binding, counter=counter)
    else:
        vector = profile
    outcome = MatchOutcome(candidate=False, budget=budget or EnumerationBudget())

    optional_positions = [i for i, nec in enumerate(package.necessary_mask) if not nec]
    # An attacker-controlled package may carry a hint whose dimensions do
    # not cover the optional positions; no candidate can ever be solved
    # against it, so reject before doing any work (and never let the
    # mismatch surface as a raw ValueError from the solver).
    if package.hint is not None and (
        package.hint.gamma + package.hint.beta != len(optional_positions)
    ):
        return outcome

    # One bucketing pass serves both the fast check and the enumeration;
    # the mod half is cached on the vector and shared across episodes.
    buckets = buckets_for(
        package.remainders, vector.remainder_index(package.p, counter)
    )

    # Fast check: most unmatched users stop here after m_k mod operations.
    if not is_candidate(
        package.remainders,
        package.necessary_mask,
        package.gamma,
        vector.values,
        package.p,
        mode=mode,
        counter=counter,
        buckets=buckets,
    ):
        return outcome

    outcome.candidate = True
    candidates = iter_candidates(
        package.remainders,
        package.necessary_mask,
        package.gamma,
        vector.values,
        package.p,
        mode=mode,
        budget=outcome.budget,
        counter=counter,
        buckets=buckets,
    )
    seen: set[tuple[int, ...]] = set()
    for candidate in candidates:
        values = list(candidate.values)
        if not candidate.is_complete():
            if package.hint is None:
                continue  # perfect-match request: incomplete candidates are useless
            optional_segment = [values[i] for i in optional_positions]
            try:
                recovered = solve_candidate(package.hint, optional_segment, counter=counter)
            except HintSolveError:
                continue
            rejected = False
            for pos, value in zip(optional_positions, recovered):
                if values[pos] is None:
                    # Recovered hashes must agree with the published remainders.
                    if counter is not NULL_COUNTER:
                        counter.add("M")
                    if value % package.p != package.remainders[pos]:
                        rejected = True
                        break
                    values[pos] = value
            if rejected:
                continue
        if any(v is None for v in values):
            continue
        full = tuple(values)  # type: ignore[arg-type]
        if full in seen:
            continue
        seen.add(full)
        outcome.recovered_vectors.append(full)
        key = profile_key(full, counter)
        outcome.keys.append(key)
        if package.protocol == 1 and outcome.x is None:
            x, _ = unseal_secret(key, 1, package.ciphertext, counter)
            if x is not None:
                outcome.x = x
                outcome.matched_key = key
                break  # self-verified: no need to mine further candidates
        if len(outcome.keys) >= outcome.budget.max_candidates:
            outcome.budget.exhausted = True
            break
    return outcome
