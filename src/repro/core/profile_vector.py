"""Profile vectors and profile keys (paper Sec. III-B, Eq. 2-3).

A *profile vector* is the sorted list of SHA-256 values of the normalized
attributes; the *profile key* is the SHA-256 of the concatenated vector and
keys AES-256.  For a request profile the vector additionally records which
positions are necessary.

Design note on ordering: the paper keeps both ``H_t`` and ``H_k`` sorted so
the order-consistency constraint (Eq. 8) prunes candidate combinations.  We
sort the request vector *globally* (necessary and optional interleaved by
hash value) and carry a necessary-position mask, which preserves Eq. 8
exactly while still supporting the (N_t, O_t) split; the hint matrix then
operates on the optional positions in their global sorted order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.counters import NULL_COUNTER, OpCounter
from repro.core.attributes import Profile, RequestProfile
from repro.core.remainder import bucket_index
from repro.crypto.hashes import hash_attribute, hash_vector_key

__all__ = ["ParticipantVector", "RequestVector", "profile_key"]


def profile_key(values, counter: OpCounter = NULL_COUNTER) -> bytes:
    """Derive the 256-bit AES profile key ``K = H(H_k)`` (Eq. 3)."""
    counter.add("H")
    return hash_vector_key(values)


@dataclass(frozen=True)
class ParticipantVector:
    """A participant's sorted profile vector ``H_k`` with attribute back-map."""

    values: tuple[int, ...]
    attributes: tuple[str, ...]  # attributes[i] hashes to values[i]

    @classmethod
    def from_profile(
        cls,
        profile: Profile,
        *,
        binding: bytes | None = None,
        counter: OpCounter = NULL_COUNTER,
    ) -> "ParticipantVector":
        """Hash and sort a profile (Eq. 2); *binding* is the dynamic location key."""
        pairs = []
        for attr in profile.attributes:
            counter.add("H")
            pairs.append((hash_attribute(attr, binding), attr))
        pairs.sort()
        return cls(
            values=tuple(h for h, _ in pairs),
            attributes=tuple(a for _, a in pairs),
        )

    def __len__(self) -> int:
        return len(self.values)

    def key(self, counter: OpCounter = NULL_COUNTER) -> bytes:
        """The participant's own profile key ``K_k = H(H_k)``."""
        return profile_key(self.values, counter)

    def remainder_index(self, p: int, counter: OpCounter = NULL_COUNTER) -> dict[int, list[int]]:
        """Cached remainder-bucket map of this vector modulo *p*.

        The mod pass depends only on the (binding-specific) vector and the
        prime, so interleaved episodes sharing a prime reuse one pass; the
        cache dies with the vector, i.e. whenever attributes or the location
        binding change.  Cache hits add no mod operations to *counter*.
        """
        cache: dict[int, dict[int, list[int]]]
        try:
            cache = object.__getattribute__(self, "_remainder_cache")
        except AttributeError:
            cache = {}
            object.__setattr__(self, "_remainder_cache", cache)
        index = cache.get(p)
        if index is None:
            index = cache[p] = bucket_index(self.values, p, counter)
        return index


@dataclass(frozen=True)
class RequestVector:
    """The initiator's sorted request vector with the necessary-position mask.

    Attributes
    ----------
    values:
        Sorted 256-bit hash values of the request attributes.
    necessary_mask:
        ``necessary_mask[i]`` is True when position *i* holds a necessary
        attribute (one of the α attributes every match must own).
    beta:
        Minimum number of optional positions a match must satisfy.
    """

    values: tuple[int, ...]
    necessary_mask: tuple[bool, ...]
    beta: int

    @classmethod
    def from_request(
        cls,
        request: RequestProfile,
        *,
        binding: bytes | None = None,
        counter: OpCounter = NULL_COUNTER,
    ) -> "RequestVector":
        """Hash, tag and globally sort the request profile."""
        tagged = []
        for attr in request.necessary:
            counter.add("H")
            tagged.append((hash_attribute(attr, binding), True))
        for attr in request.optional:
            counter.add("H")
            tagged.append((hash_attribute(attr, binding), False))
        tagged.sort()
        return cls(
            values=tuple(h for h, _ in tagged),
            necessary_mask=tuple(n for _, n in tagged),
            beta=request.beta,
        )

    def __len__(self) -> int:
        return len(self.values)

    @property
    def alpha(self) -> int:
        """Number of necessary positions."""
        return sum(self.necessary_mask)

    @property
    def gamma(self) -> int:
        """Number of optional positions a match may miss."""
        return (len(self.values) - self.alpha) - self.beta

    @property
    def optional_indices(self) -> tuple[int, ...]:
        """Positions of the optional attributes in global sorted order."""
        return tuple(i for i, nec in enumerate(self.necessary_mask) if not nec)

    def optional_values(self) -> tuple[int, ...]:
        """Hash values at the optional positions, in order."""
        return tuple(self.values[i] for i in self.optional_indices)

    def key(self, counter: OpCounter = NULL_COUNTER) -> bytes:
        """The request profile key ``K_t`` that seals the message."""
        return profile_key(self.values, counter)
