"""Remainder vector, fast check and candidate enumeration (Sec. III-C1).

The initiator publishes ``r_i = h_i mod p`` for every request position.  A
relay user buckets their own profile vector by remainder and tries to build
*candidate profile vectors*: order-consistent assignments of own hashes to
request positions where

- every necessary position is assigned (Eq. 6),
- at most γ optional positions are *unknown* (Eq. 7),
- assigned own-vector indices strictly increase with the request position
  (Eq. 8, both vectors being sorted).

Theorem 1 guarantees soundness: differing remainders imply differing
hashes, so a user excluded by the fast check can never be a match.

Two enumeration modes are provided:

``strict``
    The paper's literal rule -- a position is unknown *iff* its bucket is
    empty.  Under remainder collisions this can force a wrong assignment at
    a position the user does not actually own and reject a true match.
``robust`` (default)
    Optional positions may also be treated as unknown when their bucket is
    non-empty, eliminating the false negatives at slightly higher
    enumeration cost.  The ablation bench quantifies the difference.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from collections.abc import Sequence

from repro.analysis.counters import NULL_COUNTER, OpCounter

__all__ = [
    "CandidateVector",
    "remainder_vector",
    "bucket_index",
    "buckets_for",
    "build_buckets",
    "is_candidate",
    "iter_candidates",
    "enumerate_candidates",
    "EnumerationBudget",
]

DEFAULT_MAX_CANDIDATES = 256
DEFAULT_MAX_VISITS = 100_000


def remainder_vector(values: Sequence[int], p: int, counter: OpCounter = NULL_COUNTER) -> tuple[int, ...]:
    """Compute ``[h mod p for h in values]`` (Eq. 4)."""
    if p < 2:
        raise ValueError("p must be a prime >= 2")
    if counter is not NULL_COUNTER:
        counter.add("M", len(values))
    return tuple(h % p for h in values)


def bucket_index(
    participant_values: Sequence[int],
    p: int,
    counter: OpCounter = NULL_COUNTER,
) -> dict[int, list[int]]:
    """Group own-hash indices by remainder modulo *p* (the m_k mod pass).

    This is the request-independent half of bucketing: it depends only on
    the participant's vector and the prime, so concurrent episodes sharing
    a prime can reuse one pass (see
    :meth:`repro.core.profile_vector.ParticipantVector.remainder_index`).
    """
    if counter is not NULL_COUNTER:
        counter.add("M", len(participant_values))
    by_remainder: dict[int, list[int]] = {}
    for idx, h in enumerate(participant_values):
        by_remainder.setdefault(h % p, []).append(idx)
    return by_remainder


def buckets_for(
    remainders: Sequence[int], index: dict[int, list[int]]
) -> list[list[int]]:
    """Per-request-position buckets from a precomputed remainder index."""
    return [index.get(r) or [] for r in remainders]


def build_buckets(
    remainders: Sequence[int],
    participant_values: Sequence[int],
    p: int,
    counter: OpCounter = NULL_COUNTER,
    *,
    index: dict[int, list[int]] | None = None,
) -> list[list[int]]:
    """For each request position, indices of own hashes with that remainder.

    The participant reduces each own hash once (m_k mod operations) and
    groups indices by remainder, so the per-position lookup is O(1).  Pass
    *index* (from :func:`bucket_index`) to skip the mod pass entirely.
    """
    if index is None:
        index = bucket_index(participant_values, p, counter)
    return buckets_for(remainders, index)


@dataclass(frozen=True)
class CandidateVector:
    """One candidate profile vector: known hash values plus unknown slots."""

    values: tuple[int | None, ...]

    @property
    def unknown_indices(self) -> tuple[int, ...]:
        """Positions still to be recovered by the hint matrix."""
        return tuple(i for i, v in enumerate(self.values) if v is None)

    def is_complete(self) -> bool:
        """True when no position is unknown."""
        # C-speed membership test: values are ints or None, for which
        # ``in`` (identity-then-equality) is exactly the `is not None` scan.
        return None not in self.values


@dataclass
class EnumerationBudget:
    """Caps protecting a participant from adversarially explosive requests."""

    max_candidates: int = DEFAULT_MAX_CANDIDATES
    max_visits: int = DEFAULT_MAX_VISITS
    exhausted: bool = False


def is_candidate(
    remainders: Sequence[int],
    necessary_mask: Sequence[bool],
    gamma: int,
    participant_values: Sequence[int],
    p: int,
    *,
    mode: str = "robust",
    counter: OpCounter = NULL_COUNTER,
    buckets: list[list[int]] | None = None,
) -> bool:
    """Fast check: can any candidate profile vector be formed at all?

    Runs a dominance-pruned dynamic program over request positions: for
    each number of unknowns used, keep the minimal own-vector index that a
    feasible prefix can end at.  O(m_t * γ * log m_k).  Pass *buckets* to
    reuse a bucketing pass already done by the caller.
    """
    _check_mode(mode)
    if buckets is None:
        buckets = build_buckets(remainders, participant_values, p, counter)
    # state[u] = minimal last own-index used by a feasible prefix with u
    # unknowns, or INF when no such prefix exists.  A dense list beats the
    # dict the DP used to keep: gamma is tiny and this check runs once per
    # request per reached node of a flood.
    infinity = 1 << 62
    robust = mode == "robust"
    # A hostile package can imply a negative gamma (beta > optional count);
    # unknowns are then simply never allowed, as in the dict-based DP.
    width = max(gamma, 0) + 1
    state = [infinity] * width
    state[0] = -1
    for pos, bucket in enumerate(buckets):
        necessary = necessary_mask[pos]
        new_state = [infinity] * width
        alive = False
        for used, last in enumerate(state):
            if last == infinity:
                continue
            # Option 1: assign the smallest bucket index beyond `last`.
            if bucket:
                if counter is not NULL_COUNTER:
                    counter.add("CMP256")
                nxt = bisect_right(bucket, last)
                if nxt < len(bucket):
                    idx = bucket[nxt]
                    if idx < new_state[used]:
                        new_state[used] = idx
                        alive = True
            # Option 2: leave the position unknown (optional positions only).
            if used < gamma and not necessary and (robust or not bucket):
                if last < new_state[used + 1]:
                    new_state[used + 1] = last
                    alive = True
        if not alive:
            return False
        state = new_state
    return True


def iter_candidates(
    remainders: Sequence[int],
    necessary_mask: Sequence[bool],
    gamma: int,
    participant_values: Sequence[int],
    p: int,
    *,
    mode: str = "robust",
    budget: EnumerationBudget | None = None,
    counter: OpCounter = NULL_COUNTER,
    buckets: list[list[int]] | None = None,
):
    """Lazily yield candidate profile vectors in *deviation order*.

    The zero-deviation candidate is the greedy assignment: every position
    takes the smallest order-consistent bucket element, empty optional
    buckets become unknowns.  Each further deviation either (a) picks a
    later bucket element or (b) marks a non-empty optional bucket unknown
    (``robust`` mode only).  Iterative deepening over the deviation count
    yields plausible candidates first -- crucial when collisions make the
    full combination space large -- while remaining complete: every valid
    candidate vector appears at its deviation depth.

    The *budget* caps search-tree nodes across all depths, protecting an
    honest participant from maliciously explosive requests (the asymmetry
    Protocol 2 exploits to expose dictionary attackers).
    """
    _check_mode(mode)
    if budget is None:
        budget = EnumerationBudget()
    if buckets is None:
        buckets = build_buckets(remainders, participant_values, p, counter)
    m_t = len(remainders)
    values = participant_values

    # Suffix feasibility bounds for pruning: minimum unknowns forced from
    # position i to the end (necessary with empty bucket => infeasible;
    # optional with empty bucket => forced unknown).
    forced_unknowns = [0] * (m_t + 1)
    infeasible_suffix = [False] * (m_t + 1)
    for i in range(m_t - 1, -1, -1):
        forced_unknowns[i] = forced_unknowns[i + 1]
        infeasible_suffix[i] = infeasible_suffix[i + 1]
        if not buckets[i]:
            if necessary_mask[i]:
                infeasible_suffix[i] = True
            else:
                forced_unknowns[i] += 1
    if infeasible_suffix[0] or forced_unknowns[0] > gamma:
        return

    visits = 0

    def dfs(pos: int, last: int, unknowns: int, dev_left: int, acc: tuple[int | None, ...]):
        nonlocal visits
        visits += 1
        if visits > budget.max_visits:
            budget.exhausted = True
            return
        if pos == m_t:
            if dev_left == 0:  # exactly this depth: no cross-depth duplicates
                yield CandidateVector(values=acc)
            return
        if infeasible_suffix[pos] or unknowns + forced_unknowns[pos] > gamma:
            return
        bucket = buckets[pos]
        necessary = necessary_mask[pos]
        start = bisect_right(bucket, last)
        feasible = bucket[start:]
        for rank, idx in enumerate(feasible):
            if counter is not NULL_COUNTER:
                counter.add("CMP256")
            cost = min(rank, 1)  # first feasible pick is free, later picks deviate
            if cost <= dev_left:
                yield from dfs(pos + 1, idx, unknowns, dev_left - cost, acc + (values[idx],))
            if budget.exhausted:
                return
        # Unknown-allowance follows Eq. 7 semantics: the *bucket* (not the
        # order-filtered remainder of it) decides whether the position is
        # unknown in strict mode, matching the is_candidate DP exactly.
        allow_unknown = not necessary and (mode == "robust" or not bucket)
        if allow_unknown and unknowns + 1 <= gamma:
            cost = 0 if not feasible else 1  # forced unknowns are free
            if cost <= dev_left:
                yield from dfs(pos + 1, last, unknowns + 1, dev_left - cost, acc + (None,))

    for depth in range(m_t + 1):
        yield from dfs(0, -1, 0, depth, ())
        if budget.exhausted:
            return


def enumerate_candidates(
    remainders: Sequence[int],
    necessary_mask: Sequence[bool],
    gamma: int,
    participant_values: Sequence[int],
    p: int,
    *,
    mode: str = "robust",
    budget: EnumerationBudget | None = None,
    counter: OpCounter = NULL_COUNTER,
) -> list[CandidateVector]:
    """Materialize :func:`iter_candidates`, capped at ``budget.max_candidates``."""
    if budget is None:
        budget = EnumerationBudget()
    results: list[CandidateVector] = []
    for candidate in iter_candidates(
        remainders, necessary_mask, gamma, participant_values, p,
        mode=mode, budget=budget, counter=counter,
    ):
        results.append(candidate)
        if len(results) >= budget.max_candidates:
            budget.exhausted = True
            break
    return results


def _check_mode(mode: str) -> None:
    if mode not in ("strict", "robust"):
        raise ValueError(f"mode must be 'strict' or 'robust', got {mode!r}")
