"""Request package model and wire format (Fig. 1).

The initiator broadcasts a single self-contained package: the encrypted
message, the remainder vector and (for fuzzy requests) the hint matrix,
plus routing metadata (request id, TTL, expiry).  The required profile
vector itself is **never** transmitted.

The binary encoding here is what the communication-cost analysis measures;
field widths follow the paper's accounting (32-bit remainders, 32-bit hint
coefficients, 256-bit-plus B entries).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.exceptions import SerializationError
from repro.core.hint import HintMatrix

__all__ = ["RequestPackage", "REQUEST_MAGIC"]

REQUEST_MAGIC = b"SBRQ"
_VERSION = 1
_FLAG_HINT = 0x01

# Precompiled codecs and a byte -> bit-tuple expansion table: request
# decoding is the per-flood hot path (every relay's first copy pays it),
# so the per-call format parsing and the per-bit shifts are batched away.
_FIXED_HEADER = struct.Struct(">BBBHH8sBQH")
_HINT_HEADER = struct.Struct(">HH")
_U16 = struct.Struct(">H")
_BYTE_BITS = tuple(
    tuple(bool(byte >> bit & 1) for bit in range(8)) for byte in range(256)
)

# Width-keyed cache of ``>{n}I`` codecs: the remainder vector (and each
# hint row) is one big-endian u32 run whose length is constant for a
# deployment, so compiling the Struct once per width — instead of
# re-parsing an f-string format on every decode — shaves the dominant
# non-allocation cost off the flood hot path.
_U32_RUNS: dict[int, struct.Struct] = {}


def _u32_run(count: int) -> struct.Struct:
    codec = _U32_RUNS.get(count)
    if codec is None:
        codec = _U32_RUNS[count] = struct.Struct(f">{count}I")
    return codec


@dataclass(frozen=True)
class RequestPackage:
    """Everything a relay user receives (and everything an adversary sees)."""

    protocol: int
    p: int
    remainders: tuple[int, ...]
    necessary_mask: tuple[bool, ...]
    beta: int
    hint: HintMatrix | None
    ciphertext: bytes
    request_id: bytes
    ttl: int
    expiry_ms: int

    def __post_init__(self):
        if self.protocol not in (1, 2, 3):
            raise SerializationError(f"unknown protocol {self.protocol}")
        if len(self.remainders) != len(self.necessary_mask):
            raise SerializationError("remainder vector and mask lengths differ")
        if len(self.request_id) != 8:
            raise SerializationError("request id must be 8 bytes")
        # The sealed message is AES-ECB output over a 32-byte secret (with a
        # 16-byte confirmation prefix under Protocol 1): anything empty or
        # unaligned can never unseal and would crash trial decryption.
        if not self.ciphertext or len(self.ciphertext) % 16:
            raise SerializationError("sealed message must be non-empty AES blocks")
        if self.remainders and max(self.remainders) >= self.p:
            raise SerializationError("remainder not reduced modulo p")

    @property
    def m_t(self) -> int:
        """Number of request attributes."""
        return len(self.remainders)

    @property
    def alpha(self) -> int:
        """Number of necessary positions."""
        return sum(self.necessary_mask)

    @property
    def gamma(self) -> int:
        """Number of optional positions a match may miss."""
        return (self.m_t - self.alpha) - self.beta

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        flags = _FLAG_HINT if self.hint is not None else 0
        out = bytearray()
        out += REQUEST_MAGIC
        out += _FIXED_HEADER.pack(
            _VERSION,
            self.protocol,
            flags,
            self.p,
            self.m_t,
            self.request_id,
            self.ttl,
            self.expiry_ms,
            self.beta,
        )
        mask_bytes = bytearray((self.m_t + 7) // 8)
        for i, necessary in enumerate(self.necessary_mask):
            if necessary:
                mask_bytes[i // 8] |= 1 << (i % 8)
        out += mask_bytes
        out += _u32_run(self.m_t).pack(*self.remainders)
        if self.hint is not None:
            out += _HINT_HEADER.pack(self.hint.gamma, self.hint.beta)
            for row in self.hint.r_block:
                out += _u32_run(len(row)).pack(*row)
            for b in self.hint.b_vector:
                encoded = b.to_bytes((b.bit_length() + 7) // 8 or 1, "big")
                out += _U16.pack(len(encoded)) + encoded
        out += _U16.pack(len(self.ciphertext)) + self.ciphertext
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "RequestPackage":
        """Parse the wire format back into a package."""
        try:
            return cls._decode(data)
        except (struct.error, IndexError) as exc:
            raise SerializationError(f"truncated request package: {exc}") from exc

    @classmethod
    def _decode(cls, data: bytes) -> "RequestPackage":
        if data[:4] != REQUEST_MAGIC:
            raise SerializationError("bad magic")
        offset = 4
        (version, protocol, flags, p, m_t, request_id, ttl, expiry_ms, beta) = (
            _FIXED_HEADER.unpack_from(data, offset)
        )
        if version != _VERSION:
            raise SerializationError(f"unsupported version {version}")
        offset += _FIXED_HEADER.size
        mask_len = (m_t + 7) // 8
        mask_bytes = data[offset : offset + mask_len]
        if len(mask_bytes) != mask_len:
            raise SerializationError("truncated necessary mask")
        offset += mask_len
        # One-pass mask expansion: full bytes via the 256-entry table,
        # the trailing partial byte sliced once -- no oversized
        # intermediate list to re-slice.
        full_bytes, tail_bits = divmod(m_t, 8)
        byte_bits = _BYTE_BITS
        bits: list[bool] = []
        for byte in mask_bytes[:full_bytes]:
            bits.extend(byte_bits[byte])
        if tail_bits:
            bits.extend(byte_bits[mask_bytes[full_bytes]][:tail_bits])
        necessary_mask = tuple(bits)
        remainders = _u32_run(m_t).unpack_from(data, offset)
        offset += 4 * m_t
        hint = None
        if flags & _FLAG_HINT:
            gamma, hint_beta = _HINT_HEADER.unpack_from(data, offset)
            offset += 4
            row_codec = _u32_run(hint_beta)
            r_block = []
            for _ in range(gamma):
                row = row_codec.unpack_from(data, offset)
                offset += 4 * hint_beta
                r_block.append(row)
            b_vector = []
            for _ in range(gamma):
                (blen,) = _U16.unpack_from(data, offset)
                offset += 2
                b_vector.append(int.from_bytes(data[offset : offset + blen], "big"))
                offset += blen
            hint = HintMatrix(
                gamma=gamma, beta=hint_beta, r_block=tuple(r_block), b_vector=tuple(b_vector)
            )
        (clen,) = _U16.unpack_from(data, offset)
        offset += 2
        ciphertext = data[offset : offset + clen]
        if len(ciphertext) != clen:
            raise SerializationError("truncated ciphertext")
        if offset + clen != len(data):
            raise SerializationError("trailing bytes after request package")
        # Inline the ``__post_init__`` validation and construct the frozen
        # instance directly: the mask/remainder lengths and the 8-byte
        # request id are structurally guaranteed by the parse above, so
        # only the value checks remain, and skipping the dataclass
        # ``__init__`` (ten guarded ``__setattr__`` calls) roughly halves
        # decode latency on the flood hot path.
        if protocol not in (1, 2, 3):
            raise SerializationError(f"unknown protocol {protocol}")
        if not clen or clen % 16:
            raise SerializationError("sealed message must be non-empty AES blocks")
        if remainders and max(remainders) >= p:
            raise SerializationError("remainder not reduced modulo p")
        package = object.__new__(cls)
        package.__dict__.update(
            protocol=protocol,
            p=p,
            remainders=remainders,
            necessary_mask=necessary_mask,
            beta=beta,
            hint=hint,
            ciphertext=ciphertext,
            request_id=request_id,
            ttl=ttl,
            expiry_ms=expiry_ms,
        )
        return package

    def wire_size_bytes(self) -> int:
        """Size of the serialized package in bytes."""
        return len(self.encode())

    def is_expired(self, now_ms: int) -> bool:
        """True when the request's validity window has passed."""
        return now_ms > self.expiry_ms
