"""Hint matrix construction and exact solving (Sec. III-C2, Eq. 9-13).

For a fuzzy request with γ allowed misses among the γ+β optional
attributes, the initiator publishes the *hint matrix* ``M = [C, B]`` where

    C = [I_γ | R_{γ×β}],     B = C · [h_opt(1), …, h_opt(γ+β)]ᵀ

with R a γ×β matrix of random nonzero integers.  A candidate who knows at
least β of the optional hashes solves the ≤ γ unknowns from the γ linear
equations and recovers the full request vector, hence the profile key.

Solving is done over the prime field GF(q) with q = 2^521 − 1 (a Mersenne
prime comfortably above every value the system can produce), which is exact
for the 256-bit unknowns and ~30× faster than rational elimination; the
recovered values are then re-verified against the original equations over
the integers, so no field-reduction artefact can slip through.  Any
inconsistent, out-of-range or unverifiable solution proves the candidate
assignment wrong and rejects it before the (comparatively expensive) AES
trial decryption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Sequence

from repro.analysis.counters import NULL_COUNTER, OpCounter
from repro.core.exceptions import HintSolveError
from repro.crypto.hashes import HASH_BITS

__all__ = ["HintMatrix", "build_hint_matrix", "solve_candidate"]

_R_ENTRY_BITS = 32  # paper sizes the hint matrix as 32-bit entries
_FIELD_PRIME = (1 << 521) - 1  # Mersenne prime > any |B_i|; solving field


@dataclass(frozen=True)
class HintMatrix:
    """The published hint: random block R (γ×β) and right-hand side B (γ)."""

    gamma: int
    beta: int
    r_block: tuple[tuple[int, ...], ...]
    b_vector: tuple[int, ...]

    def row_coefficients(self, i: int) -> list[int]:
        """Full coefficient row i of C = [I_γ | R]."""
        row = [0] * (self.gamma + self.beta)
        row[i] = 1
        for j, coeff in enumerate(self.r_block[i]):
            row[self.gamma + j] = coeff
        return row


def build_hint_matrix(
    optional_values: Sequence[int],
    gamma: int,
    *,
    rng: random.Random | None = None,
    counter: OpCounter = NULL_COUNTER,
) -> HintMatrix:
    """Construct ``M = [C, B]`` from the optional hash values (Eq. 9-11)."""
    total = len(optional_values)
    beta = total - gamma
    if gamma <= 0:
        raise ValueError("hint matrix only exists for fuzzy requests (gamma > 0)")
    if beta < 0:
        raise ValueError("gamma cannot exceed the number of optional attributes")
    rng = rng or random
    r_block = tuple(
        tuple(rng.randrange(1, 1 << _R_ENTRY_BITS) for _ in range(beta))
        for _ in range(gamma)
    )
    b_vector = []
    for i in range(gamma):
        # B_i = h_opt[i] + sum_j R[i][j] * h_opt[gamma + j]
        acc = optional_values[i]
        for j in range(beta):
            counter.add("MUL256")
            acc += r_block[i][j] * optional_values[gamma + j]
        b_vector.append(acc)
    return HintMatrix(gamma=gamma, beta=beta, r_block=r_block, b_vector=tuple(b_vector))


def solve_candidate(
    hint: HintMatrix,
    optional_candidate: Sequence[int | None],
    *,
    counter: OpCounter = NULL_COUNTER,
) -> list[int]:
    """Recover the unknown optional hashes of one candidate vector (Eq. 12-13).

    Parameters
    ----------
    hint:
        The published hint matrix.
    optional_candidate:
        The candidate's optional-segment values in request order; ``None``
        marks an unknown to be solved for.

    Returns the fully recovered optional segment.  Raises
    :class:`HintSolveError` when the system is inconsistent with the
    candidate's known values or the solution is not a valid hash value --
    both outcomes prove this candidate assignment cannot be the request.
    """
    width = hint.gamma + hint.beta
    if len(optional_candidate) != width:
        raise ValueError(f"candidate optional segment must have {width} entries")
    unknown_positions = [i for i, v in enumerate(optional_candidate) if v is None]
    n_unknown = len(unknown_positions)
    if n_unknown > hint.gamma:
        raise HintSolveError(
            f"{n_unknown} unknowns exceed the {hint.gamma} hint equations"
        )

    # Build the reduced system A x = rhs (mod q) over the unknowns only.
    col_of = {pos: k for k, pos in enumerate(unknown_positions)}
    rows: list[list[int]] = []
    rhs: list[int] = []
    for i in range(hint.gamma):
        coeffs = hint.row_coefficients(i)
        row = [0] * n_unknown
        acc = hint.b_vector[i]
        for pos, coeff in enumerate(coeffs):
            if coeff == 0:
                continue
            value = optional_candidate[pos]
            if value is None:
                row[col_of[pos]] = (row[col_of[pos]] + coeff) % _FIELD_PRIME
            else:
                counter.add("MUL256")
                acc -= coeff * value
        rows.append(row)
        rhs.append(acc % _FIELD_PRIME)

    solution = _solve_mod_q(rows, rhs, n_unknown)

    recovered = list(optional_candidate)
    upper = 1 << HASH_BITS
    for pos, value in zip(unknown_positions, solution):
        if not 0 <= value < upper:
            raise HintSolveError("solution outside the 256-bit hash range")
        recovered[pos] = value
    _verify_over_integers(hint, recovered, counter)
    return recovered  # type: ignore[return-value]


def _solve_mod_q(rows: list[list[int]], rhs: list[int], n_unknown: int) -> list[int]:
    """Gaussian elimination over GF(q) with full consistency checking.

    The system may be overdetermined (γ equations, ≤ γ unknowns); leftover
    equations must be satisfied or the candidate is rejected.
    """
    q = _FIELD_PRIME
    m = len(rows)
    aug = [row + [b] for row, b in zip(rows, rhs)]
    pivot_cols: list[int] = []
    rank = 0
    for col in range(n_unknown):
        pivot = next((r for r in range(rank, m) if aug[r][col]), None)
        if pivot is None:
            continue
        aug[rank], aug[pivot] = aug[pivot], aug[rank]
        # Extended-gcd modular inverse: identical value to the Fermat
        # ladder pow(x, q-2, q) (the inverse mod a prime is unique), but
        # ~100x cheaper than a 521-bit exponentiation -- this line was a
        # third of the wall clock of a city-scale fuzzy-request flood.
        inv = pow(aug[rank][col], -1, q)
        aug[rank] = [v * inv % q for v in aug[rank]]
        for r in range(m):
            if r != rank and aug[r][col]:
                factor = aug[r][col]
                aug[r] = [(v - factor * p) % q for v, p in zip(aug[r], aug[rank])]
        pivot_cols.append(col)
        rank += 1
    # Consistency: zero rows must have zero rhs.
    for r in range(rank, m):
        if aug[r][n_unknown]:
            raise HintSolveError("inconsistent system: candidate is not the request")
    if rank < n_unknown:
        raise HintSolveError("underdetermined system: hint cannot recover candidate")
    solution = [0] * n_unknown
    for r, col in enumerate(pivot_cols):
        solution[col] = aug[r][n_unknown]
    return solution


def _verify_over_integers(hint: HintMatrix, recovered: list[int | None], counter: OpCounter) -> None:
    """Exact re-check of B = C·x over Z, eliminating field-reduction doubt."""
    for i in range(hint.gamma):
        acc = recovered[i]
        for j in range(hint.beta):
            counter.add("MUL256")
            acc += hint.r_block[i][j] * recovered[hint.gamma + j]  # type: ignore[operator]
        if acc != hint.b_vector[i]:
            raise HintSolveError("recovered vector fails exact verification")
