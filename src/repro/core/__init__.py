"""Core sealed-bottle mechanism: private profile matching + secure channels.

Public API tour
---------------

>>> from repro.core import Profile, RequestProfile, Initiator, Participant
>>> alice = Initiator(RequestProfile(necessary=["interest:basketball"],
...                                  optional=["profession:engineer", "city:nyc"],
...                                  beta=1), protocol=1)
>>> package = alice.create_request()
>>> bob = Participant(Profile(["interest:basketball", "profession:engineer",
...                            "interest:jazz"], user_id="bob"))
>>> reply = bob.handle_request(package)
>>> record = alice.handle_reply(reply, now_ms=10)
>>> record.responder_id
'bob'
"""

from repro.core.attributes import Profile, RequestProfile
from repro.core.channel import SecureChannel, group_session_key, pair_session_key
from repro.core.entropy import (
    AttributeDistribution,
    EntropyPolicy,
    k_anonymity_phi,
    sensitive_attribute_phi,
)
from repro.core.exceptions import (
    HintSolveError,
    InvalidRequestError,
    MatchingError,
    PolicyViolation,
    SealedBottleError,
    SerializationError,
)
from repro.core.hint import HintMatrix, build_hint_matrix, solve_candidate
from repro.core.location import (
    LatticePoint,
    LatticeSpec,
    vicinity_request,
    vicinity_threshold_beta,
)
from repro.core.matching import (
    CONFIRMATION,
    InitiatorSecret,
    MatchOutcome,
    build_request,
    process_request,
)
from repro.core.normalization import normalize_attribute, normalize_profile
from repro.core.profile_vector import ParticipantVector, RequestVector, profile_key
from repro.core.protocols import (
    ACK,
    Initiator,
    MatchRecord,
    Participant,
    RejectedReply,
    Reply,
)
from repro.core.remainder import (
    CandidateVector,
    EnumerationBudget,
    enumerate_candidates,
    is_candidate,
    iter_candidates,
    remainder_vector,
)
from repro.core.request import RequestPackage
from repro.core.agent import AgentEvent, SealedBottleAgent
from repro.core.wire import (
    Frame,
    decode_frame,
    decode_payload,
    decode_reply,
    decode_session_message,
    encode_frame,
    encode_reply,
    encode_reply_frame,
    encode_request_frame,
    encode_session_message,
    reply_wire_size,
)

__all__ = [
    "ACK",
    "AgentEvent",
    "AttributeDistribution",
    "CONFIRMATION",
    "CandidateVector",
    "EntropyPolicy",
    "EnumerationBudget",
    "HintMatrix",
    "HintSolveError",
    "Initiator",
    "InitiatorSecret",
    "InvalidRequestError",
    "LatticePoint",
    "LatticeSpec",
    "MatchOutcome",
    "MatchRecord",
    "MatchingError",
    "Participant",
    "ParticipantVector",
    "PolicyViolation",
    "Profile",
    "RejectedReply",
    "Reply",
    "RequestPackage",
    "RequestProfile",
    "RequestVector",
    "SealedBottleAgent",
    "SealedBottleError",
    "SecureChannel",
    "SerializationError",
    "Frame",
    "build_hint_matrix",
    "build_request",
    "decode_frame",
    "decode_payload",
    "decode_reply",
    "decode_session_message",
    "encode_frame",
    "encode_reply",
    "encode_reply_frame",
    "encode_request_frame",
    "encode_session_message",
    "enumerate_candidates",
    "group_session_key",
    "is_candidate",
    "iter_candidates",
    "k_anonymity_phi",
    "normalize_attribute",
    "normalize_profile",
    "pair_session_key",
    "process_request",
    "profile_key",
    "remainder_vector",
    "reply_wire_size",
    "sensitive_attribute_phi",
    "solve_candidate",
    "vicinity_request",
    "vicinity_threshold_beta",
]
