"""Profile and request-profile models (paper Sec. II-A).

A user profile is a set of attributes ``A_k``; an initiator expresses the
desired person as a request profile ``A_t = (N_t, O_t)`` with α *necessary*
attributes (all required) and the remaining optional attributes of which at
least β must be owned.  The similarity threshold is ``θ = (α + β) / m_t``
and ``γ = m_t − α − β`` optional attributes may be missing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.normalization import normalize_profile

__all__ = ["Profile", "RequestProfile"]


@dataclass(frozen=True)
class Profile:
    """A participant's normalized attribute set.

    Parameters
    ----------
    attributes:
        Raw attribute strings; they are normalized and deduplicated on
        construction so all downstream hashing sees canonical forms.
    user_id:
        Optional identifier used by the network simulator and datasets.
    """

    attributes: tuple[str, ...]
    user_id: str = ""

    def __init__(self, attributes, user_id: str = "", *, normalized: bool = False):
        attrs = tuple(attributes) if normalized else tuple(normalize_profile(list(attributes)))
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "user_id", user_id)

    def __len__(self) -> int:
        return len(self.attributes)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.attributes

    def as_set(self) -> frozenset[str]:
        """The attribute set (normalized forms)."""
        return frozenset(self.attributes)

    def intersection(self, other: "Profile") -> frozenset[str]:
        """Common attributes with another profile."""
        return self.as_set() & other.as_set()

    def similarity_to(self, request: "RequestProfile") -> float:
        """Fraction of the request's attributes this profile owns."""
        owned = len(request.as_set() & self.as_set())
        return owned / len(request) if len(request) else 0.0


@dataclass(frozen=True)
class RequestProfile:
    """The initiator's search specification ``A_t = (N_t, O_t)``.

    ``necessary`` must all be owned by a match; at least ``beta`` of
    ``optional`` must be owned.  A perfect match (``θ = 1``) is expressed by
    leaving ``optional`` empty or setting ``beta = len(optional)``.
    """

    necessary: tuple[str, ...]
    optional: tuple[str, ...]
    beta: int
    _normalized: bool = field(default=False, repr=False, compare=False)

    def __init__(self, necessary=(), optional=(), beta: int | None = None, *, normalized: bool = False):
        nec = tuple(necessary) if normalized else tuple(normalize_profile(list(necessary)))
        opt_raw = tuple(optional) if normalized else tuple(normalize_profile(list(optional)))
        # Optional attributes must not duplicate necessary ones.
        opt = tuple(a for a in opt_raw if a not in set(nec))
        if beta is None:
            beta = len(opt)
        if not 0 <= beta <= len(opt):
            raise ValueError(f"beta must be in [0, {len(opt)}], got {beta}")
        if not nec and not opt:
            raise ValueError("request profile must contain at least one attribute")
        if not nec and beta == 0:
            raise ValueError("a request with no necessary attributes needs beta >= 1")
        object.__setattr__(self, "necessary", nec)
        object.__setattr__(self, "optional", opt)
        object.__setattr__(self, "beta", beta)
        object.__setattr__(self, "_normalized", True)

    @classmethod
    def exact(cls, attributes, *, normalized: bool = False) -> "RequestProfile":
        """A perfect-match request: every attribute is necessary."""
        return cls(necessary=attributes, optional=(), beta=0, normalized=normalized)

    @classmethod
    def with_threshold(cls, necessary, optional, theta: float, *, normalized: bool = False) -> "RequestProfile":
        """Build a request from a similarity threshold ``θ = (α+β)/m_t``.

        ``beta`` is derived as ``ceil(θ·m_t) − α`` (clamped to the valid
        range), matching the paper's definition of the acceptable threshold.
        """
        if not 0.0 < theta <= 1.0:
            raise ValueError("theta must be in (0, 1]")
        probe = cls(necessary=necessary, optional=optional, beta=None, normalized=normalized)
        m_t = len(probe)
        alpha = len(probe.necessary)
        beta = max(0, min(len(probe.optional), math.ceil(theta * m_t) - alpha))
        if alpha == 0:
            beta = max(1, beta)
        return cls(necessary=probe.necessary, optional=probe.optional, beta=beta, normalized=True)

    def __len__(self) -> int:
        return len(self.necessary) + len(self.optional)

    @property
    def alpha(self) -> int:
        """Number of necessary attributes (α)."""
        return len(self.necessary)

    @property
    def gamma(self) -> int:
        """Number of optional attributes a match may lack (γ = m_t − α − β)."""
        return len(self.optional) - self.beta

    @property
    def theta(self) -> float:
        """The similarity threshold θ = (α + β) / m_t."""
        return (self.alpha + self.beta) / len(self)

    def as_set(self) -> frozenset[str]:
        """All request attributes."""
        return frozenset(self.necessary) | frozenset(self.optional)

    def is_perfect(self) -> bool:
        """True when a perfect match is required (γ = 0)."""
        return self.gamma == 0

    def matches(self, profile: Profile) -> bool:
        """Ground-truth predicate (Eq. 1): does *profile* satisfy the request?

        This is the plaintext oracle used by tests and evaluation; the
        protocols themselves never see both sides in the clear.
        """
        owned = profile.as_set()
        if not set(self.necessary) <= owned:
            return False
        return len(set(self.optional) & owned) >= self.beta
