"""Attribute/profile entropy and φ-entropy privacy policies (Def. 4-6).

Protocol 3 lets every participant cap the information a malicious,
dictionary-armed initiator could extract from their reply: the participant
only tests candidate profiles whose attribute union has entropy at most a
personal limit φ.  The paper suggests two ways to pick φ:

- **k-anonymity based**: φ = log₂(n/k) so that, in expectation, at least k
  users share any disclosed attribute subset.
- **sensitive-attribute based**: φ = min entropy over the user's sensitive
  attributes, so no single sensitive attribute can be leaked.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

__all__ = [
    "AttributeDistribution",
    "EntropyPolicy",
    "k_anonymity_phi",
    "sensitive_attribute_phi",
]


class AttributeDistribution:
    """Empirical value distribution per attribute category (Def. 4).

    An attribute string ``"category:value"`` belongs to *category*; its
    entropy is the Shannon entropy of the category's value distribution.
    Attributes without a known category fall back to *default_entropy*
    (attribute spaces like free-form tags are effectively unbounded, so the
    default should be generous).
    """

    def __init__(
        self,
        value_counts: Mapping[str, Mapping[str, float]] | None = None,
        default_entropy: float = 16.0,
    ):
        self.default_entropy = float(default_entropy)
        self._entropy_by_category: dict[str, float] = {}
        if value_counts:
            for category, counts in value_counts.items():
                self._entropy_by_category[category] = _shannon_entropy(counts.values())

    @classmethod
    def uniform(cls, category_sizes: Mapping[str, int], default_entropy: float = 16.0) -> "AttributeDistribution":
        """Distribution where category *c* has ``t_c`` equally likely values.

        Then S(a) = log₂ t_c, matching the paper's k-anonymity derivation.
        """
        dist = cls(default_entropy=default_entropy)
        for category, size in category_sizes.items():
            if size < 1:
                raise ValueError(f"category {category!r} must have >= 1 value")
            dist._entropy_by_category[category] = math.log2(size)
        return dist

    def attribute_entropy(self, attribute: str) -> float:
        """S(a_i): entropy of the attribute's category distribution."""
        category, sep, _ = attribute.partition(":")
        if not sep:
            return self.default_entropy
        return self._entropy_by_category.get(category, self.default_entropy)

    def profile_entropy(self, attributes: Iterable[str]) -> float:
        """S(A_k) = Σ S(a_i) over *distinct* attributes (Def. 5)."""
        return sum(self.attribute_entropy(a) for a in set(attributes))


def _shannon_entropy(weights) -> float:
    total = float(sum(weights))
    if total <= 0:
        return 0.0
    entropy = 0.0
    for w in weights:
        if w > 0:
            prob = w / total
            entropy -= prob * math.log2(prob)
    return entropy


def k_anonymity_phi(n_users: int, k: int) -> float:
    """φ = log₂(n/k): disclosed subsets stay k-anonymous in expectation."""
    if not 1 <= k <= n_users:
        raise ValueError("need 1 <= k <= n_users")
    return math.log2(n_users / k)


def sensitive_attribute_phi(
    distribution: AttributeDistribution, sensitive_attributes: Iterable[str]
) -> float:
    """φ = min S(a) over the user's sensitive attributes.

    Any leak that stays strictly below the cheapest sensitive attribute's
    entropy cannot contain a sensitive attribute.
    """
    entropies = [distribution.attribute_entropy(a) for a in sensitive_attributes]
    if not entropies:
        raise ValueError("at least one sensitive attribute is required")
    return min(entropies)


class EntropyPolicy:
    """A participant's φ-entropy privacy budget (Def. 6).

    :meth:`select` greedily admits candidate attribute sets while the
    entropy of the union of everything admitted stays within φ.
    """

    def __init__(self, distribution: AttributeDistribution, phi: float):
        if phi < 0:
            raise ValueError("phi must be non-negative")
        self.distribution = distribution
        self.phi = float(phi)

    def allows(self, attributes: Iterable[str]) -> bool:
        """Would disclosing exactly these attributes respect the budget?"""
        return self.distribution.profile_entropy(attributes) <= self.phi

    def select(
        self,
        candidate_attribute_sets: list[frozenset[str]],
        already_disclosed: frozenset[str] = frozenset(),
    ) -> list[int]:
        """Indices of candidate sets to test, respecting the union budget.

        *already_disclosed* carries attributes exposed by earlier replies;
        the budget applies to the cumulative union, which is what defeats
        repeated single-attribute probing by a malicious initiator.
        """
        union: set[str] = set(already_disclosed)
        chosen: list[int] = []
        for i, attrs in enumerate(candidate_attribute_sets):
            tentative = union | attrs
            if self.distribution.profile_entropy(tentative) <= self.phi:
                union = tentative
                chosen.append(i)
        return chosen
