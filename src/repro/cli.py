"""Command-line interface: demos, population statistics, experiments.

Installed as ``sealed-bottle`` (see pyproject).  Subcommands:

- ``demo``         one friending exchange, verbose.
- ``population``   generate a calibrated population and print its statistics.
- ``simulate``     run a friending episode over a simulated MANET.
- ``tables``       regenerate the measured PPL tables (I and II).
- ``experiments``  run a config-driven ScenarioSpec sweep
  (``experiments run spec.json``); see ``docs/experiments.md``.
- ``profiles``     list the named built-in scenario profiles
  (``simulate --profile NAME`` runs one); see ``docs/reliability.md``.
- ``conformance``  wire-format conformance suite against the independent
  mini endpoint (``conformance run``); see ``docs/wire_format.md``.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.analysis.experiments import ScenarioSpec, SpecError, run_plan, run_scenario
from repro.analysis.ppl import evaluate_hbc_table, evaluate_malicious_table
from repro.analysis.reporting import render_series, render_table
from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant
from repro.dataset.stats import (
    attribute_count_distribution,
    profile_collision_cdf,
    unique_profile_fraction,
)
from repro.crypto.backend import available_backends, use_backend
from repro.dataset.weibo import WeiboGenerator
from repro.network.channel_model import ChannelModel
from repro.network.engine import DEFAULT_RETRANSMIT_TIMEOUT_MS, FriendingEngine
from repro.network.profiles import BUILTIN_PROFILES, available_profiles
from repro.network.regions import RegionShardedEngine
from repro.network.reliability import available_reliability_modes
from repro.network.simulator import AdHocNetwork
from repro.network.topology import random_geometric_topology

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The sealed-bottle argument parser."""
    parser = argparse.ArgumentParser(
        prog="sealed-bottle",
        description="Privacy-preserving friending (Zhang & Li, ICDCS 2013) -- reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one verbose friending exchange")
    demo.add_argument("--protocol", type=int, choices=(1, 2, 3), default=1)

    population = sub.add_parser("population", help="generate + describe a population")
    population.add_argument("--users", type=int, default=2000)
    population.add_argument("--vocabulary", type=int, default=20_000)
    population.add_argument("--seed", type=int, default=2013)

    simulate = sub.add_parser("simulate", help="friending episode(s) over a MANET")
    simulate.add_argument("--nodes", type=int, default=50)
    simulate.add_argument("--radius", type=float, default=0.25)
    simulate.add_argument("--theta", type=float, default=0.6)
    simulate.add_argument("--protocol", type=int, choices=(1, 2, 3), default=2)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument(
        "--episodes", type=int, default=1,
        help="number of overlapping episodes from distinct initiators",
    )
    simulate.add_argument(
        "--arrival-ms", type=int, default=50,
        help="stagger between consecutive episode starts (ms)",
    )
    simulate.add_argument(
        "--backend", choices=available_backends(), default="tables",
        help="crypto backend for the symmetric hot path (default: tables)",
    )
    simulate.add_argument(
        "--workers", type=int, default=1,
        help="shard episodes across N processes (default: 1 = one event queue)",
    )
    simulate.add_argument(
        "--regions", type=int, default=1,
        help="shard the city into N contiguous regions (default: 1 = one "
             "calendar queue); byte-identical results, mutually exclusive "
             "with --workers > 1 (docs/performance.md)",
    )
    simulate.add_argument(
        "--loss", type=float, default=0.0, metavar="P",
        help="per-hop frame drop probability (default: 0 = perfect channel)",
    )
    simulate.add_argument(
        "--dup", type=float, default=0.0, metavar="P",
        help="per-hop link-layer duplication probability (default: 0)",
    )
    simulate.add_argument(
        "--reorder", type=float, default=0.0, metavar="P",
        help="per-copy reordering probability (extra hold-back delay; default: 0)",
    )
    simulate.add_argument(
        "--corrupt", type=float, default=0.0, metavar="P",
        help="per-copy bit-flip probability; CRC-rejected at the receiver (default: 0)",
    )
    simulate.add_argument(
        "--jitter-ms", type=int, default=0,
        help="uniform extra per-hop latency in [0, N] simulated ms (default: 0)",
    )
    simulate.add_argument(
        "--retries", type=int, default=0,
        help="retransmission waves for unanswered requests (default: 0)",
    )
    simulate.add_argument(
        "--retransmit-timeout-ms", type=int, default=DEFAULT_RETRANSMIT_TIMEOUT_MS,
        help="base retransmission timeout in simulated ms; the reliability "
             f"mode's backoff scales it per wave (default: "
             f"{DEFAULT_RETRANSMIT_TIMEOUT_MS})",
    )
    simulate.add_argument(
        "--reliability", choices=available_reliability_modes(), default="simple",
        help="reliability mode: simple = blind re-floods, stage = escalating "
             "backoff, window = selective segment retransmission, window_fec "
             "= XOR parity recovery with no waves (default: simple; "
             "docs/reliability.md)",
    )
    simulate.add_argument(
        "--profile", choices=available_profiles(), default=None,
        help="run a named built-in scenario profile through the experiment "
             "runner instead of the ad-hoc simulate topology; simulate flags "
             "set to non-default values override the profile's settings "
             "(see `profiles list`)",
    )
    simulate.add_argument(
        "--channel-version", type=int, choices=(1, 2), default=1,
        help="channel fate-derivation plane: 1 = scratch-MT reference "
             "(default), 2 = counter-mode keystream (same rates, different "
             "drawn fates, faster; see docs/wire_format.md)",
    )
    simulate.add_argument(
        "--churn-rate", type=float, default=0.0, metavar="R",
        help="open-world churn in events per simulated second, split evenly "
             "between arrivals and graceful departures; any non-zero value "
             "routes the run through the engine's incremental begin/step "
             "plane (default: 0 = closed world; docs/robustness.md)",
    )
    simulate.add_argument(
        "--churn-crash-rate", type=float, default=0.0, metavar="R",
        help="crash rate in events per simulated second on top of "
             "--churn-rate; crashed nodes lose volatile state (default: 0)",
    )
    simulate.add_argument(
        "--fault-plan", default=None, metavar="NAME",
        help="named fault campaign to inject (initiator crashes, blackouts, "
             "session pressure, region restarts); unknown names list the "
             "registered campaigns (docs/robustness.md)",
    )
    simulate.add_argument(
        "--profile-top", type=int, default=0, metavar="N",
        help="run under cProfile and print the top-N functions by internal "
             "time after the tables (0 = off; tools/profile_engine.py offers "
             "the spec-driven variant)",
    )

    sub.add_parser("tables", help="regenerate measured PPL tables I and II")

    experiments = sub.add_parser(
        "experiments", help="config-driven scenario sweeps (docs/experiments.md)"
    )
    exp_sub = experiments.add_subparsers(dest="experiments_command", required=True)
    run_parser = exp_sub.add_parser(
        "run", help="run every scenario in a JSON spec; write JSON + markdown artifacts"
    )
    run_parser.add_argument("spec", help="path to the ScenarioSpec / sweep-plan JSON file")
    run_parser.add_argument(
        "--out-dir", default="results",
        help="directory for the JSON artifact and markdown report (default: results/)",
    )

    conformance = sub.add_parser(
        "conformance",
        help="protocol conformance suite against the independent mini endpoint",
    )
    conf_sub = conformance.add_subparsers(dest="conformance_command", required=True)
    conf_run = conf_sub.add_parser(
        "run", help="run the checks; write schema-validated JSON verdicts + markdown report"
    )
    conf_run.add_argument(
        "--suite", default=None,
        help="restrict to one suite (frames, sessions, episodes; default: all)",
    )
    conf_run.add_argument(
        "--smoke", action="store_true",
        help="run only the fast smoke subset (the tier-1 slice)",
    )
    conf_run.add_argument(
        "--out-dir", default="results",
        help="directory for the JSON verdicts and markdown report (default: results/)",
    )
    conf_sub.add_parser("list", help="list registered checks with suite + trust context")

    profiles = sub.add_parser(
        "profiles", help="named built-in scenario profiles (docs/reliability.md)"
    )
    prof_sub = profiles.add_subparsers(dest="profiles_command", required=True)
    prof_sub.add_parser("list", help="list built-in profiles and their settings")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _cmd_demo(args)
    if args.command == "population":
        return _cmd_population(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "tables":
        return _cmd_tables()
    if args.command == "experiments":
        return _cmd_experiments(args)
    if args.command == "conformance":
        return _cmd_conformance(args)
    if args.command == "profiles":
        return _cmd_profiles(args)
    return 2  # pragma: no cover -- argparse enforces the choices


def _cmd_demo(args) -> int:
    request = RequestProfile(
        necessary=["interest:basketball"],
        optional=["profession:engineer", "city:nyc", "music:jazz"],
        beta=2,
    )
    initiator = Initiator(request, protocol=args.protocol)
    package = initiator.create_request(now_ms=0)
    print(f"request: protocol {args.protocol}, {package.wire_size_bytes()} bytes, "
          f"theta={request.theta:.0%}")
    matcher = Participant(Profile(
        ["interest:basketball", "profession:engineer", "city:nyc"], user_id="match"
    ))
    stranger = Participant(Profile(["hobby:stamps"], user_id="stranger"))
    for participant in (matcher, stranger):
        reply = participant.handle_request(package, now_ms=1)
        if reply is None:
            print(f"{participant.profile.user_id}: relays silently")
            continue
        record = initiator.handle_reply(reply, now_ms=2)
        verdict = f"verified (similarity {record.similarity})" if record else "rejected"
        print(f"{participant.profile.user_id}: replied -> {verdict}")
    return 0


def _cmd_population(args) -> int:
    users = WeiboGenerator(
        n_users=args.users, tag_vocabulary=args.vocabulary, seed=args.seed
    ).generate()
    mean_tags = sum(len(u.tags) for u in users) / len(users)
    print(render_table(
        "population summary",
        ["metric", "value"],
        [
            ["users", len(users)],
            ["mean tags", f"{mean_tags:.2f}"],
            ["max tags", max(len(u.tags) for u in users)],
            ["unique profiles (tags only)",
             f"{unique_profile_fraction(users, include_keywords=False):.1%}"],
            ["unique profiles (with keywords)",
             f"{unique_profile_fraction(users, include_keywords=True):.1%}"],
        ],
    ))
    histogram = attribute_count_distribution(users)
    xs = sorted(histogram)
    print()
    print(render_series("tag count distribution", "tags", xs, {"users": [histogram[x] for x in xs]}))
    cdf = profile_collision_cdf(users, include_keywords=False, max_collisions=5)
    print()
    print(render_series("collision CDF", "collisions <=", list(range(1, 6)),
                        {"fraction": [round(v, 4) for v in cdf]}))
    return 0


def _prime_exceeding(n: int) -> int:
    """Smallest prime strictly greater than max(n, 10)."""
    candidate = max(n, 10) + 1
    while any(candidate % d == 0 for d in range(2, int(candidate**0.5) + 1)):
        candidate += 1
    return candidate


# simulate flags that map onto ScenarioSpec fields, with the argparse
# defaults they carry (kept in sync with build_parser): in --profile mode
# a flag overrides the profile's setting only when it differs from its
# default, i.e. when the user actually asked for it.
_SIMULATE_SPEC_FLAGS = {
    "nodes": ("nodes", 50),
    "radius": ("radio_radius", 0.25),
    "protocol": ("protocol", 2),
    "seed": ("seed", 1),
    "episodes": ("episodes", 1),
    "backend": ("backend", "tables"),
    "workers": ("workers", 1),
    "regions": ("regions", 1),
    "loss": ("loss_rate", 0.0),
    "dup": ("dup_rate", 0.0),
    "reorder": ("reorder_rate", 0.0),
    "corrupt": ("corrupt_rate", 0.0),
    "jitter_ms": ("jitter_ms", 0),
    "retries": ("retries", 0),
    "retransmit_timeout_ms": ("retransmit_timeout_ms", DEFAULT_RETRANSMIT_TIMEOUT_MS),
    "reliability": ("reliability", "simple"),
    "channel_version": ("channel_version", 1),
    "churn_rate": ("churn_rate", 0.0),
    "churn_crash_rate": ("churn_crash_rate", 0.0),
    "fault_plan": ("fault_plan", None),
}


def _run_simulate_profile(args) -> int:
    """``simulate --profile NAME``: one profile run via the experiment runner."""
    overrides = {
        spec_field: getattr(args, attr)
        for attr, (spec_field, default) in _SIMULATE_SPEC_FLAGS.items()
        if getattr(args, attr) != default
    }
    try:
        spec = ScenarioSpec.from_profile(args.profile, name=args.profile, **overrides)
        record = run_scenario(spec)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_scenario_record(f"profile run: {args.profile}", record)
    return 0


def _print_scenario_record(title: str, record) -> None:
    keys = [
        "nodes", "episodes", "protocol", "mobility", "reliability",
        "retries", "retransmit_timeout_ms", "loss_rate",
        "channel_version", "matches", "match_rate", "frames_sent",
        "frames_dropped", "retransmissions", "selective_retx",
        "fec_recovered", "frame_bytes", "latency_p50_ms",
        "latency_p95_ms", "wall_seconds",
    ]
    if record["churn_rate"] or record["churn_crash_rate"] or record["fault_plan"]:
        keys += [
            "churn_rate", "churn_crash_rate", "fault_plan", "nodes_joined",
            "nodes_left", "nodes_crashed", "orphaned_replies",
            "degraded_episodes", "region_restarts",
        ]
    print(render_table(title, ["metric", "value"], [[k, record[k]] for k in keys]))
    for warning in record["warnings"]:
        print(f"warning: {warning}")


def _run_simulate_churn(args) -> int:
    """Ad-hoc ``simulate --churn-rate/--fault-plan``: open-world run.

    Churn needs the experiment runner's engine plumbing (positions for
    joiner placement, the churn runner, degradation counters), so the
    ad-hoc flags are folded into a ScenarioSpec instead of the bare
    simulate topology.
    """
    overrides = {
        spec_field: getattr(args, attr)
        for attr, (spec_field, _) in _SIMULATE_SPEC_FLAGS.items()
    }
    overrides["episodes"] = max(1, overrides.get("episodes", 1))
    try:
        spec = ScenarioSpec(
            name="simulate",
            arrival_rate_per_s=1000 / max(1, args.arrival_ms),
            **overrides,
        )
        record = run_scenario(spec)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_scenario_record(
        f"open-world run (churn {spec.churn_rate}/s, crash "
        f"{spec.churn_crash_rate}/s, faults {spec.fault_plan or 'none'})",
        record,
    )
    return 0


def _cmd_simulate(args) -> int:
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.regions < 1:
        print("error: --regions must be >= 1", file=sys.stderr)
        return 2
    if args.workers > 1 and args.regions > 1:
        print("error: --workers shards episodes and --regions shards the city; "
              "the two are mutually exclusive", file=sys.stderr)
        return 2
    if args.profile is not None:
        if args.profile_top:
            print("error: --profile-top is not supported with --profile "
                  "(use tools/profile_engine.py)", file=sys.stderr)
            return 2
        return _run_simulate_profile(args)
    if args.churn_rate or args.churn_crash_rate or args.fault_plan is not None:
        if args.profile_top:
            print("error: --profile-top is not supported with churn/fault "
                  "flags (use tools/profile_engine.py)", file=sys.stderr)
            return 2
        return _run_simulate_churn(args)
    try:
        channel = ChannelModel(
            drop_rate=args.loss, dup_rate=args.dup, reorder_rate=args.reorder,
            corrupt_rate=args.corrupt, jitter_ms=args.jitter_ms, seed=args.seed,
            version=args.channel_version,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not 0 <= args.retries <= 255:
        print("error: --retries must be in [0, 255] (one envelope byte names "
              "the retransmission wave)", file=sys.stderr)
        return 2
    if args.profile_top < 0:
        print("error: --profile-top must be >= 0", file=sys.stderr)
        return 2
    with use_backend(args.backend):
        if args.profile_top:
            import cProfile
            import io
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            code = _run_simulate(args, channel)
            profiler.disable()
            buffer = io.StringIO()
            pstats.Stats(profiler, stream=buffer).sort_stats("tottime").print_stats(
                args.profile_top
            )
            print()
            print(buffer.getvalue().rstrip())
            return code
        return _run_simulate(args, channel)


def _run_simulate(args, channel: ChannelModel) -> int:
    rng = random.Random(args.seed)
    users = WeiboGenerator(
        n_users=args.nodes, tag_vocabulary=1_000, seed=args.seed
    ).generate()
    adjacency, positions = random_geometric_topology(
        args.nodes, args.radius, seed=args.seed
    )
    nodes = list(adjacency)
    episodes = max(1, args.episodes)
    if episodes > len(nodes):
        print(f"error: --episodes {episodes} exceeds the {len(nodes)} nodes", file=sys.stderr)
        return 2

    def request_for(user):
        return RequestProfile.with_threshold(
            necessary=(), optional=[f"tag:{t}" for t in user.tags],
            theta=args.theta, normalized=True,
        )

    def initiator_for(user, episode: int = 0):
        # The remainder prime must exceed the request size m_t, which here
        # is however many tags the target user happens to have.  Each
        # episode gets its own seeded RNG: the engine's sharding identity
        # (workers=N == workers=1) requires that an episode's request
        # bytes never depend on how many episodes ran before it.
        request = request_for(user)
        return Initiator(
            request, protocol=args.protocol, p=_prime_exceeding(len(user.tags)),
            rng=random.Random(args.seed * 1000 + episode),
        )

    if episodes == 1 and args.regions == 1:
        participants = {}
        for node, user in zip(nodes, users):
            participants[node] = Participant(
                Profile(user.profile().attributes, user_id=node, normalized=True), rng=rng
            )
        participants[nodes[0]] = None
        target = users[min(len(users) - 1, args.nodes // 2)]
        initiator = initiator_for(target)
        network = AdHocNetwork(adjacency, participants, rng=rng, channel=channel)
        result = network.run_friending(
            nodes[0], initiator, retries=args.retries,
            retransmit_timeout_ms=args.retransmit_timeout_ms,
            reliability=args.reliability,
        )
        metrics = result.metrics.as_dict()
        print(render_table(
            f"friending episode (n={args.nodes}, theta={args.theta}, protocol {args.protocol})",
            ["metric", "value"],
            [[k, v] for k, v in metrics.items() if v]
            + [["matches", ", ".join(result.matched_ids) or "none"]],
        ))
        return 0

    # Concurrent mode: every node is a participant; episode initiators are
    # spread across the network and each requests a different user's tags.
    participants = {
        node: Participant(
            Profile(user.profile().attributes, user_id=node, normalized=True), rng=rng
        )
        for node, user in zip(nodes, users)
    }
    network = AdHocNetwork(adjacency, participants, rng=rng, channel=channel)
    stride = max(1, len(nodes) // episodes)
    launches = []
    for i in range(episodes):
        initiator_node = nodes[(i * stride) % len(nodes)]
        target = users[(i * stride + len(users) // 2) % len(users)]
        launches.append((initiator_node, initiator_for(target, episode=i)))
    engine_kwargs = dict(
        retries=args.retries,
        retransmit_timeout_ms=args.retransmit_timeout_ms,
        reliability=args.reliability,
    )
    if args.regions > 1:
        engine = RegionShardedEngine(
            network, positions=positions, regions=args.regions, **engine_kwargs
        )
    else:
        engine = FriendingEngine(network, **engine_kwargs)
    result = engine.run_staggered(
        launches, arrival_ms=args.arrival_ms, workers=args.workers
    )

    print(render_table(
        f"concurrent friending (n={args.nodes}, episodes={episodes}, "
        f"arrival={args.arrival_ms}ms, protocol {args.protocol}, "
        f"backend={args.backend}, workers={args.workers}, regions={args.regions})",
        ["metric", "value"],
        [[k, v] for k, v in result.aggregate.as_dict().items() if v],
    ))
    print()
    rows = [
        [ep.episode, ep.initiator_node, ep.started_at_ms,
         ep.completed_at_ms, ", ".join(ep.matched_ids) or "none"]
        for ep in result.episodes
    ]
    print(render_table(
        "per-episode outcomes",
        ["episode", "initiator", "start ms", "done ms", "matches"],
        rows,
    ))
    return 0


def _cmd_experiments(args) -> int:
    try:
        json_path, md_path, records = run_plan(args.spec, args.out_dir, echo=print)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print()
    print(render_table(
        f"experiment sweep ({len(records)} scenario(s))",
        ["scenario", "nodes", "proto", "matches", "ep/sim-s", "p95 ms", "bytes"],
        [
            [r["scenario"], r["nodes"], r["protocol"], r["matches"],
             r["episodes_per_sim_sec"], r["latency_p95_ms"], r["total_bytes"]]
            for r in records
        ],
    ))
    print()
    print(f"wrote {json_path}")
    print(f"wrote {md_path}")
    return 0


def _cmd_conformance(args) -> int:
    from repro.conformance.harness import available_checks, load_check, run_and_report

    if args.conformance_command == "list":
        rows = []
        for name in available_checks():
            entry = load_check(name)
            rows.append([
                entry.name, entry.suite, "+".join(entry.trust.names()),
                "yes" if entry.smoke else "", entry.doc,
            ])
        print(render_table(
            f"conformance checks ({len(rows)})",
            ["check", "suite", "trust", "smoke", "what it pins"],
            rows,
        ))
        return 0
    try:
        json_path, md_path, records = run_and_report(
            args.suite, args.out_dir, smoke_only=args.smoke, echo=print
        )
    except ValueError as exc:  # unknown suite name
        print(f"error: {exc}", file=sys.stderr)
        return 2
    failed = [r for r in records if r["status"] == "fail"]
    print()
    print(render_table(
        f"conformance ({len(records)} check(s), {len(failed)} failed)",
        ["check", "suite", "trust", "status"],
        [[r["check"], r["suite"], "+".join(r["trust"]), r["status"]] for r in records],
    ))
    print()
    print(f"wrote {json_path}")
    print(f"wrote {md_path}")
    return 1 if failed else 0


def _cmd_profiles(args) -> int:
    if args.profiles_command != "list":  # pragma: no cover -- argparse enforces
        return 2
    rows = []
    for name in available_profiles():
        profile = BUILTIN_PROFILES[name]
        settings = profile.settings
        rows.append([
            profile.name,
            settings["nodes"],
            settings["episodes"],
            settings["reliability"],
            settings.get("retries", 0),
            f"{settings.get('loss_rate', 0.0):g}",
            profile.description,
        ])
    print(render_table(
        f"built-in scenario profiles ({len(rows)})",
        ["profile", "nodes", "episodes", "reliability", "retries", "loss", "scenario"],
        rows,
    ))
    print()
    print("run one with: sealed-bottle simulate --profile NAME "
          "(explicit simulate flags override profile settings)")
    return 0


def _cmd_tables() -> int:
    pairs = ["A_I vs v_M", "A_I vs v_U", "A_M vs v_I", "A_U vs v_I"]
    measured = {(c.protocol, c.pair): c.level for c in evaluate_hbc_table()}
    rows = [
        [protocol] + [measured[(protocol, pair)] for pair in pairs]
        for protocol in ("Protocol 1", "Protocol 2", "Protocol 3")
    ]
    print(render_table("Table I (measured, HBC)", ["scheme"] + pairs, rows))

    pairs2 = ["A_I vs v'_P", "A_M vs v'_I", "A_U vs v'_P"]
    measured2 = {(c.protocol, c.pair): c.level for c in evaluate_malicious_table()}
    rows2 = [
        [protocol] + [measured2[(protocol, pair)] for pair in pairs2]
        for protocol in ("Protocol 1", "Protocol 2", "Protocol 3")
    ]
    print()
    print(render_table("Table II (measured, malicious)", ["scheme"] + pairs2, rows2))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
