"""Protocol conformance: an independent mini-endpoint + assertion harness.

This package proves the SBFM wire spec is complete enough to
*interoperate*, not merely self-consistent:

- :mod:`repro.conformance.minipeer` — a second, minimal endpoint
  implementation written only from ``docs/wire_format.md`` and
  ``docs/protocols.md``, deliberately sharing no code with
  ``core/wire.py`` or ``network/sessions.py``.
- :mod:`repro.conformance.harness` — a registry of named,
  trust-context-tagged checks emitting schema-validated JSON verdicts
  plus a markdown report through the ``analysis/experiments.py``
  artifact pipeline.
- :mod:`repro.conformance.adapter` — an engine-facing wrapper so the
  mini participant can ride inside :class:`~repro.network.engine.FriendingEngine`.
- :mod:`repro.conformance.mutants` — deliberately-broken minipeer
  variants proving the suite actually fails on spec violations.

CLI entry: ``sealed-bottle conformance run [--suite NAME] [--out-dir D]``.
"""

from repro.conformance.harness import (
    TrustContext,
    available_checks,
    available_suites,
    load_check,
    run_and_report,
    run_suite,
    validate_verdict,
)
from repro.conformance.minipeer import MiniPeer

__all__ = [
    "MiniPeer",
    "TrustContext",
    "available_checks",
    "available_suites",
    "load_check",
    "run_and_report",
    "run_suite",
    "validate_verdict",
]
