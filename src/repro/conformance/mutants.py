"""Deliberately-broken mini peers: proof the conformance suite has teeth.

Each mutant violates exactly one spec clause; running the check registry
against it MUST produce at least one ``fail`` verdict (pinned by
``tests/conformance/test_harness.py``).  The honest implementation lives
in :mod:`repro.conformance.minipeer`; mutants swap one component through
the :class:`~repro.conformance.minipeer.MiniPeer` seams.

Registry idiom: ``available_mutants()`` / ``mutant_peer(name)`` with an
unknown-name :class:`ValueError` listing what exists.
"""

from __future__ import annotations

import zlib

from repro.conformance.minipeer import (
    MiniDelivery,
    MiniNode,
    MiniPeer,
    MiniReply,
    MiniSessionTable,
    MiniWire,
)

__all__ = ["MUTANTS", "available_mutants", "mutant_peer", "describe_mutant"]


class _CrcCoversMagicWire(MiniWire):
    """Violation: frame CRC computed over bytes 0..12 instead of 4..12."""

    def _frame_checksum(self, head: bytes, payload: bytes) -> int:
        crc = zlib.crc32(head[:12])
        return zlib.crc32(payload, crc) & 0xFFFF_FFFF


class _LittleEndianLengthWire(MiniWire):
    """Violation: the length field is serialized little-endian."""

    def _pack_length(self, length: int) -> bytes:
        return length.to_bytes(4, "little")

    def _read_length(self, data: bytes) -> int:
        return int.from_bytes(data[8:12], "little")


class _StaleCrcHopWire(MiniWire):
    """Violation: the relay patches TTL/seq without refreshing the CRC."""

    def hop(self, data: bytes, *, ttl: int | None = None, seq: int | None = None) -> bytes:
        self.decode_frame(data)  # still validates the incoming copy
        out = bytearray(data)
        if ttl is not None:
            out[6] = ttl
        if seq is not None:
            out[7] = seq
        return bytes(out)


class _OversizedResponderWire(MiniWire):
    """Violation: responder ids longer than 255 bytes are silently truncated."""

    def encode_reply(self, reply: MiniReply) -> bytes:
        responder = reply.responder_id.encode("utf-8")
        if len(responder) <= 255:
            return super().encode_reply(reply)
        out = bytearray()
        out += b"SBRP"
        out += reply.request_id
        out += reply.sent_at_ms.to_bytes(8, "big")
        out += len(reply.elements).to_bytes(2, "big")
        out += bytes([len(responder) & 0xFF])  # the silent truncation
        out += responder
        for element in reply.elements:
            out += element
        return bytes(out)


class _SloppyExpiryTable(MiniSessionTable):
    """Violation: sessions expiring AT now_ms are evicted (<= instead of <)."""

    def evict_expired(self, now_ms: int) -> int:
        dead = [rid for rid, s in self._sessions.items() if s.expires_ms <= now_ms]
        for rid in dead:
            del self._sessions[rid]
        self.evicted_expired += len(dead)
        return len(dead)


class _ReplyOnWaveNode(MiniNode):
    """Violation: retransmission waves are re-processed instead of forward-only."""

    def handle_datagram(self, data: bytes, *, parent=None, now_ms: int = 0) -> MiniDelivery:
        delivery = super().handle_datagram(data, parent=parent, now_ms=now_ms)
        if delivery.status == "wave-forwarded":
            return MiniDelivery(
                status="processed",
                reply_frame=None,
                forward_frame=delivery.forward_frame,
                candidate=None,
            )
        return delivery


#: name -> (one-line description of the violated spec clause, peer factory)
MUTANTS: dict[str, tuple[str, object]] = {
    "crc-covers-magic": (
        "frame CRC covers the magic bytes (spec: CRC over bytes 4..12 + payload)",
        lambda: MiniPeer(wire=_CrcCoversMagicWire()),
    ),
    "little-endian-length": (
        "frame length field little-endian (spec: all integers big-endian)",
        lambda: MiniPeer(wire=_LittleEndianLengthWire()),
    ),
    "stale-crc-hop": (
        "relay patches TTL/seq without refreshing the CRC",
        lambda: MiniPeer(wire=_StaleCrcHopWire()),
    ),
    "oversized-responder": (
        "responder ids > 255 bytes truncated instead of rejected",
        lambda: MiniPeer(wire=_OversizedResponderWire()),
    ),
    "sloppy-session-expiry": (
        "session expiry boundary <= instead of strict < (evicts live sessions)",
        lambda: MiniPeer(table_factory=_SloppyExpiryTable),
    ),
    "reply-on-wave": (
        "retransmission waves re-processed instead of forwarded exactly once",
        lambda: MiniPeer(node_factory=_ReplyOnWaveNode),
    ),
}


def available_mutants() -> tuple[str, ...]:
    """All mutant names, sorted."""
    return tuple(sorted(MUTANTS))


def describe_mutant(name: str) -> str:
    """The one-line spec clause this mutant violates."""
    if name not in MUTANTS:
        raise ValueError(f"unknown mutant {name!r}; available: {', '.join(available_mutants())}")
    return MUTANTS[name][0]


def mutant_peer(name: str) -> MiniPeer:
    """Build the broken peer registered under *name*."""
    if name not in MUTANTS:
        raise ValueError(f"unknown mutant {name!r}; available: {', '.join(available_mutants())}")
    return MUTANTS[name][1]()
