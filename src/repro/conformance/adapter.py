"""Engine-facing adapter: run a mini participant inside the repro engine.

:class:`~repro.network.engine.FriendingEngine` talks to participants
through exactly two touch points — ``handle_request(package, now_ms=...)``
returning a :class:`~repro.core.protocols.Reply` or None, and
``last_outcome.candidate``.  The adapter crosses the stack boundary *on
the wire*: every incoming :class:`~repro.core.request.RequestPackage` is
re-encoded to bytes and decoded by the mini codec, so a whole engine run
with adapted participants exercises the mini stack end to end under
lossy channels, retransmission waves and TTL relaying.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.protocols import Reply
from repro.core.request import RequestPackage
from repro.conformance.minipeer import MiniParticipant, MiniWire

__all__ = ["MiniOutcomeView", "MiniParticipantAdapter"]


@dataclass(frozen=True)
class MiniOutcomeView:
    """The one field the engine reads off a participant outcome."""

    candidate: bool


class MiniParticipantAdapter:
    """Drop-in participant whose protocol brain is the mini endpoint."""

    def __init__(
        self,
        attributes,
        user_id: str,
        *,
        y_seed: bytes | None = None,
        binding: bytes | None = None,
        wire: MiniWire | None = None,
    ):
        self._wire = wire or MiniWire()
        self._inner = MiniParticipant(attributes, user_id, y_seed=y_seed, binding=binding)
        self.user_id = user_id
        self.last_outcome: MiniOutcomeView | None = None

    def handle_request(self, package: RequestPackage, now_ms: int = 0) -> Reply | None:
        # Cross the boundary through the bytes, not the object model.
        request = self._wire.decode_request(package.encode())
        # Expired/duplicate requests return early *without* touching
        # last_outcome, exactly like the repro participant's early returns.
        if request.is_expired(now_ms) or self._inner.has_seen(request.request_id):
            return None
        reply = self._inner.handle_request(request, now_ms=now_ms)
        self.last_outcome = MiniOutcomeView(candidate=bool(self._inner.last_candidate))
        if reply is None:
            return None
        return Reply(
            request_id=reply.request_id,
            responder_id=reply.responder_id,
            elements=reply.elements,
            sent_at_ms=reply.sent_at_ms,
        )

    def channel_keys(self, request_id: bytes) -> list[bytes]:
        return self._inner.channel_keys(request_id)
