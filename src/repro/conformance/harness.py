"""Trust-context conformance harness over the SBFM wire format.

A registry of named checks (Snippet-1-style ``available_*``/``load_*``
loader idiom), each tagged with the trust context it defends
(:class:`TrustContext`, in the style of the aries protocol-test-suite),
run against a :class:`~repro.conformance.minipeer.MiniPeer` and emitting
schema-validated JSON verdicts plus a markdown report through the
``analysis/experiments.py`` artifact pipeline.

A check is a callable ``check_fn(peer) -> str | None`` registered with
the :func:`check` decorator; it raises :class:`ConformanceFailure` (or
any exception) to fail, and may return a short human detail string on
success.  Running the registry against a *mutant* peer (see
:mod:`repro.conformance.mutants`) must make at least one check fail —
that is how the suite proves it has teeth.
"""

from __future__ import annotations

import enum
import importlib
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.analysis.experiments import write_artifacts
from repro.conformance.minipeer import MiniPeer

__all__ = [
    "TrustContext",
    "ConformanceCheck",
    "ConformanceFailure",
    "VERDICT_SCHEMA",
    "check",
    "available_checks",
    "available_suites",
    "load_check",
    "validate_verdict",
    "run_suite",
    "render_markdown",
    "run_and_report",
]


class TrustContext(enum.Flag):
    """What a conformance check defends, in protocol-trust terms.

    - ``CONFIDENTIALITY`` — profile/secret material stays sealed; only a
      genuine match learns anything.
    - ``INTEGRITY`` — frames and payloads survive the wire exactly or are
      rejected; malformed input cannot smuggle state.
    - ``AUTHENTICATED_ORIGIN`` — replies verify against the initiator's
      sealed secret; forged or replayed traffic is discarded.
    """

    CONFIDENTIALITY = enum.auto()
    INTEGRITY = enum.auto()
    AUTHENTICATED_ORIGIN = enum.auto()

    def names(self) -> list[str]:
        return [flag.name for flag in TrustContext if flag & self]


class ConformanceFailure(AssertionError):
    """A check observed a divergence between the two stacks."""


@dataclass(frozen=True)
class ConformanceCheck:
    name: str
    suite: str
    trust: TrustContext
    smoke: bool
    func: Callable[[MiniPeer], str | None]
    doc: str


_REGISTRY: dict[str, ConformanceCheck] = {}
_CHECK_MODULES = (
    "repro.conformance.checks.frames",
    "repro.conformance.checks.sessions",
    "repro.conformance.checks.episodes",
)
_loaded = False


def check(name: str, *, suite: str, trust: TrustContext, smoke: bool = False):
    """Register a conformance check under *name* in *suite*.

    ``smoke=True`` marks the check as part of the fast tier-1 subset.
    """

    def decorate(func: Callable[[MiniPeer], str | None]):
        if name in _REGISTRY:
            raise ValueError(f"duplicate conformance check {name!r}")
        doc = (func.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = ConformanceCheck(
            name=name,
            suite=suite,
            trust=trust,
            smoke=smoke,
            func=func,
            doc=doc[0] if doc else "",
        )
        return func

    return decorate


def _ensure_loaded() -> None:
    global _loaded
    if not _loaded:
        for module in _CHECK_MODULES:
            importlib.import_module(module)
        _loaded = True


def available_suites() -> tuple[str, ...]:
    """All suite names, sorted."""
    _ensure_loaded()
    return tuple(sorted({c.suite for c in _REGISTRY.values()}))


def available_checks(suite: str | None = None, *, smoke_only: bool = False) -> tuple[str, ...]:
    """Registered check names (optionally one suite / the smoke subset), sorted."""
    _ensure_loaded()
    if suite is not None and suite not in available_suites():
        raise ValueError(
            f"unknown conformance suite {suite!r}; available: {', '.join(available_suites())}"
        )
    return tuple(
        sorted(
            c.name
            for c in _REGISTRY.values()
            if (suite is None or c.suite == suite) and (not smoke_only or c.smoke)
        )
    )


def load_check(name: str) -> ConformanceCheck:
    """Look up one check by name; unknown names list what exists."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown conformance check {name!r}; available: {known}") from None


# -- verdict records ------------------------------------------------------

#: JSON schema (draft-07 shape) for one verdict record.  Validation is
#: hand-rolled below so the suite adds no dependency; the schema document
#: itself is part of the artifact so external tooling can re-validate.
VERDICT_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "sealed-bottle conformance verdict",
    "type": "object",
    "required": ["check", "suite", "trust", "smoke", "status", "detail"],
    "additionalProperties": False,
    "properties": {
        "check": {"type": "string", "minLength": 1},
        "suite": {"type": "string", "minLength": 1},
        "trust": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "string",
                "enum": ["CONFIDENTIALITY", "INTEGRITY", "AUTHENTICATED_ORIGIN"],
            },
        },
        "smoke": {"type": "boolean"},
        "status": {"type": "string", "enum": ["pass", "fail"]},
        "detail": {"type": "string"},
    },
}

_TRUST_NAMES = frozenset(flag.name for flag in TrustContext)


def validate_verdict(record: Mapping[str, Any]) -> None:
    """Assert *record* conforms to :data:`VERDICT_SCHEMA` (ValueError if not)."""
    required = VERDICT_SCHEMA["required"]
    missing = [key for key in required if key not in record]
    if missing:
        raise ValueError(f"verdict missing fields: {missing}")
    extra = [key for key in record if key not in VERDICT_SCHEMA["properties"]]
    if extra:
        raise ValueError(f"verdict has unknown fields: {extra}")
    for key in ("check", "suite", "detail"):
        if not isinstance(record[key], str):
            raise ValueError(f"verdict field {key!r} must be a string")
    if not record["check"] or not record["suite"]:
        raise ValueError("verdict check/suite must be non-empty")
    if not isinstance(record["smoke"], bool):
        raise ValueError("verdict field 'smoke' must be a boolean")
    if record["status"] not in ("pass", "fail"):
        raise ValueError(f"verdict status must be pass|fail, got {record['status']!r}")
    trust = record["trust"]
    if (
        not isinstance(trust, list)
        or not trust
        or not all(isinstance(t, str) and t in _TRUST_NAMES for t in trust)
    ):
        raise ValueError(f"verdict trust must be a non-empty list drawn from {sorted(_TRUST_NAMES)}")


# -- running --------------------------------------------------------------


def run_suite(
    suite: str | None = None,
    *,
    peer: MiniPeer | None = None,
    smoke_only: bool = False,
    echo=None,
) -> list[dict[str, Any]]:
    """Run the registered checks and return schema-valid verdict records.

    ``peer=None`` gives every check a fresh honest :class:`MiniPeer`;
    passing a peer (e.g. a mutant) shares it across all checks.  Any
    exception inside a check — divergence assertion or crash — becomes a
    ``fail`` verdict rather than aborting the run.
    """
    records: list[dict[str, Any]] = []
    for name in available_checks(suite, smoke_only=smoke_only):
        entry = load_check(name)
        target = peer if peer is not None else MiniPeer()
        try:
            detail = entry.func(target)
            status = "pass"
            detail = detail if isinstance(detail, str) else entry.doc
        except ConformanceFailure as exc:
            status, detail = "fail", str(exc)
        except Exception as exc:  # a crash is a conformance failure too
            status, detail = "fail", f"{type(exc).__name__}: {exc}"
        record = {
            "check": entry.name,
            "suite": entry.suite,
            "trust": entry.trust.names(),
            "smoke": entry.smoke,
            "status": status,
            "detail": detail,
        }
        validate_verdict(record)
        records.append(record)
        if echo is not None:
            echo(f"[{status:>4}] {entry.suite}/{entry.name}" + (f" — {detail}" if status == "fail" else ""))
    return records


def render_markdown(records: list[dict[str, Any]], *, title: str = "conformance") -> str:
    """Render verdicts as a self-contained markdown report."""
    failed = [r for r in records if r["status"] == "fail"]
    lines = [
        f"# Conformance report: {title}",
        "",
        f"{len(records)} check(s), {len(records) - len(failed)} passed, "
        f"{len(failed)} failed.  Each check is tagged with the trust "
        "context it defends (see docs/wire_format.md, Conformance).",
        "",
        "| check | suite | trust | smoke | status |",
        "| --- | --- | --- | --- | --- |",
    ]
    for r in records:
        mark = "✅" if r["status"] == "pass" else "❌"
        lines.append(
            f"| {r['check']} | {r['suite']} | {'+'.join(r['trust'])} "
            f"| {'yes' if r['smoke'] else ''} | {mark} {r['status']} |"
        )
    if failed:
        lines.append("")
        lines.append("## Failures")
        lines.append("")
        for r in failed:
            lines.append(f"- **{r['check']}** ({r['suite']}): {r['detail']}")
    lines.append("")
    return "\n".join(lines) + "\n"


def run_and_report(
    suite: str | None = None,
    out_dir: str | Path = "results",
    *,
    peer: MiniPeer | None = None,
    smoke_only: bool = False,
    echo=None,
) -> tuple[Path, Path, list[dict[str, Any]]]:
    """Run checks and land JSON + markdown artifacts next to experiment runs.

    Returns ``(json_path, markdown_path, records)``; the JSON payload
    embeds :data:`VERDICT_SCHEMA` so artifacts are self-describing.
    """
    records = run_suite(suite, peer=peer, smoke_only=smoke_only, echo=echo)
    name = "conformance" if suite is None else f"conformance_{suite}"
    payload = {
        "plan": name,
        "schema": VERDICT_SCHEMA,
        "records": records,
    }
    json_path, md_path = write_artifacts(name, payload, render_markdown(records, title=name), out_dir)
    return json_path, md_path, records
