"""End-to-end friending episode checks: the two stacks as peers.

Every episode crosses the stack boundary on raw datagram bytes — a
repro initiator flooding a mini node, a mini initiator answered by a
repro participant, retransmission waves against a mini relay, forged
acknowledge sets against both verifiers, and a whole
:class:`~repro.network.engine.FriendingEngine` run with mini brains
behind the engine's participant seam.
"""

from __future__ import annotations

import os
import random

from repro.conformance.adapter import MiniParticipantAdapter
from repro.conformance.harness import ConformanceFailure, TrustContext, check
from repro.core import wire as rwire
from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant, Reply
from repro.network.channel_model import ChannelModel
from repro.core.request import RequestPackage
from repro.network.engine import EpisodeSpec, FriendingEngine
from repro.network.simulator import AdHocNetwork
from repro.network.topology import line_topology

_REQUEST = RequestProfile(
    necessary=("hiking", "jazz"),
    optional=("chess", "tennis", "poetry", "sailing"),
    beta=2,
)
_MATCH_ATTRS = ("hiking", "jazz", "chess", "tennis", "cooking")
_FUZZY_ATTRS = ("hiking", "jazz", "chess", "tennis")  # missing γ=2 optionals
_MISS_ATTRS = ("jazz", "chess", "tennis", "poetry")  # lacks necessary "hiking"

_E2E = TrustContext.CONFIDENTIALITY | TrustContext.AUTHENTICATED_ORIGIN


def _mini_reply_to_repro(peer, mini_reply) -> Reply:
    """Cross the boundary through frame bytes, never the object model."""
    frame_bytes = peer.wire.encode_frame(2, peer.wire.encode_reply(mini_reply), ttl=1)
    return rwire.decode_payload(rwire.decode_frame(frame_bytes))


def _repro_reply_to_mini(peer, reply: Reply):
    frame_bytes = rwire.encode_reply_frame(reply, ttl=1)
    return peer.wire.decode_reply(peer.wire.decode_frame(frame_bytes).payload)


@check("episode-repro-initiator", suite="episodes", trust=_E2E, smoke=True)
def episode_repro_initiator(peer):
    """A repro initiator friends a mini participant under Protocols 1–3."""
    for protocol in (1, 2, 3):
        initiator = Initiator(_REQUEST, protocol=protocol, p=31, rng=random.Random(40 + protocol))
        package = initiator.create_request(now_ms=0)
        data = rwire.encode_request_frame(package)

        node = peer.node(f"mini-{protocol}", peer.participant(_MATCH_ATTRS, "mini-bob", y_seed=b"y" * 32))
        delivery = node.handle_datagram(data, parent="origin", now_ms=10)
        if delivery.status != "processed" or not delivery.candidate:
            raise ConformanceFailure(f"P{protocol}: mini node did not process ({delivery.status})")
        if delivery.reply_frame is None:
            raise ConformanceFailure(f"P{protocol}: matching mini participant stayed silent")
        reply = rwire.decode_payload(rwire.decode_frame(delivery.reply_frame))
        record = initiator.handle_reply(reply, now_ms=20)
        if record is None:
            raise ConformanceFailure(f"P{protocol}: repro initiator rejected the mini reply")
        if record.session_key not in node.participant.channel_keys(package.request_id):
            raise ConformanceFailure(f"P{protocol}: pairwise session keys do not agree")

        # A non-candidate (missing a necessary attribute) must stay silent,
        # exactly like a repro participant with the same profile.
        silent = peer.node("mini-miss", peer.participant(_MISS_ATTRS, "mini-eve", y_seed=b"e" * 32))
        miss = silent.handle_datagram(data, parent="origin", now_ms=10)
        repro_peer = Participant(Profile(_MISS_ATTRS, "repro-eve"), rng=random.Random(3))
        repro_reply = repro_peer.handle_request(RequestPackage.decode(package.encode()), now_ms=10)
        if miss.reply_frame is not None or repro_reply is not None:
            raise ConformanceFailure(f"P{protocol}: a non-candidate replied")
        if bool(miss.candidate) != bool(repro_peer.last_outcome.candidate):
            raise ConformanceFailure(f"P{protocol}: candidate verdicts diverge for a miss")
    return "Protocols 1-3 verified matches, key agreement and silence parity"


@check("episode-mini-initiator", suite="episodes", trust=_E2E, smoke=True)
def episode_mini_initiator(peer):
    """A mini initiator friends a repro participant under Protocols 1–3."""
    for protocol in (1, 2, 3):
        seed = 60 + protocol
        mini_init = peer.initiator(
            _REQUEST.necessary, _REQUEST.optional, _REQUEST.beta,
            protocol=protocol, p=31, rng=random.Random(seed),
        )
        request = mini_init.build_request(now_ms=0)
        data = peer.wire.encode_frame(1, peer.wire.encode_request(request), ttl=request.ttl)

        # Strongest encoder statement: independently built, byte-identical.
        repro_package = Initiator(
            _REQUEST, protocol=protocol, p=31, rng=random.Random(seed)
        ).create_request(now_ms=0)
        if rwire.encode_request_frame(repro_package) != data:
            raise ConformanceFailure(f"P{protocol}: same-seed requests are not byte-identical")

        participant = Participant(Profile(_MATCH_ATTRS, "repro-bob"), rng=random.Random(17))
        frame = rwire.decode_frame(data)
        package = rwire.decode_payload(frame)
        reply = participant.handle_request(package, now_ms=5)
        if reply is None:
            raise ConformanceFailure(f"P{protocol}: repro participant stayed silent")
        record = mini_init.handle_reply(_repro_reply_to_mini(peer, reply), now_ms=30)
        if record is None:
            raise ConformanceFailure(
                f"P{protocol}: mini initiator rejected the repro reply ({mini_init.rejected})"
            )
        if record["session_key"] not in participant.channel_keys(request.request_id):
            raise ConformanceFailure(f"P{protocol}: pairwise session keys do not agree")
    return "Protocols 1-3 verified matches with byte-identical same-seed requests"


@check("episode-reply-parity", suite="episodes", trust=_E2E)
def episode_reply_parity(peer):
    """Same request, same secrets: both participants emit the same element set."""
    for protocol, attrs in ((1, _MATCH_ATTRS), (2, _MATCH_ATTRS), (3, _MATCH_ATTRS), (2, _FUZZY_ATTRS)):
        initiator = Initiator(_REQUEST, protocol=protocol, p=31, rng=random.Random(70 + protocol))
        package = initiator.create_request(now_ms=0)

        repro_participant = Participant(Profile(attrs, "bob"), rng=random.Random(23))
        mini_participant = peer.participant(attrs, "bob", y_seed=repro_participant._y_seed)

        repro_reply = repro_participant.handle_request(RequestPackage.decode(package.encode()), now_ms=7)
        mini_reply = mini_participant.handle_request(peer.wire.decode_request(package.encode()), now_ms=7)
        if (repro_reply is None) != (mini_reply is None):
            raise ConformanceFailure(f"P{protocol}/{attrs}: one stack replied, the other did not")
        if repro_reply is None:
            continue
        if repro_reply.responder_id != mini_reply.responder_id:
            raise ConformanceFailure("responder ids diverge")
        if repro_reply.sent_at_ms != mini_reply.sent_at_ms:
            raise ConformanceFailure("sent_at timestamps diverge")
        if sorted(repro_reply.elements) != sorted(mini_reply.elements):
            raise ConformanceFailure(
                f"P{protocol}/{attrs}: acknowledge element sets diverge "
                f"({len(repro_reply.elements)} vs {len(mini_reply.elements)} elements)"
            )
    return "element sets byte-identical under shared secrets (incl. hint recovery)"


@check("episode-fuzzy-hint", suite="episodes", trust=_E2E)
def episode_fuzzy_hint(peer):
    """Hint recovery: a participant missing γ optionals still matches, both ways."""
    initiator = Initiator(_REQUEST, protocol=2, p=31, rng=random.Random(81))
    package = initiator.create_request(now_ms=0)
    mini_participant = peer.participant(_FUZZY_ATTRS, "mini-fuzzy", y_seed=b"f" * 32)
    mini_reply = mini_participant.handle_request(peer.wire.decode_request(package.encode()), now_ms=3)
    if mini_reply is None:
        raise ConformanceFailure("mini hint solver found no candidate")
    if initiator.handle_reply(_mini_reply_to_repro(peer, mini_reply), now_ms=9) is None:
        raise ConformanceFailure("repro initiator rejected the hint-recovered mini reply")

    mini_init = peer.initiator(
        _REQUEST.necessary, _REQUEST.optional, _REQUEST.beta, protocol=2, p=31, rng=random.Random(82)
    )
    request = mini_init.build_request(now_ms=0)
    repro_participant = Participant(Profile(_FUZZY_ATTRS, "repro-fuzzy"), rng=random.Random(5))
    reply = repro_participant.handle_request(
        RequestPackage.decode(peer.wire.encode_request(request)), now_ms=3
    )
    if reply is None:
        raise ConformanceFailure("repro hint solver found no candidate for a mini request")
    if mini_init.handle_reply(_repro_reply_to_mini(peer, reply), now_ms=9) is None:
        raise ConformanceFailure("mini initiator rejected the hint-recovered repro reply")
    return "γ missing optionals recovered by both independent hint solvers"


@check(
    "wave-idempotence", suite="episodes",
    trust=TrustContext.INTEGRITY | TrustContext.AUTHENTICATED_ORIGIN, smoke=True,
)
def wave_idempotence(peer):
    """Retransmission waves: duplicates drop, fresh waves forward exactly once."""
    initiator = Initiator(_REQUEST, protocol=2, p=31, rng=random.Random(90))
    package = initiator.create_request(now_ms=0)
    data = rwire.encode_request_frame(package, ttl=3)

    node = peer.node("relay", peer.participant(_MATCH_ATTRS, "relay-bob", y_seed=b"r" * 32))
    first = node.handle_datagram(data, parent="up", now_ms=1)
    if first.status != "processed" or first.reply_frame is None:
        raise ConformanceFailure(f"first copy not processed ({first.status})")
    if first.forward_frame != rwire.reframe(data, ttl=2):
        raise ConformanceFailure("first-copy forward differs from the repro relay bytes")

    again = node.handle_datagram(data, parent="up", now_ms=2)
    if again.status != "duplicate" or again.reply_frame or again.forward_frame:
        raise ConformanceFailure(f"same-wave duplicate not dropped cleanly ({again.status})")

    wave1 = rwire.reframe(data, seq=1)
    fresh = node.handle_datagram(wave1, parent="up", now_ms=3)
    if fresh.status != "wave-forwarded" or fresh.reply_frame is not None:
        raise ConformanceFailure(f"fresh wave mishandled ({fresh.status}): waves must not re-process")
    if fresh.forward_frame != rwire.reframe(wave1, ttl=2):
        raise ConformanceFailure("wave forward differs from the repro relay bytes")

    replay = node.handle_datagram(wave1, parent="up", now_ms=4)
    if replay.status != "duplicate":
        raise ConformanceFailure(f"replayed wave not dropped ({replay.status})")

    stale = rwire.reframe(data, seq=0)
    stale_again = node.handle_datagram(stale, parent="up", now_ms=5)
    if stale_again.status != "duplicate":
        raise ConformanceFailure("seq <= last_seq must drop, got " + stale_again.status)

    # TTL 1 frames are consumed, never forwarded.
    leaf = peer.node("leaf", peer.participant(_MATCH_ATTRS, "leaf-bob", y_seed=b"l" * 32))
    edge = leaf.handle_datagram(rwire.reframe(data, ttl=1), parent="up", now_ms=1)
    if edge.status != "processed" or edge.forward_frame is not None:
        raise ConformanceFailure("a TTL-1 frame must be consumed without forwarding")

    # Expired requests never open sessions or replies.
    stale_pkg = Initiator(
        _REQUEST, protocol=2, p=31, validity_ms=100, rng=random.Random(91)
    ).create_request(now_ms=0)
    expired = peer.node("exp", peer.participant(_MATCH_ATTRS, "exp-bob", y_seed=b"x" * 32))
    late = expired.handle_datagram(rwire.encode_request_frame(stale_pkg), parent="up", now_ms=101)
    if late.status != "expired" or late.reply_frame or late.forward_frame:
        raise ConformanceFailure(f"expired request not dropped ({late.status})")
    return "wave marks, TTL edges and expiry behave per spec on the mini relay"


@check("reply-window-and-cardinality", suite="episodes", trust=TrustContext.AUTHENTICATED_ORIGIN)
def reply_window_and_cardinality(peer):
    """Both initiators enforce the reply window, cardinality cap and rid binding."""
    repro_init = Initiator(_REQUEST, protocol=2, p=31, rng=random.Random(100))
    package = repro_init.create_request(now_ms=0)
    mini_init = peer.initiator(
        _REQUEST.necessary, _REQUEST.optional, _REQUEST.beta, protocol=2, p=31, rng=random.Random(100)
    )
    mini_init.build_request(now_ms=0)

    def both_reject(reply: Reply, now_ms: int, expected_reason: str) -> None:
        if repro_init.handle_reply(reply, now_ms=now_ms) is not None:
            raise ConformanceFailure(f"repro accepted a reply that should fail: {expected_reason}")
        if mini_init.handle_reply(_repro_reply_to_mini(peer, reply), now_ms=now_ms) is not None:
            raise ConformanceFailure(f"mini accepted a reply that should fail: {expected_reason}")
        repro_reason = repro_init.rejected[-1].reason
        mini_reason = mini_init.rejected[-1][1]
        if repro_reason != expected_reason or mini_reason != expected_reason:
            raise ConformanceFailure(
                f"rejection reasons diverge: repro={repro_reason!r} mini={mini_reason!r} "
                f"expected={expected_reason!r}"
            )

    element = b"\x2a" * 48
    both_reject(
        Reply(request_id=b"WRONG-ID", responder_id="eve", elements=(element,), sent_at_ms=1),
        now_ms=10, expected_reason="unknown request id",
    )
    rid = package.request_id
    both_reject(
        Reply(request_id=rid, responder_id="slow", elements=(element,), sent_at_ms=1),
        now_ms=5_001, expected_reason="outside time window",
    )
    both_reject(
        Reply(request_id=rid, responder_id="chatty", elements=(element,) * 17, sent_at_ms=1),
        now_ms=100, expected_reason="reply set too large",
    )
    # Exactly at the window and the cap: not rejected for window/size reasons.
    both_reject(
        Reply(request_id=rid, responder_id="edge", elements=(element,) * 16, sent_at_ms=1),
        now_ms=5_000, expected_reason="no element verified",
    )
    return "window, cardinality and rid rejections agree reason-for-reason"


@check("forged-reply-rejection", suite="episodes", trust=_E2E)
def forged_reply_rejection(peer):
    """Forged acknowledge elements verify under neither initiator."""
    repro_init = Initiator(_REQUEST, protocol=2, p=31, rng=random.Random(110))
    package = repro_init.create_request(now_ms=0)
    mini_init = peer.initiator(
        _REQUEST.necessary, _REQUEST.optional, _REQUEST.beta, protocol=2, p=31, rng=random.Random(110)
    )
    mini_init.build_request(now_ms=0)

    # A cheater who never solved the request: random bytes, and an element
    # sealed under the *wrong* pairwise secret.
    from repro.conformance.minipeer import _ACK, _aes_encrypt  # check-side forgery tools

    wrong_x = os.urandom(32)
    forged = (
        os.urandom(48),
        _aes_encrypt(wrong_x, _ACK + b"\x01" + os.urandom(32)),
    )
    reply = Reply(request_id=package.request_id, responder_id="mallory", elements=forged, sent_at_ms=2)
    if repro_init.handle_reply(reply, now_ms=10) is not None:
        raise ConformanceFailure("repro initiator verified a forged element")
    if repro_init.rejected[-1].reason != "no element verified":
        raise ConformanceFailure("repro rejected the forgery for the wrong reason")
    if mini_init.handle_reply(_repro_reply_to_mini(peer, reply), now_ms=10) is not None:
        raise ConformanceFailure("mini initiator verified a forged element")
    if mini_init.rejected[-1][1] != "no element verified":
        raise ConformanceFailure("mini rejected the forgery for the wrong reason")
    return "random and wrong-key forgeries rejected by both verifiers"


@check("engine-mini-adapter", suite="episodes", trust=_E2E)
def engine_mini_adapter(peer):
    """A lossy engine run with mini-participant brains still verifies matches."""
    adjacency, _ = line_topology(5)
    nodes = list(adjacency)
    participants = {
        node_id: MiniParticipantAdapter(_MATCH_ATTRS, f"user-{node_id}", y_seed=bytes([i]) * 32)
        for i, node_id in enumerate(nodes)
    }
    participants[nodes[0]] = None  # the origin only floods
    network = AdHocNetwork(
        adjacency,
        participants,
        channel=ChannelModel(drop_rate=0.15, dup_rate=0.1, seed=7),
    )
    initiator = Initiator(_REQUEST, protocol=2, p=31, rng=random.Random(120))
    engine = FriendingEngine(network, retries=2)
    result = engine.run([EpisodeSpec(nodes[0], initiator)])
    episode = result.episodes[0]
    if not initiator.matches:
        raise ConformanceFailure("no verified match in the lossy engine run")
    if episode.metrics.candidates < 1 or episode.metrics.replies < 1:
        raise ConformanceFailure(
            f"engine metrics implausible: candidates={episode.metrics.candidates} "
            f"replies={episode.metrics.replies}"
        )
    for record in initiator.matches:
        responder_node = record.responder_id.removeprefix("user-")
        adapter = participants.get(responder_node)
        if adapter is not None and record.session_key not in adapter.channel_keys(
            initiator.secret.request_id
        ):
            raise ConformanceFailure("engine-run session keys do not agree")
    return (
        f"lossy engine run: {len(initiator.matches)} verified matches, "
        f"{episode.metrics.replies} replies through the adapter seam"
    )
