"""Conformance check modules.

Each module registers checks with :func:`repro.conformance.harness.check`
at import time; the harness imports them lazily on first registry access:

- :mod:`~repro.conformance.checks.frames` — codec parity suite
  (``frames``): round-trips, malformed-input rejection, boundary limits.
- :mod:`~repro.conformance.checks.sessions` — session-table semantics
  suite (``sessions``): expiry boundary, overflow policies.
- :mod:`~repro.conformance.checks.episodes` — end-to-end friending suite
  (``episodes``): both initiator/participant direction swaps across
  Protocols 1–3, retransmission-wave idempotence, forged-reply rejection
  and an engine run with the mini stack inside.
"""
