"""Codec parity checks: SBFM envelope + the three payload codecs.

Every check drives the *repro* codec (``core/wire.py`` /
``core/request.py``) and the *mini* codec
(:class:`~repro.conformance.minipeer.MiniWire`) over the same bytes and
requires identical accept/reject decisions with identical decoded
fields.  Valid traffic comes from real :class:`Initiator` requests so
the byte patterns are the ones the protocols actually emit.
"""

from __future__ import annotations

import random
import zlib

from repro.conformance.harness import ConformanceFailure, TrustContext, check
from repro.conformance.minipeer import MiniRejection, MiniReply, MiniRequest
from repro.core import wire as rwire
from repro.core.attributes import RequestProfile
from repro.core.exceptions import SerializationError
from repro.core.protocols import Initiator, Reply
from repro.core.request import RequestPackage

_PROFILE = RequestProfile(
    necessary=("hiking", "jazz"),
    optional=("chess", "tennis", "poetry", "sailing"),
    beta=2,
)
_PERFECT = RequestProfile.exact(("hiking", "jazz", "chess"))


def _request_bytes(protocol: int = 2, seed: int = 42, profile=_PROFILE) -> bytes:
    return Initiator(profile, protocol=protocol, p=31, rng=random.Random(seed)).create_request(
        now_ms=1_000
    ).encode()


def _both_reject(peer, data: bytes, what: str) -> None:
    try:
        rwire.decode_frame(data)
    except SerializationError:
        pass
    else:
        raise ConformanceFailure(f"repro accepted {what}")
    try:
        peer.wire.decode_frame(data)
    except MiniRejection:
        pass
    else:
        raise ConformanceFailure(f"mini accepted {what}")


def _frames_equal(peer, data: bytes, what: str) -> None:
    rframe = rwire.decode_frame(data)
    mframe = peer.wire.decode_frame(data)
    fields = (
        (rframe.ftype, rframe.ttl, rframe.seq, rframe.payload),
        (mframe.ftype, mframe.ttl, mframe.seq, mframe.payload),
    )
    if fields[0] != fields[1]:
        raise ConformanceFailure(f"decoded fields diverge for {what}: {fields}")


def _patched(data: bytes, offset: int, value: int) -> bytes:
    """One byte replaced and the frame CRC recomputed (a *valid* checksum)."""
    out = bytearray(data)
    out[offset] = value
    crc = zlib.crc32(out[4:12])
    crc = zlib.crc32(out[16:], crc) & 0xFFFF_FFFF
    out[12:16] = crc.to_bytes(4, "big")
    return bytes(out)


@check("frame-roundtrip", suite="frames", trust=TrustContext.INTEGRITY, smoke=True)
def frame_roundtrip(peer):
    """Both codecs produce identical frame bytes and decode each other's."""
    cases = [
        (rwire.FT_REQUEST, _request_bytes(), 8, 0),
        (rwire.FT_REPLY, b"reply-payload", 3, 2),
        (rwire.FT_SESSION, b"C" * 8 + b"ciphertext", 0, 255),
        (rwire.FT_REQUEST, b"", 255, 1),
    ]
    for ftype, payload, ttl, seq in cases:
        repro = rwire.encode_frame(ftype, payload, ttl=ttl, seq=seq)
        mini = peer.wire.encode_frame(ftype, payload, ttl=ttl, seq=seq)
        if repro != mini:
            raise ConformanceFailure(
                f"encoders diverge for ftype={ftype}: {repro.hex()} != {mini.hex()}"
            )
        _frames_equal(peer, repro, f"ftype={ftype} frame")
    return f"{len(cases)} frames byte-identical both ways"


@check("frame-truncation", suite="frames", trust=TrustContext.INTEGRITY, smoke=True)
def frame_truncation(peer):
    """Every proper prefix of a valid frame is rejected by both codecs."""
    data = rwire.encode_frame(rwire.FT_REQUEST, _request_bytes(), ttl=8)
    for cut in range(len(data)):
        _both_reject(peer, data[:cut], f"{cut}-byte truncation")
    return f"all {len(data)} prefixes rejected by both"


@check("frame-bit-flips", suite="frames", trust=TrustContext.INTEGRITY)
def frame_bit_flips(peer):
    """Any single flipped bit breaks the CRC for both codecs."""
    data = rwire.encode_frame(rwire.FT_REPLY, b"acknowledge-set", ttl=4, seq=1)
    for bit in range(len(data) * 8):
        _both_reject(peer, rwire.flip_bit(data, bit), f"bit {bit} flip")
    return f"all {len(data) * 8} single-bit corruptions rejected by both"


@check("frame-bad-version-type", suite="frames", trust=TrustContext.INTEGRITY, smoke=True)
def frame_bad_version_type(peer):
    """Unknown version/type bytes are rejected even under a valid CRC."""
    data = rwire.encode_frame(rwire.FT_REQUEST, b"payload", ttl=2)
    for version in (0, 2, 7, 255):
        _both_reject(peer, _patched(data, 4, version), f"version {version}")
    for ftype in (0, 4, 9, 255):
        _both_reject(peer, _patched(data, 5, ftype), f"frame type {ftype}")
    for magic in (b"XBFM", b"SBFX", b"\x00\x00\x00\x00"):
        _both_reject(peer, magic + data[4:], f"magic {magic!r}")
    return "bad version/type/magic rejected under valid checksums"


@check("segment-frame-version-gate", suite="frames", trust=TrustContext.INTEGRITY, smoke=True)
def segment_frame_version_gate(peer):
    """Version-2 segment frames decode in repro and reject cleanly in mini.

    The version policy (docs/wire_format.md) says an endpoint that does
    not implement a frame version rejects its frames at the envelope,
    before looking at the type or payload.  The mini endpoint speaks
    version 1 only, so a parity-tagged reply segment -- the newest
    version-2 traffic -- must bounce off it with a version complaint,
    never a crash or a silent accept.
    """
    segment = rwire.ReplySegment(
        request_id=b"REQUESTi", responder_id="bob", sent_at_ms=77,
        seg_index=0, n_data=4, window=4, is_parity=True, element=b"\x07" * 48,
    )
    data = rwire.encode_segment_frame(segment, ttl=3, seq=1)
    frame = rwire.decode_frame(data)
    if (frame.version, frame.ftype) != (rwire.FRAME_VERSION_SEGMENTS, rwire.FT_REPLY_SEG):
        raise ConformanceFailure("repro mis-decoded its own segment frame envelope")
    if rwire.decode_reply_segment(frame.payload) != segment:
        raise ConformanceFailure("segment payload did not round-trip through the envelope")
    try:
        peer.wire.decode_frame(data)
    except MiniRejection as exc:
        if "version" not in str(exc):
            raise ConformanceFailure(
                f"mini rejected the segment frame for the wrong reason: {exc}"
            )
    else:
        raise ConformanceFailure("mini accepted a frame-version-2 segment frame")
    delivery = peer.node("gate").handle_datagram(data, now_ms=0)
    if delivery.status != "rejected":
        raise ConformanceFailure(
            f"mini node did not cleanly reject the segment frame: {delivery.status}"
        )
    # The grammar gate cuts both ways: legacy types are not valid under
    # version 2, and the segment type is not valid under version 1.
    for ftype in (rwire.FT_REQUEST, rwire.FT_REPLY, rwire.FT_SESSION):
        _both_reject(peer, _patched(data, 5, ftype), f"version-2 frame of type {ftype}")
    _both_reject(
        peer, _patched(data, 4, rwire.FRAME_VERSION),
        "version-1 frame of the segment type",
    )
    return "segment frames decode in repro and version-reject in mini, both grammars gated"


@check("frame-length-lies", suite="frames", trust=TrustContext.INTEGRITY)
def frame_length_lies(peer):
    """Length-field lies and trailing bytes are rejected by both codecs."""
    data = rwire.encode_frame(rwire.FT_SESSION, b"C" * 8 + b"hello", ttl=0)
    true_len = len(data) - 16
    for lie in (true_len - 1, true_len + 1, 0, 0xFFFF_FFFF):
        if lie == true_len or lie < 0:
            continue
        out = bytearray(data)
        out[8:12] = lie.to_bytes(4, "big")
        crc = zlib.crc32(out[4:12])
        crc = zlib.crc32(out[16:], crc) & 0xFFFF_FFFF
        out[12:16] = crc.to_bytes(4, "big")
        _both_reject(peer, bytes(out), f"length lie {lie}")
    _both_reject(peer, data + b"\x00", "trailing byte")
    return "length lies and trailing bytes rejected by both"


@check("relay-hop-parity", suite="frames", trust=TrustContext.INTEGRITY, smoke=True)
def relay_hop_parity(peer):
    """The zero-copy repro relay and the mini re-encode relay agree byte for byte."""
    data = rwire.encode_frame(rwire.FT_REQUEST, _request_bytes(), ttl=8, seq=0)
    for ttl, seq in ((7, 0), (1, 0), (8, 3), (0, 255), (255, 1)):
        repro = rwire.reframe(data, ttl=ttl, seq=seq)
        mini = peer.wire.hop(data, ttl=ttl, seq=seq)
        if repro != mini:
            raise ConformanceFailure(f"relay bytes diverge at ttl={ttl} seq={seq}")
        _frames_equal(peer, mini, f"hopped frame ttl={ttl} seq={seq}")
    return "patched-CRC relay matches a full re-encode"


@check("request-codec", suite="frames", trust=TrustContext.INTEGRITY, smoke=True)
def request_codec(peer):
    """Request packages decode identically, and mini re-encodes byte-identically."""
    blobs = [
        _request_bytes(protocol=1, seed=5),
        _request_bytes(protocol=2, seed=6),
        _request_bytes(protocol=3, seed=7),
        _request_bytes(protocol=2, seed=8, profile=_PERFECT),  # no hint
    ]
    # m_t = 0 is representable on the wire even though profiles can't make it.
    blobs.append(
        RequestPackage(
            protocol=2,
            p=11,
            remainders=(),
            necessary_mask=(),
            beta=0,
            hint=None,
            ciphertext=b"\x00" * 16,
            request_id=b"RID-zero",
            ttl=4,
            expiry_ms=9_000,
        ).encode()
    )
    for data in blobs:
        repro = RequestPackage.decode(data)
        mini = peer.wire.decode_request(data)
        repro_hint = (
            None
            if repro.hint is None
            else (repro.hint.gamma, repro.hint.beta, repro.hint.r_block, repro.hint.b_vector)
        )
        mini_hint = (
            None
            if mini.hint is None
            else (mini.hint.gamma, mini.hint.beta, mini.hint.r_block, mini.hint.b_vector)
        )
        fields = (
            (repro.protocol, repro.p, repro.remainders, repro.necessary_mask, repro.beta,
             repro_hint, repro.ciphertext, repro.request_id, repro.ttl, repro.expiry_ms),
            (mini.protocol, mini.p, mini.remainders, mini.necessary_mask, mini.beta,
             mini_hint, mini.ciphertext, mini.request_id, mini.ttl, mini.expiry_ms),
        )
        if fields[0] != fields[1]:
            raise ConformanceFailure(f"request fields diverge: {fields}")
        if peer.wire.encode_request(mini) != data:
            raise ConformanceFailure("mini re-encode is not byte-identical")
    return f"{len(blobs)} request packages agree field-for-field and byte-for-byte"


@check("request-rejection-parity", suite="frames", trust=TrustContext.INTEGRITY)
def request_rejection_parity(peer):
    """Malformed request payloads are rejected identically by both codecs."""

    def both_reject_payload(data: bytes, what: str) -> None:
        try:
            RequestPackage.decode(data)
        except SerializationError:
            pass
        else:
            raise ConformanceFailure(f"repro accepted {what}")
        try:
            peer.wire.decode_request(data)
        except MiniRejection:
            pass
        else:
            raise ConformanceFailure(f"mini accepted {what}")

    data = _request_bytes(seed=12)
    for cut in range(len(data)):
        both_reject_payload(data[:cut], f"{cut}-byte request truncation")
    both_reject_payload(data + b"\x00", "trailing request byte")
    both_reject_payload(b"XBRQ" + data[4:], "bad request magic")
    bad_version = bytearray(data)
    bad_version[4] = 9
    both_reject_payload(bytes(bad_version), "unknown request version")
    bad_protocol = bytearray(data)
    bad_protocol[5] = 4
    both_reject_payload(bytes(bad_protocol), "protocol outside {1,2,3}")
    # Ciphertext rules: empty and unaligned sealed messages can never unseal.
    template = peer.wire.decode_request(data)
    for bad_ct in (b"", b"\x00" * 15, b"\x00" * 17):
        try:
            broken = MiniRequest(
                protocol=template.protocol, p=template.p,
                remainders=template.remainders, necessary_mask=template.necessary_mask,
                beta=template.beta, hint=template.hint, ciphertext=bad_ct,
                request_id=template.request_id, ttl=template.ttl,
                expiry_ms=template.expiry_ms,
            )
            peer.wire.encode_request(broken)
        except MiniRejection:
            pass
        else:
            raise ConformanceFailure(f"mini encoded a {len(bad_ct)}-byte sealed message")
    # Remainder-reduction rule: a remainder >= p rejects at decode in both.
    unreduced = bytearray(data)
    p = int.from_bytes(data[7:9], "big")
    unreduced[30 + (template.m_t + 7) // 8 : 30 + (template.m_t + 7) // 8 + 4] = p.to_bytes(4, "big")
    both_reject_payload(bytes(unreduced), "remainder not reduced modulo p")
    return "request truncations, trailing bytes and field-rule violations reject in parity"


@check("request-mask-padding", suite="frames", trust=TrustContext.INTEGRITY)
def request_mask_padding(peer):
    """Spec leniency: set padding bits in the necessary mask are ignored by both."""
    data = _request_bytes(seed=21)
    reference = RequestPackage.decode(data)
    m_t = reference.m_t
    if m_t % 8 == 0:
        raise ConformanceFailure("fixture must have mask padding bits")
    padded = bytearray(data)
    padded[30 + (m_t - 1) // 8] |= 0xFF << (m_t % 8) & 0xFF  # set every padding bit
    padded = bytes(padded)
    repro = RequestPackage.decode(padded)
    mini = peer.wire.decode_request(padded)
    if repro.necessary_mask != reference.necessary_mask:
        raise ConformanceFailure("repro let mask padding leak into the decoded mask")
    if mini.necessary_mask != reference.necessary_mask:
        raise ConformanceFailure("mini let mask padding leak into the decoded mask")
    return "mask padding bits ignored by both decoders"


@check("request-hint-rhs-lenient", suite="frames", trust=TrustContext.INTEGRITY)
def request_hint_rhs_lenient(peer):
    """Spec leniency: zero-padded hint rhs entries decode to the same integers."""
    data = _request_bytes(seed=33)
    reference = peer.wire.decode_request(data)
    hint = reference.hint
    if hint is None:
        raise ConformanceFailure("fixture request must carry a hint")
    # Splice a zero-padded re-encode of the B entries into the raw bytes.
    mask_len = (reference.m_t + 7) // 8
    b_offset = 30 + mask_len + 4 * reference.m_t + 4 + 4 * hint.gamma * hint.beta
    out = bytearray(data[:b_offset])
    for b in hint.b_vector:
        encoded = b"\x00\x00" + b.to_bytes((b.bit_length() + 7) // 8 or 1, "big")
        out += len(encoded).to_bytes(2, "big") + encoded
    tail = data[b_offset:]
    for b in hint.b_vector:  # skip the original minimal entries
        blen = int.from_bytes(tail[:2], "big")
        tail = tail[2 + blen :]
    out += tail
    padded = bytes(out)
    repro = RequestPackage.decode(padded)
    mini = peer.wire.decode_request(padded)
    if repro.hint.b_vector != hint.b_vector or mini.hint.b_vector != hint.b_vector:
        raise ConformanceFailure("zero-padded hint rhs decoded to different integers")
    return "non-minimal hint rhs encodings accepted identically"


@check("reply-codec-boundaries", suite="frames", trust=TrustContext.INTEGRITY, smoke=True)
def reply_codec_boundaries(peer):
    """Reply payloads agree at every documented boundary limit."""
    rid = b"REQUESTi"

    def roundtrip(responder: str, n: int, sent: int, what: str) -> None:
        repro_bytes = rwire.encode_reply_frame(
            Reply(request_id=rid, responder_id=responder,
                  elements=tuple(bytes([i % 256]) * 48 for i in range(n)),
                  sent_at_ms=sent),
            ttl=1,
        )
        payload = rwire.decode_frame(repro_bytes).payload
        mini = peer.wire.decode_reply(payload)
        if (mini.request_id, mini.responder_id, len(mini.elements), mini.sent_at_ms) != (
            rid, responder, n, sent,
        ):
            raise ConformanceFailure(f"reply fields diverge for {what}")
        if peer.wire.encode_reply(mini) != payload:
            raise ConformanceFailure(f"mini reply re-encode differs for {what}")

    roundtrip("bob", 3, 1234, "plain reply")
    roundtrip("r" * 255, 1, 0, "255-byte responder")
    roundtrip("ünïcode-responder", 2, 42, "multi-byte UTF-8 responder")
    roundtrip("empty", 0, 0xFFFF_FFFF_FFFF_FFFF, "empty element set, max timestamp")

    # Encode-side rule parity: both refuse out-of-range fields.
    def both_refuse_encode(responder: str, elements: tuple, sent: int, what: str) -> None:
        try:
            rwire.encode_reply_frame(
                Reply(request_id=rid, responder_id=responder, elements=elements, sent_at_ms=sent)
            )
        except SerializationError:
            pass
        else:
            raise ConformanceFailure(f"repro encoded {what}")
        try:
            peer.wire.encode_reply(
                MiniReply(request_id=rid, responder_id=responder, elements=elements, sent_at_ms=sent)
            )
        except MiniRejection:
            pass
        else:
            raise ConformanceFailure(f"mini encoded {what}")

    both_refuse_encode("r" * 256, (b"\x01" * 48,), 0, "256-byte responder")
    both_refuse_encode("bob", (b"\x01" * 47,), 0, "47-byte element")
    both_refuse_encode("bob", (b"\x01" * 49,), 0, "49-byte element")
    both_refuse_encode("bob", (b"\x01" * 48,), 1 << 64, "timestamp overflow")

    # Decode-side rule parity on malformed payloads.
    good = rwire.decode_frame(
        rwire.encode_reply_frame(
            Reply(request_id=rid, responder_id="bob", elements=(b"\x07" * 48,) * 2, sent_at_ms=9)
        )
    ).payload

    def both_reject_payload(data: bytes, what: str) -> None:
        try:
            rwire.decode_reply(data)
        except SerializationError:
            pass
        else:
            raise ConformanceFailure(f"repro accepted {what}")
        try:
            peer.wire.decode_reply(data)
        except MiniRejection:
            pass
        else:
            raise ConformanceFailure(f"mini accepted {what}")

    for cut in range(len(good)):
        both_reject_payload(good[:cut], f"{cut}-byte reply truncation")
    both_reject_payload(good + b"\x00", "trailing reply byte")
    both_reject_payload(b"XBRP" + good[4:], "bad reply magic")
    lied = bytearray(good)
    lied[20:22] = (3).to_bytes(2, "big")  # claim 3 elements, carry 2
    both_reject_payload(bytes(lied), "element-count lie")
    bad_utf8 = bytearray(good)
    bad_utf8[23] = 0xFF  # responder id begins with an invalid UTF-8 byte
    both_reject_payload(bytes(bad_utf8), "invalid UTF-8 responder")
    return "boundary limits, truncations and field lies agree in both codecs"


@check("reply-cardinality-wire-limit", suite="frames", trust=TrustContext.INTEGRITY)
def reply_cardinality_wire_limit(peer):
    """The 65535-element wire ceiling holds in both codecs (and 65536 does not)."""
    rid = b"REQUESTi"
    elements = tuple(b"\x05" * 48 for _ in range(0xFFFF))
    repro_payload = rwire.decode_frame(
        rwire.encode_reply_frame(
            Reply(request_id=rid, responder_id="max", elements=elements, sent_at_ms=1)
        )
    ).payload
    mini = peer.wire.decode_reply(repro_payload)
    if len(mini.elements) != 0xFFFF:
        raise ConformanceFailure("mini lost elements at the wire ceiling")
    if peer.wire.encode_reply(mini) != repro_payload:
        raise ConformanceFailure("mini re-encode differs at the wire ceiling")
    over = elements + (b"\x05" * 48,)
    try:
        rwire.encode_reply_frame(
            Reply(request_id=rid, responder_id="max", elements=over, sent_at_ms=1)
        )
    except SerializationError:
        pass
    else:
        raise ConformanceFailure("repro encoded 65536 elements")
    try:
        peer.wire.encode_reply(
            MiniReply(request_id=rid, responder_id="max", elements=over, sent_at_ms=1)
        )
    except MiniRejection:
        pass
    else:
        raise ConformanceFailure("mini encoded 65536 elements")
    return "65535 elements round-trip; 65536 refused by both"


@check("session-frame-codec", suite="frames", trust=TrustContext.INTEGRITY, smoke=True)
def session_frame_codec(peer):
    """Session frames agree: 8-byte channel id prefix, 65535-byte ceiling."""
    channel_id = b"CHANNEL1"
    for ciphertext in (b"", b"m" * 1, b"m" * 0xFFFF):
        repro_bytes = rwire.encode_session_frame(channel_id, ciphertext, ttl=3)
        mini_bytes = peer.wire.encode_session_frame(channel_id, ciphertext, ttl=3)
        if repro_bytes != mini_bytes:
            raise ConformanceFailure(f"session encoders diverge at {len(ciphertext)} bytes")
        frame = rwire.decode_frame(repro_bytes)
        decoded = rwire.decode_payload(frame)
        mini_decoded = peer.wire.decode_session_payload(
            peer.wire.decode_frame(mini_bytes).payload
        )
        if decoded != mini_decoded or decoded != (channel_id, ciphertext):
            raise ConformanceFailure("session payload fields diverge")
    for bad_id in (b"", b"short", b"C" * 9):
        try:
            rwire.encode_session_frame(bad_id, b"x")
        except SerializationError:
            pass
        else:
            raise ConformanceFailure(f"repro accepted channel id {bad_id!r}")
        try:
            peer.wire.encode_session_frame(bad_id, b"x")
        except MiniRejection:
            pass
        else:
            raise ConformanceFailure(f"mini accepted channel id {bad_id!r}")
    try:
        rwire.encode_session_frame(channel_id, b"m" * 0x10000)
    except SerializationError:
        pass
    else:
        raise ConformanceFailure("repro accepted an oversized session message")
    try:
        peer.wire.encode_session_frame(channel_id, b"m" * 0x10000)
    except MiniRejection:
        pass
    else:
        raise ConformanceFailure("mini accepted an oversized session message")
    # A session payload shorter than its channel id rejects in both.
    short = rwire.encode_frame(rwire.FT_SESSION, b"C" * 7)
    try:
        rwire.decode_payload(rwire.decode_frame(short))
    except SerializationError:
        pass
    else:
        raise ConformanceFailure("repro accepted a 7-byte session payload")
    try:
        peer.wire.decode_session_payload(peer.wire.decode_frame(short).payload)
    except MiniRejection:
        pass
    else:
        raise ConformanceFailure("mini accepted a 7-byte session payload")
    return "session frames agree at limits and reject short channel ids"
