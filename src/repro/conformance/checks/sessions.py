"""Session-table semantics checks: the spec's bounded-state contract.

The repro :class:`~repro.network.sessions.SessionTable` (heap-assisted)
and the mini :class:`~repro.conformance.minipeer.MiniSessionTable`
(min-scan) share no code; these checks script identical admission
sequences into both and require identical surviving sessions and
counters — the observable surface a relay's peers depend on.
"""

from __future__ import annotations

from repro.conformance.harness import ConformanceFailure, TrustContext, check
from repro.network.sessions import SessionTable


def _ids(table) -> set[bytes]:
    if hasattr(table, "request_ids"):
        return table.request_ids()
    return set(table._sessions)  # repro table: dict keyed by request id


def _counters(table) -> tuple[int, int, int]:
    return (table.evicted_expired, table.evicted_overflow, table.rejected_overflow)


def _compare(repro, mini, what: str) -> None:
    if _ids(repro) != _ids(mini):
        raise ConformanceFailure(
            f"{what}: surviving sessions diverge ({sorted(_ids(repro))} vs {sorted(_ids(mini))})"
        )
    if _counters(repro) != _counters(mini):
        raise ConformanceFailure(
            f"{what}: counters diverge ({_counters(repro)} vs {_counters(mini)})"
        )


@check("session-expiry-boundary", suite="sessions", trust=TrustContext.INTEGRITY, smoke=True)
def session_expiry_boundary(peer):
    """A session expiring AT now stays live; one millisecond later it is gone."""
    repro = SessionTable(max_sessions=8)
    mini = peer.session_table(max_sessions=8)
    for table in (repro, mini):
        table.open(b"RID-0001", parent=None, hops=1, expires_ms=1_000, now_ms=0)
    for table in (repro, mini):
        table.evict_expired(1_000)  # boundary: strictly-less-than, still live
    _compare(repro, mini, "at the expiry instant")
    if repro.get(b"RID-0001") is None or mini.get(b"RID-0001") is None:
        raise ConformanceFailure("a session expiring at now_ms was evicted early")
    for table in (repro, mini):
        table.evict_expired(1_001)
    _compare(repro, mini, "one ms past expiry")
    if repro.get(b"RID-0001") is not None or mini.get(b"RID-0001") is not None:
        raise ConformanceFailure("an expired session survived eviction")
    return "expiry is strictly expires_ms < now_ms in both tables"


@check("session-overflow-evict-oldest", suite="sessions", trust=TrustContext.INTEGRITY)
def session_overflow_evict_oldest(peer):
    """evict_oldest sacrifices the earliest-expiry session, rid bytes break ties."""
    repro = SessionTable(max_sessions=3, overflow="evict_oldest")
    mini = peer.session_table(max_sessions=3, overflow="evict_oldest")
    admissions = [
        (b"RID-bbbb", 5_000),
        (b"RID-aaaa", 3_000),  # earliest expiry: first victim
        (b"RID-cccc", 7_000),
    ]
    for table in (repro, mini):
        for rid, expires in admissions:
            table.open(rid, parent="n1", hops=2, expires_ms=expires, now_ms=0)
        table.open(b"RID-dddd", parent="n1", hops=2, expires_ms=9_000, now_ms=0)
    _compare(repro, mini, "after first overflow")
    for table in (repro, mini):
        if b"RID-aaaa" in _ids(table):
            raise ConformanceFailure("earliest-expiry session was not the victim")
    # Tie on expiry: the lexicographically smallest request id goes first.
    repro_tie = SessionTable(max_sessions=3, overflow="evict_oldest")
    mini_tie = peer.session_table(max_sessions=3, overflow="evict_oldest")
    for table in (repro_tie, mini_tie):
        table.open(b"RID-zzzz", parent=None, hops=1, expires_ms=5_000, now_ms=0)
        table.open(b"RID-aaaa", parent=None, hops=1, expires_ms=5_000, now_ms=0)
        table.open(b"RID-mmmm", parent=None, hops=1, expires_ms=9_000, now_ms=0)
        table.open(b"RID-new1", parent=None, hops=1, expires_ms=6_000, now_ms=0)
    _compare(repro_tie, mini_tie, "after tie-break overflow")
    for table in (repro_tie, mini_tie):
        if b"RID-aaaa" in _ids(table) or b"RID-zzzz" not in _ids(table):
            raise ConformanceFailure("expiry tie not broken by ascending request-id bytes")
    return "victim choice and tie-break agree across both tables"


@check("session-overflow-drop-new", suite="sessions", trust=TrustContext.INTEGRITY)
def session_overflow_drop_new(peer):
    """drop_new refuses the newcomer and leaves the table untouched."""
    repro = SessionTable(max_sessions=2, overflow="drop_new")
    mini = peer.session_table(max_sessions=2, overflow="drop_new")
    for table in (repro, mini):
        table.open(b"RID-0001", parent=None, hops=1, expires_ms=4_000, now_ms=0)
        table.open(b"RID-0002", parent=None, hops=1, expires_ms=5_000, now_ms=0)
    results = [
        table.open(b"RID-0003", parent=None, hops=1, expires_ms=6_000, now_ms=0)
        for table in (repro, mini)
    ]
    if results != [None, None]:
        raise ConformanceFailure(f"drop_new admitted the newcomer: {results}")
    _compare(repro, mini, "after drop_new rejection")
    # Expiry frees capacity for the same rid afterwards, in both.
    results = [
        table.open(b"RID-0003", parent=None, hops=1, expires_ms=6_000, now_ms=4_500)
        for table in (repro, mini)
    ]
    if any(r is None for r in results):
        raise ConformanceFailure("expired capacity was not reclaimed before drop_new")
    _compare(repro, mini, "after expiry reclaim")
    return "drop_new rejection and expiry reclaim agree across both tables"
