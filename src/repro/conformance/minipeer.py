"""A minimal, independent second endpoint over the SBFM wire format.

Written only from ``docs/wire_format.md`` and ``docs/protocols.md``: this
module deliberately shares **no code** with ``core/wire.py``,
``core/request.py`` or ``network/sessions.py`` — it has its own frame
codec, request/reply/session payload codecs, session table, candidate
enumeration, hint solver and Protocol 1/2/3 request/reply handling, all
built from the spec's byte layouts and stated semantics.  Wherever the
two stacks disagree, either the spec has a gap or one implementation has
a bug — the conformance harness exists to surface both.

Allowed building blocks (the spec names the *algorithms*, not a Python
API): the stdlib (``hashlib``, ``hmac``, ``zlib.crc32``, ``fractions``)
and the repo's AES-256-ECB primitive via
:func:`repro.crypto.backend.current_backend` — AES is a cited standard
cipher, not part of the wire codec under test.  The independence
constraint covers the codecs, session semantics and protocol logic.

Deliberate scope cuts, each documented where it bites:

- Only ``robust`` candidate-enumeration mode (the repo default).
- No per-neighbour rate limiter (an engine-side DoS courtesy; the wire
  spec does not require one and the conformance scenarios never trip
  the repro default of 50 events / 10 s).
- No φ-entropy policy, so Protocol 3 behaves exactly like Protocol 2 —
  the policy is participant-local and never visible on the wire.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import random
import zlib
from dataclasses import dataclass, field
from fractions import Fraction

from repro.crypto.backend import current_backend

__all__ = [
    "MiniRejection",
    "MiniFrame",
    "MiniHint",
    "MiniRequest",
    "MiniReply",
    "MiniWire",
    "MiniSession",
    "MiniSessionTable",
    "MiniParticipant",
    "MiniInitiator",
    "MiniNode",
    "MiniDelivery",
    "MiniPeer",
    "mini_hash_attribute",
    "mini_profile_key",
    "mini_hkdf",
    "mini_pair_key",
    "mini_group_key",
]

_FRAME_MAGIC = b"SBFM"
_FRAME_VERSION = 1
_FRAME_TYPES = (1, 2, 3)  # request, reply, session
_HEADER_LEN = 16

_REQUEST_MAGIC = b"SBRQ"
_REQUEST_VERSION = 1
_REQUEST_HEADER_LEN = 30  # magic(4) v(1) proto(1) flags(1) p(2) m_t(2) rid(8) ttl(1) expiry(8) beta(2)
_FLAG_HINT = 0x01

_REPLY_MAGIC = b"SBRP"
_REPLY_HEADER_LEN = 23  # magic(4) rid(8) sent(8) n(2) id_len(1)
_ELEMENT_LEN = 48
_MAX_ELEMENTS = 0xFFFF
_MAX_RESPONDER = 255

_CHANNEL_ID_LEN = 8
_MAX_SESSION_CT = 0xFFFF

_SECRET_LEN = 32
_CONFIRMATION = b"SEALED-BTL-CONFv1"[:16]
_ACK = b"SEALED-BTL-ACK1"[:15]
_REPLY_PLAINTEXT_LEN = 48  # ACK(15) + similarity(1) + y(32)


class MiniRejection(Exception):
    """The mini stack's strict-and-total decode rejection."""


# -- hashing / key-derivation conventions (wire_format.md, "Protocol
#    constants and key derivation") --------------------------------------


def mini_hash_attribute(attribute: str, binding: bytes | None = None) -> int:
    """SHA-256 of the attribute (optionally ``attr || 0x00 || binding``)."""
    payload = attribute.encode("utf-8")
    if binding is not None:
        payload += b"\x00" + binding
    return int.from_bytes(hashlib.sha256(payload).digest(), "big")


def mini_profile_key(values) -> bytes:
    """``K = SHA-256(v_1 || ... || v_m)`` over 32-byte big-endian entries."""
    hasher = hashlib.sha256()
    for value in values:
        hasher.update(value.to_bytes(32, "big"))
    return hasher.digest()


def mini_hkdf(ikm: bytes, info: bytes, length: int = 32) -> bytes:
    """HKDF-SHA256 (RFC 5869) with an empty salt, spelled out from the RFC."""
    prk = hmac.digest(b"\x00" * 32, ikm, "sha256")
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac.digest(prk, block + info + bytes([counter]), "sha256")
        okm += block
        counter += 1
    return okm[:length]


def mini_pair_key(x: bytes, y: bytes) -> bytes:
    return mini_hkdf(x + y, b"sealed-bottle pair channel", 32)


def mini_group_key(x: bytes) -> bytes:
    return mini_hkdf(x, b"sealed-bottle group channel", 32)


def _aes_encrypt(key: bytes, plaintext: bytes) -> bytes:
    return current_backend().encrypt_ecb(key, plaintext)


def _aes_decrypt(key: bytes, ciphertext: bytes) -> bytes:
    return current_backend().decrypt_ecb(key, ciphertext)


# -- decoded message models ----------------------------------------------


@dataclass(frozen=True)
class MiniFrame:
    ftype: int
    payload: bytes
    ttl: int = 0
    seq: int = 0


@dataclass(frozen=True)
class MiniHint:
    gamma: int
    beta: int
    r_block: tuple[tuple[int, ...], ...]
    b_vector: tuple[int, ...]


@dataclass(frozen=True)
class MiniRequest:
    protocol: int
    p: int
    remainders: tuple[int, ...]
    necessary_mask: tuple[bool, ...]
    beta: int
    hint: MiniHint | None
    ciphertext: bytes
    request_id: bytes
    ttl: int
    expiry_ms: int

    @property
    def m_t(self) -> int:
        return len(self.remainders)

    @property
    def alpha(self) -> int:
        return sum(self.necessary_mask)

    @property
    def gamma(self) -> int:
        return (self.m_t - self.alpha) - self.beta

    def is_expired(self, now_ms: int) -> bool:
        return now_ms > self.expiry_ms


@dataclass(frozen=True)
class MiniReply:
    request_id: bytes
    responder_id: str
    elements: tuple[bytes, ...]
    sent_at_ms: int


# -- the wire codec -------------------------------------------------------


class MiniWire:
    """Frame envelope + the three payload codecs, built from the doc tables.

    Small internal seams (``_frame_checksum``, ``_pack_length``,
    ``_read_length``, ``hop``) exist so the mutant set can break exactly
    one spec clause at a time; the honest implementation is this class.
    """

    # envelope ------------------------------------------------------------

    def _frame_checksum(self, head: bytes, payload: bytes) -> int:
        """CRC-32 over bytes 4..12 of the header plus the payload."""
        crc = zlib.crc32(head[4:12])
        return zlib.crc32(payload, crc) & 0xFFFF_FFFF

    def _pack_length(self, length: int) -> bytes:
        return length.to_bytes(4, "big")

    def _read_length(self, data: bytes) -> int:
        return int.from_bytes(data[8:12], "big")

    def encode_frame(self, ftype: int, payload: bytes, *, ttl: int = 0, seq: int = 0) -> bytes:
        if ftype not in _FRAME_TYPES:
            raise MiniRejection(f"unknown frame type {ftype!r}")
        if not 0 <= ttl <= 255:
            raise MiniRejection(f"ttl must fit one byte, got {ttl!r}")
        if not 0 <= seq <= 255:
            raise MiniRejection(f"seq must fit one byte, got {seq!r}")
        if len(payload) > 0xFFFF_FFFF:
            raise MiniRejection("payload too large")
        head = _FRAME_MAGIC + bytes([_FRAME_VERSION, ftype, ttl, seq]) + self._pack_length(
            len(payload)
        )
        crc = self._frame_checksum(head, payload)
        return head + crc.to_bytes(4, "big") + payload

    def decode_frame(self, data: bytes) -> MiniFrame:
        if len(data) < _HEADER_LEN:
            raise MiniRejection("frame shorter than its header")
        if data[:4] != _FRAME_MAGIC:
            raise MiniRejection("bad frame magic")
        version, ftype, ttl, seq = data[4], data[5], data[6], data[7]
        if version != _FRAME_VERSION:
            raise MiniRejection(f"unsupported frame version {version}")
        if ftype not in _FRAME_TYPES:
            raise MiniRejection(f"unknown frame type {ftype}")
        length = self._read_length(data)
        if len(data) != _HEADER_LEN + length:
            raise MiniRejection("length field does not match the datagram")
        payload = data[_HEADER_LEN:]
        crc = int.from_bytes(data[12:16], "big")
        if crc != self._frame_checksum(data[:12], payload):
            raise MiniRejection("frame checksum mismatch")
        return MiniFrame(ftype=ftype, payload=payload, ttl=ttl, seq=seq)

    def hop(self, data: bytes, *, ttl: int | None = None, seq: int | None = None) -> bytes:
        """Relay a frame with TTL/wave patched.

        Deliberately *not* zero-copy: the mini stack decodes and fully
        re-encodes, which is exactly what makes byte-equality against the
        repro ``reframe``/``patch_frame`` fast path a meaningful check.
        """
        frame = self.decode_frame(data)
        return self.encode_frame(
            frame.ftype,
            frame.payload,
            ttl=frame.ttl if ttl is None else ttl,
            seq=frame.seq if seq is None else seq,
        )

    # request payload -----------------------------------------------------

    def encode_request(self, req: MiniRequest) -> bytes:
        self._validate_request(req)
        flags = _FLAG_HINT if req.hint is not None else 0
        out = bytearray()
        out += _REQUEST_MAGIC
        out += bytes([_REQUEST_VERSION, req.protocol, flags])
        out += req.p.to_bytes(2, "big")
        out += req.m_t.to_bytes(2, "big")
        out += req.request_id
        out += bytes([req.ttl])
        out += req.expiry_ms.to_bytes(8, "big")
        out += req.beta.to_bytes(2, "big")
        mask = bytearray((req.m_t + 7) // 8)
        for i, necessary in enumerate(req.necessary_mask):
            if necessary:
                mask[i // 8] |= 1 << (i % 8)
        out += mask
        for remainder in req.remainders:
            out += remainder.to_bytes(4, "big")
        if req.hint is not None:
            out += req.hint.gamma.to_bytes(2, "big")
            out += req.hint.beta.to_bytes(2, "big")
            for row in req.hint.r_block:
                for entry in row:
                    out += entry.to_bytes(4, "big")
            for b in req.hint.b_vector:
                encoded = b.to_bytes((b.bit_length() + 7) // 8 or 1, "big")
                out += len(encoded).to_bytes(2, "big") + encoded
        out += len(req.ciphertext).to_bytes(2, "big") + req.ciphertext
        return bytes(out)

    def decode_request(self, data: bytes) -> MiniRequest:
        if data[:4] != _REQUEST_MAGIC:
            raise MiniRejection("bad request magic")
        if len(data) < _REQUEST_HEADER_LEN:
            raise MiniRejection("truncated request header")
        version, protocol, flags = data[4], data[5], data[6]
        if version != _REQUEST_VERSION:
            raise MiniRejection(f"unsupported request version {version}")
        p = int.from_bytes(data[7:9], "big")
        m_t = int.from_bytes(data[9:11], "big")
        request_id = data[11:19]
        ttl = data[19]
        expiry_ms = int.from_bytes(data[20:28], "big")
        beta = int.from_bytes(data[28:30], "big")
        offset = _REQUEST_HEADER_LEN

        mask_len = (m_t + 7) // 8
        if offset + mask_len > len(data):
            raise MiniRejection("truncated necessary mask")
        # LSB-first bits; trailing padding bits are ignored per the spec.
        necessary_mask = tuple(
            bool(data[offset + i // 8] >> (i % 8) & 1) for i in range(m_t)
        )
        offset += mask_len

        if offset + 4 * m_t > len(data):
            raise MiniRejection("truncated remainder vector")
        remainders = tuple(
            int.from_bytes(data[offset + 4 * i : offset + 4 * i + 4], "big")
            for i in range(m_t)
        )
        offset += 4 * m_t

        hint = None
        if flags & _FLAG_HINT:
            if offset + 4 > len(data):
                raise MiniRejection("truncated hint header")
            gamma = int.from_bytes(data[offset : offset + 2], "big")
            hint_beta = int.from_bytes(data[offset + 2 : offset + 4], "big")
            offset += 4
            if offset + 4 * gamma * hint_beta > len(data):
                raise MiniRejection("truncated hint block")
            r_block = []
            for _ in range(gamma):
                row = tuple(
                    int.from_bytes(data[offset + 4 * j : offset + 4 * j + 4], "big")
                    for j in range(hint_beta)
                )
                offset += 4 * hint_beta
                r_block.append(row)
            b_vector = []
            for _ in range(gamma):
                if offset + 2 > len(data):
                    raise MiniRejection("truncated hint rhs length")
                blen = int.from_bytes(data[offset : offset + 2], "big")
                offset += 2
                if offset + blen > len(data):
                    raise MiniRejection("truncated hint rhs entry")
                # Any length is accepted, zero and zero-padded included.
                b_vector.append(int.from_bytes(data[offset : offset + blen], "big"))
                offset += blen
            hint = MiniHint(
                gamma=gamma, beta=hint_beta, r_block=tuple(r_block), b_vector=tuple(b_vector)
            )

        if offset + 2 > len(data):
            raise MiniRejection("truncated ciphertext length")
        clen = int.from_bytes(data[offset : offset + 2], "big")
        offset += 2
        ciphertext = data[offset : offset + clen]
        if len(ciphertext) != clen:
            raise MiniRejection("truncated ciphertext")
        if offset + clen != len(data):
            raise MiniRejection("trailing bytes after request package")

        req = MiniRequest(
            protocol=protocol,
            p=p,
            remainders=remainders,
            necessary_mask=necessary_mask,
            beta=beta,
            hint=hint,
            ciphertext=ciphertext,
            request_id=request_id,
            ttl=ttl,
            expiry_ms=expiry_ms,
        )
        self._validate_request(req)
        return req

    def _validate_request(self, req: MiniRequest) -> None:
        if req.protocol not in (1, 2, 3):
            raise MiniRejection(f"unknown protocol {req.protocol}")
        if len(req.request_id) != 8:
            raise MiniRejection("request id must be 8 bytes")
        if not req.ciphertext or len(req.ciphertext) % 16:
            raise MiniRejection("sealed message must be non-empty AES blocks")
        if req.remainders and max(req.remainders) >= req.p:
            raise MiniRejection("remainder not reduced modulo p")

    # reply payload -------------------------------------------------------

    def encode_reply(self, reply: MiniReply) -> bytes:
        responder = reply.responder_id.encode("utf-8")
        if len(responder) > _MAX_RESPONDER:
            raise MiniRejection(
                f"responder id too long: {len(responder)} bytes > {_MAX_RESPONDER}"
            )
        if len(reply.request_id) != 8:
            raise MiniRejection("reply request id must be 8 bytes")
        if len(reply.elements) > _MAX_ELEMENTS:
            raise MiniRejection(
                f"acknowledge set too large: {len(reply.elements)} > {_MAX_ELEMENTS}"
            )
        if not 0 <= reply.sent_at_ms <= 0xFFFF_FFFF_FFFF_FFFF:
            raise MiniRejection(f"sent_at_ms out of range: {reply.sent_at_ms!r}")
        for element in reply.elements:
            if len(element) != _ELEMENT_LEN:
                raise MiniRejection(
                    f"reply elements must be {_ELEMENT_LEN} bytes, got {len(element)}"
                )
        out = bytearray()
        out += _REPLY_MAGIC
        out += reply.request_id
        out += reply.sent_at_ms.to_bytes(8, "big")
        out += len(reply.elements).to_bytes(2, "big")
        out += bytes([len(responder)])
        out += responder
        for element in reply.elements:
            out += element
        return bytes(out)

    def decode_reply(self, data: bytes) -> MiniReply:
        if data[:4] != _REPLY_MAGIC:
            raise MiniRejection("bad reply magic")
        if len(data) < _REPLY_HEADER_LEN:
            raise MiniRejection("truncated reply header")
        request_id = data[4:12]
        sent_at_ms = int.from_bytes(data[12:20], "big")
        n_elements = int.from_bytes(data[20:22], "big")
        id_len = data[22]
        offset = _REPLY_HEADER_LEN
        if offset + id_len > len(data):
            raise MiniRejection("truncated responder id")
        try:
            responder = data[offset : offset + id_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise MiniRejection(f"responder id is not UTF-8: {exc}") from exc
        offset += id_len
        if offset + n_elements * _ELEMENT_LEN != len(data):
            raise MiniRejection("reply element set does not match the payload")
        elements = tuple(
            data[offset + i * _ELEMENT_LEN : offset + (i + 1) * _ELEMENT_LEN]
            for i in range(n_elements)
        )
        return MiniReply(
            request_id=request_id,
            responder_id=responder,
            elements=elements,
            sent_at_ms=sent_at_ms,
        )

    # session payload -----------------------------------------------------

    def encode_session_frame(self, channel_id: bytes, ciphertext: bytes, *, ttl: int = 0) -> bytes:
        if len(channel_id) != _CHANNEL_ID_LEN:
            raise MiniRejection(
                f"channel id must be {_CHANNEL_ID_LEN} bytes, got {len(channel_id)}"
            )
        if len(ciphertext) > _MAX_SESSION_CT:
            raise MiniRejection("session message too large for one frame")
        return self.encode_frame(3, channel_id + ciphertext, ttl=ttl)

    def decode_session_payload(self, payload: bytes) -> tuple[bytes, bytes]:
        if len(payload) < _CHANNEL_ID_LEN:
            raise MiniRejection("session payload shorter than its channel id")
        return payload[:_CHANNEL_ID_LEN], payload[_CHANNEL_ID_LEN:]


# -- bounded session table ------------------------------------------------


@dataclass
class MiniSession:
    request_id: bytes
    parent: str | None
    hops: int
    expires_ms: int
    last_seq: int = 0


class MiniSessionTable:
    """Bounded request-id → session map with lazy TTL eviction.

    Implemented as a plain dict with a min-scan eviction (no heap): at
    conformance scale the observable semantics are what matter — strict
    ``expires < now`` expiry, and overflow eviction of the session
    closest to expiry with ties broken by ascending request-id bytes,
    exactly as the spec declares.
    """

    def __init__(self, max_sessions: int = 4096, overflow: str = "evict_oldest"):
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if overflow not in ("evict_oldest", "drop_new"):
            raise ValueError(f"unknown overflow policy {overflow!r}")
        self.max_sessions = max_sessions
        self.overflow = overflow
        self._sessions: dict[bytes, MiniSession] = {}
        self.evicted_expired = 0
        self.evicted_overflow = 0
        self.rejected_overflow = 0

    def get(self, request_id: bytes) -> MiniSession | None:
        return self._sessions.get(request_id)

    def open(
        self,
        request_id: bytes,
        *,
        parent: str | None,
        hops: int,
        expires_ms: int,
        now_ms: int,
    ) -> MiniSession | None:
        self.evict_expired(now_ms)
        if len(self._sessions) >= self.max_sessions:
            if self.overflow == "drop_new":
                self.rejected_overflow += 1
                return None
            victim = min(
                self._sessions.values(), key=lambda s: (s.expires_ms, s.request_id)
            )
            del self._sessions[victim.request_id]
            self.evicted_overflow += 1
        session = MiniSession(
            request_id=request_id, parent=parent, hops=hops, expires_ms=expires_ms
        )
        self._sessions[request_id] = session
        return session

    def evict_expired(self, now_ms: int) -> int:
        # Strict boundary: a session expiring AT now_ms is still live.
        dead = [rid for rid, s in self._sessions.items() if s.expires_ms < now_ms]
        for rid in dead:
            del self._sessions[rid]
        self.evicted_expired += len(dead)
        return len(dead)

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, request_id: bytes) -> bool:
        return request_id in self._sessions

    def request_ids(self) -> set[bytes]:
        return set(self._sessions)


# -- participant: candidate enumeration, hint solving, replies ------------


@dataclass
class _MiniOutcome:
    candidate: bool
    keys: list[bytes] = field(default_factory=list)
    vectors: list[tuple[int, ...]] = field(default_factory=list)
    x: bytes | None = None
    matched_key: bytes | None = None


class MiniParticipant:
    """Participant endpoint: Fig. 1 pipeline rebuilt from the doc text.

    The candidate walk is an independent algorithm (plain recursive DFS
    over positions with a strictly-increasing-value constraint and
    voluntary unknowns at optional positions — ``robust`` mode), and the
    hint solver does exact Gaussian elimination over ``fractions.Fraction``
    rather than the repo's prime-field shortcut; both must nevertheless
    agree with the repro stack on every candidate set and recovered
    vector, which is precisely the point.
    """

    def __init__(
        self,
        attributes,
        user_id: str,
        *,
        y_seed: bytes | None = None,
        binding: bytes | None = None,
        max_candidates: int = 256,
        max_visits: int = 200_000,
    ):
        pairs = sorted((mini_hash_attribute(a, binding), a) for a in set(attributes))
        self.values = tuple(h for h, _ in pairs)
        self.attributes = tuple(a for _, a in pairs)
        self.user_id = user_id
        self._y_seed = y_seed
        self.max_candidates = max_candidates
        self.max_visits = max_visits
        self.last_candidate: bool | None = None
        self._seen_requests: set[bytes] = set()
        self._pending: dict[bytes, list[tuple[bytes, bytes]]] = {}

    # -- secrets ---------------------------------------------------------

    def _y_for(self, request_id: bytes) -> bytes:
        if self._y_seed is not None:
            return hmac.digest(self._y_seed, request_id, "sha256")
        return os.urandom(_SECRET_LEN)

    def channel_keys(self, request_id: bytes) -> list[bytes]:
        """Candidate pairwise keys for a request this endpoint answered."""
        return [mini_pair_key(x, y) for x, y in self._pending.get(request_id, [])]

    def has_seen(self, request_id: bytes) -> bool:
        """True once this endpoint has answered (or declined) the request."""
        return request_id in self._seen_requests

    # -- the pipeline ----------------------------------------------------

    def handle_request(self, req: MiniRequest, now_ms: int = 0) -> MiniReply | None:
        if req.is_expired(now_ms):
            return None
        if req.request_id in self._seen_requests:
            return None
        self._seen_requests.add(req.request_id)
        outcome = self.process(req)
        self.last_candidate = outcome.candidate
        if not outcome.candidate:
            return None
        if req.protocol == 1:
            return self._reply_protocol1(req, outcome, now_ms)
        return self._reply_protocol23(req, outcome, now_ms)

    def process(self, req: MiniRequest) -> _MiniOutcome:
        outcome = _MiniOutcome(candidate=False)
        optional_positions = [i for i, nec in enumerate(req.necessary_mask) if not nec]
        # A hint whose dimensions do not cover the optional positions can
        # never be solved: the spec says reject before any work.
        if req.hint is not None and (
            req.hint.gamma + req.hint.beta != len(optional_positions)
        ):
            return outcome

        gamma = len(optional_positions) - req.beta
        assignments = self._enumerate(req, gamma)
        if not assignments:
            return outcome
        outcome.candidate = True

        seen: set[tuple[int, ...]] = set()
        for values in assignments:
            filled = self._complete(req, values, optional_positions)
            if filled is None:
                continue
            if filled in seen:
                continue
            seen.add(filled)
            key = mini_profile_key(filled)
            outcome.vectors.append(filled)
            outcome.keys.append(key)
            if req.protocol == 1 and outcome.x is None:
                plaintext = _aes_decrypt(key, req.ciphertext)
                if plaintext[: len(_CONFIRMATION)] == _CONFIRMATION:
                    outcome.x = plaintext[len(_CONFIRMATION) : len(_CONFIRMATION) + _SECRET_LEN]
                    outcome.matched_key = key
                    break
            if len(outcome.keys) >= self.max_candidates:
                break
        return outcome

    def _enumerate(self, req: MiniRequest, gamma: int) -> list[tuple[int | None, ...]]:
        """Every order-consistent assignment with ≤ gamma optional unknowns."""
        buckets: dict[int, list[int]] = {}
        for h in self.values:  # self.values is sorted, so buckets are too
            buckets.setdefault(h % req.p, []).append(h)
        n = req.m_t
        results: list[tuple[int | None, ...]] = []
        visits = 0

        def walk(pos: int, prev: int, unknowns: int, assignment: list[int | None]) -> None:
            nonlocal visits
            visits += 1
            if visits > self.max_visits or len(results) > 4 * self.max_candidates:
                return
            if pos == n:
                results.append(tuple(assignment))
                return
            necessary = req.necessary_mask[pos]
            for h in buckets.get(req.remainders[pos], ()):
                if h > prev:
                    assignment.append(h)
                    walk(pos + 1, h, unknowns, assignment)
                    assignment.pop()
            # Robust mode: an optional position may stay unknown even when
            # the bucket offered a value (the value might belong elsewhere).
            if not necessary and unknowns < max(gamma, 0):
                assignment.append(None)
                walk(pos + 1, prev, unknowns + 1, assignment)
                assignment.pop()

        walk(0, -1, 0, [])
        return results

    def _complete(
        self,
        req: MiniRequest,
        values: tuple[int | None, ...],
        optional_positions: list[int],
    ) -> tuple[int, ...] | None:
        """Fill unknowns via the hint; None when the candidate is dead."""
        if all(v is not None for v in values):
            return tuple(values)  # type: ignore[arg-type]
        if req.hint is None:
            return None  # perfect-match request: incomplete candidates are useless
        segment = [values[i] for i in optional_positions]
        recovered = self._solve_hint(req.hint, segment)
        if recovered is None:
            return None
        filled = list(values)
        for pos, value in zip(optional_positions, recovered):
            if filled[pos] is None:
                # Recovered hashes must agree with the published remainders.
                if value % req.p != req.remainders[pos]:
                    return None
                filled[pos] = value
        if any(v is None for v in filled):
            return None
        return tuple(filled)  # type: ignore[arg-type]

    def _solve_hint(
        self, hint: MiniHint, segment: list[int | None]
    ) -> list[int] | None:
        """Solve ``B = C·h_opt`` for the unknown entries, exactly over Q."""
        width = hint.gamma + hint.beta
        if len(segment) != width:
            return None
        unknown = [i for i, v in enumerate(segment) if v is None]
        if len(unknown) > hint.gamma:
            return None
        col_of = {pos: k for k, pos in enumerate(unknown)}
        rows: list[list[Fraction]] = []
        rhs: list[Fraction] = []
        for i in range(hint.gamma):
            # Row i of C = [I_gamma | R]: coefficient 1 at position i,
            # R[i][j] at position gamma + j.
            coeffs = [0] * width
            coeffs[i] = 1
            for j in range(hint.beta):
                coeffs[hint.gamma + j] = hint.r_block[i][j]
            row = [Fraction(0)] * len(unknown)
            acc = Fraction(hint.b_vector[i])
            for pos, coeff in enumerate(coeffs):
                if coeff == 0:
                    continue
                if segment[pos] is None:
                    row[col_of[pos]] += coeff
                else:
                    acc -= coeff * segment[pos]
            rows.append(row)
            rhs.append(acc)

        solution = _gauss_exact(rows, rhs, len(unknown))
        if solution is None:
            return None
        recovered = list(segment)
        for pos, value in zip(unknown, solution):
            if value.denominator != 1:
                return None
            value = value.numerator
            if not 0 <= value < (1 << 256):
                return None
            recovered[pos] = value
        # Exact re-check of every equation over the integers.
        for i in range(hint.gamma):
            acc = recovered[i]
            for j in range(hint.beta):
                acc += hint.r_block[i][j] * recovered[hint.gamma + j]
            if acc != hint.b_vector[i]:
                return None
        return recovered  # type: ignore[return-value]

    # -- reply building --------------------------------------------------

    def _reply_protocol1(
        self, req: MiniRequest, outcome: _MiniOutcome, now_ms: int
    ) -> MiniReply | None:
        if outcome.x is None:
            return None  # candidate but not matching
        matched_vector = next(
            vec for vec, key in zip(outcome.vectors, outcome.keys)
            if key == outcome.matched_key
        )
        similarity = len(set(self.values) & set(matched_vector))
        y = self._y_for(req.request_id)
        element = _aes_encrypt(outcome.x, _ACK + bytes([min(similarity, 255)]) + y)
        self._pending.setdefault(req.request_id, []).append((outcome.x, y))
        return MiniReply(
            request_id=req.request_id,
            responder_id=self.user_id,
            elements=(element,),
            sent_at_ms=now_ms,
        )

    def _reply_protocol23(
        self, req: MiniRequest, outcome: _MiniOutcome, now_ms: int
    ) -> MiniReply | None:
        if not outcome.keys:
            return None
        y = self._y_for(req.request_id)
        plaintext = _ACK + b"\x00" + y  # similarity 0: no oracle under P2/P3
        elements = []
        pending = self._pending.setdefault(req.request_id, [])
        for key in outcome.keys:
            x_candidate = _aes_decrypt(key, req.ciphertext)
            elements.append(_aes_encrypt(x_candidate, plaintext))
            pending.append((x_candidate, y))
        return MiniReply(
            request_id=req.request_id,
            responder_id=self.user_id,
            elements=tuple(elements),
            sent_at_ms=now_ms,
        )


def _gauss_exact(
    rows: list[list[Fraction]], rhs: list[Fraction], n_unknown: int
) -> list[Fraction] | None:
    """Exact Gaussian elimination over Q; None when inconsistent or rank-deficient."""
    m = len(rows)
    aug = [row[:] + [b] for row, b in zip(rows, rhs)]
    pivot_cols: list[int] = []
    rank = 0
    for col in range(n_unknown):
        pivot = next((r for r in range(rank, m) if aug[r][col] != 0), None)
        if pivot is None:
            continue
        aug[rank], aug[pivot] = aug[pivot], aug[rank]
        inv = 1 / aug[rank][col]
        aug[rank] = [v * inv for v in aug[rank]]
        for r in range(m):
            if r != rank and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [v - factor * p for v, p in zip(aug[r], aug[rank])]
        pivot_cols.append(col)
        rank += 1
    for r in range(rank, m):
        if aug[r][n_unknown] != 0:
            return None  # inconsistent: candidate is not the request
    if rank < n_unknown:
        return None  # underdetermined
    solution = [Fraction(0)] * n_unknown
    for r, col in enumerate(pivot_cols):
        solution[col] = aug[r][n_unknown]
    return solution


# -- initiator ------------------------------------------------------------


class MiniInitiator:
    """Initiator endpoint: builds sealed requests, verifies acknowledge sets.

    With the same seeded RNG the built request is byte-identical to the
    repro stack's (same draw order: secret ``x``, then the hint matrix's
    random block row-major, then the request id) — pinned by the
    conformance suite as the strongest possible encoder agreement.
    """

    def __init__(
        self,
        necessary,
        optional,
        beta: int,
        *,
        protocol: int = 2,
        p: int = 11,
        ttl: int = 8,
        validity_ms: int = 60_000,
        reply_window_ms: int = 5_000,
        max_reply_elements: int = 16,
        rng: random.Random | None = None,
        binding: bytes | None = None,
    ):
        self.necessary = list(necessary)
        self.optional = list(optional)
        self.beta = beta
        self.protocol = protocol
        self.p = p
        self.ttl = ttl
        self.validity_ms = validity_ms
        self.reply_window_ms = reply_window_ms
        self.max_reply_elements = max_reply_elements
        self.rng = rng or random.Random()
        self.binding = binding
        self.x: bytes | None = None
        self.request_id: bytes | None = None
        self.created_ms: int | None = None
        self.matches: list[dict] = []
        self.rejected: list[tuple[str, str]] = []

    def build_request(self, now_ms: int = 0) -> MiniRequest:
        tagged = sorted(
            [(mini_hash_attribute(a, self.binding), True) for a in self.necessary]
            + [(mini_hash_attribute(a, self.binding), False) for a in self.optional]
        )
        values = [h for h, _ in tagged]
        mask = tuple(nec for _, nec in tagged)
        m_t = len(values)
        if self.p <= m_t:
            raise ValueError(f"remainder prime p={self.p} must exceed m_t={m_t}")
        key = mini_profile_key(values)
        # RNG draw order is part of the encoder-identity contract:
        # x, then R row-major, then the request id.
        x = self.rng.randbytes(_SECRET_LEN)
        sealed = (_CONFIRMATION + x) if self.protocol == 1 else x
        ciphertext = _aes_encrypt(key, sealed)
        remainders = tuple(v % self.p for v in values)
        optional_values = [h for h, nec in tagged if not nec]
        gamma = len(optional_values) - self.beta
        hint = None
        if gamma > 0:
            r_block = tuple(
                tuple(self.rng.randrange(1, 1 << 32) for _ in range(self.beta))
                for _ in range(gamma)
            )
            b_vector = tuple(
                optional_values[i]
                + sum(r_block[i][j] * optional_values[gamma + j] for j in range(self.beta))
                for i in range(gamma)
            )
            hint = MiniHint(gamma=gamma, beta=self.beta, r_block=r_block, b_vector=b_vector)
        request_id = self.rng.randbytes(8)
        self.x = x
        self.request_id = request_id
        self.created_ms = now_ms
        return MiniRequest(
            protocol=self.protocol,
            p=self.p,
            remainders=remainders,
            necessary_mask=mask,
            beta=self.beta,
            hint=hint,
            ciphertext=ciphertext,
            request_id=request_id,
            ttl=self.ttl,
            expiry_ms=now_ms + self.validity_ms,
        )

    def handle_reply(self, reply: MiniReply, now_ms: int) -> dict | None:
        if self.x is None or self.request_id is None or self.created_ms is None:
            raise RuntimeError("build_request must be called first")
        if reply.request_id != self.request_id:
            self.rejected.append((reply.responder_id, "unknown request id"))
            return None
        # The window is anchored at request creation, not the reply stamp.
        if now_ms - self.created_ms > self.reply_window_ms:
            self.rejected.append((reply.responder_id, "outside time window"))
            return None
        if len(reply.elements) > self.max_reply_elements:
            self.rejected.append((reply.responder_id, "reply set too large"))
            return None
        for element in reply.elements:
            if len(element) != _REPLY_PLAINTEXT_LEN:
                continue
            plaintext = _aes_decrypt(self.x, element)
            if plaintext[: len(_ACK)] == _ACK:
                record = {
                    "responder_id": reply.responder_id,
                    "similarity": plaintext[len(_ACK)],
                    "y": plaintext[len(_ACK) + 1 :],
                    "session_key": mini_pair_key(self.x, plaintext[len(_ACK) + 1 :]),
                }
                self.matches.append(record)
                return record
        self.rejected.append((reply.responder_id, "no element verified"))
        return None


# -- sessionized node endpoint -------------------------------------------


@dataclass
class MiniDelivery:
    """What one delivered datagram did to a mini node."""

    status: str  # rejected | ignored | duplicate | expired | overflow | wave-forwarded | processed
    reply_frame: bytes | None = None
    forward_frame: bytes | None = None
    candidate: bool | None = None


class MiniNode:
    """One flood endpoint: frame in, (reply frame, forward frame) out.

    Implements the sessionized-endpoint semantics of the spec: per-request
    dedupe on the envelope ``seq`` (a wave mark), forward-once without
    re-processing for fresh waves, strict expiry, reverse-path bookkeeping
    and bounded session state.
    """

    def __init__(
        self,
        node_id: str,
        participant: MiniParticipant | None = None,
        *,
        wire: MiniWire | None = None,
        sessions: MiniSessionTable | None = None,
    ):
        self.node_id = node_id
        self.participant = participant
        self.wire = wire or MiniWire()
        self.sessions = sessions or MiniSessionTable()

    def handle_datagram(
        self, data: bytes, *, parent: str | None = None, now_ms: int = 0
    ) -> MiniDelivery:
        try:
            frame = self.wire.decode_frame(data)
        except MiniRejection:
            return MiniDelivery(status="rejected")
        if frame.ftype != 1:
            return MiniDelivery(status="ignored")
        try:
            req = self.wire.decode_request(frame.payload)
        except MiniRejection:
            return MiniDelivery(status="rejected")

        session = self.sessions.get(req.request_id)
        if session is not None:
            if frame.seq <= session.last_seq:
                return MiniDelivery(status="duplicate")
            # A fresh retransmission wave: forward once, never re-process.
            if req.is_expired(now_ms):
                return MiniDelivery(status="expired")
            session.last_seq = frame.seq
            forward = None
            if frame.ttl > 1:
                forward = self.wire.hop(data, ttl=frame.ttl - 1)
            return MiniDelivery(status="wave-forwarded", forward_frame=forward)

        if req.is_expired(now_ms):
            return MiniDelivery(status="expired")
        hops = req.ttl - frame.ttl + 1
        session = self.sessions.open(
            req.request_id,
            parent=parent,
            hops=hops,
            expires_ms=req.expiry_ms,
            now_ms=now_ms,
        )
        if session is None:
            return MiniDelivery(status="overflow")
        session.last_seq = frame.seq

        reply_frame = None
        candidate = None
        if self.participant is not None:
            reply = self.participant.handle_request(req, now_ms=now_ms)
            candidate = self.participant.last_candidate
            if reply is not None:
                reply_frame = self.wire.encode_frame(
                    2, self.wire.encode_reply(reply), ttl=min(hops, 255)
                )
        forward = None
        if frame.ttl > 1:
            forward = self.wire.hop(data, ttl=frame.ttl - 1)
        return MiniDelivery(
            status="processed",
            reply_frame=reply_frame,
            forward_frame=forward,
            candidate=candidate,
        )


# -- the facade -----------------------------------------------------------


class MiniPeer:
    """One coherent mini endpoint stack, with seams for the mutant set.

    The conformance harness drives everything through a ``MiniPeer`` so a
    mutant can swap exactly one component (wire codec, session table,
    node) while the rest of the stack stays honest.
    """

    def __init__(
        self,
        *,
        wire: MiniWire | None = None,
        table_factory=MiniSessionTable,
        node_factory=MiniNode,
    ):
        self.wire = wire or MiniWire()
        self.table_factory = table_factory
        self.node_factory = node_factory

    def session_table(self, max_sessions: int = 4096, overflow: str = "evict_oldest"):
        return self.table_factory(max_sessions, overflow)

    def participant(self, attributes, user_id: str, **kwargs) -> MiniParticipant:
        return MiniParticipant(attributes, user_id, **kwargs)

    def initiator(self, necessary, optional, beta: int, **kwargs) -> MiniInitiator:
        return MiniInitiator(necessary, optional, beta, **kwargs)

    def node(
        self,
        node_id: str,
        participant: MiniParticipant | None = None,
        *,
        max_sessions: int = 4096,
        overflow: str = "evict_oldest",
    ) -> MiniNode:
        return self.node_factory(
            node_id,
            participant,
            wire=self.wire,
            sessions=self.table_factory(max_sessions, overflow),
        )
