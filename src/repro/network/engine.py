"""Concurrent multi-episode friending engine.

The paper's typical scenario (Table VII) assumes many users friending
*simultaneously* in one network.  This engine runs N overlapping episodes --
each its own initiator, request package and metrics -- through a single
:class:`~repro.network.events.EventQueue` over one shared set of
:class:`~repro.network.simulator.Node` objects:

- episodes start at staggered times (Poisson-ish arrival is just a choice
  of ``start_ms`` values);
- per-node flood state is keyed by request id, so floods interleave
  without cross-talk while genuinely shared resources (the per-neighbour
  rate limiter, each participant's disclosure ledger) stay shared;
- optional mid-run topology refresh re-snapshots a mobility model so the
  network moves underneath long runs.

Per-episode results carry the usual :class:`NetworkMetrics`; the engine
additionally reports aggregate throughput and reply-latency percentiles.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial

from repro.core.protocols import Initiator, MatchRecord, Reply
from repro.crypto.backend import current_backend, set_backend
from repro.network.events import (
    BroadcastEvent,
    EventQueue,
    ReceiveEvent,
    ReplyHopEvent,
    TopologyRefreshEvent,
)
from repro.network.metrics import AggregateMetrics, NetworkMetrics, percentile
from repro.network.simulator import (
    REPLY_ELEMENT_BYTES,
    REPLY_OVERHEAD_BYTES,
    AdHocNetwork,
)

__all__ = ["EpisodeSpec", "EpisodeResult", "EngineResult", "FriendingEngine"]


@dataclass(frozen=True)
class EpisodeSpec:
    """One episode to schedule: who initiates, from where, and when.

    ``start_ms`` is simulated milliseconds on the engine's shared clock;
    the episode's request package is created (and its validity window
    anchored) at that instant.
    """

    initiator_node: str
    initiator: Initiator
    start_ms: int = 0


@dataclass
class EpisodeResult:
    """Outcome of one episode inside a multi-episode run."""

    episode: int
    initiator_node: str
    initiator: Initiator
    started_at_ms: int
    completed_at_ms: int
    metrics: NetworkMetrics
    replies: list[Reply] = field(default_factory=list)

    @property
    def matches(self) -> list[MatchRecord]:
        return list(self.initiator.matches)

    @property
    def matched_ids(self) -> list[str]:
        return [m.responder_id for m in self.initiator.matches]


@dataclass
class EngineResult:
    """All episodes of one engine run plus the aggregate view."""

    episodes: list[EpisodeResult]
    aggregate: AggregateMetrics
    completed_at_ms: int
    topology_refreshes: int = 0


class _Episode:
    """Mutable in-flight state of one episode."""

    __slots__ = ("spec", "index", "package", "package_bytes", "rid", "metrics",
                 "replies", "last_event_ms")

    def __init__(self, spec: EpisodeSpec, index: int):
        self.spec = spec
        self.index = index
        self.package = spec.initiator.create_request(now_ms=spec.start_ms)
        self.package_bytes = self.package.wire_size_bytes()
        self.rid = self.package.request_id
        self.metrics = NetworkMetrics()
        self.replies: list[Reply] = []
        self.last_event_ms = spec.start_ms


def _run_episode_shard(
    network: AdHocNetwork,
    indexed_specs: list[tuple[int, EpisodeSpec]],
    until_ms: int | None,
    backend_name: str,
) -> tuple[list[EpisodeResult], int]:
    """Worker-process entry point: run one shard of episodes sequentially.

    *network* arrives as this process's private pickled copy, so shards
    never share mutable state.  Episode indices are restored to their
    position in the caller's spec list before results travel back.
    """
    set_backend(backend_name)
    engine = FriendingEngine(network)
    result = engine.run([spec for _, spec in indexed_specs], until_ms=until_ms)
    for (original_index, _), episode in zip(indexed_specs, result.episodes):
        episode.episode = original_index
    return result.episodes, result.completed_at_ms


class FriendingEngine:
    """Schedules overlapping friending episodes over one `AdHocNetwork`.

    All times are simulated milliseconds (``start_ms``, ``until_ms``,
    latencies, refresh intervals); aggregate throughput is reported in
    episodes per simulated second.  Wall-clock time never enters the
    simulation, so a run is deterministic given seeded initiator and
    participant RNGs: the same specs over the same network produce
    bit-identical event orders, metrics and match sets, and N overlapping
    episodes match N isolated runs episode-for-episode
    (``tests/network/test_engine.py::TestDeterminism``).

    Parameters
    ----------
    network:
        The shared node set and latency model.
    mobility / radio_radius / refresh_interval_ms:
        When all three are given, the engine steps *mobility* every
        *refresh_interval_ms* of simulated time and rewires the network
        from a unit-disk snapshot at *radio_radius* (unit-square widths) --
        episodes launched before a refresh finish flooding over the new
        links.  Models exposing ``topology_delta`` (the grid-backed ones in
        :mod:`repro.network.mobility`) are refreshed incrementally: only
        the adjacency rows disturbed by motion are rewired.
    """

    def __init__(
        self,
        network: AdHocNetwork,
        *,
        mobility=None,
        radio_radius: float | None = None,
        refresh_interval_ms: int | None = None,
    ):
        if (mobility is None) != (refresh_interval_ms is None):
            raise ValueError("mobility and refresh_interval_ms must be given together")
        if mobility is not None and radio_radius is None:
            raise ValueError("topology refresh needs a radio_radius")
        if refresh_interval_ms is not None and refresh_interval_ms <= 0:
            raise ValueError("refresh interval must be positive")
        self.network = network
        self.mobility = mobility
        self.radio_radius = radio_radius
        self.refresh_interval_ms = refresh_interval_ms
        self.topology_refreshes = 0
        self._episodes: list[_Episode] = []
        self._queue: EventQueue | None = None
        self._pending_episode_events = 0
        self._refresh_horizon_ms = 0

    # -- public API ---------------------------------------------------------

    def run_staggered(
        self,
        launches: list[tuple[str, Initiator]],
        *,
        arrival_ms: int = 50,
        start_ms: int = 0,
        until_ms: int | None = None,
        workers: int = 1,
    ) -> EngineResult:
        """Launch one episode per ``(node, initiator)`` pair, *arrival_ms* apart.

        *workers* > 1 shards the episodes across processes via
        :meth:`run_parallel` instead of interleaving them in one queue.
        """
        specs = [
            EpisodeSpec(initiator_node=node, initiator=initiator,
                        start_ms=start_ms + i * arrival_ms)
            for i, (node, initiator) in enumerate(launches)
        ]
        if workers > 1:
            return self.run_parallel(specs, workers=workers, until_ms=until_ms)
        return self.run(specs, until_ms=until_ms)

    def run(self, specs: list[EpisodeSpec], *, until_ms: int | None = None) -> EngineResult:
        """Run every episode to completion (or *until_ms*) in one queue."""
        if not specs:
            raise ValueError("need at least one episode")
        for spec in specs:
            if spec.initiator_node not in self.network.nodes:
                raise ValueError(f"unknown initiator node {spec.initiator_node!r}")

        first_start = min(spec.start_ms for spec in specs)
        queue = self._queue = EventQueue(first_start)
        self._episodes = [_Episode(spec, i) for i, spec in enumerate(specs)]
        self.topology_refreshes = 0
        self._pending_episode_events = 0

        for episode in self._episodes:
            # The initiator's own node never re-processes its own request.
            origin = self.network.nodes[episode.spec.initiator_node]
            origin.seen.add(episode.rid)
            origin.hops[episode.rid] = 0
            self._schedule(
                episode.spec.start_ms - first_start,
                BroadcastEvent(episode.index, episode.spec.initiator_node,
                               episode.package.ttl),
            )

        if self.mobility is not None:
            self._schedule_refreshes(first_start, until_ms)

        queue.run(until_ms=until_ms)

        episodes = [
            EpisodeResult(
                episode=ep.index,
                initiator_node=ep.spec.initiator_node,
                initiator=ep.spec.initiator,
                started_at_ms=ep.spec.start_ms,
                completed_at_ms=ep.last_event_ms,
                metrics=ep.metrics,
                replies=ep.replies,
            )
            for ep in self._episodes
        ]
        # Aggregate throughput runs to the last *episode* event: trailing
        # topology-refresh ticks keep the queue alive but do no episode work.
        last_episode_event = max(ep.last_event_ms for ep in self._episodes)
        return EngineResult(
            episodes=episodes,
            aggregate=self._aggregate(episodes, first_start, last_episode_event),
            completed_at_ms=queue.now_ms,
            topology_refreshes=self.topology_refreshes,
        )

    def run_parallel(
        self,
        specs: list[EpisodeSpec],
        *,
        workers: int,
        until_ms: int | None = None,
    ) -> EngineResult:
        """Shard episodes across *workers* processes; merge deterministically.

        Episodes are dealt round-robin to worker processes; each worker
        runs its shard through an ordinary :meth:`run` over a pickled
        copy of the network, and the merged result restores sequential
        episode order.  Given seeded per-episode initiator RNGs and
        seeded per-participant RNGs, concurrent episodes in one queue
        already equal the same episodes run in isolation
        (``tests/network/test_engine.py::TestDeterminism``), so sharding
        preserves results episode-for-episode: ``run_parallel(workers=4)``
        returns the same matches, metrics and aggregate as :meth:`run`
        (pinned by ``tests/network/test_engine_parallel.py``).

        Differences from :meth:`run`:

        - episode state is mutated on *worker-side copies*: the caller's
          ``Initiator``/``Participant`` objects are untouched, and results
          must be read from the returned :class:`EpisodeResult`\\ s;
        - mid-run topology refresh is not supported (a refresh is a
          cross-episode side effect, which sharding removes) -- engines
          configured with a mobility model must use :meth:`run`;
        - the active crypto backend's *name* is forwarded to workers, so
          sharded runs measure the same backend as sequential ones.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if self.mobility is not None:
            raise ValueError(
                "run_parallel does not support mid-run topology refresh; use run()"
            )
        if not specs:
            raise ValueError("need at least one episode")
        for spec in specs:
            if spec.initiator_node not in self.network.nodes:
                raise ValueError(f"unknown initiator node {spec.initiator_node!r}")
        workers = min(workers, len(specs))
        if workers == 1:
            return self.run(specs, until_ms=until_ms)

        indexed = list(enumerate(specs))
        shards = [indexed[w::workers] for w in range(workers)]
        backend_name = current_backend().name
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_episode_shard, self.network, shard, until_ms, backend_name
                )
                for shard in shards
            ]
            outputs = [future.result() for future in futures]

        episodes = sorted(
            (episode for shard_episodes, _ in outputs for episode in shard_episodes),
            key=lambda episode: episode.episode,
        )
        first_start = min(spec.start_ms for spec in specs)
        last_episode_event = max(ep.completed_at_ms for ep in episodes)
        return EngineResult(
            episodes=episodes,
            aggregate=self._aggregate(episodes, first_start, last_episode_event),
            completed_at_ms=max(completed for _, completed in outputs),
            topology_refreshes=0,
        )

    # -- event handling -----------------------------------------------------

    def _dispatch(self, event) -> None:
        if isinstance(event, ReceiveEvent):
            self._pending_episode_events -= 1
            self._on_receive(event)
        elif isinstance(event, BroadcastEvent):
            self._pending_episode_events -= 1
            self._on_broadcast(event)
        elif isinstance(event, ReplyHopEvent):
            self._pending_episode_events -= 1
            self._on_reply_hop(event)
        elif isinstance(event, TopologyRefreshEvent):
            self._on_topology_refresh(event)
        else:  # pragma: no cover -- the engine only schedules the above
            raise TypeError(f"unknown event {event!r}")

    def _schedule(self, delay_ms: int, event) -> None:
        assert self._queue is not None
        if not isinstance(event, TopologyRefreshEvent):
            self._pending_episode_events += 1
        self._queue.schedule(delay_ms, partial(self._dispatch, event))

    def _on_broadcast(self, event: BroadcastEvent) -> None:
        episode = self._episodes[event.episode]
        node = self.network.nodes[event.node]
        episode.metrics.broadcasts += 1
        episode.metrics.bytes_broadcast += episode.package_bytes
        episode.last_event_ms = self._queue.now_ms
        for neighbour in node.neighbours:
            self._schedule(
                self.network.hop_latency_ms,
                ReceiveEvent(event.episode, neighbour, event.node, event.ttl),
            )

    def _on_receive(self, event: ReceiveEvent) -> None:
        episode = self._episodes[event.episode]
        node = self.network.nodes[event.node]
        queue = self._queue
        episode.last_event_ms = queue.now_ms
        if episode.rid in node.seen:
            episode.metrics.dropped_duplicate += 1
            return
        if episode.package.is_expired(queue.now_ms):
            episode.metrics.dropped_expired += 1
            return
        if not node.limiter.allow(event.from_node, queue.now_ms):
            episode.metrics.dropped_rate_limited += 1
            return
        node.seen.add(episode.rid)
        node.parent[episode.rid] = event.from_node
        hops = self.network.nodes[event.from_node].hops.get(episode.rid, 0) + 1
        node.hops[episode.rid] = hops
        episode.metrics.nodes_reached += 1

        participant = node.participant
        if participant is not None:
            reply = participant.handle_request(episode.package, now_ms=queue.now_ms)
            outcome = participant.last_outcome
            if outcome is not None and outcome.candidate:
                episode.metrics.candidates += 1
            if reply is not None:
                episode.metrics.replies += 1
                self._schedule(
                    self.network.processing_latency_ms,
                    ReplyHopEvent(event.episode, reply, event.node, hops),
                )
        if event.ttl > 1:
            self._schedule(
                self.network.processing_latency_ms,
                BroadcastEvent(event.episode, event.node, event.ttl - 1),
            )
        else:
            # TTL exhausted: the packet was received and fully processed
            # (the node may even have replied); what is dropped is the
            # re-broadcast that would otherwise go out -- count exactly one
            # suppression here, at the point of suppression.
            episode.metrics.dropped_ttl += 1

    def _on_reply_hop(self, event: ReplyHopEvent) -> None:
        episode = self._episodes[event.episode]
        episode.last_event_ms = self._queue.now_ms
        if event.remaining_hops <= 0:
            episode.spec.initiator.handle_reply(event.reply, self._queue.now_ms)
            episode.metrics.reply_latency_ms.append(
                self._queue.now_ms - episode.spec.start_ms
            )
            episode.replies.append(event.reply)
            return
        episode.metrics.unicasts += 1
        episode.metrics.bytes_unicast += (
            REPLY_OVERHEAD_BYTES + len(event.reply.elements) * REPLY_ELEMENT_BYTES
        )
        self._schedule(
            self.network.hop_latency_ms,
            ReplyHopEvent(event.episode, event.reply, event.via,
                          event.remaining_hops - 1),
        )

    def _on_topology_refresh(self, event: TopologyRefreshEvent) -> None:
        self.mobility.step(event.interval_ms / 1000)
        # Prefer the incremental path: a grid-backed model hands back only
        # the adjacency rows the motion actually changed, so a refresh in a
        # 10k-node city costs O(moved neighbourhoods), not an O(n²) rescan.
        delta = getattr(self.mobility, "topology_delta", None)
        if delta is not None:
            changed = delta(self.radio_radius)
            if changed:
                self.network.update_topology(changed)
        else:
            self.network.update_topology(
                self.mobility.snapshot_topology(self.radio_radius)
            )
        self.topology_refreshes += 1
        # Re-arm only while episode work is still in flight and the horizon
        # allows: the queue must drain once the last flood/reply settles.
        if (
            self._pending_episode_events > 0
            and self._queue.now_ms + event.interval_ms <= self._refresh_horizon_ms
        ):
            self._schedule(event.interval_ms, event)

    def _schedule_refreshes(self, first_start: int, until_ms: int | None) -> None:
        horizon = until_ms
        if horizon is None:
            horizon = max(ep.package.expiry_ms for ep in self._episodes)
        self._refresh_horizon_ms = horizon
        interval = self.refresh_interval_ms
        if first_start + interval <= horizon:
            self._schedule(interval, TopologyRefreshEvent(interval))

    # -- aggregation --------------------------------------------------------

    @staticmethod
    def _aggregate(
        episodes: list[EpisodeResult], first_start: int, end_ms: int
    ) -> AggregateMetrics:
        total = NetworkMetrics()
        for episode in episodes:
            total.merge(episode.metrics)
        return AggregateMetrics(
            episodes=len(episodes),
            matches=sum(len(ep.initiator.matches) for ep in episodes),
            sim_duration_ms=end_ms - first_start,
            total=total,
            latency_p50_ms=percentile(total.reply_latency_ms, 50),
            latency_p95_ms=percentile(total.reply_latency_ms, 95),
        )
